#!/usr/bin/env sh
# The full verification gate, in the order fastest-feedback-first:
#
#   1. pressio-lint      — workspace static analysis (see lint-allow.txt)
#   2. cargo clippy      — compiler lints, warnings are errors
#   3. cargo test        — unit + integration tests, including the live
#                          plugin-contract checker (crates/tools/tests)
#   4. pressio fuzz-decode — every decoder against deterministically
#                          corrupted streams: structured errors only,
#                          no panics, no hangs
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "== pressio-lint"
cargo run -q -p pressio-tools --bin pressio-lint -- --root . --strict-allowlist

echo "== clippy (deny warnings)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "== tests"
cargo test -q --workspace

echo "== decoder corruption fuzz"
cargo run -q -p pressio-tools --bin pressio -- fuzz-decode --iterations 64 --seed 1

echo "== ci.sh: all gates passed"
