#!/usr/bin/env sh
# The full verification gate, in the order fastest-feedback-first:
#
#   1. pressio-lint      — workspace static analysis (see lint-allow.txt)
#   2. cargo clippy      — compiler lints, warnings are errors
#   3. cargo test        — unit + integration tests, including the live
#                          plugin-contract checker (crates/tools/tests),
#                          the golden-stream corpus (tests/golden_streams.rs)
#                          and the metrics reference suite
#                          (crates/metrics/tests/reference.rs)
#   4. pressio fuzz-decode — every decoder against deterministically
#                          corrupted streams: structured errors only,
#                          no panics, no hangs
#   5. pressio trace --check — tracing smoke: a traced sz round trip must
#                          produce a non-empty, well-nested span tree with
#                          both handle-level spans
#   6. pressio bench --check — the *committed* BENCH_overhead.json must
#                          satisfy the pressio-bench/overhead-v1 schema,
#                          including self-consistency of the derived
#                          overhead_pct and speedup fields; then the quick
#                          harness runs end-to-end into target/ and its
#                          output is checked the same way. Timings are
#                          reported, never gated: wall-clock on a shared
#                          CI box is noise, so only structure is asserted.
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "== pressio-lint"
cargo run -q -p pressio-tools --bin pressio-lint -- --root . --strict-allowlist

echo "== clippy (deny warnings)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "== tests (unit + integration + golden corpus + metrics references)"
cargo test -q --workspace

echo "== decoder corruption fuzz"
cargo run -q -p pressio-tools --bin pressio -- fuzz-decode --iterations 64 --seed 1

echo "== trace smoke (span tree well-nested)"
cargo run -q --release -p pressio-tools --bin pressio -- trace sz --check

echo "== committed BENCH_overhead.json: schema + self-consistency"
cargo run -q --release -p pressio-tools --bin pressio -- bench --check --out BENCH_overhead.json

echo "== bench harness end-to-end (quick, emits to target/)"
cargo run -q --release -p pressio-tools --bin pressio -- bench --quick --out target/BENCH_overhead_ci.json
cargo run -q --release -p pressio-tools --bin pressio -- bench --check --out target/BENCH_overhead_ci.json

echo "== ci.sh: all gates passed"
