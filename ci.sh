#!/usr/bin/env sh
# The full verification gate, in the order fastest-feedback-first:
#
#   1. pressio-lint      — workspace static analysis (see lint-allow.txt)
#   2. cargo clippy      — compiler lints, warnings are errors
#   3. cargo test        — unit + integration tests, including the live
#                          plugin-contract checker (crates/tools/tests)
#   4. pressio fuzz-decode — every decoder against deterministically
#                          corrupted streams: structured errors only,
#                          no panics, no hangs
#   5. pressio bench --quick — the overhead harness end-to-end: emits
#                          BENCH_overhead.json and re-validates it against
#                          the pressio-bench/overhead-v1 schema. Timings are
#                          reported, never gated: wall-clock on a shared CI
#                          box is noise, so only structure is asserted.
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "== pressio-lint"
cargo run -q -p pressio-tools --bin pressio-lint -- --root . --strict-allowlist

echo "== clippy (deny warnings)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "== tests"
cargo test -q --workspace

echo "== decoder corruption fuzz"
cargo run -q -p pressio-tools --bin pressio -- fuzz-decode --iterations 64 --seed 1

echo "== bench harness (quick) + schema check"
cargo run -q --release -p pressio-tools --bin pressio -- bench --quick --out BENCH_overhead.json
cargo run -q --release -p pressio-tools --bin pressio -- bench --check --out BENCH_overhead.json

echo "== ci.sh: all gates passed"
