#!/usr/bin/env sh
# The full verification gate, in the order fastest-feedback-first:
#
#   1. pressio-lint      — workspace static analysis (see lint-allow.txt):
#                          the v1 line rules plus the v2 token-tree passes
#                          (wire-taint, plugin-surface key consistency,
#                          lock discipline). --strict-allowlist makes stale
#                          allowlist entries fail the build.
#   2. cargo clippy      — compiler lints, warnings are errors
#   3. cargo test        — unit + integration tests, including the live
#                          plugin-contract checker (crates/tools/tests),
#                          the golden-stream corpus (tests/golden_streams.rs),
#                          the metrics reference suite
#                          (crates/metrics/tests/reference.rs), and the
#                          lint seeded-regression fixtures
#                          (crates/tools/tests/lint_fixtures.rs)
#   4. loom model checks — the execution engine's submit/steal/help paths,
#                          the trace ring's push/drain/overflow paths, and
#                          the serve admission/drain primitives
#                          (accept-vs-shed conservation, drain
#                          termination), replayed under a seeded
#                          cooperative scheduler
#                          (crates/core/tests/loom_{exec,trace,cancel,serve}.rs;
#                          the `loom` feature routes crates/core/src/sync.rs
#                          through shims/loom and is never in release
#                          builds)
#   5. pressio fuzz-decode — every decoder against deterministically
#                          corrupted streams: structured errors only,
#                          no panics, no hangs
#   5b. pressio chaos     — seeded fault injection at the exec pool's
#                          scheduling points (worker/task panics, delays,
#                          spurious cancels, forced budget failures) while
#                          sweeping every pooled plugin and the guard
#                          stacks: the pool must self-heal, stops must be
#                          structured errors, and a faulted handle must
#                          stay bit-identical to a fresh one afterwards
#                          (needs --features chaos; the hooks compile to
#                          nothing in normal builds)
#   5c. serve smoke       — the admission-controlled daemon end-to-end:
#                          round-trip every default profile over real
#                          sockets, push an overload burst past capacity
#                          (sheds must be structured Busy with zero
#                          aborts), reject malformed frames structurally,
#                          drain gracefully on SIGTERM with exit code 0,
#                          and hold the committed BENCH_serve.json to the
#                          pressio-serve/bench-v1 invariants (ramp past 2x
#                          capacity, zero errors, clean drain, no leaked
#                          watchdog workers)
#   6. pressio trace --check — tracing smoke: a traced sz round trip must
#                          produce a non-empty, well-nested span tree with
#                          both handle-level spans
#   7. pressio bench --check — the *committed* BENCH_overhead.json must
#                          satisfy the pressio-bench/overhead-v3 schema,
#                          including self-consistency of the derived
#                          overhead_pct / speedup fields, the host-clamp
#                          rule (nthreads_effective == min(requested,
#                          host_threads) — oversubscribed baselines are
#                          structurally invalid), recomputable
#                          serial_fallback flags, and the entropy section
#                          (rans never loses to deflate on ratio and
#                          decodes strictly faster); then the quick harness
#                          runs end-to-end into target/ and its output is
#                          checked the same way.
#   8. pressio bench --gate — the one timing we do gate: the committed
#                          parallel speedup must not regress by more than
#                          10% against a fresh measurement at the largest
#                          committed sweep edge (<= 128^3). Raw wall-clock
#                          is still never compared across hosts — the gate
#                          compares the *ratio* serial/parallel on this
#                          host, and skips itself (loudly) when the
#                          committed baseline was recorded with a
#                          different host_threads count.
#
# Usage: ./ci.sh                 full gate (all of the above)
#        ./ci.sh --quick        lint + workspace tests only (inner loop)
#        ./ci.sh --concurrency  loom model checks only
#        ./ci.sh --chaos        fault-injection sweep only
#        ./ci.sh --serve        serve daemon smoke tier only
set -eu

cd "$(dirname "$0")"

TIER=full
case "${1:-}" in
  "") ;;
  --quick) TIER=quick ;;
  --concurrency) TIER=concurrency ;;
  --chaos) TIER=chaos ;;
  --serve) TIER=serve ;;
  *) echo "usage: ./ci.sh [--quick|--concurrency|--chaos|--serve]" >&2; exit 2 ;;
esac

run_lint() {
    echo "== pressio-lint"
    cargo run -q -p pressio-tools --bin pressio-lint -- --root . --strict-allowlist
}

run_tests() {
    echo "== tests (unit + integration + golden corpus + metrics references)"
    cargo test -q --workspace
}

run_loom() {
    echo "== loom model checks (exec pool + trace ring + cancellation + serve admission/drain)"
    cargo test -q -p pressio-core --features loom --test loom_exec --test loom_trace --test loom_cancel --test loom_serve
}

run_chaos() {
    echo "== chaos fault-injection sweep (pool self-heal + handle reuse)"
    cargo test -q -p pressio-tools --features chaos --test chaos_smoke
    cargo run -q -p pressio-tools --features chaos --bin pressio -- chaos --seeds 64 --seed 1
    echo "== chaos serve sweep (faulted request bursts, clean recovery, drain hygiene)"
    cargo run -q -p pressio-tools --features chaos --bin pressio -- chaos --serve --seeds 64 --seed 1
}

if [ "$TIER" = quick ]; then
    run_lint
    run_tests
    echo "== ci.sh: quick tier passed (lint + tests; run ./ci.sh for the full gate)"
    exit 0
fi

if [ "$TIER" = concurrency ]; then
    run_loom
    echo "== ci.sh: concurrency tier passed"
    exit 0
fi

if [ "$TIER" = chaos ]; then
    run_chaos
    echo "== ci.sh: chaos tier passed"
    exit 0
fi

run_serve() {
    echo "== serve smoke (profile round trips, overload shedding, malformed frames, drain)"
    cargo test -q -p pressio-tools --test serve_smoke
    echo "== serve daemon graceful drain on SIGTERM (exit code must be 0)"
    cargo build -q --release -p pressio-tools
    ./target/release/pressio serve --tcp 127.0.0.1:0 &
    SERVE_PID=$!
    sleep 1
    kill -TERM "$SERVE_PID"
    wait "$SERVE_PID"
    echo "== serve load harness (ramp past 2x capacity, emits to target/)"
    ./target/release/pressio bench --serve --quick --out target/BENCH_serve_ci.json
    ./target/release/pressio bench --serve --check --out target/BENCH_serve_ci.json
    echo "== committed BENCH_serve.json: schema + overload invariants"
    ./target/release/pressio bench --serve --check --out BENCH_serve.json
}

if [ "$TIER" = serve ]; then
    run_serve
    echo "== ci.sh: serve tier passed"
    exit 0
fi

run_lint

echo "== clippy (deny warnings)"
cargo clippy --workspace --all-targets -q -- -D warnings

run_tests
run_loom

echo "== decoder corruption fuzz"
cargo run -q -p pressio-tools --bin pressio -- fuzz-decode --iterations 64 --seed 1

run_chaos
run_serve

echo "== trace smoke (span tree well-nested)"
cargo run -q --release -p pressio-tools --bin pressio -- trace sz --check

echo "== committed BENCH_overhead.json: schema + self-consistency"
cargo run -q --release -p pressio-tools --bin pressio -- bench --check --out BENCH_overhead.json

echo "== bench harness end-to-end (quick, emits to target/)"
cargo run -q --release -p pressio-tools --bin pressio -- bench --quick --out target/BENCH_overhead_ci.json
cargo run -q --release -p pressio-tools --bin pressio -- bench --check --out target/BENCH_overhead_ci.json

echo "== bench speedup gate (committed baseline vs fresh measurement)"
cargo run -q --release -p pressio-tools --bin pressio -- bench --gate --out BENCH_overhead.json

echo "== ci.sh: all gates passed"
