//! Table II workload — "HDF5 filter", native implementation.
//!
//! One hand-written h5lite filter adapter *per compressor* (SZ and ZFP
//! here), the way real HDF5 filters are shipped one-per-compressor. Each
//! adapter invents its own sidecar metadata convention (bound, mode, dims
//! framing) because the container only stores opaque bytes for unregistered
//! filters. Compare with `generic_h5filter.rs`, where the registered
//! compressor IS the filter and metadata is uniform.
//!
//! Run: `cargo run --release --example native_h5filter`

use pressio_io::H5File;
use pressio_sz::{compress_body as sz_compress, decompress_body as sz_decompress, SzParams};
use pressio_zfp::{compress_f64 as zfp_compress, decompress_f64 as zfp_decompress, ZfpMode};

// --- SZ filter adapter -------------------------------------------------------

/// Store `name` compressed with the SZ kernel; dims/bound ride in a sidecar
/// dataset using this adapter's private convention.
fn sz_filter_write(
    file: &mut H5File,
    name: &str,
    data: &[f64],
    dims: &[usize],
    abs_eb: f64,
) -> pressio_core::Result<()> {
    let p = SzParams {
        abs_eb,
        ..Default::default()
    };
    let body = sz_compress(data, dims, &p)?;
    file.put(
        format!("{name}.szdata"),
        &pressio_core::Data::from_bytes(&body),
    )?;
    let mut meta: Vec<u64> = vec![dims.len() as u64];
    meta.extend(dims.iter().map(|&d| d as u64));
    let n = meta.len();
    file.put(
        format!("{name}.szmeta"),
        &pressio_core::Data::from_vec(meta, vec![n])?,
    )?;
    Ok(())
}

fn sz_filter_read(file: &H5File, name: &str) -> pressio_core::Result<Vec<f64>> {
    let meta = file.get(&format!("{name}.szmeta"))?;
    let meta = meta.as_slice::<u64>()?;
    let nd = meta[0] as usize;
    let dims: Vec<usize> = meta[1..1 + nd].iter().map(|&d| d as usize).collect();
    let body = file.get(&format!("{name}.szdata"))?;
    sz_decompress(body.as_bytes(), &dims)
}

// --- ZFP filter adapter ------------------------------------------------------

/// The ZFP adapter: a different sidecar layout (mode tag + param + Fortran
/// dims), incompatible with the SZ adapter's.
fn zfp_filter_write(
    file: &mut H5File,
    name: &str,
    data: &[f64],
    dims_c: &[usize],
    tolerance: f64,
) -> pressio_core::Result<()> {
    let fdims: Vec<usize> = dims_c.iter().rev().copied().collect();
    let mode = ZfpMode::FixedAccuracy(tolerance);
    let body = zfp_compress(data, &fdims, mode)?;
    file.put(
        format!("{name}.zfpdata"),
        &pressio_core::Data::from_bytes(&body),
    )?;
    let mut meta: Vec<f64> = vec![mode.tag() as f64, mode.param(), fdims.len() as f64];
    meta.extend(fdims.iter().map(|&d| d as f64));
    let n = meta.len();
    file.put(
        format!("{name}.zfpmeta"),
        &pressio_core::Data::from_vec(meta, vec![n])?,
    )?;
    Ok(())
}

fn zfp_filter_read(file: &H5File, name: &str) -> pressio_core::Result<Vec<f64>> {
    let meta = file.get(&format!("{name}.zfpmeta"))?;
    let meta = meta.as_slice::<f64>()?;
    let mode = ZfpMode::from_tag(meta[0] as u8, meta[1])?;
    let nd = meta[2] as usize;
    let fdims: Vec<usize> = meta[3..3 + nd].iter().map(|&d| d as usize).collect();
    let body = file.get(&format!("{name}.zfpdata"))?;
    zfp_decompress(body.as_bytes(), &fdims, mode)
}

fn main() -> pressio_core::Result<()> {
    let field = pressio_datagen::scale_letkf(8, 48, 48, 17);
    let data = field.to_f64_vec()?;
    let dims = field.dims().to_vec();

    let mut file = H5File::new();
    sz_filter_write(&mut file, "t2m/sz", &data, &dims, 1e-3)?;
    zfp_filter_write(&mut file, "t2m/zfp", &data, &dims, 1e-3)?;

    let via_sz = sz_filter_read(&file, "t2m/sz")?;
    let via_zfp = zfp_filter_read(&file, "t2m/zfp")?;
    for (a, b) in data.iter().zip(&via_sz) {
        assert!((a - b).abs() <= 1e-3);
    }
    for (a, b) in data.iter().zip(&via_zfp) {
        assert!((a - b).abs() <= 1e-3);
    }
    println!(
        "native filters ok: container holds {} datasets ({} bytes) for 2 compressed fields",
        file.names().len(),
        file.to_bytes().len()
    );
    Ok(())
}
