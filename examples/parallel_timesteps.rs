//! Parallel-IO scenario: compress a sequence of simulation time steps with
//! the `many_independent` meta-compressor, then persist them as a bplite
//! stream (the ADIOS2-integration analog).
//!
//! Demonstrates the thread-safety introspection the paper argues for: the
//! meta-compressor parallelizes `sz_threadsafe` (thread safety `multiple`)
//! but silently serializes classic `sz` (thread safety `serialized`, because
//! of its global configuration store).
//!
//! Run with: `cargo run --release --example parallel_timesteps`

use std::time::Instant;

use libpressio::prelude::*;

fn timesteps(n: usize) -> Vec<Data> {
    (0..n)
        .map(|t| libpressio::datagen::scale_letkf(16, 192, 192, 42 + t as u64))
        .collect()
}

fn run(child: &str, threads: u32, steps: &[Data]) -> libpressio::Result<(f64, Vec<Data>)> {
    let library = libpressio::instance();
    let mut m = library.get_compressor("many_independent")?;
    m.set_options(
        &Options::new()
            .with("many_independent:compressor", child)
            .with("many_independent:nthreads", threads)
            .with(pressio_core::OPT_REL, 1e-3f64),
    )?;
    let refs: Vec<&Data> = steps.iter().collect();
    let start = Instant::now();
    let compressed = m.compress_many(&refs)?;
    Ok((start.elapsed().as_secs_f64(), compressed))
}

fn main() -> libpressio::Result<()> {
    let library = libpressio::instance();
    let steps = timesteps(16);
    let total_mb = steps.iter().map(|s| s.size_in_bytes()).sum::<usize>() as f64 / 1e6;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "16 time steps of a weather-like field, {total_mb:.1} MB total ({cores} core(s) available{})\n",
        if cores == 1 {
            "; speedup is bounded by 1x on this machine"
        } else {
            ""
        }
    );

    for child in ["sz", "sz_threadsafe"] {
        let safety = library.get_compressor(child)?.thread_safety();
        let (t1, _) = run(child, 1, &steps)?;
        let (t8, compressed) = run(child, 8, &steps)?;
        let out_mb = compressed.iter().map(|c| c.size_in_bytes()).sum::<usize>() as f64 / 1e6;
        println!(
            "{child:<14} thread_safety={:<10} 1 thread: {t1:.2}s   8 threads: {t8:.2}s   speedup {:.2}x   ratio {:.1}",
            safety.name(),
            t1 / t8,
            total_mb / out_mb,
        );
    }

    // Persist the steps as one bplite stream with a compression operator.
    let mut writer = libpressio::io::BpWriter::new();
    writer.set_operator("sz_threadsafe", Options::new().with(pressio_core::OPT_REL, 1e-3f64))?;
    for s in &steps {
        writer.begin_step();
        writer.put("temperature", s)?;
        writer.end_step();
    }
    let stream = writer.into_bytes();
    println!(
        "\nbplite stream with sz operator: {:.1} MB -> {:.2} MB",
        total_mb,
        stream.len() as f64 / 1e6
    );
    let reader = libpressio::io::BpReader::from_bytes(&stream)?;
    assert_eq!(reader.num_steps(), 16);
    let back = reader.get(3, "temperature")?;
    assert_eq!(back.dims(), steps[3].dims());
    println!("stream reads back: {} steps, step 3 dims {:?}", reader.num_steps(), back.dims());
    Ok(())
}
