//! Table II workload — "Z-Checker-style analysis", LibPressio implementation.
//!
//! The same seven-compressor assessment as `native_analysis.rs`, via the
//! generic interface: one loop over plugin names, one shared metric battery,
//! bound semantics handled by each plugin. Adding an eighth compressor is
//! one string.
//!
//! Run: `cargo run --release --example generic_analysis`

use libpressio::zchecker::Assessment;
use libpressio::Options;

fn main() -> libpressio::Result<()> {
    libpressio::init();
    // f64, matching the native version's working precision.
    let field = libpressio::datagen::nyx_density(48, 3).cast(libpressio::DType::F64)?;
    println!("generic analysis of 7 compressors (rel bound 1e-3 where applicable)\n");
    println!(
        "{:<14} {:>8} {:>12} {:>10} {:>9}",
        "compressor", "ratio", "max_err", "psnr_db", "comp_ms"
    );
    for name in ["sz", "zfp", "mgard", "fpzip", "deflate", "lz", "bit_grooming"] {
        let opts = Options::new().with(pressio_core::OPT_REL, 1e-3f64);
        let a = Assessment::run(name, &opts, &field)?;
        println!(
            "{:<14} {:>8.2} {:>12.3e} {:>10.2} {:>9.2}",
            name,
            a.value("size:compression_ratio").unwrap_or(f64::NAN),
            a.value("error_stat:max_error").unwrap_or(f64::NAN),
            a.value("error_stat:psnr").unwrap_or(f64::INFINITY),
            a.value("time:compress").unwrap_or(f64::NAN),
        );
    }
    Ok(())
}
