//! Table II workload — "CLI", native implementation #2 of 3.
//!
//! The same CLI as `native_cli_sz.rs`, rewritten against the ZFP kernel's
//! native interface. Note the differences a user must track by hand versus
//! the SZ version: ZFP wants **Fortran dimension order** (fastest first),
//! has three modes (rate/precision/accuracy) instead of bound modes, stores
//! no relative-bound concept, and only takes `f64` — every divergence the
//! uniform interface hides.
//!
//! Run: `cargo run --example native_cli_zfp -- compress <in> <out> <dims-fortran> <rate|precision|accuracy> <param>`
//! (or with no args: self-test on synthetic data)

use std::process::ExitCode;

use pressio_zfp::{compress_f64, decompress_f64, ZfpMode};

fn parse_dims(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|p| p.trim().parse::<usize>().map_err(|e| e.to_string()))
        .collect()
}

fn bytes_to_f64(bytes: &[u8]) -> Result<Vec<f64>, String> {
    if !bytes.len().is_multiple_of(8) {
        return Err("file size is not a multiple of 8".to_string());
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect())
}

fn f64_to_bytes(v: &[f64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn parse_mode(mode: &str, param: f64) -> Result<ZfpMode, String> {
    Ok(match mode {
        "rate" => ZfpMode::FixedRate(param),
        "precision" => ZfpMode::FixedPrecision(param as u32),
        "accuracy" => ZfpMode::FixedAccuracy(param),
        m => return Err(format!("unknown zfp mode {m}")),
    })
}

/// This CLI's own framing, incompatible with the SZ CLI's: mode tag + param
/// + Fortran dims + payload.
fn frame(mode: ZfpMode, fdims: &[usize], body: &[u8]) -> Vec<u8> {
    let mut out = vec![b'Z', b'F', b'C', b'L', mode.tag(), fdims.len() as u8];
    out.extend_from_slice(&mode.param().to_le_bytes());
    for &d in fdims {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    out.extend_from_slice(body);
    out
}

fn deframe(bytes: &[u8]) -> Result<(ZfpMode, Vec<usize>, &[u8]), String> {
    if bytes.len() < 14 || &bytes[..4] != b"ZFCL" {
        return Err("not a zfp-cli stream".to_string());
    }
    let tag = bytes[4];
    let nd = bytes[5] as usize;
    let param = f64::from_le_bytes(bytes[6..14].try_into().map_err(|_| "bad header")?);
    let mode = ZfpMode::from_tag(tag, param).map_err(|e| e.to_string())?;
    let mut fdims = Vec::with_capacity(nd);
    let mut at = 14;
    for _ in 0..nd {
        let chunk: [u8; 8] = bytes
            .get(at..at + 8)
            .ok_or("truncated header")?
            .try_into()
            .map_err(|_| "truncated header")?;
        fdims.push(u64::from_le_bytes(chunk) as usize);
        at += 8;
    }
    Ok((mode, fdims, &bytes[at..]))
}

fn do_compress(args: &[String]) -> Result<(), String> {
    let [input, output, dims, mode, param] = args else {
        return Err(
            "usage: compress <in> <out> <dims-fortran-order> <rate|precision|accuracy> <param>"
                .to_string(),
        );
    };
    // CAUTION (native-interface footgun): dims must be given fastest-first;
    // passing C-ordered dims silently degrades compression.
    let fdims = parse_dims(dims)?;
    let param: f64 = param.parse().map_err(|e: std::num::ParseFloatError| e.to_string())?;
    let mode = parse_mode(mode, param)?;
    let bytes = std::fs::read(input).map_err(|e| e.to_string())?;
    let vals = bytes_to_f64(&bytes)?;
    let body = compress_f64(&vals, &fdims, mode).map_err(|e| e.to_string())?;
    let framed = frame(mode, &fdims, &body);
    std::fs::write(output, &framed).map_err(|e| e.to_string())?;
    println!(
        "compression ratio: {:.2}",
        bytes.len() as f64 / framed.len() as f64
    );
    Ok(())
}

fn do_decompress(args: &[String]) -> Result<(), String> {
    let [input, output] = args else {
        return Err("usage: decompress <in> <out>".to_string());
    };
    let bytes = std::fs::read(input).map_err(|e| e.to_string())?;
    let (mode, fdims, body) = deframe(&bytes)?;
    let vals = decompress_f64(body, &fdims, mode).map_err(|e| e.to_string())?;
    std::fs::write(output, f64_to_bytes(&vals)).map_err(|e| e.to_string())?;
    Ok(())
}

fn self_test() -> Result<(), String> {
    let dir = std::env::temp_dir().join("native-cli-zfp");
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let raw = dir.join("in.bin");
    let comp = dir.join("out.zfc");
    let dec = dir.join("dec.bin");
    let vals: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.01).sin()).collect();
    std::fs::write(&raw, f64_to_bytes(&vals)).map_err(|e| e.to_string())?;
    let s = |p: &std::path::Path| p.to_string_lossy().into_owned();
    do_compress(&[s(&raw), s(&comp), "64,64".into(), "accuracy".into(), "0.001".into()])?;
    do_decompress(&[s(&comp), s(&dec)])?;
    let back = bytes_to_f64(&std::fs::read(&dec).map_err(|e| e.to_string())?)?;
    for (a, b) in vals.iter().zip(&back) {
        if (a - b).abs() > 1e-3 {
            return Err(format!("tolerance violated: {a} vs {b}"));
        }
    }
    println!("self-test ok");
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.first().map(|s| s.as_str()) {
        Some("compress") => do_compress(&argv[1..]),
        Some("decompress") => do_decompress(&argv[1..]),
        None => self_test(),
        Some(c) => Err(format!("unknown command {c}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("native_cli_zfp: {e}");
            ExitCode::FAILURE
        }
    }
}
