//! Quickstart: the Rust rendering of the paper's Appendix A usage example.
//!
//! Takes a 300×300×300 double-precision buffer in memory and compresses it
//! with the SZ-style compressor using an absolute error bound of 0.5. To
//! adapt for ZFP or any other supported compressor, only the plugin name
//! and option keys change (three lines, as the paper notes).
//!
//! Run with: `cargo run --release --example quickstart`

use libpressio::prelude::*;

fn make_input_data() -> Vec<f64> {
    // A smooth synthetic 300^3 field.
    let n = 300usize;
    let mut v = Vec::with_capacity(n * n * n);
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                v.push(
                    (x as f64 * 0.02).sin() * (y as f64 * 0.03).cos() * 100.0
                        + (z as f64 * 0.01).sin() * 50.0,
                );
            }
        }
    }
    v
}

fn main() -> libpressio::Result<()> {
    // Get a handle to the library and a compressor.
    let library = libpressio::instance();
    let mut compressor = library.get_compressor("sz")?;

    // Configure metrics.
    compressor.set_metrics(library.new_metrics(&["size"])?);

    // Configure the compressor: introspect, set, and validate options.
    let options = Options::new()
        .with("sz:error_bound_mode_str", "abs")
        .with("sz:abs_err_bound", 0.5f64);
    compressor.check_options(&options)?;
    compressor.set_options(&options)?;

    // Load a 300x300x300 dataset.
    let raw_input = make_input_data();
    let dims = vec![300usize, 300, 300];
    let input_data = Data::from_vec(raw_input, dims.clone())?;

    // Set up the decompressed buffer, then compress and decompress.
    let compressed = compressor.compress(&input_data)?;
    let mut decompressed = Data::owned(DType::F64, dims);
    compressor.decompress(&compressed, &mut decompressed)?;

    // Get the compression ratio from the metrics results.
    let results = compressor.metrics_results();
    let ratio = results
        .get_as::<f64>("size:compression_ratio")?
        .expect("size metric ran");
    println!("compression ratio: {ratio:.2}");

    // Verify the error bound held.
    let max_err = input_data
        .to_f64_vec()?
        .iter()
        .zip(decompressed.to_f64_vec()?.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max)
        ;
    println!("max abs error: {max_err:.3e} (bound 0.5)");
    assert!(max_err <= 0.5);
    Ok(())
}
