//! LibPressio-Fuzz analog: hammer every registered compressor with random
//! inputs and bit-flipped streams, asserting that nothing panics — corrupt
//! streams must surface as clean errors.
//!
//! Because the harness only speaks the generic interface, it fuzzes *every*
//! compressor (including any third-party plugin registered at runtime) with
//! zero per-compressor code; the paper's fuzzer row in Table II is 24 lines
//! for exactly this reason.
//!
//! Run with: `cargo run --release --example fuzz_roundtrip`

use libpressio::prelude::*;

fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state
}

fn main() -> libpressio::Result<()> {
    let library = libpressio::instance();
    let mut rng: u64 = 0xF0CC_5EED;
    let mut roundtrips = 0u32;
    let mut clean_errors = 0u32;

    for name in library.supported_compressors() {
        // Meta-compressors need children configured; fuzz the leaf plugins.
        let mut c = library.get_compressor(&name)?;
        if matches!(
            name.as_str(),
            "transpose" | "resize" | "sample" | "switch" | "pipeline" | "chunking"
                | "many_independent" | "many_dependent" | "fault_injector" | "noise" | "opt"
        ) {
            continue;
        }
        for trial in 0..8 {
            // Random float data with random smoothness and magnitude.
            let n = 256 + (lcg(&mut rng) % 2048) as usize;
            let scale = 10f64.powi((lcg(&mut rng) % 12) as i32 - 6);
            let vals: Vec<f64> = (0..n)
                .map(|i| {
                    let smooth = (i as f64 * 0.05).sin() * scale;
                    let noise = (lcg(&mut rng) as f64 / u64::MAX as f64 - 0.5) * scale * 0.1;
                    smooth + noise
                })
                .collect();
            let input = Data::from_vec(vals, vec![n])?;
            c.set_options(&Options::new().with(pressio_core::OPT_REL, 1e-4f64))
                .ok();
            let Ok(compressed) = c.compress(&input) else {
                clean_errors += 1;
                continue;
            };
            // Clean roundtrip must succeed.
            let mut out = Data::owned(DType::F64, vec![n]);
            c.decompress(&compressed, &mut out)
                .unwrap_or_else(|e| panic!("{name} failed clean roundtrip: {e}"));
            roundtrips += 1;

            // Bit-flipped streams must error or produce garbage — never panic.
            let mut bad = compressed.as_bytes().to_vec();
            for _ in 0..4 {
                let at = (lcg(&mut rng) as usize) % bad.len();
                bad[at] ^= 1 << (lcg(&mut rng) % 8);
            }
            match c.decompress(&Data::from_bytes(&bad), &mut out) {
                Ok(()) => {}
                Err(_) => clean_errors += 1,
            }
            // Truncations too.
            let cut = (lcg(&mut rng) as usize) % compressed.size_in_bytes();
            let _ = c.decompress(&Data::from_bytes(&compressed.as_bytes()[..cut]), &mut out);
            let _ = trial;
        }
    }
    println!("fuzzed every leaf compressor: {roundtrips} clean roundtrips, {clean_errors} corrupt streams rejected cleanly, 0 panics");
    Ok(())
}
