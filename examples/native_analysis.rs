//! Table II workload — "Z-Checker-style analysis", native implementation.
//!
//! Assess seven compressors on one field, writing one hand-rolled adapter
//! per compressor against its native interface: the SZ kernel (params
//! struct, C dims), the ZFP kernel (mode enum, Fortran dims), the MGARD
//! kernel (plain tolerance), fpzip (typed functions per precision), deflate
//! and LZ (byte functions), and bit grooming (in-place mantissa filter +
//! separate byte backend). Each adapter resolves bounds, frames buffers,
//! and computes statistics its own way — the redundancy Table II counts.
//! Compare with `generic_analysis.rs`.
//!
//! Run: `cargo run --release --example native_analysis`

use std::time::Instant;

use pressio_codecs::{deflate, float as fpzip, grooming, lz77, shuffle};
use pressio_sz::{compress_body as sz_compress, decompress_body as sz_decompress, SzParams};
use pressio_zfp::{compress_f64 as zfp_compress, decompress_f64 as zfp_decompress, ZfpMode};

const REL_BOUND: f64 = 1e-3;

struct Row {
    name: &'static str,
    ratio: f64,
    max_err: f64,
    psnr: f64,
    comp_ms: f64,
}

fn stats(name: &'static str, orig: &[f64], dec: &[f64], comp_len: usize, comp_ms: f64) -> Row {
    let n = orig.len() as f64;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sq = 0.0;
    let mut max_err = 0.0f64;
    for (&a, &b) in orig.iter().zip(dec) {
        min = min.min(a);
        max = max.max(a);
        let e = (a - b).abs();
        sq += e * e;
        max_err = max_err.max(e);
    }
    let range = max - min;
    let mse = sq / n;
    let psnr = if mse > 0.0 && range > 0.0 {
        20.0 * range.log10() - 10.0 * mse.log10()
    } else {
        f64::INFINITY
    };
    Row {
        name,
        ratio: (orig.len() * 8) as f64 / comp_len as f64,
        max_err,
        psnr,
        comp_ms,
    }
}

fn value_range(v: &[f64]) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &x in v {
        min = min.min(x);
        max = max.max(x);
    }
    max - min
}

fn f64s_to_bytes(v: &[f64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn bytes_to_f64s(b: &[u8]) -> Vec<f64> {
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

// --- adapter 1: SZ (native: params struct, C-ordered dims, rel resolved by
// --- the caller) ------------------------------------------------------------
fn assess_sz(data: &[f64], dims: &[usize]) -> Row {
    let abs = REL_BOUND * value_range(data);
    let p = SzParams {
        abs_eb: abs,
        ..Default::default()
    };
    let t = Instant::now();
    let body = sz_compress(data, dims, &p).expect("sz kernel");
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let dec: Vec<f64> = sz_decompress(&body, dims).expect("sz kernel");
    stats("sz", data, &dec, body.len(), ms)
}

// --- adapter 2: ZFP (native: Fortran dims, accuracy mode, abs only) ---------
fn assess_zfp(data: &[f64], dims: &[usize]) -> Row {
    let fdims: Vec<usize> = dims.iter().rev().copied().collect();
    let abs = REL_BOUND * value_range(data); // zfp has no rel mode
    let mode = ZfpMode::FixedAccuracy(abs);
    let t = Instant::now();
    let body = zfp_compress(data, &fdims, mode).expect("zfp kernel");
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let dec = zfp_decompress(&body, &fdims, mode).expect("zfp kernel");
    stats("zfp", data, &dec, body.len(), ms)
}

// --- adapter 3: MGARD (native: plain tolerance, >=3 points/dim) -------------
fn assess_mgard(data: &[f64], dims: &[usize]) -> Row {
    let abs = REL_BOUND * value_range(data);
    let t = Instant::now();
    let body = pressio_mgard::compress_body(data, dims, abs).expect("mgard kernel");
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let dec = pressio_mgard::decompress_body(&body, dims).expect("mgard kernel");
    stats("mgard", data, &dec, body.len(), ms)
}

// --- adapter 4: fpzip (native: one function per precision, lossless) --------
fn assess_fpzip(data: &[f64], _dims: &[usize]) -> Row {
    let t = Instant::now();
    let body = fpzip::compress_f64(data).expect("fpzip");
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let dec = fpzip::decompress_f64(&body).expect("fpzip");
    stats("fpzip", data, &dec, body.len(), ms)
}

// --- adapter 5: deflate (native: plain byte function, caller serializes) ----
fn assess_deflate(data: &[f64], _dims: &[usize]) -> Row {
    let bytes = f64s_to_bytes(data);
    let t = Instant::now();
    let body = deflate::compress(&bytes).expect("deflate");
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let dec = bytes_to_f64s(&deflate::decompress(&body).expect("deflate"));
    stats("deflate", data, &dec, body.len(), ms)
}

// --- adapter 6: lz (native: another byte function, another framing) ---------
fn assess_lz(data: &[f64], _dims: &[usize]) -> Row {
    let bytes = f64s_to_bytes(data);
    let t = Instant::now();
    let body = lz77::compress(&bytes);
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let dec = bytes_to_f64s(&lz77::decompress(&body).expect("lz"));
    stats("lz", data, &dec, body.len(), ms)
}

// --- adapter 7: bit grooming (native: in-place filter + caller-chosen
// --- backend + caller must remember nsd to interpret results) ---------------
fn assess_grooming(data: &[f64], _dims: &[usize]) -> Row {
    let mut groomed = data.to_vec();
    let t = Instant::now();
    grooming::groom_f64(&mut groomed, 4, grooming::GroomMode::Groom);
    let staged = shuffle::shuffle(&f64s_to_bytes(&groomed), 8);
    let body = deflate::compress(&staged).expect("deflate");
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let unshuffled = shuffle::unshuffle(&deflate::decompress(&body).expect("backend"), 8);
    let dec = bytes_to_f64s(&unshuffled);
    stats("bit_grooming", data, &dec, body.len(), ms)
}

fn main() {
    let field = pressio_datagen::nyx_density(48, 3);
    let data = field.to_f64_vec().expect("float field");
    let dims = field.dims().to_vec();
    println!("native analysis of 7 compressors (rel bound {REL_BOUND:.0e} where applicable)\n");
    println!(
        "{:<14} {:>8} {:>12} {:>10} {:>9}",
        "compressor", "ratio", "max_err", "psnr_db", "comp_ms"
    );
    type Adapter = fn(&[f64], &[usize]) -> Row;
    let adapters: Vec<Adapter> = vec![
        assess_sz,
        assess_zfp,
        assess_mgard,
        assess_fpzip,
        assess_deflate,
        assess_lz,
        assess_grooming,
    ];
    for f in adapters {
        let r = f(&data, &dims);
        println!(
            "{:<14} {:>8.2} {:>12.3e} {:>10.2} {:>9.2}",
            r.name, r.ratio, r.max_err, r.psnr, r.comp_ms
        );
    }
}
