//! Cosmology-particle scenario: HACC-like position streams have no spatial
//! smoothness and a wide dynamic range, so the right tool differs from the
//! mesh-field case — exactly the "which compressor should I use?" question
//! the paper motivates. This example compares, through one interface:
//!
//! * `sz` with a value-range relative bound (mesh-style configuration),
//! * `sz` with a *point-wise* relative bound (each particle keeps relative
//!   precision, the physics-preserving choice),
//! * `cast`→`fpzip` (store as f32, then lossless float coding),
//! * `fpzip` alone (bit-exact baseline).
//!
//! Run with: `cargo run --release --example particle_pipeline`

use libpressio::prelude::*;

fn main() -> libpressio::Result<()> {
    let library = libpressio::instance();
    // 1M particle x-coordinates in a 256 Mpc/h box, as f64 for headroom.
    let particles = libpressio::datagen::hacc_positions(1 << 20, 256.0, 2026)
        .cast(DType::F64)?;
    println!(
        "particles: {} positions, {:.1} MB raw\n",
        particles.num_elements(),
        particles.size_in_bytes() as f64 / 1e6
    );
    println!(
        "{:<26} {:>8} {:>14} {:>16}",
        "configuration", "ratio", "max abs err", "max rel err"
    );

    struct Cfg {
        label: &'static str,
        compressor: &'static str,
        options: Options,
    }
    let configs = [
        Cfg {
            label: "sz (vr-rel 1e-6)",
            compressor: "sz",
            options: Options::new().with(pressio_core::OPT_REL, 1e-6f64),
        },
        Cfg {
            label: "sz (pw-rel 1e-6)",
            compressor: "sz",
            options: Options::new()
                .with("sz:error_bound_mode_str", "pw_rel")
                .with("sz:pw_rel_bound_ratio", 1e-6f64),
        },
        Cfg {
            label: "cast f32 -> fpzip",
            compressor: "cast",
            options: Options::new()
                .with("cast:dtype", "float")
                .with("cast:compressor", "fpzip"),
        },
        Cfg {
            label: "fpzip (lossless)",
            compressor: "fpzip",
            options: Options::new(),
        },
    ];

    for cfg in configs {
        let mut c = library.get_compressor(cfg.compressor)?;
        c.set_options(&cfg.options)?;
        let compressed = c.compress(&particles)?;
        let mut out = Data::owned(DType::F64, vec![particles.num_elements()]);
        c.decompress(&compressed, &mut out)?;
        let orig = particles.as_slice::<f64>()?;
        let dec = out.as_slice::<f64>()?;
        let mut max_abs = 0.0f64;
        let mut max_rel = 0.0f64;
        for (a, b) in orig.iter().zip(dec) {
            let e = (a - b).abs();
            max_abs = max_abs.max(e);
            if a.abs() > 1e-100 {
                max_rel = max_rel.max(e / a.abs());
            }
        }
        println!(
            "{:<26} {:>8.2} {:>14.3e} {:>16.3e}",
            cfg.label,
            particles.size_in_bytes() as f64 / compressed.size_in_bytes() as f64,
            max_abs,
            max_rel
        );
    }
    println!(
        "\nnote: vr-rel lets absolute error scale with the box size (bad for\n\
         particles near the origin); pw-rel keeps every particle's relative\n\
         precision — the interface makes the comparison a 3-line change."
    );
    Ok(())
}
