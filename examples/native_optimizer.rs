//! Table II workload — "configuration optimizer", native implementation.
//!
//! A fixed-ratio optimizer (the FRaZ workflow) written directly against the
//! SZ kernel: the search loop, the bound↔ratio bookkeeping, and the trial
//! compression plumbing are all SZ-specific, so supporting ZFP or MGARD
//! means duplicating the whole file with their calling conventions.
//! Compare with `generic_optimizer.rs`.
//!
//! Run: `cargo run --release --example native_optimizer`

use pressio_sz::{compress_body, SzParams};

struct SearchResult {
    bound: f64,
    ratio: f64,
    evaluations: u32,
}

fn trial_ratio(data: &[f64], dims: &[usize], abs_eb: f64) -> f64 {
    let p = SzParams {
        abs_eb,
        ..Default::default()
    };
    let body = compress_body(data, dims, &p).expect("sz kernel");
    (data.len() * 8) as f64 / body.len() as f64
}

/// Log-space bisection for the smallest bound achieving `target` ratio.
fn search(
    data: &[f64],
    dims: &[usize],
    target: f64,
    lo: f64,
    hi: f64,
    max_iters: u32,
) -> Result<SearchResult, String> {
    let mut evals = 0u32;
    let r_hi = trial_ratio(data, dims, hi);
    evals += 1;
    if r_hi < target {
        return Err(format!(
            "target {target} unreachable: bound {hi} achieves only {r_hi:.2}"
        ));
    }
    let mut best = (hi, r_hi);
    let mut llo = lo.log10();
    let mut lhi = hi.log10();
    while evals < max_iters && lhi - llo > 1e-4 {
        let mid = 10f64.powf((llo + lhi) / 2.0);
        let r = trial_ratio(data, dims, mid);
        evals += 1;
        if r >= target {
            best = (mid, r);
            lhi = mid.log10();
            if (r - target) / target <= 0.05 {
                break;
            }
        } else {
            llo = mid.log10();
        }
    }
    Ok(SearchResult {
        bound: best.0,
        ratio: best.1,
        evaluations: evals,
    })
}

fn main() {
    let field = pressio_datagen::nyx_density(48, 21);
    let data = field.to_f64_vec().expect("float field");
    let dims = field.dims().to_vec();
    for target in [10.0, 40.0, 100.0] {
        match search(&data, &dims, target, 1e-10, 10.0, 32) {
            Ok(r) => println!(
                "target {target:>5.0}: bound {:.3e} -> ratio {:.1} ({} trials)",
                r.bound, r.ratio, r.evaluations
            ),
            Err(e) => println!("target {target:>5.0}: {e}"),
        }
    }
}
