//! Climate-workflow scenario: assess which compressor to use for a
//! hurricane-simulation field — the Z-Checker-style workflow the paper's
//! introduction motivates ("determining which one to use can be time
//! consuming requiring code modifications and trial and error"; here it is
//! one loop over plugin names).
//!
//! Run with: `cargo run --release --example climate_analysis`

use libpressio::prelude::*;
use libpressio::zchecker::Sweep;

fn main() -> libpressio::Result<()> {
    libpressio::init();

    // A hurricane-like CLOUD field (SDRBench stand-in), 10x100x100 f32.
    let field = libpressio::datagen::hurricane_cloud(10, 100, 100, 2026);
    println!(
        "dataset: hurricane-like CLOUD field, {} {:?}, {:.1} KiB\n",
        field.dtype(),
        field.dims(),
        field.size_in_bytes() as f64 / 1024.0
    );

    // One generic sweep covers every error-bounded compressor: no
    // per-compressor code.
    let mut sweep = Sweep::new(
        &["sz", "sz_interp", "zfp", "mgard", "linear_quantizer"],
        &[1e-2, 1e-3, 1e-4],
    );
    sweep.run(&field)?;
    println!("{}", sweep.to_table());

    let range = pressio_core::value_range(field.as_slice::<f32>()?) as f64;
    println!("recommended operating points (bound respected, best ratio):");
    for r in sweep.recommend(range) {
        println!(
            "  {:<18} rel {:>8.0e}  ratio {:>8.2}  psnr {:>7.2} dB",
            r.compressor, r.rel_bound, r.ratio, r.psnr
        );
    }

    // Deep-dive on the winner with the full metric battery.
    let best = sweep
        .rows
        .iter()
        .filter(|r| r.rel_bound == 1e-3)
        .max_by(|a, b| a.ratio.partial_cmp(&b.ratio).expect("finite"))
        .expect("sweep ran");
    println!("\nfull battery for {} at rel 1e-3:", best.compressor);
    let a = libpressio::zchecker::Assessment::run_with_metrics(
        &best.compressor,
        &Options::new().with(pressio_core::OPT_REL, 1e-3f64),
        &field,
        &[
            "size",
            "error_stat",
            "pearson",
            "autocorr",
            "kl_divergence",
            "spatial_error",
        ],
    )?;
    for key in [
        "size:compression_ratio",
        "error_stat:psnr",
        "error_stat:max_error",
        "pearson:r",
        "autocorr:lag1",
        "kl_divergence:forward",
        "spatial_error:percent",
    ] {
        if let Some(v) = a.value(key) {
            println!("  {key:<28} {v:.6}");
        }
    }
    Ok(())
}
