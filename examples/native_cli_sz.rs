//! Table II workload — "CLI", native implementation #1 of 3.
//!
//! A standalone compression CLI written directly against the SZ kernel's
//! native interface, the way `sz`'s own command line tool is written. Note
//! everything this file must do by hand — and must be rewritten for every
//! other compressor (see `native_cli_zfp.rs`, `native_cli_mgard.rs`):
//! argument parsing, dtype handling, error-bound mode resolution, stream
//! framing, and statistics.
//!
//! Run: `cargo run --example native_cli_sz -- compress <in> <out> <f32|f64> <dims> <abs|rel> <bound>`
//! (or with no args: self-test on synthetic data)

use std::process::ExitCode;

use pressio_sz::{compress_body, decompress_body, SzParams};

fn parse_dims(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|p| p.trim().parse::<usize>().map_err(|e| e.to_string()))
        .collect()
}

fn value_range_f32(v: &[f32]) -> f64 {
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &x in v {
        if x.is_nan() {
            continue;
        }
        min = min.min(x);
        max = max.max(x);
    }
    (max - min) as f64
}

fn value_range_f64(v: &[f64]) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &x in v {
        if x.is_nan() {
            continue;
        }
        min = min.min(x);
        max = max.max(x);
    }
    max - min
}

fn bytes_to_f32(bytes: &[u8]) -> Result<Vec<f32>, String> {
    if !bytes.len().is_multiple_of(4) {
        return Err("file size is not a multiple of 4".to_string());
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

fn bytes_to_f64(bytes: &[u8]) -> Result<Vec<f64>, String> {
    if !bytes.len().is_multiple_of(8) {
        return Err("file size is not a multiple of 8".to_string());
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect())
}

fn f32_to_bytes(v: &[f32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn f64_to_bytes(v: &[f64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// The CLI's own framing: dtype tag, dim count, dims, then the kernel body.
fn frame(dtype: u8, dims: &[usize], body: &[u8]) -> Vec<u8> {
    let mut out = vec![b'S', b'Z', b'C', b'L', dtype, dims.len() as u8];
    for &d in dims {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    out.extend_from_slice(body);
    out
}

fn deframe(bytes: &[u8]) -> Result<(u8, Vec<usize>, &[u8]), String> {
    if bytes.len() < 6 || &bytes[..4] != b"SZCL" {
        return Err("not an sz-cli stream".to_string());
    }
    let dtype = bytes[4];
    let nd = bytes[5] as usize;
    let mut dims = Vec::with_capacity(nd);
    let mut at = 6;
    for _ in 0..nd {
        let chunk: [u8; 8] = bytes
            .get(at..at + 8)
            .ok_or("truncated header")?
            .try_into()
            .map_err(|_| "truncated header")?;
        dims.push(u64::from_le_bytes(chunk) as usize);
        at += 8;
    }
    Ok((dtype, dims, &bytes[at..]))
}

fn do_compress(args: &[String]) -> Result<(), String> {
    let [input, output, dtype, dims, mode, bound] = args else {
        return Err("usage: compress <in> <out> <f32|f64> <dims> <abs|rel> <bound>".to_string());
    };
    let dims = parse_dims(dims)?;
    let bound: f64 = bound.parse().map_err(|e: std::num::ParseFloatError| e.to_string())?;
    let bytes = std::fs::read(input).map_err(|e| e.to_string())?;
    let (body, dtag, n_in) = match dtype.as_str() {
        "f32" => {
            let vals = bytes_to_f32(&bytes)?;
            let abs = match mode.as_str() {
                "abs" => bound,
                "rel" => bound * value_range_f32(&vals),
                m => return Err(format!("unknown bound mode {m}")),
            };
            let p = SzParams {
                abs_eb: abs,
                ..Default::default()
            };
            (
                compress_body(&vals, &dims, &p).map_err(|e| e.to_string())?,
                0u8,
                bytes.len(),
            )
        }
        "f64" => {
            let vals = bytes_to_f64(&bytes)?;
            let abs = match mode.as_str() {
                "abs" => bound,
                "rel" => bound * value_range_f64(&vals),
                m => return Err(format!("unknown bound mode {m}")),
            };
            let p = SzParams {
                abs_eb: abs,
                ..Default::default()
            };
            (
                compress_body(&vals, &dims, &p).map_err(|e| e.to_string())?,
                1u8,
                bytes.len(),
            )
        }
        t => return Err(format!("unsupported dtype {t}")),
    };
    let framed = frame(dtag, &dims, &body);
    std::fs::write(output, &framed).map_err(|e| e.to_string())?;
    println!(
        "compression ratio: {:.2}",
        n_in as f64 / framed.len() as f64
    );
    Ok(())
}

fn do_decompress(args: &[String]) -> Result<(), String> {
    let [input, output] = args else {
        return Err("usage: decompress <in> <out>".to_string());
    };
    let bytes = std::fs::read(input).map_err(|e| e.to_string())?;
    let (dtag, dims, body) = deframe(&bytes)?;
    let raw = match dtag {
        0 => {
            let vals: Vec<f32> = decompress_body(body, &dims).map_err(|e| e.to_string())?;
            f32_to_bytes(&vals)
        }
        1 => {
            let vals: Vec<f64> = decompress_body(body, &dims).map_err(|e| e.to_string())?;
            f64_to_bytes(&vals)
        }
        t => return Err(format!("unknown dtype tag {t}")),
    };
    std::fs::write(output, raw).map_err(|e| e.to_string())?;
    Ok(())
}

fn self_test() -> Result<(), String> {
    let dir = std::env::temp_dir().join("native-cli-sz");
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let raw = dir.join("in.bin");
    let comp = dir.join("out.szc");
    let dec = dir.join("dec.bin");
    let vals: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.01).sin()).collect();
    std::fs::write(&raw, f64_to_bytes(&vals)).map_err(|e| e.to_string())?;
    let s = |p: &std::path::Path| p.to_string_lossy().into_owned();
    do_compress(&[s(&raw), s(&comp), "f64".into(), "64,64".into(), "rel".into(), "0.001".into()])?;
    do_decompress(&[s(&comp), s(&dec)])?;
    let back = bytes_to_f64(&std::fs::read(&dec).map_err(|e| e.to_string())?)?;
    let range = value_range_f64(&vals);
    for (a, b) in vals.iter().zip(&back) {
        if (a - b).abs() > 1e-3 * range {
            return Err(format!("bound violated: {a} vs {b}"));
        }
    }
    println!("self-test ok");
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.first().map(|s| s.as_str()) {
        Some("compress") => do_compress(&argv[1..]),
        Some("decompress") => do_decompress(&argv[1..]),
        None => self_test(),
        Some(c) => Err(format!("unknown command {c}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("native_cli_sz: {e}");
            ExitCode::FAILURE
        }
    }
}
