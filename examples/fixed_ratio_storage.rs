//! Storage-budget scenario: a cosmology code must fit checkpoints into a
//! fixed storage allocation, so it needs a *fixed compression ratio* rather
//! than a fixed error bound — the FRaZ / LibPressio-Opt workflow ([4], [25]
//! in the paper). The `opt` meta-compressor searches the error bound to hit
//! the target ratio, then the result goes into an h5lite container through
//! the generic filter.
//!
//! Run with: `cargo run --release --example fixed_ratio_storage`

use libpressio::prelude::*;

fn main() -> libpressio::Result<()> {
    let library = libpressio::instance();

    let density = libpressio::datagen::nyx_density(64, 7);
    let raw_mb = density.size_in_bytes() as f64 / 1e6;
    println!("checkpoint field: nyx-like density, {} {:?}, {raw_mb:.1} MB", density.dtype(), density.dims());

    // We have budget for 1/40th of the raw size.
    let target_ratio = 40.0;
    let mut opt = library.get_compressor("opt")?;
    opt.set_options(
        &Options::new()
            .with("opt:compressor", "sz")
            .with("opt:target_ratio", target_ratio)
            .with("opt:lower", 1e-10f64)
            .with("opt:upper", 10.0f64),
    )?;
    let compressed = opt.compress(&density)?;
    let achieved = density.size_in_bytes() as f64 / compressed.size_in_bytes() as f64;

    let results = opt.get_options();
    let chosen = results.get_as::<f64>("opt:chosen_value")?.expect("opt ran");
    let evals = results.get_as::<u32>("opt:evaluations")?.expect("opt ran");
    println!(
        "target ratio {target_ratio}: achieved {achieved:.1} with abs bound {chosen:.3e} ({evals} trial compressions)"
    );
    assert!(achieved >= target_ratio * 0.85);

    // Quality check at the chosen operating point.
    let mut output = Data::owned(density.dtype(), density.dims().to_vec());
    opt.decompress(&compressed, &mut output)?;
    let max_err = density
        .to_f64_vec()?
        .iter()
        .zip(output.to_f64_vec()?.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max abs error at that point: {max_err:.3e}");

    // Store through the h5lite container: one *generic* filter, configured
    // with the bound the optimizer chose.
    let mut file = libpressio::io::H5File::new();
    file.put_filtered(
        "native_fields/baryon_density",
        &density,
        "sz",
        &Options::new().with(pressio_core::OPT_ABS, chosen),
    )?;
    let dir = std::env::temp_dir().join("pressio-example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("checkpoint.h5l");
    file.save(&path)?;
    let on_disk = std::fs::metadata(&path)?.len() as f64 / 1e6;
    println!("h5lite container on disk: {on_disk:.2} MB (raw {raw_mb:.1} MB)");

    // Read back through the container.
    let reopened = libpressio::io::H5File::open(&path)?;
    let back = reopened.get("native_fields/baryon_density")?;
    assert_eq!(back.dims(), density.dims());
    println!("container reads back dataset {:?} OK", reopened.names());
    Ok(())
}
