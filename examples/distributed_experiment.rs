//! Table II workload — "distributed experiment harness" (LibPressio only;
//! the paper's native column is empty for this row because no
//! multi-compressor native equivalent exists).
//!
//! A worker pool sweeps a (dataset × compressor × bound) grid in parallel —
//! the MPI-distributed experiment harness of the paper, with crossbeam
//! workers standing in for ranks. Thread safety introspection decides which
//! compressors may run concurrently.
//!
//! Run: `cargo run --release --example distributed_experiment`

use std::sync::atomic::{AtomicUsize, Ordering};

use libpressio::prelude::*;
use libpressio::zchecker::Assessment;

struct Job {
    dataset: &'static str,
    compressor: &'static str,
    rel_bound: f64,
}

fn main() -> libpressio::Result<()> {
    let library = libpressio::instance();
    let mut jobs = Vec::new();
    for dataset in ["hurricane", "nyx", "scale-letkf"] {
        for compressor in ["sz_threadsafe", "zfp", "mgard"] {
            for rel_bound in [1e-2, 1e-3, 1e-4] {
                jobs.push(Job {
                    dataset,
                    compressor,
                    rel_bound,
                });
            }
        }
    }
    // Only schedule concurrently what the plugins declare safe.
    let all_safe = jobs.iter().all(|j| {
        library
            .get_compressor(j.compressor)
            .map(|c| c.thread_safety() == ThreadSafety::Multiple)
            .unwrap_or(false)
    });
    let workers = if all_safe { 8 } else { 1 };

    let next = AtomicUsize::new(0);
    let results: Vec<parking_lot_free::Cell> = (0..jobs.len()).map(|_| Default::default()).collect();
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let j = &jobs[i];
                let input = libpressio::datagen::by_name(j.dataset, 1, 99).expect("dataset");
                let opts = Options::new().with(pressio_core::OPT_REL, j.rel_bound);
                let line = match Assessment::run(j.compressor, &opts, &input) {
                    Ok(a) => format!(
                        "{:<12} {:<14} {:>8.0e} ratio {:>8.2} psnr {:>7.2}",
                        j.dataset,
                        j.compressor,
                        j.rel_bound,
                        a.value("size:compression_ratio").unwrap_or(f64::NAN),
                        a.value("error_stat:psnr").unwrap_or(f64::NAN),
                    ),
                    Err(e) => format!("{:<12} {:<14} {:>8.0e} error: {e}", j.dataset, j.compressor, j.rel_bound),
                };
                results[i].set(line);
            });
        }
    })
    .expect("worker pool");

    println!("distributed experiment: {} jobs on {workers} workers\n", jobs.len());
    for r in &results {
        println!("{}", r.get());
    }
    Ok(())
}

/// A tiny write-once cell so workers can publish rows without unsafe code.
mod parking_lot_free {
    use std::sync::Mutex;

    #[derive(Default)]
    pub struct Cell(Mutex<String>);

    impl Cell {
        pub fn set(&self, s: String) {
            *self.0.lock().expect("cell") = s;
        }
        pub fn get(&self) -> String {
            self.0.lock().expect("cell").clone()
        }
    }
}
