//! Table II workload — "CLI", the LibPressio implementation.
//!
//! One CLI covering what `native_cli_sz.rs` + `native_cli_zfp.rs` +
//! `native_cli_mgard.rs` implement three times over — and every *other*
//! registered compressor too, with uniform C dimension ordering, generic
//! bounds, and self-describing streams, for free.
//!
//! Run: `cargo run --example generic_cli -- compress <name> <in> <out> <dtype> <dims> <key=value>...`
//! (or with no args: self-test across sz, zfp, and mgard)

use std::process::ExitCode;

use libpressio::prelude::*;

fn parse_dims(s: &str) -> libpressio::Result<Vec<usize>> {
    s.split(',')
        .map(|p| {
            p.trim().parse::<usize>().map_err(|_| {
                libpressio::Error::invalid_argument(format!("bad dimension {p:?}"))
            })
        })
        .collect()
}

fn parse_opts(pairs: &[String]) -> libpressio::Result<Options> {
    let mut o = Options::new();
    for p in pairs {
        let (k, v) = p.split_once('=').ok_or_else(|| {
            libpressio::Error::invalid_argument(format!("expected key=value, got {p:?}"))
        })?;
        if let Ok(f) = v.parse::<f64>() {
            o.set(k, f);
        } else {
            o.set(k, v);
        }
    }
    Ok(o)
}

fn do_compress(args: &[String]) -> libpressio::Result<()> {
    let [name, input, output, dtype, dims, rest @ ..] = args else {
        return Err(libpressio::Error::invalid_argument(
            "usage: compress <compressor> <in> <out> <dtype> <dims> <key=value>...",
        ));
    };
    let library = libpressio::instance();
    let mut c = library.get_compressor(name)?;
    c.set_options(&parse_opts(rest)?)?;
    c.set_metrics(library.new_metrics(&["size"])?);
    let bytes = std::fs::read(input)?;
    let mut data = Data::owned(DType::from_name(dtype)?, parse_dims(dims)?);
    data.as_bytes_mut().copy_from_slice(&bytes);
    let compressed = c.compress(&data)?;
    std::fs::write(output, compressed.as_bytes())?;
    let ratio = c
        .metrics_results()
        .get_as::<f64>("size:compression_ratio")?
        .unwrap_or(f64::NAN);
    println!("compression ratio: {ratio:.2}");
    Ok(())
}

fn do_decompress(args: &[String]) -> libpressio::Result<()> {
    let [name, input, output, dtype] = args else {
        return Err(libpressio::Error::invalid_argument(
            "usage: decompress <compressor> <in> <out> <dtype>",
        ));
    };
    let library = libpressio::instance();
    let mut c = library.get_compressor(name)?;
    let bytes = std::fs::read(input)?;
    // Streams are self-describing: dims come from the stream itself.
    let mut out = Data::owned(DType::from_name(dtype)?, vec![0]);
    c.decompress(&Data::from_bytes(&bytes), &mut out)?;
    std::fs::write(output, out.as_bytes())?;
    Ok(())
}

fn self_test() -> libpressio::Result<()> {
    let dir = std::env::temp_dir().join("generic-cli");
    std::fs::create_dir_all(&dir)?;
    let raw = dir.join("in.bin");
    let vals: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.01).sin()).collect();
    let data = Data::from_vec(vals, vec![64, 64])?;
    std::fs::write(&raw, data.as_bytes())?;
    let s = |p: std::path::PathBuf| p.to_string_lossy().into_owned();
    // The same five lines drive every compressor.
    for name in ["sz", "zfp", "mgard"] {
        let comp = dir.join(format!("{name}.c"));
        let dec = dir.join(format!("{name}.d"));
        do_compress(&[
            name.into(),
            s(raw.clone()),
            s(comp.clone()),
            "f64".into(),
            "64,64".into(),
            "pressio:abs=0.001".into(),
        ])?;
        do_decompress(&[name.into(), s(comp), s(dec.clone()), "f64".into()])?;
        let back = std::fs::read(&dec)?;
        let back: Vec<f64> = back
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        for (a, b) in data.as_slice::<f64>()?.iter().zip(&back) {
            assert!((a - b).abs() <= 1e-3, "{name}: {a} vs {b}");
        }
    }
    println!("self-test ok");
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.first().map(|s| s.as_str()) {
        Some("compress") => do_compress(&argv[1..]),
        Some("decompress") => do_decompress(&argv[1..]),
        None => self_test(),
        Some(c) => Err(libpressio::Error::invalid_argument(format!(
            "unknown command {c}"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("generic_cli: {e}");
            ExitCode::FAILURE
        }
    }
}
