//! Table II workload — "CLI", native implementation #3 of 3.
//!
//! The same CLI again, rewritten for the MGARD kernel's native interface:
//! f64 only, absolute tolerance only, and a hard requirement of at least 3
//! points per dimension that the caller must understand.
//!
//! Run: `cargo run --example native_cli_mgard -- compress <in> <out> <dims> <tolerance>`
//! (or with no args: self-test on synthetic data)

use std::process::ExitCode;

use pressio_mgard::{compress_body, decompress_body};

fn parse_dims(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|p| p.trim().parse::<usize>().map_err(|e| e.to_string()))
        .collect()
}

fn bytes_to_f64(bytes: &[u8]) -> Result<Vec<f64>, String> {
    if !bytes.len().is_multiple_of(8) {
        return Err("file size is not a multiple of 8".to_string());
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect())
}

fn f64_to_bytes(v: &[f64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Yet another incompatible framing, specific to this CLI.
fn frame(dims: &[usize], body: &[u8]) -> Vec<u8> {
    let mut out = vec![b'M', b'G', b'C', b'L', dims.len() as u8];
    for &d in dims {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    out.extend_from_slice(body);
    out
}

fn deframe(bytes: &[u8]) -> Result<(Vec<usize>, &[u8]), String> {
    if bytes.len() < 5 || &bytes[..4] != b"MGCL" {
        return Err("not an mgard-cli stream".to_string());
    }
    let nd = bytes[4] as usize;
    let mut dims = Vec::with_capacity(nd);
    let mut at = 5;
    for _ in 0..nd {
        let chunk: [u8; 8] = bytes
            .get(at..at + 8)
            .ok_or("truncated header")?
            .try_into()
            .map_err(|_| "truncated header")?;
        dims.push(u64::from_le_bytes(chunk) as usize);
        at += 8;
    }
    Ok((dims, &bytes[at..]))
}

fn do_compress(args: &[String]) -> Result<(), String> {
    let [input, output, dims, tol] = args else {
        return Err("usage: compress <in> <out> <dims> <tolerance>".to_string());
    };
    let dims = parse_dims(dims)?;
    // CAUTION (native-interface footgun): any dimension below 3 is an error;
    // the caller must reshape beforehand.
    let tol: f64 = tol.parse().map_err(|e: std::num::ParseFloatError| e.to_string())?;
    let bytes = std::fs::read(input).map_err(|e| e.to_string())?;
    let vals = bytes_to_f64(&bytes)?;
    let body = compress_body(&vals, &dims, tol).map_err(|e| e.to_string())?;
    let framed = frame(&dims, &body);
    std::fs::write(output, &framed).map_err(|e| e.to_string())?;
    println!(
        "compression ratio: {:.2}",
        bytes.len() as f64 / framed.len() as f64
    );
    Ok(())
}

fn do_decompress(args: &[String]) -> Result<(), String> {
    let [input, output] = args else {
        return Err("usage: decompress <in> <out>".to_string());
    };
    let bytes = std::fs::read(input).map_err(|e| e.to_string())?;
    let (dims, body) = deframe(&bytes)?;
    let vals = decompress_body(body, &dims).map_err(|e| e.to_string())?;
    std::fs::write(output, f64_to_bytes(&vals)).map_err(|e| e.to_string())?;
    Ok(())
}

fn self_test() -> Result<(), String> {
    let dir = std::env::temp_dir().join("native-cli-mgard");
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let raw = dir.join("in.bin");
    let comp = dir.join("out.mgc");
    let dec = dir.join("dec.bin");
    let vals: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.01).sin()).collect();
    std::fs::write(&raw, f64_to_bytes(&vals)).map_err(|e| e.to_string())?;
    let s = |p: &std::path::Path| p.to_string_lossy().into_owned();
    do_compress(&[s(&raw), s(&comp), "64,64".into(), "0.001".into()])?;
    do_decompress(&[s(&comp), s(&dec)])?;
    let back = bytes_to_f64(&std::fs::read(&dec).map_err(|e| e.to_string())?)?;
    for (a, b) in vals.iter().zip(&back) {
        if (a - b).abs() > 1e-3 {
            return Err(format!("tolerance violated: {a} vs {b}"));
        }
    }
    println!("self-test ok");
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.first().map(|s| s.as_str()) {
        Some("compress") => do_compress(&argv[1..]),
        Some("decompress") => do_decompress(&argv[1..]),
        None => self_test(),
        Some(c) => Err(format!("unknown command {c}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("native_cli_mgard: {e}");
            ExitCode::FAILURE
        }
    }
}
