//! Table II workload — "HDF5 filter", LibPressio implementation.
//!
//! One generic filter covers both compressors of `native_h5filter.rs` —
//! and every other registered plugin: the container stores the filter name
//! and geometry uniformly, and the compressed stream is self-describing.
//!
//! Run: `cargo run --release --example generic_h5filter`

use libpressio::io::H5File;
use libpressio::Options;

fn main() -> libpressio::Result<()> {
    libpressio::init();
    let field = libpressio::datagen::scale_letkf(8, 48, 48, 17);

    let mut file = H5File::new();
    let bound = Options::new().with(pressio_core::OPT_ABS, 1e-3f64);
    for filter in ["sz", "zfp"] {
        file.put_filtered(format!("t2m/{filter}"), &field, filter, &bound)?;
    }

    for filter in ["sz", "zfp"] {
        let back = file.get(&format!("t2m/{filter}"))?;
        let orig = field.to_f64_vec()?;
        for (a, b) in orig.iter().zip(back.to_f64_vec()?.iter()) {
            assert!((a - b).abs() <= 1e-3, "{filter}");
        }
    }
    println!(
        "generic filter ok: container holds {} datasets ({} bytes) for 2 compressed fields",
        file.names().len(),
        file.to_bytes().len()
    );
    Ok(())
}
