//! Table II workload — "configuration optimizer", LibPressio implementation.
//!
//! The same fixed-ratio search as `native_optimizer.rs` via the `opt`
//! meta-compressor; the child compressor is a string, so the identical
//! code tunes SZ, ZFP, MGARD, or anything registered.
//!
//! Run: `cargo run --release --example generic_optimizer`

use libpressio::prelude::*;

fn main() -> libpressio::Result<()> {
    let library = libpressio::instance();
    let field = libpressio::datagen::nyx_density(48, 21);

    for child in ["sz", "zfp"] {
        for target in [10.0f64, 40.0] {
            let mut opt = library.get_compressor("opt")?;
            opt.set_options(
                &Options::new()
                    .with("opt:compressor", child)
                    .with("opt:target_ratio", target)
                    .with("opt:lower", 1e-10f64)
                    .with("opt:upper", 10.0f64),
            )?;
            match opt.compress(&field) {
                Ok(_) => {
                    let r = opt.get_options();
                    println!(
                        "{child:<4} target {target:>5.0}: bound {:.3e} -> ratio {:.1} ({} trials)",
                        r.get_as::<f64>("opt:chosen_value")?.unwrap_or(f64::NAN),
                        r.get_as::<f64>("opt:achieved_ratio")?.unwrap_or(f64::NAN),
                        r.get_as::<u32>("opt:evaluations")?.unwrap_or(0),
                    );
                }
                Err(e) => println!("{child:<4} target {target:>5.0}: {e}"),
            }
        }
    }
    Ok(())
}
