//! # libpressio
//!
//! A from-scratch Rust reproduction of **LibPressio** (Underwood, Malvoso,
//! Calhoun, Di, Cappello — *Productive and Performant Generic Lossy Data
//! Compression with LibPressio*, SC 2021): one uniform, introspectable,
//! low-overhead interface over many lossless and error-bounded lossy
//! compressors for dense tensors.
//!
//! This facade crate re-exports the whole workspace and wires every builtin
//! plugin into the global registry. See `DESIGN.md` for the system
//! inventory and the paper-experiment index, and `EXPERIMENTS.md` for the
//! reproduced results.
//!
//! ## Quickstart
//!
//! The Rust rendering of the paper's Appendix A example:
//!
//! ```
//! use libpressio::prelude::*;
//!
//! let library = libpressio::instance();
//!
//! // Get a handle to a compressor and attach metrics.
//! let mut compressor = library.get_compressor("sz").unwrap();
//! compressor.set_metrics(library.new_metrics(&["size"]).unwrap());
//!
//! // Configure it: introspectable, typed options.
//! let options = Options::new()
//!     .with("sz:error_bound_mode_str", "abs")
//!     .with("sz:abs_err_bound", 0.5f64);
//! compressor.check_options(&options).unwrap();
//! compressor.set_options(&options).unwrap();
//!
//! // A 30x30x30 double-precision buffer.
//! let raw: Vec<f64> = (0..27_000).map(|i| (i as f64 * 1e-3).sin() * 100.0).collect();
//! let input = Data::from_vec(raw, vec![30, 30, 30]).unwrap();
//!
//! // Compress and decompress.
//! let compressed = compressor.compress(&input).unwrap();
//! let mut output = Data::owned(DType::F64, vec![30, 30, 30]);
//! compressor.decompress(&compressed, &mut output).unwrap();
//!
//! // Read the compression ratio from the metrics.
//! let ratio = compressor
//!     .metrics_results()
//!     .get_as::<f64>("size:compression_ratio")
//!     .unwrap()
//!     .unwrap();
//! assert!(ratio > 1.0);
//! ```
//!
//! To use ZFP or any other registered compressor, only the plugin name and
//! the option keys change — the paper's portability claim, verbatim.

#![warn(missing_docs)]

use std::sync::Once;

pub use pressio_codecs as codecs;
pub use pressio_core as core;
pub use pressio_datagen as datagen;
pub use pressio_io as io;
pub use pressio_meta as meta;
pub use pressio_metrics as metrics;
pub use pressio_mgard as mgard;
pub use pressio_sz as sz;
pub use pressio_sz3 as sz3;
pub use pressio_tthresh as tthresh;
pub use pressio_zfp as zfp;
pub use zchecker_lite as zchecker;

pub use pressio_core::{
    registry, Compressor, CompressorHandle, DType, Data, Error, ErrorCode, IoPlugin,
    MetricsPlugin, OptionKind, OptionValue, Options, Pressio, Result, ThreadSafety, Version,
};

/// Commonly used items for `use libpressio::prelude::*`.
pub mod prelude {
    pub use pressio_core::{
        Compressor, CompressorHandle, DType, Data, IoPlugin, MetricsPlugin, OptionKind,
        OptionValue, Options, Pressio, ThreadSafety,
    };
}

/// Register every builtin plugin exactly once (idempotent, thread safe).
pub fn init() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        pressio_codecs::register_builtins();
        pressio_sz::register_builtins();
        pressio_sz3::register_builtins();
        pressio_tthresh::register_builtins();
        pressio_zfp::register_builtins();
        pressio_mgard::register_builtins();
        pressio_meta::register_builtins();
        pressio_metrics::register_builtins();
        pressio_io::register_builtins();
        pressio_datagen::register_builtins();
    });
}

/// Acquire a library handle with all builtin plugins registered — the
/// `pressio_instance()` analog.
pub fn instance() -> Pressio {
    init();
    Pressio::new()
}

#[cfg(test)]
mod tests {
    #[test]
    fn instance_registers_everything() {
        let library = super::instance();
        let compressors = library.supported_compressors();
        for name in [
            "sz",
            "sz_threadsafe",
            "sz_omp",
            "sz_interp",
            "tthresh",
            "zfp",
            "mgard",
            "deflate",
            "blosc",
            "fpzip",
            "chunking",
            "opt",
            "noop",
        ] {
            assert!(
                compressors.iter().any(|c| c == name),
                "{name} missing from {compressors:?}"
            );
        }
        assert!(compressors.len() >= 25, "got {}", compressors.len());
        assert!(library.supported_metrics().len() >= 12);
        assert!(library.supported_io().len() >= 8);
    }
}
