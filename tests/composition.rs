//! Integration across subsystems: meta-compressors wrapping real codecs,
//! containers using compressors as filters, metrics observing the whole
//! stack, and third-party plugins flowing through all of it.

use std::sync::Arc;

use libpressio::prelude::*;

fn field() -> Data {
    libpressio::init();
    libpressio::datagen::scale_letkf(8, 48, 48, 55)
}

fn max_err(a: &Data, b: &Data) -> f64 {
    a.to_f64_vec()
        .unwrap()
        .iter()
        .zip(b.to_f64_vec().unwrap().iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn deep_meta_composition_preserves_bound() {
    // transpose -> chunking -> sz_threadsafe, all configured through one
    // option set, one bound at the top.
    let library = libpressio::instance();
    let input = field();
    let range = pressio_core::value_range(&input.to_f64_vec().unwrap());
    let mut c = library.get_compressor("transpose").unwrap();
    c.set_options(
        &Options::new()
            .with("transpose:axes", "2,1,0")
            .with("transpose:compressor", "chunking")
            .with("chunking:compressor", "sz_threadsafe")
            .with("chunking:nthreads", 3u32)
            .with(pressio_core::OPT_REL, 1e-3f64),
    )
    .unwrap();
    let compressed = c.compress(&input).unwrap();
    let mut out = Data::owned(input.dtype(), input.dims().to_vec());
    c.decompress(&compressed, &mut out).unwrap();
    assert!(max_err(&input, &out) <= 1e-3 * range * 1.001 + 1e-6);
}

#[test]
fn metrics_observe_any_composition() {
    let library = libpressio::instance();
    let input = field();
    let mut c = library.get_compressor("chunking").unwrap();
    c.set_options(
        &Options::new()
            .with("chunking:compressor", "zfp")
            .with(pressio_core::OPT_ABS, 1e-2f64),
    )
    .unwrap();
    c.set_metrics(library.new_metrics(&["size", "time", "error_stat"]).unwrap());
    let compressed = c.compress(&input).unwrap();
    let mut out = Data::owned(input.dtype(), input.dims().to_vec());
    c.decompress(&compressed, &mut out).unwrap();
    let r = c.metrics_results();
    assert!(r.get_as::<f64>("size:compression_ratio").unwrap().unwrap() > 1.0);
    assert!(r.get_as::<f64>("time:compress").unwrap().unwrap() > 0.0);
    assert!(r.get_as::<f64>("error_stat:max_error").unwrap().unwrap() <= 1e-2 + 1e-6);
}

#[test]
fn h5lite_container_with_lossy_filters_and_reopen() {
    let library = libpressio::instance();
    let _ = library;
    let input = field();
    let dir = std::env::temp_dir().join("pressio-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fields.h5l");

    let mut file = libpressio::io::H5File::new();
    file.put("raw", &input).unwrap();
    file.put_filtered(
        "compressed/sz",
        &input,
        "sz",
        &Options::new().with(pressio_core::OPT_ABS, 1e-2f64),
    )
    .unwrap();
    file.put_filtered("compressed/lossless", &input, "blosc", &Options::new())
        .unwrap();
    file.save(&path).unwrap();

    let reopened = libpressio::io::H5File::open(&path).unwrap();
    assert_eq!(reopened.names().len(), 3);
    assert_eq!(reopened.get("raw").unwrap(), input);
    assert_eq!(reopened.get("compressed/lossless").unwrap(), input);
    let lossy = reopened.get("compressed/sz").unwrap();
    assert!(max_err(&input, &lossy) <= 1e-2 + 1e-7);
}

#[test]
fn select_io_feeds_compression() {
    let library = libpressio::instance();
    // Generate synthetic data through the io registry, select a region,
    // compress it: three subsystems chained through the generic interfaces.
    let mut io = library.get_io("select").unwrap();
    io.set_options(
        &Options::new()
            .with("select:io", "datagen")
            .with("datagen:name", "nyx")
            .with("datagen:seed", 8u64)
            .with("select:start", "8,8,8")
            .with("select:count", "16,16,16"),
    )
    .unwrap();
    let region = io.read(None).unwrap();
    assert_eq!(region.dims(), &[16, 16, 16]);
    let mut c = library.get_compressor("sz").unwrap();
    c.set_options(&Options::new().with(pressio_core::OPT_REL, 1e-3f64))
        .unwrap();
    let compressed = c.compress(&region).unwrap();
    assert!(compressed.size_in_bytes() < region.size_in_bytes());
}

#[test]
fn third_party_plugin_flows_through_meta_io_and_metrics() {
    // The Table I "third party extension" claim, end to end: a downstream
    // crate registers a compressor; chunking parallelizes it, h5lite uses
    // it as a filter, metrics observe it — no library changes.
    #[derive(Clone)]
    struct XorCodec;
    impl Compressor for XorCodec {
        fn name(&self) -> &str {
            "vendor_xor"
        }
        fn version(&self) -> libpressio::Version {
            libpressio::Version::new(1, 0, 0)
        }
        fn get_options(&self) -> Options {
            Options::new()
        }
        fn set_options(&mut self, _: &Options) -> libpressio::Result<()> {
            Ok(())
        }
        fn compress(&mut self, input: &Data) -> libpressio::Result<Data> {
            let mut bytes = input.as_bytes().to_vec();
            for b in bytes.iter_mut() {
                *b ^= 0x5A;
            }
            // Prepend geometry so decompression is self-describing.
            let mut w = pressio_core::ByteWriter::new();
            w.put_dtype(input.dtype());
            w.put_dims(input.dims());
            w.put_section(&bytes);
            Ok(Data::from_bytes(&w.into_vec()))
        }
        fn decompress(&mut self, c: &Data, o: &mut Data) -> libpressio::Result<()> {
            let mut r = pressio_core::ByteReader::new(c.as_bytes());
            let dtype = r.get_dtype()?;
            let dims = r.get_dims()?;
            let payload = r.get_section()?;
            if o.dtype() != dtype || o.num_elements() != dims.iter().product::<usize>() {
                *o = Data::owned(dtype, dims);
            }
            for (dst, src) in o.as_bytes_mut().iter_mut().zip(payload) {
                *dst = src ^ 0x5A;
            }
            Ok(())
        }
        fn clone_compressor(&self) -> Box<dyn Compressor> {
            Box::new(self.clone())
        }
    }

    let library = libpressio::instance();
    libpressio::registry().register_compressor("vendor_xor", || Box::new(XorCodec));
    let input = field();

    // Through chunking (parallel meta).
    let mut c = library.get_compressor("chunking").unwrap();
    c.set_options(
        &Options::new()
            .with("chunking:compressor", "vendor_xor")
            .with("chunking:nthreads", 2u32),
    )
    .unwrap();
    c.set_metrics(library.new_metrics(&["size"]).unwrap());
    let compressed = c.compress(&input).unwrap();
    let mut out = Data::owned(input.dtype(), input.dims().to_vec());
    c.decompress(&compressed, &mut out).unwrap();
    assert_eq!(out, input);
    assert!(c.metrics_results().contains("size:compressed_size"));

    // As an h5lite filter.
    let mut file = libpressio::io::H5File::new();
    file.put_filtered("x", &input, "vendor_xor", &Options::new())
        .unwrap();
    assert_eq!(file.get("x").unwrap(), input);
}

#[test]
fn userdata_options_pass_through_compositions() {
    // The "arbitrary configuration" claim: opaque handles travel through a
    // meta-compressor to the child untouched.
    struct FakeQueue(#[allow(dead_code)] u32);
    let library = libpressio::instance();
    let mut c = library.get_compressor("transpose").unwrap();
    let mut o = Options::new().with("transpose:compressor", "sz");
    o.set_userdata("sz:user_params", Arc::new(FakeQueue(11)));
    c.set_options(&o).unwrap();
    let got = c.get_options();
    assert!(got
        .get_userdata::<FakeQueue>("sz:user_params")
        .unwrap()
        .is_some());
}

#[test]
fn bplite_stream_with_many_steps_and_operators() {
    libpressio::init();
    let mut w = libpressio::io::BpWriter::new();
    w.set_operator("sz", Options::new().with(pressio_core::OPT_REL, 1e-3f64))
        .unwrap();
    let steps: Vec<Data> = (0..5)
        .map(|t| libpressio::datagen::scale_letkf(4, 24, 24, t))
        .collect();
    for s in &steps {
        w.begin_step();
        w.put("t", s).unwrap();
        w.end_step();
    }
    let bytes = w.into_bytes();
    let r = libpressio::io::BpReader::from_bytes(&bytes).unwrap();
    assert_eq!(r.num_steps(), 5);
    for (t, s) in steps.iter().enumerate() {
        let range = pressio_core::value_range(&s.to_f64_vec().unwrap());
        let back = r.get(t as u32, "t").unwrap();
        assert!(max_err(s, back) <= 1e-3 * range * 1.001 + 1e-6);
    }
}
