//! Property-based tests on the library's core invariants:
//!
//! * lossless codecs roundtrip *arbitrary* byte strings;
//! * error-bounded compressors hold their bound on *arbitrary* finite
//!   floats (the library's central promise, not just on smooth fields) —
//!   for absolute, value-range-relative, and point-wise-relative modes, on
//!   `f32` and `f64`, across 1D/2D/3D shapes including degenerate extents
//!   of 1 and thread counts that do not divide the element count;
//! * non-finite inputs (NaN, ±Inf) either round-trip or produce a clean
//!   error — never a panic;
//! * option casting obeys its laws (implicit ⊂ explicit, exactness);
//! * shape transforms are involutions.

use libpressio::prelude::*;
use proptest::prelude::*;

/// 1–3 dimensions, each extent in `1..=10`: covers 1D/2D/3D, degenerate
/// extents of 1 (including the all-ones single-element field), and element
/// counts that no fixed chunk count divides.
fn dims_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..11, 1..4)
}

/// Finite values with a sprinkling of NaN, ±Inf, and exact zeros (the
/// shim has no `prop_oneof!`, so this is a hand-rolled mixture strategy).
struct MaybeNonfinite;

impl Strategy for MaybeNonfinite {
    type Value = f64;
    fn generate(&self, rng: &mut proptest::test_runner::TestRng) -> f64 {
        match rng.index(12) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            _ => (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 2e6 - 1e6,
        }
    }
}

/// Finite values with occasional exact zeros (exercises the pw_rel
/// verbatim-below-floor path).
struct FiniteOrZero;

impl Strategy for FiniteOrZero {
    type Value = f64;
    fn generate(&self, rng: &mut proptest::test_runner::TestRng) -> f64 {
        if rng.index(5) == 0 {
            0.0
        } else {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 2e6 - 1e6
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lossless_codecs_roundtrip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        libpressio::init();
        let library = libpressio::instance();
        let input = Data::from_bytes(&data);
        for name in ["rle", "lz", "huffman", "deflate", "rans", "blosc", "delta"] {
            let mut c = library.get_compressor(name).unwrap();
            let compressed = c.compress(&input).unwrap();
            let mut out = Data::owned(DType::Byte, vec![data.len()]);
            c.decompress(&compressed, &mut out).unwrap();
            prop_assert_eq!(out.as_bytes(), &data[..], "{}", name);
        }
    }

    #[test]
    fn rans_roundtrips_every_distribution_shape(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        skew in 1u8..255,
    ) {
        use libpressio::codecs::rans;
        // Derive the histogram shapes that stress the 12-bit normalizer
        // from one arbitrary buffer: empty (covered when data is empty),
        // the raw arbitrary bytes, a single repeated symbol, a skewed
        // two-symbol split (threshold drawn by proptest), and a dense
        // all-256 ramp that forces every frequency slot occupied.
        let single: Vec<u8> = vec![0xA5; data.len()];
        let two: Vec<u8> = data.iter().map(|&b| if b < skew { 0x00 } else { 0xFF }).collect();
        let dense: Vec<u8> = data
            .iter()
            .enumerate()
            .map(|(i, &b)| b.wrapping_add(i as u8))
            .collect();
        for (shape, bytes) in [
            ("arbitrary", &data),
            ("single_symbol", &single),
            ("skewed_two_symbol", &two),
            ("dense_all_256", &dense),
        ] {
            let enc = rans::compress(bytes).unwrap();
            prop_assert_eq!(&rans::decompress(&enc).unwrap(), bytes, "shape {}", shape);
        }
    }

    #[test]
    fn sz_bound_holds_on_arbitrary_finite_floats(
        vals in proptest::collection::vec(-1e9f64..1e9, 1..2048),
        bound_exp in -6i32..2,
    ) {
        libpressio::init();
        let library = libpressio::instance();
        let bound = 10f64.powi(bound_exp);
        let n = vals.len();
        let input = Data::from_vec(vals, vec![n]).unwrap();
        let mut c = library.get_compressor("sz").unwrap();
        c.set_options(&Options::new().with(pressio_core::OPT_ABS, bound)).unwrap();
        let compressed = c.compress(&input).unwrap();
        let mut out = Data::owned(DType::F64, vec![n]);
        c.decompress(&compressed, &mut out).unwrap();
        let orig = input.as_slice::<f64>().unwrap();
        let got = out.as_slice::<f64>().unwrap();
        for (a, b) in orig.iter().zip(got) {
            prop_assert!((a - b).abs() <= bound, "{} vs {} (bound {})", a, b, bound);
        }
    }

    #[test]
    fn zfp_accuracy_holds_on_arbitrary_finite_floats(
        vals in proptest::collection::vec(-1e6f64..1e6, 1..1024),
        tol_exp in -6i32..2,
    ) {
        libpressio::init();
        let library = libpressio::instance();
        let tol = 10f64.powi(tol_exp);
        let n = vals.len();
        let input = Data::from_vec(vals, vec![n]).unwrap();
        let mut c = library.get_compressor("zfp").unwrap();
        c.set_options(&Options::new().with("zfp:accuracy", tol)).unwrap();
        let compressed = c.compress(&input).unwrap();
        let mut out = Data::owned(DType::F64, vec![n]);
        c.decompress(&compressed, &mut out).unwrap();
        let orig = input.as_slice::<f64>().unwrap();
        let got = out.as_slice::<f64>().unwrap();
        for (a, b) in orig.iter().zip(got) {
            prop_assert!((a - b).abs() <= tol, "{} vs {} (tol {})", a, b, tol);
        }
    }

    #[test]
    fn mgard_bound_holds_on_arbitrary_finite_floats(
        vals in proptest::collection::vec(-1e6f64..1e6, 3..512),
        bound_exp in -4i32..2,
    ) {
        libpressio::init();
        let library = libpressio::instance();
        let bound = 10f64.powi(bound_exp);
        let n = vals.len();
        let input = Data::from_vec(vals, vec![n]).unwrap();
        let mut c = library.get_compressor("mgard").unwrap();
        c.set_options(&Options::new().with(pressio_core::OPT_ABS, bound)).unwrap();
        let compressed = c.compress(&input).unwrap();
        let mut out = Data::owned(DType::F64, vec![n]);
        c.decompress(&compressed, &mut out).unwrap();
        let orig = input.as_slice::<f64>().unwrap();
        let got = out.as_slice::<f64>().unwrap();
        for (a, b) in orig.iter().zip(got) {
            prop_assert!((a - b).abs() <= bound, "{} vs {} (bound {})", a, b, bound);
        }
    }

    #[test]
    fn fpzip_bit_exact_on_arbitrary_bit_patterns(bits in proptest::collection::vec(any::<u64>(), 1..1024)) {
        libpressio::init();
        let library = libpressio::instance();
        // Arbitrary u64 bit patterns reinterpreted as f64: includes NaNs
        // with payloads, infinities, subnormals.
        let vals: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let n = vals.len();
        let input = Data::from_vec(vals, vec![n]).unwrap();
        let mut c = library.get_compressor("fpzip").unwrap();
        let compressed = c.compress(&input).unwrap();
        let mut out = Data::owned(DType::F64, vec![n]);
        c.decompress(&compressed, &mut out).unwrap();
        prop_assert_eq!(out.as_bytes(), input.as_bytes());
    }

    #[test]
    fn sz_abs_bound_holds_on_f32_multidim(
        dims in dims_strategy(),
        seed in any::<u32>(),
        bound_exp in -3i32..2,
    ) {
        libpressio::init();
        let library = libpressio::instance();
        let bound = 10f64.powi(bound_exp);
        let n: usize = dims.iter().product();
        // Deterministic pseudo-random f32 field from the seed; magnitudes
        // up to ~1e3 keep half-ULP storage rounding far below any bound.
        let vals: Vec<f32> = (0..n)
            .map(|i| {
                let x = (seed as u64)
                    .wrapping_add(i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 11) as f64 / (1u64 << 53) as f64 * 2e3 - 1e3) as f32
            })
            .collect();
        let input = Data::from_vec(vals, dims.clone()).unwrap();
        let mut c = library.get_compressor("sz").unwrap();
        c.set_options(&Options::new().with(pressio_core::OPT_ABS, bound)).unwrap();
        let compressed = c.compress(&input).unwrap();
        let mut out = Data::owned(DType::F32, dims.clone());
        c.decompress(&compressed, &mut out).unwrap();
        let orig = input.as_slice::<f32>().unwrap();
        let got = out.as_slice::<f32>().unwrap();
        for (a, b) in orig.iter().zip(got) {
            prop_assert!(
                (f64::from(*a) - f64::from(*b)).abs() <= bound,
                "dims {:?}: {} vs {} (bound {})", dims, a, b, bound
            );
        }
    }

    #[test]
    fn value_range_relative_bound_holds_multidim(
        dims in dims_strategy(),
        vals_seed in proptest::collection::vec(-1e6f64..1e6, 1000..1001),
        rel_exp in -5i32..-1,
    ) {
        libpressio::init();
        let library = libpressio::instance();
        let rel = 10f64.powi(rel_exp);
        let n: usize = dims.iter().product();
        let vals: Vec<f64> = vals_seed[..n].to_vec();
        let range = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let input = Data::from_vec(vals, dims.clone()).unwrap();
        for name in ["sz", "zfp"] {
            let mut c = library.get_compressor(name).unwrap();
            c.set_options(&Options::new().with(pressio_core::OPT_REL, rel)).unwrap();
            let compressed = c.compress(&input).unwrap();
            let mut out = Data::owned(DType::F64, dims.clone());
            c.decompress(&compressed, &mut out).unwrap();
            let orig = input.as_slice::<f64>().unwrap();
            let got = out.as_slice::<f64>().unwrap();
            // The resolved absolute bound is rel * value_range; allow a
            // 1-ulp-scale slack for the bound resolution arithmetic itself.
            let bound = rel * range * (1.0 + 1e-12);
            for (a, b) in orig.iter().zip(got) {
                prop_assert!(
                    (a - b).abs() <= bound,
                    "{}, dims {:?}: {} vs {} (rel {}, range {})", name, dims, a, b, rel, range
                );
            }
        }
    }

    #[test]
    fn sz_pointwise_relative_bound_holds(
        vals in proptest::collection::vec(FiniteOrZero, 1..1024),
        ratio_exp in -4i32..-1,
    ) {
        libpressio::init();
        let library = libpressio::instance();
        let ratio = 10f64.powi(ratio_exp);
        let n = vals.len();
        let input = Data::from_vec(vals, vec![n]).unwrap();
        let mut c = library.get_compressor("sz").unwrap();
        c.set_options(
            &Options::new()
                .with("sz:error_bound_mode_str", "pw_rel")
                .with("sz:pw_rel_bound_ratio", ratio),
        ).unwrap();
        let compressed = c.compress(&input).unwrap();
        let mut out = Data::owned(DType::F64, vec![n]);
        c.decompress(&compressed, &mut out).unwrap();
        let orig = input.as_slice::<f64>().unwrap();
        let got = out.as_slice::<f64>().unwrap();
        for (a, b) in orig.iter().zip(got) {
            // |x - x'| <= r * |x| pointwise; zeros are below the pw_rel
            // floor and must come back verbatim.
            if *a == 0.0 {
                prop_assert_eq!(*b, 0.0, "zero not stored verbatim");
            } else {
                prop_assert!(
                    (a - b).abs() <= ratio * a.abs() * (1.0 + 1e-9),
                    "{} vs {} (ratio {})", a, b, ratio
                );
            }
        }
    }

    #[test]
    fn pooled_variants_hold_bound_for_arbitrary_thread_counts(
        dims in dims_strategy(),
        seed in any::<u32>(),
        nthreads in 1i64..9,
        bound_exp in -3i32..1,
    ) {
        libpressio::init();
        let library = libpressio::instance();
        let bound = 10f64.powi(bound_exp);
        let n: usize = dims.iter().product();
        let vals: Vec<f64> = (0..n)
            .map(|i| {
                let x = (seed as u64)
                    .wrapping_add(i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 11) as f64 / (1u64 << 53) as f64 * 2e3 - 1e3
            })
            .collect();
        let input = Data::from_vec(vals, dims.clone()).unwrap();
        for name in ["sz_omp", "zfp_omp"] {
            let mut c = library.get_compressor(name).unwrap();
            c.set_options(
                &Options::new()
                    .with(pressio_core::OPT_ABS, bound)
                    .with(format!("{name}:nthreads"), nthreads),
            ).unwrap();
            let compressed = c.compress(&input).unwrap();
            let mut out = Data::owned(DType::F64, dims.clone());
            c.decompress(&compressed, &mut out).unwrap();
            let orig = input.as_slice::<f64>().unwrap();
            let got = out.as_slice::<f64>().unwrap();
            for (a, b) in orig.iter().zip(got) {
                prop_assert!(
                    (a - b).abs() <= bound,
                    "{} nthreads={} dims {:?}: {} vs {} (bound {})",
                    name, nthreads, dims, a, b, bound
                );
            }
        }
    }

    #[test]
    fn nonfinite_inputs_roundtrip_or_error_cleanly(
        vals in proptest::collection::vec(MaybeNonfinite, 1..256),
    ) {
        libpressio::init();
        let library = libpressio::instance();
        let n = vals.len();
        let input = Data::from_vec(vals.clone(), vec![n]).unwrap();
        for name in ["sz", "sz_interp", "zfp", "mgard", "tthresh", "bit_grooming", "digit_rounding", "fpzip"] {
            let mut c = library.get_compressor(name).unwrap();
            c.set_options(&Options::new().with(pressio_core::OPT_ABS, 1e-3f64)).unwrap();
            // The property is "never panic": a clean Err is an acceptable
            // answer to non-finite input, silent corruption is not.
            let Ok(compressed) = c.compress(&input) else { continue };
            let mut out = Data::owned(DType::F64, vec![n]);
            let Ok(()) = c.decompress(&compressed, &mut out) else { continue };
            let got = out.as_slice::<f64>().unwrap();
            for (a, b) in vals.iter().zip(got) {
                if a.is_nan() {
                    prop_assert!(b.is_nan(), "{}: NaN became {}", name, b);
                } else if a.is_infinite() {
                    prop_assert_eq!(*a, *b, "{}: {} became {}", name, a, b);
                } else if ["sz", "sz_interp", "zfp", "mgard", "tthresh"].contains(&name) {
                    // Only abs-bounded plugins promise an L∞ bound;
                    // bit_grooming/digit_rounding bound precision, not error.
                    prop_assert!(
                        (a - b).abs() <= 1e-3,
                        "{}: finite {} -> {} broke the bound next to non-finite values",
                        name, a, b
                    );
                }
            }
        }
    }

    #[test]
    fn implicit_casts_are_a_subset_of_explicit(v in any::<i64>()) {
        use libpressio::core::{CastSafety, OptionKind, OptionValue};
        let value = OptionValue::I64(v);
        for kind in [
            OptionKind::I8, OptionKind::I16, OptionKind::I32, OptionKind::I64,
            OptionKind::U8, OptionKind::U16, OptionKind::U32, OptionKind::U64,
            OptionKind::F32, OptionKind::F64,
        ] {
            let implicit = value.cast(kind, CastSafety::Implicit);
            let explicit = value.cast(kind, CastSafety::Explicit);
            if implicit.is_ok() {
                prop_assert!(explicit.is_ok(), "implicit ok but explicit failed for {:?}", kind);
            }
            // Explicit casts never silently change the value: casting back
            // up to i64 must reproduce it (floats only when exact).
            if let Ok(cast) = &explicit {
                if cast.kind().is_integer() {
                    let back = cast.cast(OptionKind::I64, CastSafety::Explicit).unwrap();
                    prop_assert_eq!(back, OptionValue::I64(v));
                }
            }
        }
    }

    #[test]
    fn transpose_then_inverse_is_identity(
        dims in proptest::collection::vec(1usize..6, 1..4),
        perm_seed in any::<u64>(),
    ) {
        let n: usize = dims.iter().product();
        let vals: Vec<u32> = (0..n as u32).collect();
        let bytes = pressio_core::elements_as_bytes(&vals);
        // Deterministic permutation from the seed.
        let mut axes: Vec<usize> = (0..dims.len()).collect();
        let mut s = perm_seed;
        for i in (1..axes.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            axes.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let (t, tdims) = libpressio::meta::util::transpose_bytes(bytes, &dims, &axes, 4).unwrap();
        let inv = libpressio::meta::util::invert_axes(&axes);
        let (back, bdims) = libpressio::meta::util::transpose_bytes(&t, &tdims, &inv, 4).unwrap();
        prop_assert_eq!(back.as_slice(), bytes);
        prop_assert_eq!(bdims, dims);
    }

    #[test]
    fn data_reshape_preserves_bytes(
        n in 1usize..512,
        split in 1usize..16,
    ) {
        let vals: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let mut d = Data::from_vec(vals.clone(), vec![n]).unwrap();
        if n % split == 0 {
            d.reshape(vec![split, n / split]).unwrap();
            prop_assert_eq!(d.num_elements(), n);
            prop_assert_eq!(d.as_slice::<f32>().unwrap(), &vals[..]);
        } else {
            prop_assert!(d.reshape(vec![split, n / split + 1]).is_err() || split * (n / split + 1) == n);
        }
    }
}
