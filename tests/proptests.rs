//! Property-based tests on the library's core invariants:
//!
//! * lossless codecs roundtrip *arbitrary* byte strings;
//! * error-bounded compressors hold their bound on *arbitrary* finite
//!   floats (the library's central promise, not just on smooth fields);
//! * option casting obeys its laws (implicit ⊂ explicit, exactness);
//! * shape transforms are involutions.

use libpressio::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lossless_codecs_roundtrip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        libpressio::init();
        let library = libpressio::instance();
        let input = Data::from_bytes(&data);
        for name in ["rle", "lz", "huffman", "deflate", "blosc", "delta"] {
            let mut c = library.get_compressor(name).unwrap();
            let compressed = c.compress(&input).unwrap();
            let mut out = Data::owned(DType::Byte, vec![data.len()]);
            c.decompress(&compressed, &mut out).unwrap();
            prop_assert_eq!(out.as_bytes(), &data[..], "{}", name);
        }
    }

    #[test]
    fn sz_bound_holds_on_arbitrary_finite_floats(
        vals in proptest::collection::vec(-1e9f64..1e9, 1..2048),
        bound_exp in -6i32..2,
    ) {
        libpressio::init();
        let library = libpressio::instance();
        let bound = 10f64.powi(bound_exp);
        let n = vals.len();
        let input = Data::from_vec(vals, vec![n]).unwrap();
        let mut c = library.get_compressor("sz").unwrap();
        c.set_options(&Options::new().with(pressio_core::OPT_ABS, bound)).unwrap();
        let compressed = c.compress(&input).unwrap();
        let mut out = Data::owned(DType::F64, vec![n]);
        c.decompress(&compressed, &mut out).unwrap();
        let orig = input.as_slice::<f64>().unwrap();
        let got = out.as_slice::<f64>().unwrap();
        for (a, b) in orig.iter().zip(got) {
            prop_assert!((a - b).abs() <= bound, "{} vs {} (bound {})", a, b, bound);
        }
    }

    #[test]
    fn zfp_accuracy_holds_on_arbitrary_finite_floats(
        vals in proptest::collection::vec(-1e6f64..1e6, 1..1024),
        tol_exp in -6i32..2,
    ) {
        libpressio::init();
        let library = libpressio::instance();
        let tol = 10f64.powi(tol_exp);
        let n = vals.len();
        let input = Data::from_vec(vals, vec![n]).unwrap();
        let mut c = library.get_compressor("zfp").unwrap();
        c.set_options(&Options::new().with("zfp:accuracy", tol)).unwrap();
        let compressed = c.compress(&input).unwrap();
        let mut out = Data::owned(DType::F64, vec![n]);
        c.decompress(&compressed, &mut out).unwrap();
        let orig = input.as_slice::<f64>().unwrap();
        let got = out.as_slice::<f64>().unwrap();
        for (a, b) in orig.iter().zip(got) {
            prop_assert!((a - b).abs() <= tol, "{} vs {} (tol {})", a, b, tol);
        }
    }

    #[test]
    fn mgard_bound_holds_on_arbitrary_finite_floats(
        vals in proptest::collection::vec(-1e6f64..1e6, 3..512),
        bound_exp in -4i32..2,
    ) {
        libpressio::init();
        let library = libpressio::instance();
        let bound = 10f64.powi(bound_exp);
        let n = vals.len();
        let input = Data::from_vec(vals, vec![n]).unwrap();
        let mut c = library.get_compressor("mgard").unwrap();
        c.set_options(&Options::new().with(pressio_core::OPT_ABS, bound)).unwrap();
        let compressed = c.compress(&input).unwrap();
        let mut out = Data::owned(DType::F64, vec![n]);
        c.decompress(&compressed, &mut out).unwrap();
        let orig = input.as_slice::<f64>().unwrap();
        let got = out.as_slice::<f64>().unwrap();
        for (a, b) in orig.iter().zip(got) {
            prop_assert!((a - b).abs() <= bound, "{} vs {} (bound {})", a, b, bound);
        }
    }

    #[test]
    fn fpzip_bit_exact_on_arbitrary_bit_patterns(bits in proptest::collection::vec(any::<u64>(), 1..1024)) {
        libpressio::init();
        let library = libpressio::instance();
        // Arbitrary u64 bit patterns reinterpreted as f64: includes NaNs
        // with payloads, infinities, subnormals.
        let vals: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let n = vals.len();
        let input = Data::from_vec(vals, vec![n]).unwrap();
        let mut c = library.get_compressor("fpzip").unwrap();
        let compressed = c.compress(&input).unwrap();
        let mut out = Data::owned(DType::F64, vec![n]);
        c.decompress(&compressed, &mut out).unwrap();
        prop_assert_eq!(out.as_bytes(), input.as_bytes());
    }

    #[test]
    fn implicit_casts_are_a_subset_of_explicit(v in any::<i64>()) {
        use libpressio::core::{CastSafety, OptionKind, OptionValue};
        let value = OptionValue::I64(v);
        for kind in [
            OptionKind::I8, OptionKind::I16, OptionKind::I32, OptionKind::I64,
            OptionKind::U8, OptionKind::U16, OptionKind::U32, OptionKind::U64,
            OptionKind::F32, OptionKind::F64,
        ] {
            let implicit = value.cast(kind, CastSafety::Implicit);
            let explicit = value.cast(kind, CastSafety::Explicit);
            if implicit.is_ok() {
                prop_assert!(explicit.is_ok(), "implicit ok but explicit failed for {:?}", kind);
            }
            // Explicit casts never silently change the value: casting back
            // up to i64 must reproduce it (floats only when exact).
            if let Ok(cast) = &explicit {
                if cast.kind().is_integer() {
                    let back = cast.cast(OptionKind::I64, CastSafety::Explicit).unwrap();
                    prop_assert_eq!(back, OptionValue::I64(v));
                }
            }
        }
    }

    #[test]
    fn transpose_then_inverse_is_identity(
        dims in proptest::collection::vec(1usize..6, 1..4),
        perm_seed in any::<u64>(),
    ) {
        let n: usize = dims.iter().product();
        let vals: Vec<u32> = (0..n as u32).collect();
        let bytes = pressio_core::elements_as_bytes(&vals);
        // Deterministic permutation from the seed.
        let mut axes: Vec<usize> = (0..dims.len()).collect();
        let mut s = perm_seed;
        for i in (1..axes.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            axes.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let (t, tdims) = libpressio::meta::util::transpose_bytes(bytes, &dims, &axes, 4).unwrap();
        let inv = libpressio::meta::util::invert_axes(&axes);
        let (back, bdims) = libpressio::meta::util::transpose_bytes(&t, &tdims, &inv, 4).unwrap();
        prop_assert_eq!(back.as_slice(), bytes);
        prop_assert_eq!(bdims, dims);
    }

    #[test]
    fn data_reshape_preserves_bytes(
        n in 1usize..512,
        split in 1usize..16,
    ) {
        let vals: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let mut d = Data::from_vec(vals.clone(), vec![n]).unwrap();
        if n % split == 0 {
            d.reshape(vec![split, n / split]).unwrap();
            prop_assert_eq!(d.num_elements(), n);
            prop_assert_eq!(d.as_slice::<f32>().unwrap(), &vals[..]);
        } else {
            prop_assert!(d.reshape(vec![split, n / split + 1]).is_err() || split * (n / split + 1) == n);
        }
    }
}
