//! Golden-stream corpus: pins the exact bytes every serial compressor
//! plugin emits for a fixed input, and the exact round-trip error of
//! decoding those committed bytes.
//!
//! Why: the on-disk stream format of every plugin is a compatibility
//! contract. An innocent-looking refactor that changes a header field, a
//! chunk split, or a quantizer rounding rule silently breaks every archive
//! ever written. These tests make such a change loud: the encode test
//! fails bit-for-bit, the decode test fails on the recorded error.
//!
//! Corpus layout (committed under `tests/golden/`):
//!
//! * `<name>.bin` — the compressed stream for [`field`]
//! * `MANIFEST.txt` — one line per plugin: `name  byte_len  max_abs_err`
//!   (the error is printed with `{:?}` so it parses back bit-exactly)
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_streams
//! git diff tests/golden/   # review what changed, then commit
//! ```
//!
//! Every compressor in the registry must be either in [`GOLDEN`] or in
//! [`EXCLUDED`] with a documented reason — adding a plugin without
//! classifying it here is a test failure.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use libpressio::core::{value_range, OPT_REL};
use libpressio::prelude::*;

/// Serial plugins with a pinned golden stream.
const GOLDEN: &[&str] = &[
    "bit_grooming",
    "bitshuffle",
    "blosc",
    "cast",
    "deflate",
    "delta",
    "digit_rounding",
    "fpzip",
    "huffman",
    "linear_quantizer",
    "lz",
    "mgard",
    "noop",
    "rans",
    "rle",
    "shuffle",
    "sz",
    "sz_interp",
    "sz_threadsafe",
    "tthresh",
    "zfp",
];

/// Registered compressors deliberately *not* in the golden corpus, with the
/// reason. Keep this honest: an entry here is a promise that some other
/// test pins the plugin's behavior.
const EXCLUDED: &[(&str, &str)] = &[
    ("sz_omp", "pooled variant of sz; stream format pinned against serial sz by tests/determinism.rs"),
    ("zfp_omp", "pooled variant of zfp; stream format pinned against serial zfp by tests/determinism.rs"),
    ("chunking", "meta wrapper; stream is child-format plus envelope, covered by tests/composition.rs"),
    ("guard", "meta wrapper adding a policy envelope; covered by its own crate tests and the fuzz harness"),
    ("opt", "meta wrapper that searches child configurations; output depends on the search, not a fixed format"),
    ("pipeline", "meta wrapper; stream is the composed children's, covered by tests/composition.rs"),
    ("switch", "meta wrapper that delegates to a selected child"),
    ("transpose", "meta wrapper; stream is the child's on permuted data, covered by tests/composition.rs"),
    ("resize", "meta wrapper; stream is the child's on reshaped data"),
    ("sample", "decimating sampler: reconstruction is not error-bounded, so a recorded bound is meaningless"),
    ("noise", "injects (seeded) noise by design; not a format contract"),
    ("fault_injector", "injects faults by design; not a format contract"),
    ("many_independent", "synthetic multi-buffer demo plugin, not a stream format"),
    ("many_dependent", "synthetic multi-buffer demo plugin, not a stream format"),
];

/// Extra pinned streams outside the per-plugin serial corpus: chunked
/// container formats written and verified by their own tests below (they
/// have no manifest row — the formats are lossless, so there is no error
/// to record).
const EXTRA_GOLDEN: &[&str] = &["rans_nthreads2"];

/// Value-range-relative bound applied to every plugin (lossless plugins
/// ignore the foreign `pressio:` key).
const REL: f64 = 1e-3;

/// The corpus input: the same 10x9x8 `f32` Scale-LetKF field the
/// determinism suite uses — 720 elements, odd extents, a sharp front.
fn field() -> Data {
    libpressio::init();
    libpressio::datagen::scale_letkf(10, 9, 8, 77)
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn update_mode() -> bool {
    std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| !v.is_empty() && v != "0")
}

const REGEN_HINT: &str =
    "if this format change is intentional, regenerate the corpus with\n    \
     UPDATE_GOLDEN=1 cargo test --test golden_streams\nand commit the tests/golden/ diff";

fn compressor(name: &str) -> CompressorHandle {
    let library = libpressio::instance();
    let mut c = library.get_compressor(name).expect(name);
    c.set_options(&Options::new().with(OPT_REL, REL)).expect(name);
    c
}

fn encode(name: &str, input: &Data) -> Vec<u8> {
    compressor(name)
        .compress(input)
        .unwrap_or_else(|e| panic!("{name}: golden encode failed: {e}"))
        .as_bytes()
        .to_vec()
}

fn decode(name: &str, stream: &[u8], input: &Data) -> Data {
    let mut output = Data::owned(input.dtype(), input.dims().to_vec());
    compressor(name)
        .decompress(&Data::from_bytes(stream), &mut output)
        .unwrap_or_else(|e| panic!("{name}: golden decode failed: {e}"));
    output
}

fn max_abs_err(a: &Data, b: &Data) -> f64 {
    a.to_f64_vec()
        .expect("f64 view")
        .iter()
        .zip(b.to_f64_vec().expect("f64 view").iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Parse `MANIFEST.txt` into `name -> (byte_len, max_abs_err)`.
fn read_manifest() -> BTreeMap<String, (usize, f64)> {
    let path = golden_dir().join("MANIFEST.txt");
    let text = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden manifest {}: {e}\n{REGEN_HINT}",
            path.display()
        )
    });
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(name), Some(len), Some(err)) = (it.next(), it.next(), it.next()) else {
            panic!("malformed manifest line {line:?}");
        };
        let len: usize = len.parse().unwrap_or_else(|e| panic!("bad len in {line:?}: {e}"));
        let err: f64 = err.parse().unwrap_or_else(|e| panic!("bad err in {line:?}: {e}"));
        out.insert(name.to_string(), (len, err));
    }
    out
}

#[test]
fn every_registry_compressor_is_classified() {
    libpressio::init();
    let registered = libpressio::instance().supported_compressors();
    for name in &registered {
        let in_golden = GOLDEN.contains(&name.as_str());
        let excluded = EXCLUDED.iter().any(|(n, _)| n == name);
        assert!(
            in_golden || excluded,
            "compressor {name:?} is registered but not classified by the golden-stream \
             corpus: add it to GOLDEN in tests/golden_streams.rs (and regenerate with \
             UPDATE_GOLDEN=1), or add it to EXCLUDED with a documented reason"
        );
        assert!(
            !(in_golden && excluded),
            "compressor {name:?} is both GOLDEN and EXCLUDED"
        );
    }
    // Stale entries are as confusing as missing ones.
    for name in GOLDEN.iter().chain(EXCLUDED.iter().map(|(n, _)| n)) {
        assert!(
            registered.iter().any(|r| r == name),
            "{name:?} is classified in tests/golden_streams.rs but no longer registered"
        );
    }
}

/// Regenerate-or-verify: in normal runs, every plugin's freshly encoded
/// stream must be byte-identical to the committed one (and to a second
/// encode in the same process — encoding must be deterministic before a
/// golden file can make sense). With `UPDATE_GOLDEN=1`, rewrite the corpus.
#[test]
fn golden_streams_are_bit_identical() {
    let input = field();
    let dir = golden_dir();

    if update_mode() {
        fs::create_dir_all(&dir).expect("create tests/golden");
        let mut manifest = String::from(
            "# Golden-stream manifest: name  byte_len  max_abs_err\n\
             # Input: datagen::scale_letkf(10, 9, 8, 77), options pressio:rel=1e-3.\n\
             # Regenerate: UPDATE_GOLDEN=1 cargo test --test golden_streams\n",
        );
        for name in GOLDEN {
            let stream = encode(name, &input);
            let err = max_abs_err(&input, &decode(name, &stream, &input));
            fs::write(dir.join(format!("{name}.bin")), &stream).expect(name);
            manifest.push_str(&format!("{name} {} {:?}\n", stream.len(), err));
        }
        fs::write(dir.join("MANIFEST.txt"), manifest).expect("write manifest");
        return;
    }

    let manifest = read_manifest();
    for name in GOLDEN {
        let first = encode(name, &input);
        let second = encode(name, &input);
        assert_eq!(
            first, second,
            "{name}: encoding the same input twice produced different streams — \
             nondeterministic plugins cannot be golden-tested; fix the plugin or move \
             it to EXCLUDED with a reason"
        );
        let path = dir.join(format!("{name}.bin"));
        let golden = fs::read(&path).unwrap_or_else(|e| {
            panic!("{name}: missing golden stream {}: {e}\n{REGEN_HINT}", path.display())
        });
        if first != golden {
            let diff_at = first
                .iter()
                .zip(&golden)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| first.len().min(golden.len()));
            panic!(
                "{name}: encoded stream differs from committed golden stream \
                 ({} bytes now vs {} committed, first difference at byte {diff_at}).\n\
                 This means the on-disk format changed: old archives may no longer decode.\n{REGEN_HINT}",
                first.len(),
                golden.len()
            );
        }
        let (len, _) = manifest
            .get(*name)
            .unwrap_or_else(|| panic!("{name}: missing from MANIFEST.txt\n{REGEN_HINT}"));
        assert_eq!(*len, golden.len(), "{name}: manifest length is stale\n{REGEN_HINT}");
    }
    // Orphaned corpus files mean a plugin was removed without cleanup.
    for entry in fs::read_dir(&dir).expect("tests/golden") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "bin") {
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
            assert!(
                GOLDEN.contains(&stem) || EXTRA_GOLDEN.contains(&stem),
                "orphaned golden stream {}: not in GOLDEN or EXTRA_GOLDEN\n{REGEN_HINT}",
                path.display()
            );
        }
    }
}

/// Pins the *chunked* rans container format: the stream `rans:nthreads=2`
/// emits for the smallest input the adaptive chunk plan still splits in
/// two (2 x 256 KiB). The serial `rans.bin` golden stream cannot cover
/// this path — the letkf field is far below the chunking floor — and the
/// chunk directory (magic, count, per-chunk sections) is a wire contract
/// of its own. The input is deterministic and highly skewed so the
/// committed stream stays a few KiB.
#[test]
fn golden_rans_chunked_stream_is_bit_identical() {
    libpressio::init();
    let raw: Vec<u8> = (0..2 * libpressio::core::MIN_CHUNK_BYTES)
        .map(|i| if i % 113 == 0 { (i / 113 % 7 + 1) as u8 } else { 0 })
        .collect();
    let input = Data::from_bytes(&raw);
    let mut c = libpressio::instance().get_compressor("rans").expect("rans");
    c.set_options(&Options::new().with("rans:nthreads", 2u32))
        .expect("rans:nthreads");
    let stream = c.compress(&input).expect("chunked encode").as_bytes().to_vec();
    // The envelope must carry the chunked container, not the serial frame
    // ("RNS1"): if this stops holding, the plan geometry changed and the
    // pin below is no longer testing the chunk directory.
    assert_ne!(&stream[..4], b"1SNR", "stream fell back to the serial frame");

    let path = golden_dir().join("rans_nthreads2.bin");
    if update_mode() {
        fs::write(&path, &stream).expect("write rans_nthreads2.bin");
        return;
    }
    let golden = fs::read(&path).unwrap_or_else(|e| {
        panic!("missing golden stream {}: {e}\n{REGEN_HINT}", path.display())
    });
    assert_eq!(
        stream, golden,
        "rans chunked container format changed: old archives may no longer \
         decode.\n{REGEN_HINT}"
    );
    // The committed stream must still decode losslessly — with a *serial*
    // handle, since the chunk layout travels in the stream.
    let mut out = Data::owned(input.dtype(), input.dims().to_vec());
    libpressio::instance()
        .get_compressor("rans")
        .expect("rans")
        .decompress(&Data::from_bytes(&golden), &mut out)
        .expect("chunked decode");
    assert_eq!(out.as_bytes(), raw.as_slice());
}

/// The committed streams must still decode, to exactly the round-trip
/// error recorded when the corpus was generated. Decoding is
/// deterministic, so the recorded error is reproduced bit-for-bit; any
/// drift means the decoder changed behavior on existing archives.
#[test]
fn golden_streams_decode_to_recorded_error() {
    let input = field();
    let manifest = read_manifest();
    if update_mode() {
        // golden_streams_are_bit_identical regenerates; nothing to pin here.
        return;
    }
    let abs_bound = REL * value_range(&input.to_f64_vec().expect("f64 view"));
    for name in GOLDEN {
        let (_, recorded) = manifest
            .get(*name)
            .unwrap_or_else(|| panic!("{name}: missing from MANIFEST.txt\n{REGEN_HINT}"));
        let path = golden_dir().join(format!("{name}.bin"));
        let stream = fs::read(&path).unwrap_or_else(|e| {
            panic!("{name}: missing golden stream {}: {e}\n{REGEN_HINT}", path.display())
        });
        let err = max_abs_err(&input, &decode(name, &stream, &input));
        assert_eq!(
            err.to_bits(),
            recorded.to_bits(),
            "{name}: decoding the committed stream gave max abs error {err:?}, but the \
             manifest records {recorded:?} — the decoder's output on existing archives \
             changed.\n{REGEN_HINT}"
        );
        // The recorded error must also respect the generation-time bound —
        // a corpus regenerated from a buggy encoder should not pass review.
        assert!(
            *recorded <= abs_bound * (1.0 + 1e-12),
            "{name}: recorded error {recorded:?} exceeds the pressio:rel={REL} bound \
             ({abs_bound:?}) the corpus was generated under"
        );
    }
}
