//! Determinism of the pooled execution paths.
//!
//! The shared execution engine's contract is that chunk splitting depends
//! only on the *requested* piece count and the input size — never on how
//! many workers the host machine happens to have. These tests pin that
//! down end-to-end for every engine-backed plugin:
//!
//! * `zfp_omp` decodes to exactly the serial `zfp` values for any thread
//!   count (ZFP blocks are coded independently, so chunking cannot change
//!   a single output bit);
//! * `sz_omp` holds the error bound for any thread count, including counts
//!   that do not divide the field;
//! * repeated compression with the same thread count yields byte-identical
//!   streams (reproducible archives);
//! * chunked Huffman and deflate streams decode to the original input, and
//!   a single-piece parallel encode is byte-identical to the serial encode;
//! * across the adaptive plan's serial-fallback boundary: below the byte
//!   threshold every thread request collapses to the explicit nthreads=1
//!   stream bit-for-bit, and above it the split plan still reproduces the
//!   serial values (zfp) or bound (sz).

use libpressio::core::{value_range, OPT_REL};
use libpressio::prelude::*;

const REL: f64 = 1e-3;

/// Thread counts exercised everywhere: serial, even split, and a count
/// that divides neither the element count nor the block count below.
const THREADS: [i64; 3] = [1, 2, 7];

/// A 10x9x8 field: 720 elements, 3x3x2 = 18 ZFP blocks — neither is
/// divisible by 7, so the uneven-chunk paths are always exercised.
fn field() -> Data {
    libpressio::init();
    libpressio::datagen::scale_letkf(10, 9, 8, 77)
}

fn abs_bound(input: &Data) -> f64 {
    REL * value_range(&input.to_f64_vec().expect("f64 view"))
}

fn max_err(a: &Data, b: &Data) -> f64 {
    a.to_f64_vec()
        .expect("f64 view")
        .iter()
        .zip(b.to_f64_vec().expect("f64 view").iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn roundtrip(name: &str, nthreads: Option<i64>, input: &Data) -> (Vec<u8>, Data) {
    let library = libpressio::instance();
    let mut c = library.get_compressor(name).expect(name);
    let mut opts = Options::new().with(OPT_REL, REL);
    if let Some(n) = nthreads {
        opts.set(format!("{name}:nthreads"), n);
    }
    c.set_options(&opts).expect("options");
    let compressed = c.compress(input).expect("compress");
    let mut output = Data::owned(input.dtype(), input.dims().to_vec());
    c.decompress(&compressed, &mut output).expect("decompress");
    (compressed.as_bytes().to_vec(), output)
}

#[test]
fn zfp_pooled_values_match_serial_for_every_thread_count() {
    let input = field();
    let (_, serial) = roundtrip("zfp", None, &input);
    assert!(max_err(&input, &serial) <= abs_bound(&input));
    for nt in THREADS {
        let (_, pooled) = roundtrip("zfp_omp", Some(nt), &input);
        // Blocks are coded independently: chunking must not change a bit.
        assert_eq!(
            serial.as_bytes(),
            pooled.as_bytes(),
            "zfp_omp nthreads={nt} decoded different values than serial zfp"
        );
    }
}

#[test]
fn sz_pooled_holds_bound_for_every_thread_count() {
    let input = field();
    let bound = abs_bound(&input);
    for nt in THREADS {
        let (_, pooled) = roundtrip("sz_omp", Some(nt), &input);
        let err = max_err(&input, &pooled);
        assert!(
            err <= bound * (1.0 + 1e-12),
            "sz_omp nthreads={nt}: max error {err} exceeds bound {bound}"
        );
    }
}

#[test]
fn pooled_streams_are_reproducible() {
    let input = field();
    for name in ["zfp_omp", "sz_omp"] {
        for nt in THREADS {
            let (a, _) = roundtrip(name, Some(nt), &input);
            let (b, _) = roundtrip(name, Some(nt), &input);
            assert_eq!(a, b, "{name} nthreads={nt} stream is not deterministic");
        }
    }
}

#[test]
fn serial_zfp_decodes_pooled_streams() {
    // The chunk directory is part of the zfp envelope, not of the omp
    // variant: the serial plugin must decode any pooled stream.
    let input = field();
    let library = libpressio::instance();
    for nt in THREADS {
        let (stream, pooled) = roundtrip("zfp_omp", Some(nt), &input);
        let mut serial = library.get_compressor("zfp").expect("zfp");
        serial
            .set_options(&Options::new().with(OPT_REL, REL))
            .expect("options");
        let mut output = Data::owned(input.dtype(), input.dims().to_vec());
        serial
            .decompress(&Data::from_bytes(&stream), &mut output)
            .expect("cross-decode");
        assert_eq!(output.as_bytes(), pooled.as_bytes(), "nthreads={nt}");
    }
}

#[test]
fn chunked_huffman_is_deterministic_and_lossless() {
    use libpressio::codecs::huffman;
    // Large enough that the per-chunk minimum (64 Ki symbols) still allows
    // real splitting; 200_003 is prime, so every piece count is uneven.
    let symbols: Vec<u32> = (0..200_003u32).map(|i| i.wrapping_mul(31) % 257).collect();
    let serial = huffman::encode(&symbols, 257).expect("encode");
    assert_eq!(huffman::decode(&serial).expect("decode"), symbols);
    // One piece is the serial path, byte for byte.
    let one = huffman::encode_par(&symbols, 257, 1).expect("encode_par 1");
    assert_eq!(one, serial);
    for pieces in [2usize, 7] {
        let a = huffman::encode_par(&symbols, 257, pieces).expect("encode_par");
        let b = huffman::encode_par(&symbols, 257, pieces).expect("encode_par");
        assert_eq!(a, b, "pieces={pieces} stream not deterministic");
        assert_eq!(huffman::decode(&a).expect("decode"), symbols, "pieces={pieces}");
    }
}

#[test]
fn chunked_deflate_is_deterministic_and_lossless() {
    use libpressio::codecs::deflate;
    let data: Vec<u8> = (0..300_001usize).map(|i| (i * 7 % 251) as u8).collect();
    let serial = deflate::compress(&data).expect("compress");
    assert_eq!(deflate::decompress(&serial).expect("decompress"), data);
    let one = deflate::compress_par(&data, 1).expect("compress_par 1");
    assert_eq!(one, serial);
    for pieces in [2usize, 7] {
        let a = deflate::compress_par(&data, pieces).expect("compress_par");
        let b = deflate::compress_par(&data, pieces).expect("compress_par");
        assert_eq!(a, b, "pieces={pieces} stream not deterministic");
        assert_eq!(deflate::decompress(&a).expect("decompress"), data, "pieces={pieces}");
    }
}

/// Chunked rANS mirrors the Huffman/deflate contract — nthreads 1/2/7
/// bit-identity (pieces=1 collapses to the serial frame), a non-divisible
/// chunk count, decode back to the input — plus the serial-fallback
/// boundary of its own plan: rans chunks at 1 B/elem with the 256 KiB
/// floor, so 2 x 256 KiB is the smallest split and one byte under it must
/// be byte-identical to the serial encode at any piece count.
#[test]
fn chunked_rans_is_deterministic_and_lossless() {
    use libpressio::codecs::rans;
    // 3 x 256 KiB + a prime tail: every piece count divides unevenly.
    let data: Vec<u8> = (0..3 * libpressio::core::MIN_CHUNK_BYTES + 101)
        .map(|i| (i * 7 % 251) as u8)
        .collect();
    let serial = rans::compress(&data).expect("compress");
    assert_eq!(rans::decompress(&serial).expect("decompress"), data);
    let one = rans::compress_par(&data, 1).expect("compress_par 1");
    assert_eq!(one, serial);
    for pieces in [2usize, 7] {
        let a = rans::compress_par(&data, pieces).expect("compress_par");
        let b = rans::compress_par(&data, pieces).expect("compress_par");
        assert_eq!(a, b, "pieces={pieces} stream not deterministic");
        assert_eq!(rans::decompress(&a).expect("decompress"), data, "pieces={pieces}");
    }
}

#[test]
fn rans_serial_fallback_boundary_is_bit_exact() {
    use libpressio::codecs::rans;
    let boundary = 2 * libpressio::core::MIN_CHUNK_BYTES;
    let make = |len: usize| -> Vec<u8> { (0..len).map(|i| (i * 31 % 253) as u8).collect() };
    // One byte under the threshold: every piece count collapses to the
    // serial frame, byte for byte.
    let under = make(boundary - 1);
    let serial_under = rans::compress(&under).expect("compress");
    for pieces in [2usize, 7] {
        assert_eq!(
            rans::compress_par(&under, pieces).expect("compress_par"),
            serial_under,
            "pieces={pieces}: under the fallback threshold the stream must be \
             bit-identical to the serial encode"
        );
    }
    // At the threshold the plan must actually split: the chunked container
    // differs from the serial frame but still decodes to the input.
    let over = make(boundary);
    let split = rans::compress_par(&over, 2).expect("compress_par");
    assert_ne!(
        split,
        rans::compress(&over).expect("compress"),
        "at the fallback threshold the plan must emit the chunked container"
    );
    assert_eq!(rans::decompress(&split).expect("decompress"), over);
}

/// Handle reuse after cancellation: a memory-budget trip
/// (`ErrorCode::Cancelled`, terminal) aborts a guarded pooled compress
/// mid-kernel, yet the same handle — budget disarmed — must then produce
/// a stream byte-identical to a fresh handle's. Cancellation may abort a
/// run; it must never poison the next one.
#[test]
fn guarded_pooled_handle_is_bit_identical_after_cancellation() {
    let input = field();
    let library = libpressio::instance();
    let arm = || {
        let mut c = library.get_compressor("guard").expect("guard");
        c.set_options(
            &Options::new()
                .with("guard:compressor", "sz_omp")
                .with("sz_omp:nthreads", 4i64),
        )
        .expect("options");
        c.set_options_unchecked(&Options::new().with(OPT_REL, REL))
            .expect("error bound");
        c
    };

    let mut reused = arm();
    reused
        .set_options(&Options::new().with("guard:memory_budget_bytes", 64u64))
        .expect("arm budget");
    let err = reused
        .compress(&input)
        .expect_err("a 64-byte budget must trip inside the quantizer");
    assert_eq!(err.code(), libpressio::ErrorCode::Cancelled, "got: {err}");

    reused
        .set_options(&Options::new().with("guard:memory_budget_bytes", 0u64))
        .expect("disarm budget");
    let reused_stream = reused.compress(&input).expect("reused compress");
    let mut reused_out = Data::owned(input.dtype(), input.dims().to_vec());
    reused
        .decompress(&reused_stream, &mut reused_out)
        .expect("reused decompress");

    let mut fresh = arm();
    let fresh_stream = fresh.compress(&input).expect("fresh compress");
    assert_eq!(
        reused_stream.as_bytes(),
        fresh_stream.as_bytes(),
        "a cancelled run must not change what the handle produces next"
    );
    let mut fresh_out = Data::owned(input.dtype(), input.dims().to_vec());
    fresh
        .decompress(&fresh_stream, &mut fresh_out)
        .expect("fresh decompress");
    assert_eq!(reused_out.as_bytes(), fresh_out.as_bytes());
}

/// A field sized so the adaptive chunk plan actually splits for both
/// pooled plugins: 52^3 = 140_608 elements is 562_432 bytes at f32 width
/// (sz_omp's planning unit) and 1_124_864 bytes at promoted-f64 width
/// (zfp_omp's), both over the engine's 512 KiB serial-fallback threshold.
/// The small [`field`] above never engages the pool, so these tests are
/// the ones that exercise the real multi-chunk encode paths.
fn splitting_field() -> Data {
    libpressio::init();
    libpressio::datagen::scale_letkf(52, 52, 52, 77)
}

#[test]
fn pooled_values_match_serial_when_the_plan_splits() {
    let input = splitting_field();
    let (_, serial) = roundtrip("zfp", None, &input);
    assert!(max_err(&input, &serial) <= abs_bound(&input));
    let bound = abs_bound(&input);
    for nt in THREADS {
        // ZFP blocks are coded independently: a genuinely split plan must
        // still decode to exactly the serial values, bit for bit.
        let (_, pooled) = roundtrip("zfp_omp", Some(nt), &input);
        assert_eq!(
            serial.as_bytes(),
            pooled.as_bytes(),
            "zfp_omp nthreads={nt} decoded different values than serial zfp on a split plan"
        );
        // Lorenzo prediction re-seeds at sz chunk boundaries, so sz_omp
        // values legitimately vary with the plan — the bound may not.
        let (_, sz) = roundtrip("sz_omp", Some(nt), &input);
        let err = max_err(&input, &sz);
        assert!(
            err <= bound * (1.0 + 1e-12),
            "sz_omp nthreads={nt} on a split plan: max error {err} exceeds bound {bound}"
        );
    }
}

#[test]
fn pooled_streams_are_reproducible_when_the_plan_splits() {
    let input = splitting_field();
    for name in ["zfp_omp", "sz_omp"] {
        for nt in THREADS {
            let (a, _) = roundtrip(name, Some(nt), &input);
            let (b, _) = roundtrip(name, Some(nt), &input);
            assert_eq!(
                a, b,
                "{name} nthreads={nt} stream is not deterministic on a split plan"
            );
        }
    }
}

/// Streams across the serial-fallback boundary. Below the threshold the
/// adaptive plan collapses *every* thread request to one piece, so the
/// stream must be bit-identical to an explicit nthreads=1 encode — the
/// fallback is invisible on the wire. Above it the plan splits, the chunk
/// directory grows, and the stream legitimately differs from the serial
/// one — but it must still decode to the same values (zfp) or within the
/// same bound (sz). Edge pairs straddle each plugin's planning width:
/// zfp_omp plans at 8 B/elem (40^3 = 512_000 B under, 41^3 = 551_368 B
/// over the 524_288 B threshold), sz_omp at f32 width (50^3 under,
/// 51^3 = 530_604 B over).
#[test]
fn serial_fallback_boundary_is_bit_exact() {
    libpressio::init();
    for (name, under_edge, over_edge) in [("zfp_omp", 40usize, 41usize), ("sz_omp", 50, 51)] {
        let under = libpressio::datagen::scale_letkf(under_edge, under_edge, under_edge, 77);
        let (one, _) = roundtrip(name, Some(1), &under);
        for nt in [2i64, 7] {
            let (stream, _) = roundtrip(name, Some(nt), &under);
            assert_eq!(
                stream, one,
                "{name} {under_edge}^3 nthreads={nt}: under the fallback threshold the \
                 stream must be bit-identical to the explicit nthreads=1 encode"
            );
        }
        let over = libpressio::datagen::scale_letkf(over_edge, over_edge, over_edge, 77);
        let (one_over, serial_out) = roundtrip(name, Some(1), &over);
        let (split_stream, split_out) = roundtrip(name, Some(2), &over);
        assert_ne!(
            split_stream, one_over,
            "{name} {over_edge}^3 nthreads=2: over the threshold the plan must actually \
             split (chunk directory differs from the serial stream)"
        );
        if name == "zfp_omp" {
            assert_eq!(
                serial_out.as_bytes(),
                split_out.as_bytes(),
                "zfp_omp {over_edge}^3: split plan changed decoded values"
            );
        } else {
            let bound = abs_bound(&over);
            let err = max_err(&over, &split_out);
            assert!(
                err <= bound * (1.0 + 1e-12),
                "sz_omp {over_edge}^3 split plan: max error {err} exceeds bound {bound}"
            );
        }
    }
}

#[test]
fn byte_codec_nthreads_option_roundtrips_losslessly() {
    let input = field();
    let library = libpressio::instance();
    for name in ["huffman", "deflate", "rans"] {
        for nt in THREADS {
            let mut c = library.get_compressor(name).expect(name);
            c.set_options(&Options::new().with(format!("{name}:nthreads"), nt))
                .expect("options");
            let compressed = c.compress(&input).expect("compress");
            let mut output = Data::owned(input.dtype(), input.dims().to_vec());
            c.decompress(&compressed, &mut output).expect("decompress");
            assert_eq!(
                input.as_bytes(),
                output.as_bytes(),
                "{name} nthreads={nt} is not lossless"
            );
        }
    }
}
