//! Cross-crate integration: every registered compressor honors its
//! contract on every synthetic dataset.
//!
//! * error-bounded lossy plugins: `|x - x'|∞ <= bound` (the library's
//!   central promise);
//! * lossless plugins: bit-exact roundtrip;
//! * every stream decodes on a *fresh* instance (streams are
//!   self-describing, no hidden instance state).

use libpressio::prelude::*;

/// Leaf compressors that honor `pressio:abs` with an L-infinity guarantee.
const ERROR_BOUNDED: [&str; 7] = [
    "sz",
    "sz_threadsafe",
    "sz_omp",
    "sz_interp",
    "zfp",
    "mgard",
    "linear_quantizer",
];

/// Bit-exact lossless compressors.
const LOSSLESS: [&str; 8] = [
    "noop", "rle", "lz", "huffman", "deflate", "shuffle", "bitshuffle", "blosc",
];

fn datasets() -> Vec<(&'static str, Data)> {
    libpressio::init();
    vec![
        ("hurricane", libpressio::datagen::hurricane_cloud(8, 48, 48, 1)),
        ("nyx", libpressio::datagen::nyx_density(24, 2)),
        ("letkf", libpressio::datagen::scale_letkf(6, 40, 40, 3)),
        ("hacc", libpressio::datagen::hacc_positions(40_000, 128.0, 4)),
    ]
}

fn max_err(a: &Data, b: &Data) -> f64 {
    a.to_f64_vec()
        .unwrap()
        .iter()
        .zip(b.to_f64_vec().unwrap().iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn error_bounded_compressors_hold_their_bound_on_all_datasets() {
    let library = libpressio::instance();
    for (dname, input) in datasets() {
        for comp in ERROR_BOUNDED {
            for bound in [1e-1, 1e-3] {
                let mut c = library.get_compressor(comp).unwrap();
                c.set_options(&Options::new().with(pressio_core::OPT_ABS, bound))
                    .unwrap();
                let compressed = c
                    .compress(&input)
                    .unwrap_or_else(|e| panic!("{comp} on {dname}: {e}"));
                // Decompress on a FRESH instance: the stream must be
                // self-contained.
                let mut fresh = library.get_compressor(comp).unwrap();
                let mut out = Data::owned(input.dtype(), input.dims().to_vec());
                fresh
                    .decompress(&compressed, &mut out)
                    .unwrap_or_else(|e| panic!("{comp} on {dname}: {e}"));
                let err = max_err(&input, &out);
                // f32 storage granularity allows half-an-ulp on top.
                let slop = if input.dtype() == DType::F32 { 1e-5 } else { 0.0 };
                assert!(
                    err <= bound + slop,
                    "{comp} on {dname} bound {bound}: max err {err}"
                );
            }
        }
    }
}

#[test]
fn lossless_compressors_are_bit_exact_on_all_datasets() {
    let library = libpressio::instance();
    for (dname, input) in datasets() {
        for comp in LOSSLESS {
            let mut c = library.get_compressor(comp).unwrap();
            let compressed = c
                .compress(&input)
                .unwrap_or_else(|e| panic!("{comp} on {dname}: {e}"));
            let mut fresh = library.get_compressor(comp).unwrap();
            let mut out = Data::owned(input.dtype(), input.dims().to_vec());
            fresh
                .decompress(&compressed, &mut out)
                .unwrap_or_else(|e| panic!("{comp} on {dname}: {e}"));
            assert_eq!(
                out.as_bytes(),
                input.as_bytes(),
                "{comp} on {dname}: lossless roundtrip differs"
            );
        }
    }
}

#[test]
fn float_specialists_are_bit_exact_including_special_values() {
    let library = libpressio::instance();
    let mut vals: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 1e3).collect();
    vals[7] = f64::NAN;
    vals[13] = f64::INFINITY;
    vals[17] = -0.0;
    vals[19] = f64::MIN_POSITIVE / 8.0; // subnormal
    let input = Data::from_vec(vals, vec![1000]).unwrap();
    for comp in ["fpzip", "delta"] {
        let mut c = library.get_compressor(comp).unwrap();
        let compressed = c.compress(&input).unwrap();
        let mut out = Data::owned(DType::F64, vec![1000]);
        c.decompress(&compressed, &mut out).unwrap();
        assert_eq!(out.as_bytes(), input.as_bytes(), "{comp}");
    }
}

#[test]
fn value_range_relative_bounds_scale_per_dataset() {
    let library = libpressio::instance();
    for (dname, input) in datasets() {
        let range = pressio_core::value_range(&input.to_f64_vec().unwrap());
        for comp in ["sz", "zfp", "mgard"] {
            let mut c = library.get_compressor(comp).unwrap();
            c.set_options(&Options::new().with(pressio_core::OPT_REL, 1e-3f64))
                .unwrap();
            let compressed = c.compress(&input).unwrap();
            let mut out = Data::owned(input.dtype(), input.dims().to_vec());
            c.decompress(&compressed, &mut out).unwrap();
            let err = max_err(&input, &out);
            assert!(
                err <= 1e-3 * range * 1.001 + 1e-7,
                "{comp} on {dname}: err {err} vs range {range}"
            );
        }
    }
}

#[test]
fn compressed_streams_reject_cross_plugin_decompression() {
    let library = libpressio::instance();
    let input = libpressio::datagen::nyx_density(16, 9);
    let mut sz = library.get_compressor("sz").unwrap();
    sz.set_options(&Options::new().with(pressio_core::OPT_ABS, 1e-3f64))
        .unwrap();
    let stream = sz.compress(&input).unwrap();
    let mut out = Data::owned(input.dtype(), input.dims().to_vec());
    for other in ["zfp", "mgard", "deflate", "fpzip"] {
        let mut c = library.get_compressor(other).unwrap();
        assert!(
            c.decompress(&stream, &mut out).is_err(),
            "{other} accepted an sz stream"
        );
    }
}

#[test]
fn every_compressor_reports_configuration_and_version() {
    let library = libpressio::instance();
    for name in library.supported_compressors() {
        let c = library.get_compressor(&name).unwrap();
        let cfg = c.get_configuration();
        let ts = cfg
            .get_as::<String>(&format!("{name}:pressio:thread_safe"))
            .unwrap();
        assert!(ts.is_some(), "{name} missing thread_safe in configuration");
        assert!(
            cfg.get_as::<String>(&format!("{name}:pressio:version"))
                .unwrap()
                .is_some(),
            "{name} missing version"
        );
    }
}
