//! Differential tests of the two SZ lossless-tail backends.
//!
//! `sz:lossless` selects the pass applied over SZ's entropy-coded and
//! verbatim sections: `deflate` (LZ77 + canonical Huffman, the historical
//! default) or `rans` (LZ77 + static-table interleaved rANS). Swapping the
//! tail must be invisible to callers — the decompressed values, and
//! therefore every error metric, must be *identical* byte for byte, since
//! the tail is lossless and everything upstream of it is unchanged. The
//! only things allowed to differ are the compressed bytes themselves.
//!
//! On ratio, the rANS tail exists to be at least competitive: these tests
//! record the ratio delta on every corpus entry and fail if rans is ever
//! worse than deflate-lite by more than 1%.
//!
//! A second battery drives seeded `mutate_stream` damage (bitflip,
//! truncate, extend, zero_region) through the standalone `rans` codec and
//! through `sz` streams carrying the rANS backend tag: decoding must
//! produce structured errors (or a clean decode when the damage misses
//! anything load-bearing), never a panic, hang, or unbounded allocation.

use libpressio::core::OPT_REL;
use libpressio::meta::{mutate_stream, run_with_deadline, ALL_FAULT_MODES};
use libpressio::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The same value-range-relative bound the golden corpus pins.
const REL: f64 = 1e-3;

/// Every corpus input the backends are differenced on: the golden-stream
/// field first, then the other datagen families (smooth, turbulent,
/// multi-scale, particle) so both tails see easy and hostile sections.
fn corpus() -> Vec<(&'static str, Data)> {
    libpressio::init();
    vec![
        ("scale_letkf_golden", libpressio::datagen::scale_letkf(10, 9, 8, 77)),
        ("scale_letkf_large", libpressio::datagen::scale_letkf(16, 24, 24, 77)),
        ("nyx_density", libpressio::datagen::nyx_density(16, 13)),
        ("miranda_velocity", libpressio::datagen::miranda_velocity(12, 16, 16, 5)),
        ("hurricane_cloud", libpressio::datagen::hurricane_cloud(8, 24, 24, 9)),
        ("hacc_positions", libpressio::datagen::hacc_positions(4096, 64.0, 3)),
    ]
}

fn sz_with_backend(backend: &str) -> CompressorHandle {
    let mut c = libpressio::instance().get_compressor("sz").expect("sz");
    c.set_options(
        &Options::new()
            .with(OPT_REL, REL)
            .with("sz:lossless", backend),
    )
    .expect("sz options");
    c
}

fn roundtrip(backend: &str, input: &Data) -> (usize, Data) {
    let mut c = sz_with_backend(backend);
    let compressed = c.compress(input).expect(backend);
    let mut output = Data::owned(input.dtype(), input.dims().to_vec());
    c.decompress(&compressed, &mut output).expect(backend);
    (compressed.size_in_bytes(), output)
}

fn error_metrics(input: &Data, output: &Data) -> (f64, f64) {
    let a = input.to_f64_vec().expect("f64 view");
    let b = output.to_f64_vec().expect("f64 view");
    let max_abs = a
        .iter()
        .zip(&b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max);
    let mse = a
        .iter()
        .zip(&b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        / a.len() as f64;
    (max_abs, mse)
}

/// The backend swap must be invisible downstream: identical decompressed
/// bytes, identical error metrics, and a compressed size never more than
/// 1% worse than deflate-lite, on every corpus input.
#[test]
fn rans_and_deflate_tails_decode_identically() {
    for (name, input) in corpus() {
        let (deflate_size, deflate_out) = roundtrip("deflate", &input);
        let (rans_size, rans_out) = roundtrip("rans", &input);

        assert_eq!(
            deflate_out.as_bytes(),
            rans_out.as_bytes(),
            "{name}: decompressed output differs between lossless tails — the \
             tail leaked into the reconstruction"
        );
        let (deflate_max, deflate_mse) = error_metrics(&input, &deflate_out);
        let (rans_max, rans_mse) = error_metrics(&input, &rans_out);
        assert_eq!(
            deflate_max.to_bits(),
            rans_max.to_bits(),
            "{name}: max abs error differs between tails"
        );
        assert_eq!(
            deflate_mse.to_bits(),
            rans_mse.to_bits(),
            "{name}: MSE differs between tails"
        );

        let delta_pct =
            (rans_size as f64 - deflate_size as f64) / deflate_size as f64 * 100.0;
        println!(
            "{name}: deflate {deflate_size} B, rans {rans_size} B, delta {delta_pct:+.3}%"
        );
        assert!(
            rans_size as f64 <= deflate_size as f64 * 1.01,
            "{name}: rans stream ({rans_size} B) is more than 1% larger than \
             deflate's ({deflate_size} B)"
        );
    }
}

/// Drive every fault mode over streams from both the standalone `rans`
/// codec and `sz` with the rANS tail, with a fixed seed per case so any
/// failure reproduces bit for bit. Decodes run under a watchdog deadline
/// and a memory budget: the contract is structured errors or clean
/// decodes, never panics, hangs, or absurd allocations.
#[test]
fn seeded_stream_damage_yields_structured_errors() {
    libpressio::init();
    let field = libpressio::datagen::scale_letkf(10, 9, 8, 77);

    // (label, compressor, stack options, clean stream)
    let mut targets: Vec<(&str, &str, Options, Vec<u8>)> = Vec::new();
    {
        let mut c = libpressio::instance().get_compressor("rans").expect("rans");
        let clean = c.compress(&Data::from_bytes(field.as_bytes())).expect("rans encode");
        targets.push(("rans", "rans", Options::new(), clean.as_bytes().to_vec()));
    }
    {
        let opts = Options::new().with(OPT_REL, REL).with("sz:lossless", "rans");
        let mut c = libpressio::instance().get_compressor("sz").expect("sz");
        c.set_options(&opts).expect("sz options");
        let clean = c.compress(&field).expect("sz encode");
        targets.push(("sz[lossless=rans]", "sz", opts, clean.as_bytes().to_vec()));
    }

    for (label, name, opts, clean) in targets {
        for mode in ALL_FAULT_MODES {
            for case in 0u64..24 {
                // One RNG stream per (mode, case): failures name their case.
                let mut rng = StdRng::seed_from_u64(
                    0x5261_6E44 ^ (case << 8) ^ mode.name().len() as u64,
                );
                let intensity = rng.gen_range(1..48u32);
                let mutated = mutate_stream(&clean, mode, intensity, &mut rng);
                let dtype = field.dtype();
                let dims = field.dims().to_vec();
                let name = name.to_string();
                let opts = opts.clone();
                let outcome = run_with_deadline(5_000, "rans-differential", move || {
                    if let Some(token) = libpressio::core::cancel::current() {
                        token.set_memory_budget(256 << 20);
                    }
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                        let mut c = libpressio::instance()
                            .get_compressor(&name)
                            .expect("target");
                        c.set_options(&opts).expect("target options");
                        let mut out = Data::owned(dtype, dims);
                        c.decompress(&Data::from_bytes(&mutated), &mut out).map(|_| ())
                    }))
                });
                match outcome {
                    // Deadline/cancellation errors from the watchdog are
                    // structured too, so a plain Err is a pass…
                    Err(_) => {}
                    // …a decode error is the expected rejection…
                    Ok(Ok(Err(_))) | Ok(Ok(Ok(()))) => {}
                    // …but an unwind is exactly what must never happen.
                    Ok(Err(_)) => panic!(
                        "{label}: decode panicked on {} damage, case {case}",
                        mode.name()
                    ),
                }
            }
        }
    }
}
