//! Deadline propagation through the execution engine — the
//! `guard:timeout_ms` acceptance scenario.
//!
//! A guarded pooled compressor (`sz_omp`, 4 threads, a 128^3 field) armed
//! with a deadline far below the real compression time must:
//!
//! 1. surface `ErrorCode::Timeout` from `compress` (the watchdog trips the
//!    job's cancel token at the deadline);
//! 2. actually *stop* the in-flight chunk work — every worker observes the
//!    tripped token at its next chunk boundary or kernel checkpoint, and
//!    the deadline worker re-registers on the idle list instead of running
//!    detached (verified through `watchdog_stats`);
//! 3. leave the handle reusable: with the deadline disarmed, the same
//!    handle completes a clean round trip byte-identical to a fresh
//!    handle's;
//! 4. reuse idle deadline workers across repeated timeouts instead of
//!    spawning a new thread per run.
//!
//! Everything lives in one test function: the watchdog pool and the trace
//! collector are process-global, so interleaving parallel test threads
//! would make the stability assertions racy.

use libpressio::core::{trace, watchdog_stats, ErrorCode};
use libpressio::prelude::*;

fn field() -> Data {
    libpressio::init();
    libpressio::datagen::scale_letkf(128, 128, 128, 77)
}

fn guarded_sz_omp(timeout_ms: u64) -> CompressorHandle {
    let library = libpressio::instance();
    let mut c = library.get_compressor("guard").expect("guard");
    c.set_options(
        &Options::new()
            .with("guard:compressor", "sz_omp")
            .with("sz_omp:nthreads", 4i64)
            .with("guard:timeout_ms", timeout_ms),
    )
    .expect("options");
    c.set_options_unchecked(&Options::new().with("pressio:abs", 1e-3f64))
        .expect("error bound");
    c
}

/// Poll (bounded) until the deadline-watchdog pool reads fully idle: a
/// worker still busy long after its run was cancelled would mean the old
/// detach-on-timeout behavior is back.
fn watchdogs_drained() -> bool {
    for attempt in 0..500u64 {
        let (spawned, idle) = watchdog_stats();
        if idle >= spawned {
            return true;
        }
        std::thread::sleep(std::time::Duration::from_millis(attempt.min(10)));
    }
    false
}

#[test]
fn deadline_stops_pooled_compress_and_handle_recovers() {
    let input = field();

    // --- 1+2: the deadline fires and cooperatively stops the work -------
    trace::clear();
    trace::enable();
    let mut c = guarded_sz_omp(5);
    let err = c
        .compress(&input)
        .expect_err("a 5 ms deadline on a 128^3 pooled compress must fire");
    assert_eq!(err.code(), ErrorCode::Timeout, "unexpected error: {err}");
    assert!(
        watchdogs_drained(),
        "no thread may be left running: the cancelled run must release its \
         deadline worker back to the idle list"
    );
    let report = trace::take();
    trace::disable();
    let counter = |name: &str| {
        report
            .counters
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.value)
            .unwrap_or(0)
    };
    assert!(
        counter("exec:deadline_cancel") >= 1,
        "the watchdog must trip the job token at the deadline"
    );
    assert!(
        counter("guard:timeout") >= 1,
        "the guard must account the run as timed out"
    );

    // --- 4: repeated deadlines reuse idle workers ----------------------
    for _ in 0..3 {
        let err = c.compress(&input).expect_err("deadline must keep firing");
        assert_eq!(err.code(), ErrorCode::Timeout);
        assert!(watchdogs_drained(), "worker must come back after every trip");
    }
    let (spawned_before, _) = watchdog_stats();
    for _ in 0..3 {
        let _ = c.compress(&input).expect_err("deadline must keep firing");
        assert!(watchdogs_drained());
    }
    let (spawned_after, idle_after) = watchdog_stats();
    assert_eq!(
        spawned_before, spawned_after,
        "steady-state timeouts must reuse idle deadline workers, not spawn"
    );
    assert_eq!(spawned_after, idle_after, "every spawned worker ends idle");

    // --- 3: the same handle recovers, bit-identical to a fresh one -----
    c.set_options(&Options::new().with("guard:timeout_ms", 0u64))
        .expect("disarm deadline");
    let reused_stream = c
        .compress(&input)
        .expect("the timed-out handle must serve a clean compress");
    let mut reused_out = Data::owned(input.dtype(), input.dims().to_vec());
    c.decompress(&reused_stream, &mut reused_out)
        .expect("the timed-out handle must serve a clean decompress");

    let mut fresh = guarded_sz_omp(0);
    let fresh_stream = fresh.compress(&input).expect("fresh compress");
    let mut fresh_out = Data::owned(input.dtype(), input.dims().to_vec());
    fresh
        .decompress(&fresh_stream, &mut fresh_out)
        .expect("fresh decompress");

    assert_eq!(
        reused_stream.as_bytes(),
        fresh_stream.as_bytes(),
        "seven cancelled runs must not change what the handle produces"
    );
    assert_eq!(reused_out.as_bytes(), fresh_out.as_bytes());

    // The guard's introspection surface accounted every trip.
    let conf = c.get_configuration();
    assert!(
        conf.get_as::<u64>("guard:timeouts")
            .expect("typed counter")
            .unwrap_or(0)
            >= 7,
        "all timed-out attempts must be visible on guard:timeouts"
    );
}
