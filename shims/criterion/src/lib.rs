//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — as a small wall-clock harness printing mean time per iteration.
//! No statistics, plots, or baselines: enough to compile and run
//! `cargo bench` offline with honest timings.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A two-part benchmark id (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Id from a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timer handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(name: &str, samples: u64, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate the iteration count to ~10ms per sample, then measure.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut timed_iters = 0u64;
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        best = best.min(b.elapsed / iters as u32);
        total += b.elapsed;
        timed_iters += iters;
    }
    let mean = total / timed_iters.max(1) as u32;
    let rate = throughput
        .map(|t| match t {
            Throughput::Bytes(n) => format!(
                "  {:>10.1} MiB/s",
                n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0)
            ),
            Throughput::Elements(n) => {
                format!("  {:>10.1} Melem/s", n as f64 / mean.as_secs_f64() / 1e6)
            }
        })
        .unwrap_or_default();
    println!("bench {name:<48} mean {mean:>12?}  best {best:>12?}{rate}");
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n as u64;
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.samples, self.throughput, &mut f);
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.samples, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Finish the group (marker; measurements are printed eagerly).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, 10, None, &mut f);
        self
    }
}

/// Bundle bench functions into a runner (`criterion_group!` analog).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce `main` from bench groups (`criterion_main!` analog).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.throughput(Throughput::Bytes(1024));
        let data = vec![3u8; 1024];
        group.bench_function("sum", |b| {
            b.iter(|| data.iter().map(|&x| x as u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("sum", "input"), &data, |b, d| {
            b.iter(|| d.len())
        });
        group.finish();
    }
}
