//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` / `Scope::spawn` / `ScopedJoinHandle` are
//! provided — the subset the workspace's parallel meta-compressors use —
//! implemented over `std::thread::scope` (stable since Rust 1.63).

/// Scoped threads (`crossbeam::thread` API subset).
pub mod thread {
    use std::any::Any;

    /// Result type of [`scope`]: `Err` carries a panic payload.
    pub type ScopeResult<R> = Result<R, Box<dyn Any + Send + 'static>>;

    /// A scope in which borrowed-data threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result (`Err` on
        /// panic, as with `std::thread::JoinHandle::join`).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. As in crossbeam, the closure receives the
        /// scope itself so nested spawns are possible.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope allowing borrowed-data threads; all spawned
    /// threads are joined before this returns. Unlike crossbeam this never
    /// returns `Err` — panics of unjoined threads propagate as panics (the
    /// workspace always `.expect()`s the result, so the behavior matches).
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u32, 2, 3, 4];
            let total: u32 = super::scope(|scope| {
                let (lo, hi) = data.split_at(data.len() / 2);
                let a = scope.spawn(|_| lo.iter().sum::<u32>());
                let b = scope.spawn(|_| hi.iter().sum::<u32>());
                a.join().expect("join a") + b.join().expect("join b")
            })
            .expect("scope");
            assert_eq!(total, 10);
        }

        #[test]
        fn nested_spawn_through_scope_arg() {
            let n: u32 = super::scope(|scope| {
                scope
                    .spawn(|inner| inner.spawn(|_| 21u32).join().expect("inner") * 2)
                    .join()
                    .expect("outer")
            })
            .expect("scope");
            assert_eq!(n, 42);
        }

        #[test]
        fn joined_panic_is_an_err_not_a_crash() {
            let r = super::scope(|scope| {
                let h = scope.spawn(|_| -> u32 { panic!("worker died") });
                h.join()
            })
            .expect("scope");
            assert!(r.is_err());
        }
    }
}
