//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over integer and float `Range`s — the surface the
//! datagen and injection code uses. The generator is splitmix64-seeded
//! xoshiro256**, deterministic across platforms, which is all the synthetic
//! dataset generators need (they are seeded stand-ins, not cryptography).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types into which a `Range<T>` can be uniformly sampled.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[low, high)`; panics when `low >= high`
    /// (matching `rand`'s contract).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Widening multiply maps a 64-bit word onto [0, span) with
                // negligible bias for the spans used here.
                let word = rng.next_u64() as u128;
                let off = (word * span) >> 64;
                (low as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                // 53 (resp. 24) explicit mantissa bits of uniformity.
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = low + (high - low) * unit;
                if v >= high { <$t>::from_bits(high.to_bits() - 1) } else { v }
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open `Range`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_range(self, 0.0, 1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (`rand::rngs` analog).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let r = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i32..7);
            assert!((-5..7).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn float_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..10_000 {
            let f = rng.gen_range(0.0f64..1.0);
            lo_seen |= f < 0.1;
            hi_seen |= f > 0.9;
        }
        assert!(lo_seen && hi_seen);
    }
}
