//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds without crates.io access, so this crate provides a
//! miniature property-testing harness with the `proptest` API subset the
//! test suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`Strategy`] implemented for `any::<T>()`, numeric `Range`s, tuples,
//!   string "regexes" (a small class/repetition subset), and
//!   [`collection::vec`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`,
//! * [`ProptestConfig::with_cases`].
//!
//! There is no shrinking: a failing case panics immediately with the seed
//! and case index in the panic message, which is reproducible because the
//! generator is fully deterministic (derived from the test name).

use std::ops::Range;

pub mod test_runner {
    //! Runner configuration and the deterministic test RNG.

    /// Configuration for a `proptest!` block (`ProptestConfig` analog).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property is run with.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// Deterministic splitmix64 RNG driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derive a generator from a test-name hash and case index.
        pub fn deterministic(name_hash: u64, case: u64) -> TestRng {
            TestRng {
                state: name_hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform index in `[0, n)`; `n` must be non-zero.
        pub fn index(&mut self, n: usize) -> usize {
            ((self.next_u64() as u128 * n as u128) >> 64) as usize
        }
    }

    /// FNV-1a hash of a test name, for seed derivation in the macro.
    pub fn hash_name(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

pub use test_runner::Config as ProptestConfig;
use test_runner::TestRng;

/// A generator of test values. Unlike real proptest there is no shrink
/// tree; `generate` produces the value directly.
pub trait Strategy {
    /// The type of the generated values.
    type Value;
    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

// ------------------------------------------------------------------ any::<T>

/// Types with a full-domain default strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value of the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The default strategy of `T` (`proptest::prelude::any` analog).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Arbitrary bit patterns, except NaN (matching proptest's default
        // f32 domain which tests rely on for bitwise comparisons).
        let v = f32::from_bits(rng.next_u64() as u32);
        if v.is_nan() {
            f32::INFINITY.copysign(v)
        } else {
            v
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let v = f64::from_bits(rng.next_u64());
        if v.is_nan() {
            f64::INFINITY.copysign(v)
        } else {
            v
        }
    }
}

// -------------------------------------------------------------- Range<T>

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = self.start + (self.end - self.start) * unit;
                if v >= self.end {
                    <$t>::from_bits(self.end.to_bits() - 1)
                } else {
                    v
                }
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

// ---------------------------------------------------------------- tuples

macro_rules! impl_strategy_tuple {
    ($(($($s:ident : $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

// ------------------------------------------------------- string "regex"

/// `&str` strategies are tiny regexes: literals, `[a-z0-9]`-style classes,
/// and `{m,n}` repetition of the preceding class/char.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a character class or a literal character.
        let atom: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
            let mut class = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    for c in lo..=hi {
                        class.extend(char::from_u32(c));
                    }
                    j += 3;
                } else {
                    class.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            class
        } else {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        // Parse an optional {m,n} / {n} repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            let mut parts = body.splitn(2, ',');
            let lo: usize = parts
                .next()
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or_else(|| panic!("bad repetition in pattern {pattern:?}"));
            let hi: usize = match parts.next() {
                Some(s) => s
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad repetition in pattern {pattern:?}")),
                None => lo,
            };
            (lo, hi)
        } else {
            (1, 1)
        };
        let n = lo + rng.index(hi - lo + 1);
        for _ in 0..n {
            out.push(atom[rng.index(atom.len())]);
        }
    }
    out
}

// ------------------------------------------------------------- collection

/// Collection strategies (`proptest::collection` analog).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec` analog.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.len.end.saturating_sub(self.len.start).max(1);
            let n = self.len.start + rng.index(span);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------- macros

/// Run each contained `#[test] fn name(pat in strategy, ...) { body }` as a
/// property: `cases` deterministic samples per test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let name_hash = $crate::test_runner::hash_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..config.cases as u64 {
                let mut __rng = $crate::test_runner::TestRng::deterministic(name_hash, __case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` under a property (no shrinking; panics directly).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case when a precondition does not hold.
///
/// Expands to `continue`, so it is only valid directly inside a
/// `proptest!` body (which is a loop body) — exactly how the workspace
/// uses it.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($args:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Commonly used items (`proptest::prelude` analog).
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, collection, Any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::test_runner::TestRng;

    #[test]
    fn ranges_and_vecs_respect_bounds() {
        let mut rng = TestRng::deterministic(1, 1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..16), &mut rng);
            assert!((3..16).contains(&v));
            let f = Strategy::generate(&(-1e3f64..1e3), &mut rng);
            assert!((-1e3..1e3).contains(&f));
            let xs = Strategy::generate(&collection::vec(0u32..5, 2..7), &mut rng);
            assert!((2..7).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn string_pattern_subset() {
        let mut rng = TestRng::deterministic(2, 9);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,8}:[a-z]{1,8}", &mut rng);
            let (a, b) = s.split_once(':').expect("separator");
            assert!((1..=8).contains(&a.len()) && (1..=8).contains(&b.len()));
            assert!(a.chars().chain(b.chars()).all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn floats_are_never_nan() {
        let mut rng = TestRng::deterministic(3, 5);
        for _ in 0..10_000 {
            assert!(!f32::arbitrary(&mut rng).is_nan());
            assert!(!f64::arbitrary(&mut rng).is_nan());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(v in any::<u16>(), k in 1usize..4) {
            prop_assume!(v > 0);
            prop_assert!(k < 4);
            prop_assert_eq!(v as u64 * k as u64, (v as u64) * (k as u64));
        }

        #[test]
        fn tuples_compose((a, b, c) in (0u8..5, -3i32..3, any::<u64>())) {
            prop_assert!(a < 5);
            prop_assert!((-3..3).contains(&b));
            let _ = c;
        }
    }
}
