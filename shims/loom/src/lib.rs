//! Offline stand-in for the `loom` model checker.
//!
//! The build environment has no crates.io access, so — like the other
//! `shims/*` crates — this implements the small API subset the workspace
//! uses. Real loom exhaustively enumerates interleavings of an abstracted
//! execution; this shim instead runs the closure passed to [`model`] many
//! times under a **seeded cooperative scheduler**:
//!
//! * Inside `model`, exactly one participating thread runs at a time. The
//!   running thread holds a logical *token*; every synchronization call
//!   (mutex lock, condvar wait, atomic access, spawn/join/yield) is a
//!   *yield point* where a seeded xorshift PRNG picks the next thread to
//!   hold the token. Different seeds therefore drive different
//!   interleavings through the same code, including adversarial ones a
//!   free-running test would essentially never hit (e.g. a thread parked
//!   mid-critical-section while every other thread spins against it).
//! * Each [`model`] call replays its closure once per seed (64 by default,
//!   `LOOM_SHIM_SEEDS` overrides). A panic aborts the run and reports the
//!   failing seed so the exact interleaving can be replayed.
//! * Blocking is *virtualized*: shim mutexes acquire with
//!   `try_lock`-then-yield loops and condvar waits are modeled as
//!   release-yield-reacquire (a timed wait that may time out spuriously —
//!   the strictest behavior callers must already tolerate). No OS blocking
//!   happens while a thread holds the token, so the serialized scheduler
//!   cannot deadlock against the primitives it is modeling; a *real* lost
//!   wakeup or lock cycle shows up as the step bound panicking with the
//!   seed.
//! * Outside `model` every primitive delegates straight to `std`, so a
//!   crate built with its `loom` feature enabled still behaves normally in
//!   ordinary tests.
//!
//! Like real loom, closures passed to `model` must join every thread they
//! spawn; a leaked thread is left parked forever (the scheduler never
//! hands it the token again once the model run ends).

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Seeds explored per [`model`] call unless `LOOM_SHIM_SEEDS` overrides.
const DEFAULT_SEEDS: u64 = 64;

/// Total yield points allowed in one seeded run before the scheduler
/// declares the execution stuck (deadlock or livelock) and panics.
const MAX_STEPS: u64 = 200_000;

// ============================================================== scheduler

struct SchedState {
    /// Completion flag per registered thread (index = thread id).
    finished: Vec<bool>,
    /// Id of the thread currently holding the execution token.
    current: usize,
    /// Yield points taken so far in this run (bounds livelock).
    steps: u64,
    /// xorshift64 state; seeded per run.
    rng: u64,
    /// Set when any participating thread panics, so the rest unblock.
    poisoned: bool,
}

struct Scheduler {
    state: StdMutex<SchedState>,
    cv: StdCondvar,
    seed: u64,
}

impl Scheduler {
    fn new(seed: u64) -> Arc<Scheduler> {
        Arc::new(Scheduler {
            state: StdMutex::new(SchedState {
                finished: vec![false], // thread 0: the model closure itself
                current: 0,
                steps: 0,
                // SplitMix-style scramble so nearby seeds diverge quickly.
                rng: seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(0x1234_5678_9ABC_DEF1),
                poisoned: false,
            }),
            cv: StdCondvar::new(),
            seed,
        })
    }

    fn next_rng(st: &mut SchedState) -> u64 {
        let mut x = st.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        st.rng = x;
        x
    }

    fn check(&self, st: &SchedState) {
        if st.poisoned {
            panic!("loom shim: a sibling thread panicked (seed {})", self.seed);
        }
    }

    /// Register a new participating thread, returning its id.
    fn register(&self) -> usize {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.finished.push(false);
        st.finished.len() - 1
    }

    /// The universal yield point: hand the token to a PRNG-chosen live
    /// thread (possibly ourselves) and wait until it comes back.
    fn yield_point(&self, me: usize) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        self.check(&st);
        st.steps += 1;
        if st.steps > MAX_STEPS {
            st.poisoned = true;
            self.cv.notify_all();
            panic!(
                "loom shim: step bound exceeded — possible deadlock or livelock (seed {})",
                self.seed
            );
        }
        let live: Vec<usize> = st
            .finished
            .iter()
            .enumerate()
            .filter(|(_, done)| !**done)
            .map(|(i, _)| i)
            .collect();
        if live.is_empty() {
            return;
        }
        let pick = Self::next_rng(&mut st) as usize % live.len();
        st.current = live[pick];
        self.cv.notify_all();
        while st.current != me {
            self.check(&st);
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Park a freshly spawned thread until the token first reaches it.
    fn wait_turn(&self, me: usize) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        while st.current != me {
            self.check(&st);
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Mark `me` finished and pass the token to some live thread.
    fn finish(&self, me: usize) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.finished[me] = true;
        let live: Vec<usize> = st
            .finished
            .iter()
            .enumerate()
            .filter(|(_, done)| !**done)
            .map(|(i, _)| i)
            .collect();
        if !live.is_empty() {
            let pick = Self::next_rng(&mut st) as usize % live.len();
            st.current = live[pick];
        }
        self.cv.notify_all();
    }

    /// Unblock everyone after a panic; waiters re-panic with the seed.
    fn abort(&self) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.poisoned = true;
        self.cv.notify_all();
    }

    fn is_finished(&self, id: usize) -> bool {
        let st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        self.check(&st);
        st.finished[id]
    }
}

thread_local! {
    /// This thread's scheduler membership: set for the model closure's
    /// thread and every `loom::thread::spawn`ed thread, absent otherwise
    /// (in which case every primitive delegates to std).
    static CTX: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> Option<(Arc<Scheduler>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// One yield point if this thread participates in a model run.
fn maybe_yield() {
    if let Some((sched, me)) = ctx() {
        sched.yield_point(me);
    }
}

// ================================================================== model

/// Run `f` once per seed under the cooperative scheduler, exploring a
/// different interleaving each time. Panics (assertion failures, detected
/// deadlocks) abort the exploration and name the failing seed.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    // One model at a time per process: the scheduler serializes execution,
    // and overlapping models would fight over wall-clock and step budgets.
    static MODEL_LOCK: StdMutex<()> = StdMutex::new(());
    let _serial = MODEL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let seeds = std::env::var("LOOM_SHIM_SEEDS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_SEEDS);
    for seed in 0..seeds {
        let sched = Scheduler::new(seed);
        CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched), 0)));
        let outcome = catch_unwind(AssertUnwindSafe(&f));
        CTX.with(|c| *c.borrow_mut() = None);
        if let Err(panic) = outcome {
            sched.abort();
            eprintln!("loom shim: model failed at seed {seed}/{seeds}");
            resume_unwind(panic);
        }
    }
}

// ================================================================= thread

pub mod thread {
    use super::*;

    /// Calls `finish` on normal exit, `abort` when unwinding — so a
    /// panicking modeled thread can never strand its siblings in
    /// `Condvar::wait`.
    struct FinishGuard {
        sched: Arc<Scheduler>,
        id: usize,
    }

    impl Drop for FinishGuard {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.sched.abort();
            } else {
                self.sched.finish(self.id);
            }
        }
    }

    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
        modeled: Option<(Arc<Scheduler>, usize)>,
    }

    impl<T> JoinHandle<T> {
        pub fn join(self) -> std::thread::Result<T> {
            if let Some((sched, id)) = &self.modeled {
                // Spin the token until the target thread has finished; it
                // is then off the scheduler and a real join cannot block
                // while we hold the token.
                let me = ctx().map(|(_, me)| me).unwrap_or(0);
                while !sched.is_finished(*id) {
                    sched.yield_point(me);
                }
            }
            self.inner.join()
        }
    }

    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        if let Some((sched, me)) = ctx() {
            let id = sched.register();
            let for_thread = Arc::clone(&sched);
            let inner = std::thread::spawn(move || {
                CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&for_thread), id)));
                for_thread.wait_turn(id);
                let _finish = FinishGuard {
                    sched: Arc::clone(&for_thread),
                    id,
                };
                f()
            });
            // Spawning is itself a scheduling point.
            sched.yield_point(me);
            JoinHandle {
                inner,
                modeled: Some((sched, id)),
            }
        } else {
            JoinHandle {
                inner: std::thread::spawn(f),
                modeled: None,
            }
        }
    }

    pub fn yield_now() {
        match ctx() {
            Some((sched, me)) => sched.yield_point(me),
            None => std::thread::yield_now(),
        }
    }
}

// =================================================================== sync

pub mod sync {
    use super::*;
    use std::ops::{Deref, DerefMut};
    use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};
    use std::time::Duration;

    pub use std::sync::Arc;
    pub use std::sync::OnceLock;

    /// std-API-compatible mutex; under a model run, acquisition is a
    /// `try_lock`-then-yield loop so the holder of the execution token
    /// never blocks at the OS level.
    pub struct Mutex<T: ?Sized> {
        inner: StdMutex<T>,
    }

    /// Guard that remembers its mutex so [`Condvar`] can release and
    /// reacquire it across a modeled wait.
    pub struct MutexGuard<'a, T: ?Sized> {
        mutex: &'a Mutex<T>,
        inner: Option<std::sync::MutexGuard<'a, T>>,
    }

    impl<T> Mutex<T> {
        pub const fn new(value: T) -> Mutex<T> {
            Mutex {
                inner: StdMutex::new(value),
            }
        }

        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> Mutex<T> {
        fn wrap<'a>(&'a self, g: std::sync::MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            MutexGuard {
                mutex: self,
                inner: Some(g),
            }
        }

        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            if let Some((sched, me)) = ctx() {
                loop {
                    sched.yield_point(me);
                    match self.inner.try_lock() {
                        Ok(g) => return Ok(self.wrap(g)),
                        Err(TryLockError::WouldBlock) => continue,
                        Err(TryLockError::Poisoned(p)) => {
                            return Err(PoisonError::new(self.wrap(p.into_inner())))
                        }
                    }
                }
            }
            match self.inner.lock() {
                Ok(g) => Ok(self.wrap(g)),
                Err(p) => Err(PoisonError::new(self.wrap(p.into_inner()))),
            }
        }

        pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
            maybe_yield();
            match self.inner.try_lock() {
                Ok(g) => Ok(self.wrap(g)),
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
                Err(TryLockError::Poisoned(p)) => Err(TryLockError::Poisoned(PoisonError::new(
                    self.wrap(p.into_inner()),
                ))),
            }
        }

        pub fn get_mut(&mut self) -> LockResult<&mut T> {
            self.inner.get_mut()
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Mutex<T> {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard already released")
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard already released")
        }
    }

    /// Same shape as `std::sync::WaitTimeoutResult` (which has no public
    /// constructor, hence the local type).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct WaitTimeoutResult(bool);

    impl WaitTimeoutResult {
        pub fn timed_out(&self) -> bool {
            self.0
        }
    }

    /// std-API-compatible condvar. Under a model run, a timed wait is
    /// modeled as release → yield → reacquire, reported as timed out —
    /// i.e. maximally spurious, the strictest behavior timed-wait callers
    /// must already tolerate. Notifications are then no-ops (nobody is in
    /// an OS wait).
    pub struct Condvar {
        inner: StdCondvar,
    }

    impl Condvar {
        pub const fn new() -> Condvar {
            Condvar {
                inner: StdCondvar::new(),
            }
        }

        pub fn wait_timeout<'a, T>(
            &self,
            mut guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            let mutex = guard.mutex;
            let std_guard = guard.inner.take().expect("guard already released");
            if let Some((sched, me)) = ctx() {
                drop(std_guard); // release before yielding, like a real wait
                sched.yield_point(me);
                return match mutex.lock() {
                    Ok(g) => Ok((g, WaitTimeoutResult(true))),
                    Err(p) => Err(PoisonError::new((p.into_inner(), WaitTimeoutResult(true)))),
                };
            }
            match self.inner.wait_timeout(std_guard, dur) {
                Ok((g, wtr)) => Ok((mutex.wrap(g), WaitTimeoutResult(wtr.timed_out()))),
                Err(p) => {
                    let (g, wtr) = p.into_inner();
                    Err(PoisonError::new((
                        mutex.wrap(g),
                        WaitTimeoutResult(wtr.timed_out()),
                    )))
                }
            }
        }

        pub fn notify_one(&self) {
            maybe_yield();
            self.inner.notify_one();
        }

        pub fn notify_all(&self) {
            maybe_yield();
            self.inner.notify_all();
        }
    }

    impl Default for Condvar {
        fn default() -> Condvar {
            Condvar::new()
        }
    }

    pub mod atomic {
        use super::maybe_yield;

        pub use std::sync::atomic::Ordering;

        macro_rules! modeled_atomic {
            ($name:ident, $std:ty, $val:ty) => {
                /// Atomic whose every access is a scheduler yield point
                /// inside a model run.
                pub struct $name(pub(crate) $std);

                impl $name {
                    pub const fn new(v: $val) -> Self {
                        Self(<$std>::new(v))
                    }

                    pub fn load(&self, order: Ordering) -> $val {
                        maybe_yield();
                        self.0.load(order)
                    }

                    pub fn store(&self, v: $val, order: Ordering) {
                        maybe_yield();
                        self.0.store(v, order)
                    }

                    pub fn swap(&self, v: $val, order: Ordering) -> $val {
                        maybe_yield();
                        self.0.swap(v, order)
                    }
                }
            };
        }

        modeled_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
        modeled_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        modeled_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

        macro_rules! modeled_fetch_add {
            ($name:ident, $val:ty) => {
                impl $name {
                    pub fn fetch_add(&self, v: $val, order: Ordering) -> $val {
                        maybe_yield();
                        self.0.fetch_add(v, order)
                    }
                }
            };
        }

        modeled_fetch_add!(AtomicU64, u64);
        modeled_fetch_add!(AtomicUsize, usize);

        macro_rules! modeled_compare_exchange {
            ($name:ident, $val:ty) => {
                impl $name {
                    pub fn compare_exchange(
                        &self,
                        current: $val,
                        new: $val,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$val, $val> {
                        maybe_yield();
                        self.0.compare_exchange(current, new, success, failure)
                    }
                }
            };
        }

        modeled_compare_exchange!(AtomicBool, bool);
        modeled_compare_exchange!(AtomicU64, u64);
        modeled_compare_exchange!(AtomicUsize, usize);
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Condvar, Mutex};

    #[test]
    fn primitives_delegate_outside_model() {
        let m = Mutex::new(5);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 6);
        let a = AtomicUsize::new(1);
        assert_eq!(a.fetch_add(2, Ordering::SeqCst), 1);
        assert_eq!(a.load(Ordering::SeqCst), 3);
        let cv = Condvar::new();
        let g = m.lock().unwrap();
        let (_g, wtr) = cv
            .wait_timeout(g, std::time::Duration::from_millis(1))
            .unwrap();
        assert!(wtr.timed_out());
    }

    #[test]
    fn model_explores_counter_interleavings() {
        super::model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    super::thread::spawn(move || {
                        n.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2);
        });
    }

    #[test]
    fn model_serializes_mutex_increments() {
        super::model(|| {
            let m = Arc::new(Mutex::new(0u32));
            let m2 = Arc::clone(&m);
            let h = super::thread::spawn(move || {
                for _ in 0..3 {
                    *m2.lock().unwrap() += 1;
                }
            });
            for _ in 0..3 {
                *m.lock().unwrap() += 1;
            }
            h.join().unwrap();
            assert_eq!(*m.lock().unwrap(), 6);
        });
    }

    #[test]
    fn model_reports_failing_seed() {
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                // Deliberately racy check: fails on any seed where the
                // spawned thread runs before the load below.
                let n = Arc::new(AtomicUsize::new(0));
                let n2 = Arc::clone(&n);
                let h = super::thread::spawn(move || {
                    n2.store(1, Ordering::SeqCst);
                });
                let seen = n.load(Ordering::SeqCst);
                h.join().unwrap();
                assert_eq!(seen, 0, "spawned store won the race");
            });
        });
        assert!(result.is_err(), "some seed must order the store first");
    }
}
