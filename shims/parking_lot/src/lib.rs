//! Offline stand-in for the `parking_lot` crate.
//!
//! The workspace builds in environments with no crates.io access, so the
//! real `parking_lot` cannot be fetched. This shim wraps `std::sync`
//! primitives behind the (non-poisoning) `parking_lot` API subset the
//! workspace uses: `Mutex::lock`, `Mutex::try_lock`, `RwLock::read`,
//! `RwLock::write`, and the guard types. Poisoned locks are recovered
//! rather than propagated, matching `parking_lot` semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};

/// A mutual exclusion primitive (non-poisoning `lock()` like `parking_lot`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard of a locked [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex (usable in `static` items).
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking. Never poisons: a panic while locked by
    /// another thread is absorbed, as in `parking_lot`.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: poisoned.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock (non-poisoning like `parking_lot`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII shared-read guard of an [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII exclusive-write guard of an [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new lock (usable in `static` items).
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        }
    }

    /// Acquire an exclusive write guard, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_and_try_lock() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: the lock is usable after a panic.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
