//! Property-based tests of the IO substrates: format roundtrips for
//! arbitrary geometry and content, container integrity under corruption.

use pressio_core::{dispatch_dtype, DType, Data, Options, ALL_DTYPES};
use pressio_io::{from_npy_bytes, to_npy_bytes, H5File};
use proptest::prelude::*;

fn arb_data(dtype_idx: usize, dims: &[usize], seed: u64) -> Data {
    let dtype = ALL_DTYPES[dtype_idx % ALL_DTYPES.len()];
    let n: usize = dims.iter().product();
    let mut s = seed | 1;
    dispatch_dtype!(dtype, T => {
        let vals: Vec<T> = (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                <T as pressio_core::Element>::from_f64(((s >> 40) as f64) - 8_000_000.0)
            })
            .collect();
        let mut d = Data::from_vec(vals, vec![n]).unwrap();
        d.reshape(dims.to_vec()).unwrap();
        d
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn npy_roundtrips_every_dtype_and_shape(
        dtype_idx in 0usize..10,
        dims in proptest::collection::vec(1usize..12, 1..4),
        seed in any::<u64>(),
    ) {
        let data = arb_data(dtype_idx, &dims, seed);
        let bytes = to_npy_bytes(&data);
        let back = from_npy_bytes(&bytes).unwrap();
        prop_assert_eq!(back.dtype(), data.dtype());
        prop_assert_eq!(back.dims(), data.dims());
        prop_assert_eq!(back.as_bytes(), data.as_bytes());
    }

    #[test]
    fn npy_truncation_never_panics(
        dims in proptest::collection::vec(1usize..8, 1..3),
        cut_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let data = arb_data(9, &dims, seed);
        let bytes = to_npy_bytes(&data);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let _ = from_npy_bytes(&bytes[..cut]);
    }

    #[test]
    fn h5lite_many_datasets_roundtrip(
        specs in proptest::collection::vec(
            (0usize..10, proptest::collection::vec(1usize..8, 1..3), any::<u64>()),
            1..8,
        ),
    ) {
        let mut file = H5File::new();
        let mut expect = Vec::new();
        for (i, (dtype_idx, dims, seed)) in specs.iter().enumerate() {
            let d = arb_data(*dtype_idx, dims, *seed);
            let name = format!("group/ds{i}");
            file.put(&name, &d).unwrap();
            expect.push((name, d));
        }
        let bytes = file.to_bytes();
        let back = H5File::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.names().len(), expect.len());
        for (name, d) in expect {
            prop_assert_eq!(back.get(&name).unwrap(), d);
        }
    }

    #[test]
    fn h5lite_corruption_never_panics(
        seed in any::<u64>(),
        flips in proptest::collection::vec((any::<u16>(), 0u8..8), 1..8),
    ) {
        pressio_codecs::register_builtins();
        let mut file = H5File::new();
        let d = arb_data(9, &[4, 4], seed);
        file.put("a", &d).unwrap();
        file.put_filtered("b", &d, "deflate", &Options::new()).unwrap();
        let mut bytes = file.to_bytes();
        for (pos, bit) in flips {
            let at = pos as usize % bytes.len();
            bytes[at] ^= 1 << bit;
        }
        if let Ok(f) = H5File::from_bytes(&bytes) {
            let _ = f.get("a");
            let _ = f.get("b");
        }
    }

    #[test]
    fn csv_roundtrips_finite_doubles(
        rows in 1usize..20,
        cols in 1usize..8,
        seed in any::<u64>(),
    ) {
        let dir = std::env::temp_dir().join("pressio-io-prop");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("p{seed}.csv"));
        let mut s = seed | 1;
        let vals: Vec<f64> = (0..rows * cols)
            .map(|_| {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                ((s >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 1e6
            })
            .collect();
        let data = Data::from_vec(vals, vec![rows, cols]).unwrap();
        use pressio_core::IoPlugin;
        let mut io = pressio_io::CsvIo::default();
        io.set_options(&Options::new().with("io:path", path.to_str().unwrap())).unwrap();
        io.write(&data).unwrap();
        let back = io.read(None).unwrap();
        // Single-column CSV cannot distinguish [n] from [n, 1]; multi-column
        // shapes roundtrip exactly.
        if cols >= 2 {
            prop_assert_eq!(back.dims(), data.dims());
        }
        prop_assert_eq!(back.num_elements(), data.num_elements());
        // Text roundtrip of f64 via {} formatting is exact in Rust.
        prop_assert_eq!(back.as_slice::<f64>().unwrap(), data.as_slice::<f64>().unwrap());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn select_region_matches_manual_slice(
        ny in 2usize..12,
        nx in 2usize..12,
        sy in 0usize..6,
        sx in 0usize..6,
        seed in any::<u64>(),
    ) {
        pressio_io::register_builtins();
        prop_assume!(sy < ny && sx < nx);
        let cy = ny - sy;
        let cx = nx - sx;
        let data = arb_data(2, &[ny, nx], seed);
        // Write via memory io shared slot? Use posix temp file instead.
        let dir = std::env::temp_dir().join("pressio-io-prop");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("sel{seed}.bin"));
        use pressio_core::IoPlugin;
        let mut posix = pressio_io::PosixIo::default();
        posix.set_options(&Options::new().with("io:path", path.to_str().unwrap())).unwrap();
        posix.write(&data).unwrap();

        let mut sel = pressio_io::SelectIo::new();
        sel.set_options(
            &Options::new()
                .with("io:path", path.to_str().unwrap())
                .with("select:io", "posix")
                .with("select:start", format!("{sy},{sx}"))
                .with("select:count", format!("{cy},{cx}")),
        ).unwrap();
        let template = Data::owned(DType::I32, vec![ny, nx]);
        let region = sel.read(Some(&template)).unwrap();
        prop_assert_eq!(region.dims(), &[cy, cx]);
        let full = data.as_slice::<i32>().unwrap();
        let got = region.as_slice::<i32>().unwrap();
        for y in 0..cy {
            for x in 0..cx {
                prop_assert_eq!(got[y * cx + x], full[(sy + y) * nx + (sx + x)]);
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}
