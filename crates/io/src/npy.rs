//! NumPy `.npy` v1.0 files (the `numpy` IO plugin).
//!
//! Implements the published format from scratch: the `\x93NUMPY` magic, a
//! Python-dict header with `descr`, `fortran_order`, and `shape`, and the
//! raw little-endian payload. Self-describing, so `read` needs no template.

use std::io::{Read, Write};

use pressio_core::{DType, Data, Error, IoPlugin, OptionKind, Options, Result};

/// Map a dtype to its numpy descr.
fn descr_of(d: DType) -> &'static str {
    match d {
        DType::I8 => "|i1",
        DType::I16 => "<i2",
        DType::I32 => "<i4",
        DType::I64 => "<i8",
        DType::U8 | DType::Byte => "|u1",
        DType::U16 => "<u2",
        DType::U32 => "<u4",
        DType::U64 => "<u8",
        DType::F32 => "<f4",
        DType::F64 => "<f8",
    }
}

/// Inverse of [`descr_of`].
fn dtype_of(descr: &str) -> Result<DType> {
    Ok(match descr {
        "|i1" | "i1" => DType::I8,
        "<i2" => DType::I16,
        "<i4" => DType::I32,
        "<i8" => DType::I64,
        "|u1" | "u1" => DType::U8,
        "<u2" => DType::U16,
        "<u4" => DType::U32,
        "<u8" => DType::U64,
        "<f4" => DType::F32,
        "<f8" => DType::F64,
        other => {
            return Err(Error::unsupported(format!(
                "unsupported numpy descr {other:?} (big-endian and object arrays are not supported)"
            )))
        }
    })
}

/// Serialize `data` as `.npy` bytes.
pub fn to_npy_bytes(data: &Data) -> Vec<u8> {
    let shape = data
        .dims()
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let shape = if data.num_dims() == 1 {
        format!("({shape},)")
    } else {
        format!("({shape})")
    };
    let mut header = format!(
        "{{'descr': '{}', 'fortran_order': False, 'shape': {}, }}",
        descr_of(data.dtype()),
        shape
    );
    // Pad with spaces so magic+version+len+header is a multiple of 64,
    // terminated by a newline (per the spec).
    let prefix = 10;
    let total = (prefix + header.len() + 1).div_ceil(64) * 64;
    while prefix + header.len() + 1 < total {
        header.push(' ');
    }
    header.push('\n');
    let mut out = Vec::with_capacity(total + data.size_in_bytes());
    out.extend_from_slice(b"\x93NUMPY");
    out.push(1);
    out.push(0);
    out.extend_from_slice(&(header.len() as u16).to_le_bytes());
    out.extend_from_slice(header.as_bytes());
    out.extend_from_slice(data.as_bytes());
    out
}

/// Parse `.npy` bytes.
pub fn from_npy_bytes(bytes: &[u8]) -> Result<Data> {
    if bytes.len() < 10 || &bytes[..6] != b"\x93NUMPY" {
        return Err(Error::corrupt("not a .npy file (bad magic)"));
    }
    let (major, _minor) = (bytes[6], bytes[7]);
    if major != 1 {
        return Err(Error::unsupported(format!(
            ".npy version {major} is not supported (only 1.0)"
        )));
    }
    let hlen = usize::from(u16::from_le_bytes([bytes[8], bytes[9]]));
    let header = bytes
        .get(10..10 + hlen)
        .ok_or_else(|| Error::corrupt(".npy header truncated"))?;
    let header = std::str::from_utf8(header)
        .map_err(|_| Error::corrupt(".npy header is not UTF-8"))?;

    let descr = extract_str_field(header, "descr")?;
    let dtype = dtype_of(&descr)?;
    let fortran = header.contains("'fortran_order': True");
    if fortran {
        return Err(Error::unsupported("fortran_order .npy files are not supported"));
    }
    let dims = extract_shape(header)?;
    let nbytes = pressio_core::checked_geometry(dtype, &dims)?;
    let payload = bytes
        .get(10 + hlen..)
        .ok_or_else(|| Error::corrupt(".npy payload truncated"))?;
    if payload.len() < nbytes {
        return Err(Error::corrupt(format!(
            ".npy payload has {} bytes, expected {nbytes}",
            payload.len(),
        )));
    }
    let mut out = Data::owned(dtype, dims);
    out.as_bytes_mut().copy_from_slice(&payload[..nbytes]);
    Ok(out)
}

fn extract_str_field(header: &str, key: &str) -> Result<String> {
    let pat = format!("'{key}':");
    let at = header
        .find(&pat)
        .ok_or_else(|| Error::corrupt(format!(".npy header missing {key:?}")))?;
    let rest = &header[at + pat.len()..];
    let open = rest
        .find('\'')
        .ok_or_else(|| Error::corrupt(".npy header malformed"))?;
    let rest = &rest[open + 1..];
    let close = rest
        .find('\'')
        .ok_or_else(|| Error::corrupt(".npy header malformed"))?;
    Ok(rest[..close].to_string())
}

fn extract_shape(header: &str) -> Result<Vec<usize>> {
    let at = header
        .find("'shape':")
        .ok_or_else(|| Error::corrupt(".npy header missing shape"))?;
    let rest = &header[at..];
    let open = rest
        .find('(')
        .ok_or_else(|| Error::corrupt(".npy header malformed shape"))?;
    let close = rest[open..]
        .find(')')
        .ok_or_else(|| Error::corrupt(".npy header malformed shape"))?;
    let inner = &rest[open + 1..open + close];
    let mut dims = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        dims.push(
            part.parse::<usize>()
                .map_err(|_| Error::corrupt(format!("bad shape entry {part:?}")))?,
        );
    }
    if dims.is_empty() {
        dims.push(1); // 0-d array holds one scalar
    }
    Ok(dims)
}

/// The `numpy` IO plugin.
#[derive(Debug, Clone, Default)]
pub struct NpyIo {
    path: Option<String>,
}

impl IoPlugin for NpyIo {
    fn name(&self) -> &str {
        "numpy"
    }

    fn get_options(&self) -> Options {
        let mut o = Options::new();
        match &self.path {
            Some(p) => o.set("io:path", p.as_str()),
            None => o.declare("io:path", OptionKind::Str),
        }
        o
    }

    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(p) = options.get_as::<String>("io:path")? {
            self.path = Some(p);
        }
        Ok(())
    }

    fn read(&mut self, _template: Option<&Data>) -> Result<Data> {
        let path = self
            .path
            .clone()
            .ok_or_else(|| Error::invalid_argument("io:path is not set").in_plugin("numpy"))?;
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        from_npy_bytes(&bytes)
    }

    fn write(&mut self, data: &Data) -> Result<()> {
        let path = self
            .path
            .clone()
            .ok_or_else(|| Error::invalid_argument("io:path is not set").in_plugin("numpy"))?;
        let mut f = std::fs::File::create(path)?;
        f.write_all(&to_npy_bytes(data))?;
        Ok(())
    }

    fn clone_io(&self) -> Box<dyn IoPlugin> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_dtypes() {
        for dtype in [
            DType::I8,
            DType::I32,
            DType::U16,
            DType::U64,
            DType::F32,
            DType::F64,
        ] {
            let mut d = Data::owned(dtype, vec![3, 4]);
            for (i, b) in d.as_bytes_mut().iter_mut().enumerate() {
                *b = (i * 7 % 251) as u8;
            }
            let bytes = to_npy_bytes(&d);
            let back = from_npy_bytes(&bytes).unwrap();
            assert_eq!(back, d, "{dtype}");
        }
    }

    #[test]
    fn header_is_spec_conformant() {
        let d = Data::from_vec(vec![1.0f64, 2.0, 3.0], vec![3]).unwrap();
        let bytes = to_npy_bytes(&d);
        assert_eq!(&bytes[..6], b"\x93NUMPY");
        assert_eq!(bytes[6], 1);
        let hlen = usize::from(u16::from_le_bytes([bytes[8], bytes[9]]));
        assert_eq!((10 + hlen) % 64, 0, "header must pad to 64-byte alignment");
        let header = std::str::from_utf8(&bytes[10..10 + hlen]).unwrap();
        assert!(header.contains("'descr': '<f8'"));
        assert!(header.contains("'shape': (3,)"));
        assert!(header.ends_with('\n'));
    }

    #[test]
    fn one_dim_shape_has_trailing_comma() {
        let d = Data::owned(DType::F32, vec![7]);
        let bytes = to_npy_bytes(&d);
        let hlen = usize::from(u16::from_le_bytes([bytes[8], bytes[9]]));
        let header = std::str::from_utf8(&bytes[10..10 + hlen]).unwrap();
        assert!(header.contains("(7,)"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_npy_bytes(b"not numpy at all").is_err());
        assert!(from_npy_bytes(b"").is_err());
        let d = Data::owned(DType::F64, vec![10]);
        let mut bytes = to_npy_bytes(&d);
        bytes.truncate(bytes.len() - 8); // missing one element
        assert!(from_npy_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_fortran_order_and_big_endian() {
        let d = Data::owned(DType::F64, vec![2]);
        let bytes = to_npy_bytes(&d);
        let s = String::from_utf8_lossy(&bytes).into_owned();
        let fortran = s.replace("'fortran_order': False", "'fortran_order': True ");
        assert!(from_npy_bytes(fortran.as_bytes()).is_err());
        let big = String::from_utf8_lossy(&bytes).replace("<f8", ">f8");
        assert!(from_npy_bytes(big.as_bytes()).is_err());
    }

    #[test]
    fn plugin_file_roundtrip() {
        let dir = std::env::temp_dir().join("pressio-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.npy").to_string_lossy().into_owned();
        let d = Data::from_vec((0..24u32).collect::<Vec<_>>(), vec![2, 3, 4]).unwrap();
        let mut io = NpyIo::default();
        io.set_options(&Options::new().with("io:path", path.as_str())).unwrap();
        io.write(&d).unwrap();
        let back = io.read(None).unwrap();
        assert_eq!(back, d);
    }
}
