//! # pressio-io
//!
//! IO plugins of libpressio-rs:
//!
//! * `posix` — flat binary files (template-described)
//! * `csv` — character-delimited text
//! * `numpy` — NumPy `.npy` v1.0 (self-describing, from scratch)
//! * `iota` — synthetic sequential data
//! * `memory` — in-process buffer store
//! * `select` — rectangular sub-region of another plugin's output
//! * `h5lite` — a small HDF5-like container with *generic* compression
//!   filters ([`h5lite::H5File`])
//! * plus [`bplite`], a minimal ADIOS2-like timestep-stream engine whose
//!   operators are registered compressors.

#![warn(missing_docs)]

pub mod basic;
pub mod bplite;
pub mod h5lite;
pub mod npy;

pub use basic::{CsvIo, IotaIo, MemoryIo, PosixIo, SelectIo};
pub use bplite::{BpReader, BpWriter};
pub use h5lite::{H5File, H5LiteIo};
pub use npy::{from_npy_bytes, to_npy_bytes, NpyIo};

/// Register every IO plugin of this crate into the global registry.
pub fn register_builtins() {
    let reg = pressio_core::registry();
    reg.register_io("posix", || Box::new(PosixIo::default()));
    reg.register_io("csv", || Box::new(CsvIo::default()));
    reg.register_io("numpy", || Box::new(NpyIo::default()));
    reg.register_io("iota", || Box::new(IotaIo::default()));
    reg.register_io("memory", || Box::new(MemoryIo::default()));
    reg.register_io("select", || Box::new(SelectIo::new()));
    reg.register_io("h5lite", || Box::new(H5LiteIo::default()));
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_io_plugins_registered() {
        super::register_builtins();
        let reg = pressio_core::registry();
        for name in ["posix", "csv", "numpy", "iota", "memory", "select", "h5lite"] {
            let io = reg.io(name).unwrap();
            assert_eq!(io.name(), name);
        }
    }
}
