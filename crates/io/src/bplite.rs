//! `bplite`: a minimal timestep-stream IO engine (the ADIOS2 integration
//! analog).
//!
//! A writer appends `(step, variable, data)` records to one stream file,
//! optionally through a compression *operator* — which, as in the real
//! ADIOS2+LibPressio integration, is simply any registered compressor
//! configured through generic options. A reader scans the stream and
//! retrieves variables per step.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::Path;

use pressio_core::{
    registry, ByteReader, ByteWriter, Data, Error, Options, Result,
};

const MAGIC: u32 = 0x4250_4C54; // "BPLT"

/// Writer for a bplite stream.
pub struct BpWriter {
    w: ByteWriter,
    step: u32,
    in_step: bool,
    operator: Option<(String, Options)>,
}

impl BpWriter {
    /// Start a new stream.
    pub fn new() -> BpWriter {
        let mut w = ByteWriter::new();
        w.put_u32(MAGIC);
        BpWriter {
            w,
            step: 0,
            in_step: false,
            operator: None,
        }
    }

    /// Attach a compression operator: every subsequent `put` compresses with
    /// this registered compressor and options.
    pub fn set_operator(&mut self, compressor: &str, options: Options) -> Result<()> {
        if !registry().has_compressor(compressor) {
            return Err(Error::not_found(format!(
                "no compressor named {compressor:?}"
            )));
        }
        self.operator = Some((compressor.to_string(), options));
        Ok(())
    }

    /// Begin the next time step.
    pub fn begin_step(&mut self) -> u32 {
        if self.in_step {
            self.step += 1;
        }
        self.in_step = true;
        self.step
    }

    /// Write one variable in the current step.
    pub fn put(&mut self, name: &str, data: &Data) -> Result<()> {
        if !self.in_step {
            return Err(Error::invalid_argument("put outside begin_step/end_step"));
        }
        self.w.put_u32(self.step);
        self.w.put_str(name);
        self.w.put_dtype(data.dtype());
        self.w.put_dims(data.dims());
        match &self.operator {
            Some((comp, opts)) => {
                let mut c = registry().compressor(comp)?;
                c.set_options(opts)?;
                let compressed = c.compress(data)?;
                self.w.put_u8(1);
                self.w.put_str(comp);
                self.w.put_section(compressed.as_bytes());
            }
            None => {
                self.w.put_u8(0);
                self.w.put_section(data.as_bytes());
            }
        }
        Ok(())
    }

    /// End the current time step.
    pub fn end_step(&mut self) {
        // Step boundaries are implicit in the records; bump on next begin.
    }

    /// Finish, returning the stream bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.w.into_vec()
    }

    /// Finish and write the stream to a file.
    pub fn save(self, path: impl AsRef<Path>) -> Result<()> {
        let bytes = self.into_bytes();
        let mut f = std::fs::File::create(path)?;
        f.write_all(&bytes)?;
        Ok(())
    }
}

impl Default for BpWriter {
    fn default() -> Self {
        BpWriter::new()
    }
}

/// Reader over a bplite stream.
pub struct BpReader {
    /// step -> variable -> data
    steps: BTreeMap<u32, BTreeMap<String, Data>>,
}

impl BpReader {
    /// Parse a stream from bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<BpReader> {
        let mut r = ByteReader::new(bytes);
        if r.get_u32()? != MAGIC {
            return Err(Error::corrupt("not a bplite stream (bad magic)"));
        }
        let mut steps: BTreeMap<u32, BTreeMap<String, Data>> = BTreeMap::new();
        while r.remaining() > 0 {
            let step = r.get_u32()?;
            let name = r.get_str()?.to_string();
            let dtype = r.get_dtype()?;
            let dims = r.get_dims()?;
            pressio_core::checked_geometry(dtype, &dims)?;
            let compressed = r.get_u8()? != 0;
            let data = if compressed {
                let comp = r.get_str()?.to_string();
                let payload = r.get_section()?;
                let mut c = registry().compressor(&comp)?;
                let mut out = Data::owned(dtype, dims);
                c.decompress(&Data::from_bytes(payload), &mut out)?;
                out
            } else {
                let payload = r.get_section()?;
                let mut out = Data::owned(dtype, dims);
                if out.size_in_bytes() != payload.len() {
                    return Err(Error::corrupt("bplite record size mismatch"));
                }
                out.as_bytes_mut().copy_from_slice(payload);
                out
            };
            steps.entry(step).or_default().insert(name, data);
        }
        Ok(BpReader { steps })
    }

    /// Open a stream file.
    pub fn open(path: impl AsRef<Path>) -> Result<BpReader> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        BpReader::from_bytes(&bytes)
    }

    /// Number of steps present.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Variable names present in a step.
    pub fn variables(&self, step: u32) -> Vec<String> {
        self.steps
            .get(&step)
            .map(|m| m.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Retrieve one variable of one step.
    pub fn get(&self, step: u32, name: &str) -> Result<&Data> {
        self.steps
            .get(&step)
            .and_then(|m| m.get(name))
            .ok_or_else(|| Error::not_found(format!("step {step} variable {name:?} not found")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn init() {
        pressio_codecs::register_builtins();
    }

    fn step_field(step: usize) -> Data {
        let v: Vec<f64> = (0..256)
            .map(|i| (i as f64 * 0.1 + step as f64).sin())
            .collect();
        Data::from_vec(v, vec![16, 16]).unwrap()
    }

    #[test]
    fn multi_step_roundtrip_uncompressed() {
        init();
        let mut w = BpWriter::new();
        for s in 0..3 {
            w.begin_step();
            w.put("temperature", &step_field(s)).unwrap();
            w.put("pressure", &step_field(s + 10)).unwrap();
            w.end_step();
        }
        let bytes = w.into_bytes();
        let r = BpReader::from_bytes(&bytes).unwrap();
        assert_eq!(r.num_steps(), 3);
        assert_eq!(
            r.variables(1),
            vec!["pressure".to_string(), "temperature".to_string()]
        );
        assert_eq!(r.get(2, "temperature").unwrap(), &step_field(2));
        assert!(r.get(9, "temperature").is_err());
    }

    #[test]
    fn operator_compresses_records() {
        init();
        let smooth: Vec<f64> = (0..40_000).map(|i| (i / 50) as f64).collect();
        let big = Data::from_vec(smooth, vec![200, 200]).unwrap();

        let mut plain = BpWriter::new();
        plain.begin_step();
        plain.put("x", &big).unwrap();
        let plain_len = plain.into_bytes().len();

        let mut comp = BpWriter::new();
        comp.set_operator("deflate", Options::new()).unwrap();
        comp.begin_step();
        comp.put("x", &big).unwrap();
        let bytes = comp.into_bytes();
        assert!(bytes.len() < plain_len / 2);
        let r = BpReader::from_bytes(&bytes).unwrap();
        assert_eq!(r.get(0, "x").unwrap(), &big);
    }

    #[test]
    fn put_outside_step_errors() {
        init();
        let mut w = BpWriter::new();
        assert!(w.put("x", &Data::from_bytes(&[1])).is_err());
    }

    #[test]
    fn unknown_operator_rejected() {
        init();
        let mut w = BpWriter::new();
        assert!(w.set_operator("nope", Options::new()).is_err());
    }

    #[test]
    fn corrupt_stream_errors() {
        init();
        let mut w = BpWriter::new();
        w.begin_step();
        w.put("x", &step_field(0)).unwrap();
        let bytes = w.into_bytes();
        assert!(BpReader::from_bytes(&bytes[..bytes.len() - 10]).is_err());
        assert!(BpReader::from_bytes(b"junk").is_err());
    }

    #[test]
    fn file_roundtrip() {
        init();
        let dir = std::env::temp_dir().join("pressio-bplite-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.bp").to_string_lossy().into_owned();
        let mut w = BpWriter::new();
        w.set_operator("lz", Options::new()).unwrap();
        w.begin_step();
        w.put("v", &step_field(5)).unwrap();
        w.save(&path).unwrap();
        let r = BpReader::open(&path).unwrap();
        assert_eq!(r.get(0, "v").unwrap(), &step_field(5));
    }
}
