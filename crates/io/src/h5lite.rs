//! `h5lite`: a small single-file container with named typed n-d datasets and
//! per-dataset compression filters.
//!
//! Stands in for HDF5 + its filter plugins in this reproduction. The key
//! point the paper makes is architectural: with a generic compression
//! interface, *one* filter implementation serves every compressor — instead
//! of one HDF5 filter per compressor. Here any registered compressor name
//! can be a dataset's filter, configured through the same [`Options`] as
//! everywhere else.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::Path;

use pressio_core::{
    registry, ByteReader, ByteWriter, DType, Data, Error, IoPlugin, OptionKind, Options, Result,
};

const MAGIC: u32 = 0x4835_4C54; // "H5LT"
const VERSION: u32 = 1;

#[derive(Debug, Clone)]
struct StoredDataset {
    dtype: DType,
    dims: Vec<usize>,
    /// Registered compressor used as the filter, if any.
    filter: Option<String>,
    /// Compressed (or raw) payload.
    payload: Vec<u8>,
}

/// An in-memory h5lite container, loadable from and savable to one file.
#[derive(Debug, Clone, Default)]
pub struct H5File {
    datasets: BTreeMap<String, StoredDataset>,
}

impl H5File {
    /// An empty container.
    pub fn new() -> H5File {
        H5File::default()
    }

    /// Dataset names in sorted order.
    pub fn names(&self) -> Vec<String> {
        self.datasets.keys().cloned().collect()
    }

    /// True when `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.datasets.contains_key(name)
    }

    /// Dataset geometry without decompressing: `(dtype, dims, filter)`.
    pub fn stat(&self, name: &str) -> Option<(DType, &[usize], Option<&str>)> {
        self.datasets
            .get(name)
            .map(|d| (d.dtype, d.dims.as_slice(), d.filter.as_deref()))
    }

    /// Store a dataset uncompressed.
    pub fn put(&mut self, name: impl Into<String>, data: &Data) -> Result<()> {
        self.datasets.insert(
            name.into(),
            StoredDataset {
                dtype: data.dtype(),
                dims: data.dims().to_vec(),
                filter: None,
                payload: data.as_bytes().to_vec(),
            },
        );
        Ok(())
    }

    /// Store a dataset through a compression filter — any registered
    /// compressor, configured by `options` (the generic HDF5-filter analog).
    pub fn put_filtered(
        &mut self,
        name: impl Into<String>,
        data: &Data,
        filter: &str,
        options: &Options,
    ) -> Result<()> {
        let mut c = registry().compressor(filter)?;
        c.set_options(options)?;
        let compressed = c.compress(data)?;
        self.datasets.insert(
            name.into(),
            StoredDataset {
                dtype: data.dtype(),
                dims: data.dims().to_vec(),
                filter: Some(filter.to_string()),
                payload: compressed.as_bytes().to_vec(),
            },
        );
        Ok(())
    }

    /// Read a dataset, applying the inverse filter if one was used.
    pub fn get(&self, name: &str) -> Result<Data> {
        let ds = self
            .datasets
            .get(name)
            .ok_or_else(|| Error::not_found(format!("no dataset named {name:?}")))?;
        let expect = pressio_core::checked_geometry(ds.dtype, &ds.dims)?;
        match &ds.filter {
            None => {
                if expect != ds.payload.len() {
                    return Err(Error::corrupt("dataset payload size mismatch"));
                }
                let mut out = Data::owned(ds.dtype, ds.dims.clone());
                out.as_bytes_mut().copy_from_slice(&ds.payload);
                Ok(out)
            }
            Some(filter) => {
                let mut c = registry().compressor(filter)?;
                let mut out = Data::owned(ds.dtype, ds.dims.clone());
                c.decompress(&Data::from_bytes(&ds.payload), &mut out)?;
                Ok(out)
            }
        }
    }

    /// Remove a dataset.
    pub fn remove(&mut self, name: &str) -> bool {
        self.datasets.remove(name).is_some()
    }

    /// Serialize to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(MAGIC);
        w.put_u32(VERSION);
        w.put_u32(self.datasets.len() as u32);
        for (name, ds) in &self.datasets {
            w.put_str(name);
            w.put_dtype(ds.dtype);
            w.put_dims(&ds.dims);
            match &ds.filter {
                Some(f) => {
                    w.put_u8(1);
                    w.put_str(f);
                }
                None => w.put_u8(0),
            }
            w.put_section(&ds.payload);
        }
        w.into_vec()
    }

    /// Parse from bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<H5File> {
        let mut r = ByteReader::new(bytes);
        if r.get_u32()? != MAGIC {
            return Err(Error::corrupt("not an h5lite file (bad magic)"));
        }
        let version = r.get_u32()?;
        if version != VERSION {
            return Err(Error::unsupported(format!(
                "h5lite version {version} is not supported"
            )));
        }
        let n = r.get_u32()?;
        let mut datasets = BTreeMap::new();
        for _ in 0..n {
            let name = r.get_str()?.to_string();
            let dtype = r.get_dtype()?;
            let dims = r.get_dims()?;
            pressio_core::checked_geometry(dtype, &dims)?;
            let filter = if r.get_u8()? != 0 {
                Some(r.get_str()?.to_string())
            } else {
                None
            };
            let payload = r.get_section()?.to_vec();
            datasets.insert(
                name,
                StoredDataset {
                    dtype,
                    dims,
                    filter,
                    payload,
                },
            );
        }
        Ok(H5File { datasets })
    }

    /// Write the container to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.to_bytes())?;
        Ok(())
    }

    /// Load a container from a file.
    pub fn open(path: impl AsRef<Path>) -> Result<H5File> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        H5File::from_bytes(&bytes)
    }
}

/// The `h5lite` IO plugin: reads/writes one dataset of a container file.
pub struct H5LiteIo {
    path: Option<String>,
    dataset: String,
    filter: Option<String>,
    filter_options: Options,
}

impl Default for H5LiteIo {
    fn default() -> Self {
        H5LiteIo {
            path: None,
            dataset: "data".to_string(),
            filter: None,
            filter_options: Options::new(),
        }
    }
}

impl IoPlugin for H5LiteIo {
    fn name(&self) -> &str {
        "h5lite"
    }

    fn get_options(&self) -> Options {
        let mut o = Options::new().with("h5lite:dataset", self.dataset.as_str());
        match &self.path {
            Some(p) => o.set("io:path", p.as_str()),
            None => o.declare("io:path", OptionKind::Str),
        }
        match &self.filter {
            Some(f) => o.set("h5lite:filter", f.as_str()),
            None => o.declare("h5lite:filter", OptionKind::Str),
        }
        o
    }

    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(p) = options.get_as::<String>("io:path")? {
            self.path = Some(p);
        }
        if let Some(d) = options.get_as::<String>("h5lite:dataset")? {
            self.dataset = d;
        }
        if let Some(f) = options.get_as::<String>("h5lite:filter")? {
            if f.is_empty() {
                self.filter = None;
            } else {
                if !registry().has_compressor(&f) {
                    return Err(Error::not_found(format!("no compressor named {f:?}"))
                        .in_plugin("h5lite"));
                }
                self.filter = Some(f);
            }
        }
        // Everything else is filter configuration, forwarded at write time.
        self.filter_options.merge(options);
        Ok(())
    }

    fn read(&mut self, _template: Option<&Data>) -> Result<Data> {
        let path = self
            .path
            .clone()
            .ok_or_else(|| Error::invalid_argument("io:path is not set").in_plugin("h5lite"))?;
        H5File::open(path)?.get(&self.dataset)
    }

    fn write(&mut self, data: &Data) -> Result<()> {
        let path = self
            .path
            .clone()
            .ok_or_else(|| Error::invalid_argument("io:path is not set").in_plugin("h5lite"))?;
        let mut file = if std::path::Path::new(&path).exists() {
            H5File::open(&path)?
        } else {
            H5File::new()
        };
        match &self.filter {
            Some(f) => file.put_filtered(&self.dataset, data, f, &self.filter_options)?,
            None => file.put(&self.dataset, data)?,
        }
        file.save(path)
    }

    fn clone_io(&self) -> Box<dyn IoPlugin> {
        Box::new(H5LiteIo {
            path: self.path.clone(),
            dataset: self.dataset.clone(),
            filter: self.filter.clone(),
            filter_options: self.filter_options.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn init() {
        pressio_codecs::register_builtins();
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("pressio-h5lite-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn container_roundtrip_multiple_datasets() {
        init();
        let mut f = H5File::new();
        let a = Data::from_vec((0..100i32).collect::<Vec<_>>(), vec![10, 10]).unwrap();
        let b = Data::from_vec(vec![1.5f64; 64], vec![4, 4, 4]).unwrap();
        f.put("grid/a", &a).unwrap();
        f.put_filtered("grid/b", &b, "deflate", &Options::new()).unwrap();
        assert_eq!(f.names(), vec!["grid/a".to_string(), "grid/b".to_string()]);
        let bytes = f.to_bytes();
        let g = H5File::from_bytes(&bytes).unwrap();
        assert_eq!(g.get("grid/a").unwrap(), a);
        assert_eq!(g.get("grid/b").unwrap(), b);
        assert!(g.get("missing").is_err());
        let (dt, dims, filter) = g.stat("grid/b").unwrap();
        assert_eq!(dt, DType::F64);
        assert_eq!(dims, &[4, 4, 4]);
        assert_eq!(filter, Some("deflate"));
    }

    #[test]
    fn filtered_dataset_is_smaller() {
        init();
        let smooth: Vec<f64> = (0..10_000).map(|i| (i / 100) as f64).collect();
        let d = Data::from_vec(smooth, vec![100, 100]).unwrap();
        let mut raw = H5File::new();
        raw.put("x", &d).unwrap();
        let mut filtered = H5File::new();
        filtered.put_filtered("x", &d, "shuffle", &Options::new()).unwrap();
        assert!(filtered.to_bytes().len() < raw.to_bytes().len() / 2);
        assert_eq!(filtered.get("x").unwrap(), d);
    }

    #[test]
    fn any_registered_compressor_is_a_filter() {
        init();
        // The architectural point: one generic filter serves all plugins.
        let d = Data::from_vec(vec![3.25f32; 256], vec![16, 16]).unwrap();
        for filter in ["rle", "lz", "deflate", "blosc", "fpzip"] {
            let mut f = H5File::new();
            f.put_filtered("x", &d, filter, &Options::new()).unwrap();
            let bytes = f.to_bytes();
            let g = H5File::from_bytes(&bytes).unwrap();
            assert_eq!(g.get("x").unwrap(), d, "filter {filter}");
        }
    }

    #[test]
    fn corrupt_container_errors() {
        init();
        let mut f = H5File::new();
        f.put("x", &Data::from_bytes(&[1, 2, 3])).unwrap();
        let bytes = f.to_bytes();
        assert!(H5File::from_bytes(&bytes[..5]).is_err());
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(H5File::from_bytes(&bad).is_err());
    }

    #[test]
    fn io_plugin_file_roundtrip_with_filter() {
        init();
        let path = tmp("c.h5l");
        let _ = std::fs::remove_file(&path);
        let d = Data::from_vec((0..4096).map(|i| i as f64).collect::<Vec<_>>(), vec![64, 64])
            .unwrap();
        let mut io = H5LiteIo::default();
        io.set_options(
            &Options::new()
                .with("io:path", path.as_str())
                .with("h5lite:dataset", "pressure")
                .with("h5lite:filter", "deflate"),
        )
        .unwrap();
        io.write(&d).unwrap();
        let back = io.read(None).unwrap();
        assert_eq!(back, d);
        // A second dataset appends without clobbering the first.
        let mut io2 = H5LiteIo::default();
        io2.set_options(
            &Options::new()
                .with("io:path", path.as_str())
                .with("h5lite:dataset", "velocity"),
        )
        .unwrap();
        io2.write(&Data::from_bytes(&[9, 9])).unwrap();
        let f = H5File::open(&path).unwrap();
        assert_eq!(f.names().len(), 2);
    }

    #[test]
    fn unknown_filter_rejected_at_configuration() {
        init();
        let mut io = H5LiteIo::default();
        assert!(io
            .set_options(&Options::new().with("h5lite:filter", "definitely_not_registered"))
            .is_err());
    }
}
