//! Basic IO plugins: `posix` (flat binary), `csv`, `iota` (synthetic),
//! `memory` (in-process store), and `select` (sub-region reads).

use std::io::{Read, Write};
use std::sync::{Arc, Mutex};

use pressio_core::{
    dispatch_dtype, DType, Data, Element, Error, IoPlugin, OptionKind, Options, Result,
};

fn require_path(path: &Option<String>, plugin: &str) -> Result<String> {
    path.clone()
        .ok_or_else(|| Error::invalid_argument("io:path is not set").in_plugin(plugin))
}

/// Flat binary files via std file IO (the `posix` plugin). Not
/// self-describing: `read` requires a template with dtype and dims.
#[derive(Debug, Clone, Default)]
pub struct PosixIo {
    path: Option<String>,
}

impl IoPlugin for PosixIo {
    fn name(&self) -> &str {
        "posix"
    }

    fn get_options(&self) -> Options {
        let mut o = Options::new();
        match &self.path {
            Some(p) => o.set("io:path", p.as_str()),
            None => o.declare("io:path", OptionKind::Str),
        }
        o
    }

    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(p) = options.get_as::<String>("io:path")? {
            self.path = Some(p);
        }
        Ok(())
    }

    fn read(&mut self, template: Option<&Data>) -> Result<Data> {
        let path = require_path(&self.path, "posix")?;
        let template = template.ok_or_else(|| {
            Error::invalid_argument("posix is not self-describing: a template with dtype and dims is required")
                .in_plugin("posix")
        })?;
        let mut f = std::fs::File::open(&path)?;
        let mut out = Data::owned(template.dtype(), template.dims().to_vec());
        let want = out.size_in_bytes();
        f.read_exact(out.as_bytes_mut()).map_err(|e| {
            Error::new(
                pressio_core::ErrorCode::Io,
                format!("reading {want} bytes from {path}: {e}"),
            )
            .in_plugin("posix")
        })?;
        Ok(out)
    }

    fn write(&mut self, data: &Data) -> Result<()> {
        let path = require_path(&self.path, "posix")?;
        let mut f = std::fs::File::create(path)?;
        f.write_all(data.as_bytes())?;
        Ok(())
    }

    fn clone_io(&self) -> Box<dyn IoPlugin> {
        Box::new(self.clone())
    }
}

/// Character-delimited text files (the `csv` plugin). Reads as `f64` (or the
/// template's dtype); writes one row per slowest-dimension slice.
#[derive(Debug, Clone)]
pub struct CsvIo {
    path: Option<String>,
    delimiter: char,
    skip_header_lines: u32,
}

impl Default for CsvIo {
    fn default() -> Self {
        CsvIo {
            path: None,
            delimiter: ',',
            skip_header_lines: 0,
        }
    }
}

impl IoPlugin for CsvIo {
    fn name(&self) -> &str {
        "csv"
    }

    fn get_options(&self) -> Options {
        let mut o = Options::new()
            .with("csv:delimiter", self.delimiter.to_string())
            .with("csv:skip_header_lines", self.skip_header_lines);
        match &self.path {
            Some(p) => o.set("io:path", p.as_str()),
            None => o.declare("io:path", OptionKind::Str),
        }
        o
    }

    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(p) = options.get_as::<String>("io:path")? {
            self.path = Some(p);
        }
        if let Some(d) = options.get_as::<String>("csv:delimiter")? {
            let mut chars = d.chars();
            match (chars.next(), chars.next()) {
                (Some(c), None) => self.delimiter = c,
                _ => {
                    return Err(Error::invalid_argument(
                        "csv:delimiter must be a single character",
                    )
                    .in_plugin("csv"))
                }
            }
        }
        if let Some(s) = options.get_as::<u32>("csv:skip_header_lines")? {
            self.skip_header_lines = s;
        }
        Ok(())
    }

    fn read(&mut self, template: Option<&Data>) -> Result<Data> {
        let path = require_path(&self.path, "csv")?;
        let text = std::fs::read_to_string(&path)?;
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for line in text.lines().skip(self.skip_header_lines as usize) {
            if line.trim().is_empty() {
                continue;
            }
            let row: Result<Vec<f64>> = line
                .split(self.delimiter)
                .map(|cell| {
                    cell.trim().parse::<f64>().map_err(|_| {
                        Error::corrupt(format!("cannot parse {cell:?} as a number")).in_plugin("csv")
                    })
                })
                .collect();
            rows.push(row?);
        }
        let ncols = rows.first().map(|r| r.len()).unwrap_or(0);
        if rows.iter().any(|r| r.len() != ncols) {
            return Err(Error::corrupt("csv rows have inconsistent column counts").in_plugin("csv"));
        }
        let flat: Vec<f64> = rows.into_iter().flatten().collect();
        let dims = if ncols <= 1 {
            vec![flat.len()]
        } else {
            vec![flat.len() / ncols, ncols]
        };
        let data = Data::from_vec(flat, dims)?;
        match template {
            Some(t) if t.dtype() != DType::F64 => data.cast(t.dtype()),
            _ => Ok(data),
        }
    }

    fn write(&mut self, data: &Data) -> Result<()> {
        let path = require_path(&self.path, "csv")?;
        let values = data.to_f64_vec()?;
        let ncols = if data.num_dims() >= 2 {
            *data.dims().last().expect("non-empty dims")
        } else {
            1
        };
        let mut out = String::with_capacity(values.len() * 8);
        for (i, v) in values.iter().enumerate() {
            out.push_str(&format!("{v}"));
            if ncols > 0 && (i + 1) % ncols == 0 {
                out.push('\n');
            } else {
                out.push(self.delimiter);
            }
        }
        std::fs::write(path, out)?;
        Ok(())
    }

    fn clone_io(&self) -> Box<dyn IoPlugin> {
        Box::new(self.clone())
    }
}

/// Synthetic sequentially increasing data (the `iota` plugin).
#[derive(Debug, Clone)]
pub struct IotaIo {
    dims: Vec<usize>,
    dtype: DType,
    start: f64,
}

impl Default for IotaIo {
    fn default() -> Self {
        IotaIo {
            dims: vec![1024],
            dtype: DType::F64,
            start: 0.0,
        }
    }
}

impl IoPlugin for IotaIo {
    fn name(&self) -> &str {
        "iota"
    }

    fn get_options(&self) -> Options {
        Options::new()
            .with(
                "iota:dims",
                self.dims
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
            )
            .with("iota:dtype", self.dtype.name())
            .with("iota:start", self.start)
    }

    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(d) = options.get_as::<String>("iota:dims")? {
            let dims: Result<Vec<usize>> = d
                .split(',')
                .map(|p| {
                    p.trim().parse::<usize>().map_err(|_| {
                        Error::invalid_argument(format!("bad dim {p:?}")).in_plugin("iota")
                    })
                })
                .collect();
            self.dims = dims?;
        }
        if let Some(t) = options.get_as::<String>("iota:dtype")? {
            self.dtype = DType::from_name(&t)?;
        }
        if let Some(s) = options.get_as::<f64>("iota:start")? {
            self.start = s;
        }
        Ok(())
    }

    fn read(&mut self, template: Option<&Data>) -> Result<Data> {
        let (dtype, dims) = match template {
            Some(t) if t.num_elements() > 0 => (t.dtype(), t.dims().to_vec()),
            _ => (self.dtype, self.dims.clone()),
        };
        let n: usize = dims.iter().product();
        dispatch_dtype!(dtype, T => {
            let v: Vec<T> = (0..n).map(|i| T::from_f64(self.start + i as f64)).collect();
            Data::from_vec(v, dims)
        })
    }

    fn write(&mut self, _data: &Data) -> Result<()> {
        Err(Error::unsupported("iota is a read-only synthetic source").in_plugin("iota"))
    }

    fn clone_io(&self) -> Box<dyn IoPlugin> {
        Box::new(self.clone())
    }
}

/// In-process shared buffer store (the `memory` plugin): the written buffer
/// becomes readable, including across clones.
#[derive(Clone, Default)]
pub struct MemoryIo {
    slot: Arc<Mutex<Option<Data>>>,
}

impl IoPlugin for MemoryIo {
    fn name(&self) -> &str {
        "memory"
    }

    fn read(&mut self, _template: Option<&Data>) -> Result<Data> {
        self.slot
            .lock()
            .expect("memory io poisoned")
            .clone()
            .ok_or_else(|| Error::not_found("no buffer has been written").in_plugin("memory"))
    }

    fn write(&mut self, data: &Data) -> Result<()> {
        *self.slot.lock().expect("memory io poisoned") = Some(data.clone());
        Ok(())
    }

    fn clone_io(&self) -> Box<dyn IoPlugin> {
        Box::new(self.clone())
    }
}

/// Reads a rectangular sub-region of another IO plugin's output (the
/// `select` plugin).
pub struct SelectIo {
    inner_name: String,
    inner: Box<dyn IoPlugin>,
    start: Vec<usize>,
    count: Vec<usize>,
}

impl SelectIo {
    /// Select over `posix` until configured.
    pub fn new() -> SelectIo {
        SelectIo {
            inner_name: "posix".to_string(),
            inner: Box::new(PosixIo::default()),
            start: Vec::new(),
            count: Vec::new(),
        }
    }
}

impl Default for SelectIo {
    fn default() -> Self {
        SelectIo::new()
    }
}

fn parse_dims(s: &str, plugin: &str) -> Result<Vec<usize>> {
    s.split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| Error::invalid_argument(format!("bad index {p:?}")).in_plugin(plugin))
        })
        .collect()
}

impl IoPlugin for SelectIo {
    fn name(&self) -> &str {
        "select"
    }

    fn get_options(&self) -> Options {
        let join = |v: &[usize]| {
            v.iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let mut o = Options::new()
            .with("select:io", self.inner_name.as_str())
            .with("select:start", join(&self.start))
            .with("select:count", join(&self.count));
        o.merge(&self.inner.get_options());
        o
    }

    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(name) = options.get_as::<String>("select:io")? {
            self.inner = pressio_core::registry().io(&name)?;
            self.inner_name = name;
        }
        if let Some(s) = options.get_as::<String>("select:start")? {
            self.start = if s.trim().is_empty() { vec![] } else { parse_dims(&s, "select")? };
        }
        if let Some(c) = options.get_as::<String>("select:count")? {
            self.count = if c.trim().is_empty() { vec![] } else { parse_dims(&c, "select")? };
        }
        self.inner.set_options(options)
    }

    fn read(&mut self, template: Option<&Data>) -> Result<Data> {
        let full = self.inner.read(template)?;
        if self.start.is_empty() && self.count.is_empty() {
            return Ok(full);
        }
        let nd = full.num_dims();
        if self.start.len() != nd || self.count.len() != nd {
            return Err(Error::invalid_argument(format!(
                "select start/count must have {nd} entries"
            ))
            .in_plugin("select"));
        }
        for k in 0..nd {
            if self.start[k] + self.count[k] > full.dims()[k] || self.count[k] == 0 {
                return Err(Error::invalid_argument(format!(
                    "region start {:?} count {:?} exceeds dims {:?}",
                    self.start,
                    self.count,
                    full.dims()
                ))
                .in_plugin("select"));
            }
        }
        // Copy the region element by element (strided gather).
        let elem = full.dtype().size();
        let mut out = Data::owned(full.dtype(), self.count.clone());
        let src = full.as_bytes();
        let in_dims = full.dims().to_vec();
        let mut in_strides = vec![1usize; nd];
        for i in (0..nd.saturating_sub(1)).rev() {
            in_strides[i] = in_strides[i + 1] * in_dims[i + 1];
        }
        let total: usize = self.count.iter().product();
        let dst = out.as_bytes_mut();
        let mut coord = vec![0usize; nd];
        for oi in 0..total {
            let mut rem = oi;
            for k in (0..nd).rev() {
                coord[k] = rem % self.count[k];
                rem /= self.count[k];
            }
            let mut ii = 0usize;
            for k in 0..nd {
                ii += (self.start[k] + coord[k]) * in_strides[k];
            }
            dst[oi * elem..(oi + 1) * elem].copy_from_slice(&src[ii * elem..(ii + 1) * elem]);
        }
        Ok(out)
    }

    fn write(&mut self, data: &Data) -> Result<()> {
        self.inner.write(data)
    }

    fn clone_io(&self) -> Box<dyn IoPlugin> {
        Box::new(SelectIo {
            inner_name: self.inner_name.clone(),
            inner: self.inner.clone_io(),
            start: self.start.clone(),
            count: self.count.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("pressio-io-tests");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn posix_roundtrip_with_template() {
        let path = tmp("posix.bin");
        let data = Data::from_vec((0..100i32).collect::<Vec<_>>(), vec![10, 10]).unwrap();
        let mut io = PosixIo::default();
        io.set_options(&Options::new().with("io:path", path.as_str())).unwrap();
        io.write(&data).unwrap();
        let template = Data::owned(DType::I32, vec![10, 10]);
        let back = io.read(Some(&template)).unwrap();
        assert_eq!(back, data);
        // Reading without a template fails with a clear message.
        assert!(io.read(None).is_err());
    }

    #[test]
    fn posix_short_file_errors() {
        let path = tmp("short.bin");
        std::fs::write(&path, [1u8, 2, 3]).unwrap();
        let mut io = PosixIo::default();
        io.set_options(&Options::new().with("io:path", path.as_str())).unwrap();
        let template = Data::owned(DType::F64, vec![100]);
        assert!(io.read(Some(&template)).is_err());
    }

    #[test]
    fn csv_roundtrip_2d() {
        let path = tmp("data.csv");
        let data = Data::from_vec(vec![1.5f64, 2.0, 3.0, -4.25, 5.0, 6.0], vec![2, 3]).unwrap();
        let mut io = CsvIo::default();
        io.set_options(&Options::new().with("io:path", path.as_str())).unwrap();
        io.write(&data).unwrap();
        let back = io.read(None).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn csv_custom_delimiter_and_header() {
        let path = tmp("semi.csv");
        std::fs::write(&path, "a;b\n1;2\n3;4\n").unwrap();
        let mut io = CsvIo::default();
        io.set_options(
            &Options::new()
                .with("io:path", path.as_str())
                .with("csv:delimiter", ";")
                .with("csv:skip_header_lines", 1u32),
        )
        .unwrap();
        let back = io.read(None).unwrap();
        assert_eq!(back.dims(), &[2, 2]);
        assert_eq!(back.as_slice::<f64>().unwrap(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn csv_bad_cells_error() {
        let path = tmp("bad.csv");
        std::fs::write(&path, "1,2\n3,oops\n").unwrap();
        let mut io = CsvIo::default();
        io.set_options(&Options::new().with("io:path", path.as_str())).unwrap();
        assert!(io.read(None).is_err());
    }

    #[test]
    fn iota_generates_sequences() {
        let mut io = IotaIo::default();
        io.set_options(
            &Options::new()
                .with("iota:dims", "3,4")
                .with("iota:dtype", "float")
                .with("iota:start", 10.0f64),
        )
        .unwrap();
        let d = io.read(None).unwrap();
        assert_eq!(d.dims(), &[3, 4]);
        assert_eq!(d.dtype(), DType::F32);
        assert_eq!(d.as_slice::<f32>().unwrap()[0], 10.0);
        assert_eq!(d.as_slice::<f32>().unwrap()[11], 21.0);
        assert!(io.write(&d).is_err());
    }

    #[test]
    fn memory_io_shares_across_clones() {
        let mut a = MemoryIo::default();
        let mut b = a.clone_io();
        assert!(a.read(None).is_err());
        let data = Data::from_bytes(&[1, 2, 3]);
        b.write(&data).unwrap();
        assert_eq!(a.read(None).unwrap(), data);
    }

    #[test]
    fn select_extracts_subregion() {
        // Register the plugins select depends on.
        crate::register_builtins();
        let path = tmp("select.bin");
        let full: Vec<f64> = (0..36).map(|i| i as f64).collect();
        let data = Data::from_vec(full, vec![6, 6]).unwrap();
        let mut posix = PosixIo::default();
        posix
            .set_options(&Options::new().with("io:path", path.as_str()))
            .unwrap();
        posix.write(&data).unwrap();

        let mut sel = SelectIo::new();
        sel.set_options(
            &Options::new()
                .with("io:path", path.as_str())
                .with("select:io", "posix")
                .with("select:start", "1,2")
                .with("select:count", "2,3"),
        )
        .unwrap();
        let template = Data::owned(DType::F64, vec![6, 6]);
        let region = sel.read(Some(&template)).unwrap();
        assert_eq!(region.dims(), &[2, 3]);
        // Rows 1..3, cols 2..5 of the 6x6 grid.
        assert_eq!(
            region.as_slice::<f64>().unwrap(),
            &[8.0, 9.0, 10.0, 14.0, 15.0, 16.0]
        );
    }

    #[test]
    fn select_out_of_bounds_errors() {
        crate::register_builtins();
        let mut sel = SelectIo::new();
        sel.set_options(
            &Options::new()
                .with("select:io", "iota")
                .with("iota:dims", "4,4")
                .with("select:start", "3,3")
                .with("select:count", "3,3"),
        )
        .unwrap();
        assert!(sel.read(None).is_err());
    }
}
