//! `opt`: a FRaZ-style configuration optimizer (LibPressio-Opt).
//!
//! Given a *target compression ratio* (or a target maximum error), the
//! optimizer searches a numeric option of the child compressor — by default
//! the generic error bound `pressio:abs` — using bisection in log space,
//! exploiting that compression ratio grows monotonically with the bound.
//! This is the fixed-ratio workflow of FRaZ (the paper's citation \[4\]) and
//! the core of the LibPressio-Opt / OptZConfig lineage \[25\].
//!
//! Because the whole search happens through the *generic* interface, the
//! same optimizer tunes SZ, ZFP, MGARD, or any third-party plugin — the
//! paper's central productivity argument.

use pressio_core::{
    Compressor, Data, Error, Options, Result, ThreadSafety, Version,
};

use crate::util::{default_child, resolve_child};

/// What the optimizer drives toward.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Achieve at least this compression ratio (uncompressed/compressed),
    /// as close to it as possible from above.
    Ratio(f64),
    /// Stay under this maximum absolute error while maximizing ratio.
    MaxError(f64),
}

/// Outcome of one optimization run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptOutcome {
    /// The tuned option value (e.g. the error bound).
    pub value: f64,
    /// The compression ratio it achieved.
    pub ratio: f64,
    /// Trial compressions performed.
    pub evaluations: u32,
}

/// The optimizer meta-compressor.
///
/// ```
/// use pressio_core::{Compressor, Data, Options};
/// pressio_codecs::register_builtins();
/// pressio_sz::register_builtins();
///
/// let vals: Vec<f64> = (0..64 * 64).map(|i| (i as f64 * 0.01).sin()).collect();
/// let input = Data::from_vec(vals, vec![64, 64]).unwrap();
/// let mut opt = pressio_meta::Opt::new();
/// opt.set_options(
///     &Options::new()
///         .with("opt:compressor", "sz")
///         .with("opt:target_ratio", 15.0f64),
/// )
/// .unwrap();
/// let compressed = opt.compress(&input).unwrap();
/// let achieved = input.size_in_bytes() as f64 / compressed.size_in_bytes() as f64;
/// assert!(achieved >= 15.0 * 0.9);
/// ```
pub struct Opt {
    child_name: String,
    child: Box<dyn Compressor>,
    option: String,
    objective: Objective,
    lower: f64,
    upper: f64,
    max_iters: u32,
    /// Acceptable relative distance from the ratio target.
    rel_tol: f64,
    /// Deadline per trial compression; 0 runs trials inline with no limit.
    trial_timeout_ms: u64,
    last: Option<OptOutcome>,
}

impl Opt {
    /// Optimizer over `noop` until configured.
    pub fn new() -> Opt {
        Opt {
            child_name: "noop".to_string(),
            child: default_child(),
            option: pressio_core::OPT_ABS.to_string(),
            objective: Objective::Ratio(10.0),
            lower: 1e-12,
            upper: 1e3,
            max_iters: 32,
            rel_tol: 0.05,
            trial_timeout_ms: 0,
            last: None,
        }
    }

    /// The most recent search outcome, if any.
    pub fn last_outcome(&self) -> Option<OptOutcome> {
        self.last
    }

    fn trial(&mut self, input: &Data, value: f64) -> Result<f64> {
        let mut o = Options::new();
        o.set(self.option.clone(), value);
        self.child.set_options(&o)?;
        if self.trial_timeout_ms == 0 {
            let compressed = self.child.compress(input)?;
            return Ok(input.size_in_bytes() as f64 / compressed.size_in_bytes() as f64);
        }
        // A single runaway operating point must not hang the whole search:
        // each trial runs on a deadline worker whose token stops the child
        // cooperatively on overrun.
        let child = std::mem::replace(&mut self.child, default_child());
        let staged = input.clone();
        let timeout = self.trial_timeout_ms;
        match pressio_core::run_deadlined(timeout, "opt trial", move || {
            let mut child = child;
            let r = child.compress(&staged);
            (child, r)
        }) {
            Ok((child, r)) => {
                self.child = child;
                let compressed = r?;
                Ok(input.size_in_bytes() as f64 / compressed.size_in_bytes() as f64)
            }
            Err(e) => {
                // The instance rode the timed-out worker; re-arm a fresh one
                // so the optimizer handle stays usable.
                self.child =
                    resolve_child(&self.child_name).unwrap_or_else(|_| default_child());
                Err(e)
            }
        }
    }

    /// Run the search, returning the outcome and leaving the child
    /// configured at the chosen value.
    pub fn optimize(&mut self, input: &Data) -> Result<OptOutcome> {
        let target = match self.objective {
            Objective::Ratio(r) => r,
            Objective::MaxError(e) => {
                // Error-bounded children meet this directly.
                let ratio = self.trial(input, e)?;
                let out = OptOutcome {
                    value: e,
                    ratio,
                    evaluations: 1,
                };
                self.last = Some(out);
                return Ok(out);
            }
        };
        if !(target.is_finite() && target > 1.0) {
            return Err(
                Error::invalid_argument(format!("ratio target must exceed 1, got {target}"))
                    .in_plugin("opt"),
            );
        }
        let mut evals = 0u32;
        let (lo, hi) = (self.lower.max(f64::MIN_POSITIVE), self.upper);
        if lo >= hi {
            return Err(Error::invalid_argument("opt:lower must be below opt:upper")
                .in_plugin("opt"));
        }
        // Bisection on log10(bound): ratio(bound) is monotone increasing for
        // error-bounded compressors. Track the best value that meets the
        // target from above.
        let mut llo = lo.log10();
        let mut lhi = hi.log10();
        // Seed with the endpoints to detect infeasible targets early.
        let r_hi = self.trial(input, hi)?;
        evals += 1;
        if r_hi < target {
            return Err(Error::invalid_argument(format!(
                "target ratio {target} is unreachable: even bound {hi} achieves only {r_hi:.2}"
            ))
            .in_plugin("opt"));
        }
        let mut best = (hi, r_hi);
        let r_lo = self.trial(input, lo)?;
        evals += 1;
        if r_lo >= target {
            // Already above target at the tightest bound.
            best = (lo, r_lo);
            llo = lhi; // skip the loop
        }
        while evals < self.max_iters && lhi - llo > 1e-4 {
            let mid = 10f64.powf((llo + lhi) / 2.0);
            let r = self.trial(input, mid)?;
            evals += 1;
            if r >= target {
                best = (mid, r);
                lhi = mid.log10();
                if (r - target) / target <= self.rel_tol {
                    break;
                }
            } else {
                llo = mid.log10();
            }
        }
        let (value, ratio) = best;
        // Leave the child configured at the chosen operating point.
        let mut o = Options::new();
        o.set(self.option.clone(), value);
        self.child.set_options(&o)?;
        let out = OptOutcome {
            value,
            ratio,
            evaluations: evals,
        };
        self.last = Some(out);
        Ok(out)
    }
}

impl Default for Opt {
    fn default() -> Self {
        Opt::new()
    }
}

impl Compressor for Opt {
    fn get_configuration(&self) -> Options {
        let mut o = pressio_core::base_configuration(self);
        // Read-only search results: reported, never settable.
        if let Some(last) = self.last {
            o.set("opt:chosen_value", last.value);
            o.set("opt:achieved_ratio", last.ratio);
            o.set("opt:evaluations", last.evaluations);
        }
        o.merge(&self.child.get_configuration());
        o
    }

    fn name(&self) -> &str {
        "opt"
    }

    fn version(&self) -> Version {
        Version::new(2, 0, 0)
    }

    fn thread_safety(&self) -> ThreadSafety {
        self.child.thread_safety()
    }

    fn get_options(&self) -> Options {
        let mut o = Options::new()
            .with("opt:compressor", self.child_name.as_str())
            .with("opt:option", self.option.as_str())
            .with("opt:lower", self.lower)
            .with("opt:upper", self.upper)
            .with("opt:max_iters", self.max_iters)
            .with("opt:rel_tolerance", self.rel_tol)
            .with("opt:trial_timeout_ms", self.trial_timeout_ms);
        match self.objective {
            Objective::Ratio(r) => {
                o.set("opt:target_ratio", r);
                o.declare("opt:target_max_error", pressio_core::OptionKind::F64);
            }
            Objective::MaxError(e) => {
                o.set("opt:target_max_error", e);
                o.declare("opt:target_ratio", pressio_core::OptionKind::F64);
            }
        }
        o.merge(&self.child.get_options());
        o
    }

    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(name) = options.get_as::<String>("opt:compressor")? {
            self.child = resolve_child(&name).map_err(|e| e.in_plugin("opt"))?;
            self.child_name = name;
        }
        if let Some(opt) = options.get_as::<String>("opt:option")? {
            self.option = opt;
        }
        if let Some(r) = options.get_as::<f64>("opt:target_ratio")? {
            self.objective = Objective::Ratio(r);
        }
        if let Some(e) = options.get_as::<f64>("opt:target_max_error")? {
            self.objective = Objective::MaxError(e);
        }
        if let Some(l) = options.get_as::<f64>("opt:lower")? {
            self.lower = l;
        }
        if let Some(u) = options.get_as::<f64>("opt:upper")? {
            self.upper = u;
        }
        if let Some(m) = options.get_as::<u32>("opt:max_iters")? {
            if m == 0 {
                return Err(Error::invalid_argument("opt:max_iters must be >= 1").in_plugin("opt"));
            }
            self.max_iters = m;
        }
        if let Some(t) = options.get_as::<u64>("opt:trial_timeout_ms")? {
            self.trial_timeout_ms = t;
        }
        if let Some(t) = options.get_as::<f64>("opt:rel_tolerance")? {
            self.rel_tol = t;
        }
        self.child.set_options(options)
    }

    fn get_documentation(&self) -> Options {
        Options::new()
            .with(
                "opt",
                "FRaZ-style optimizer: searches a numeric child option to reach a target \
                 compression ratio (or max error), then compresses at the chosen point",
            )
            .with("opt:compressor", "registry name of the child compressor")
            .with("opt:option", "numeric option to tune (default pressio:abs)")
            .with("opt:target_ratio", "compression ratio to reach")
            .with("opt:target_max_error", "alternative objective: max abs error")
            .with("opt:lower", "search lower bound")
            .with("opt:upper", "search upper bound")
            .with("opt:max_iters", "maximum trial compressions")
            .with(
                "opt:trial_timeout_ms",
                "deadline per trial compression; an overrun cancels the trial \
                 cooperatively and fails the search with Timeout (0 = no limit)",
            )
    }

    fn compress(&mut self, input: &Data) -> Result<Data> {
        self.optimize(input)?;
        self.child.compress(input)
    }

    fn decompress(&mut self, compressed: &Data, output: &mut Data) -> Result<()> {
        self.child.decompress(compressed, output)
    }

    fn clone_compressor(&self) -> Box<dyn Compressor> {
        Box::new(Opt {
            child_name: self.child_name.clone(),
            child: self.child.clone_compressor(),
            option: self.option.clone(),
            objective: self.objective,
            lower: self.lower,
            upper: self.upper,
            max_iters: self.max_iters,
            rel_tol: self.rel_tol,
            trial_timeout_ms: self.trial_timeout_ms,
            last: self.last,
        })
    }
}
