//! Shape-manipulating meta-compressors: `transpose`, `resize`, and `sample`.
//!
//! These are the paper's "common, useful pre/post processing steps": they
//! implement the compressor interface but delegate the actual coding to a
//! child plugin, adjusting the data's shape on the way in and out. `resize`
//! is exactly the glossary's trick for helping block compressors with
//! degenerate dimensions (e.g. treating `A×B×1` as 2-d for ZFP).

use pressio_core::{
    registry, ByteReader, ByteWriter, Compressor, Data, Error, Options, Result, ThreadSafety,
    Version,
};

use crate::util::{default_child, invert_axes, parse_usize_list, resolve_child, transpose_bytes};

const TRANSPOSE_MAGIC: u32 = 0x5452_4E53;
const RESIZE_MAGIC: u32 = 0x5253_5A45;
const SAMPLE_MAGIC: u32 = 0x534D_504C;

/// Applies an axis permutation before compressing and the inverse after
/// decompressing.
pub struct Transpose {
    axes: Vec<usize>,
    child_name: String,
    child: Box<dyn Compressor>,
}

impl Transpose {
    /// Transpose wrapping the `noop` child until configured.
    pub fn new() -> Transpose {
        Transpose {
            axes: Vec::new(),
            child_name: "noop".to_string(),
            child: default_child(),
        }
    }
}

impl Default for Transpose {
    fn default() -> Self {
        Transpose::new()
    }
}

impl Compressor for Transpose {
    fn get_configuration(&self) -> Options {
        let mut o = pressio_core::base_configuration(self);
        o.merge(&self.child.get_configuration());
        o
    }

    fn name(&self) -> &str {
        "transpose"
    }

    fn version(&self) -> Version {
        Version::new(1, 0, 0)
    }

    fn thread_safety(&self) -> ThreadSafety {
        self.child.thread_safety()
    }

    fn get_options(&self) -> Options {
        let axes = self
            .axes
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let mut o = Options::new()
            .with("transpose:axes", axes)
            .with("transpose:compressor", self.child_name.as_str());
        o.merge(&self.child.get_options());
        o
    }

    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(name) = options.get_as::<String>("transpose:compressor")? {
            self.child = resolve_child(&name).map_err(|e| e.in_plugin("transpose"))?;
            self.child_name = name;
        }
        if let Some(axes) = options.get_as::<String>("transpose:axes")? {
            self.axes = if axes.trim().is_empty() {
                Vec::new()
            } else {
                parse_usize_list(&axes).map_err(|e| e.in_plugin("transpose"))?
            };
        }
        self.child.set_options(options)
    }

    fn get_documentation(&self) -> Options {
        Options::new()
            .with("transpose", "permutes data axes before the child compressor")
            .with("transpose:axes", "comma-separated permutation, output axis -> input axis")
            .with("transpose:compressor", "registry name of the child compressor")
    }

    fn compress(&mut self, input: &Data) -> Result<Data> {
        let axes = if self.axes.is_empty() {
            // Default: reverse the axes (C -> Fortran view).
            (0..input.num_dims()).rev().collect::<Vec<_>>()
        } else {
            self.axes.clone()
        };
        let (bytes, tdims) = transpose_bytes(
            input.as_bytes(),
            input.dims(),
            &axes,
            input.dtype().size(),
        )
        .map_err(|e| e.in_plugin("transpose"))?;
        let mut staged = Data::owned(input.dtype(), tdims);
        staged.as_bytes_mut().copy_from_slice(&bytes);
        let inner = self.child.compress(&staged)?;
        let mut w = ByteWriter::with_capacity(inner.size_in_bytes() + 64);
        w.put_u32(TRANSPOSE_MAGIC);
        w.put_str(&self.child_name);
        w.put_dims(input.dims());
        w.put_dims(&axes);
        w.put_section(inner.as_bytes());
        Ok(Data::from_bytes(&w.into_vec()))
    }

    fn decompress(&mut self, compressed: &Data, output: &mut Data) -> Result<()> {
        let mut r = ByteReader::new(compressed.as_bytes());
        if r.get_u32()? != TRANSPOSE_MAGIC {
            return Err(Error::corrupt("bad transpose magic").in_plugin("transpose"));
        }
        let child_name = r.get_str()?.to_string();
        let orig_dims = r.get_dims()?;
        pressio_core::checked_geometry(output.dtype(), &orig_dims)
            .map_err(|e| e.in_plugin("transpose"))?;
        let axes = r.get_dims()?;
        // The axes list came off the wire: it must be a permutation of the
        // recorded dims' axes before anything indexes with it.
        let nd = orig_dims.len();
        let mut seen = vec![false; nd];
        let valid = axes.len() == nd
            && axes.iter().all(|&a| a < nd && !std::mem::replace(&mut seen[a], true));
        if !valid {
            return Err(Error::corrupt(format!(
                "transpose stream axes {axes:?} are not a permutation of 0..{nd}"
            ))
            .in_plugin("transpose"));
        }
        let inner = r.get_section()?;
        if child_name != self.child_name {
            self.child = resolve_child(&child_name).map_err(|e| e.in_plugin("transpose"))?;
            self.child_name = child_name;
        }
        let tdims: Vec<usize> = axes.iter().map(|&a| orig_dims[a]).collect();
        let mut staged = Data::owned(output.dtype(), tdims.clone());
        self.child.decompress(&Data::from_bytes(inner), &mut staged)?;
        // A corrupt child stream can carry its own geometry and resize the
        // staged buffer; the transposed shape is dictated by this envelope.
        if staged.dims() != tdims {
            return Err(Error::corrupt(format!(
                "transpose child produced shape {:?}, envelope requires {tdims:?}",
                staged.dims()
            ))
            .in_plugin("transpose"));
        }
        let inv = invert_axes(&axes);
        let (bytes, bdims) = transpose_bytes(
            staged.as_bytes(),
            staged.dims(),
            &inv,
            staged.dtype().size(),
        )
        .map_err(|e| e.in_plugin("transpose"))?;
        if output.num_elements() != bdims.iter().product::<usize>()
            || output.dtype() != staged.dtype()
        {
            *output = Data::owned(staged.dtype(), bdims);
        } else if output.dims() != orig_dims {
            output.reshape(orig_dims)?;
        }
        output.as_bytes_mut().copy_from_slice(&bytes);
        Ok(())
    }

    fn clone_compressor(&self) -> Box<dyn Compressor> {
        Box::new(Transpose {
            axes: self.axes.clone(),
            child_name: self.child_name.clone(),
            child: self.child.clone_compressor(),
        })
    }
}

/// Reinterprets the dimensions (without touching values) before compressing,
/// restoring the original shape after decompression.
pub struct Resize {
    dims: Vec<usize>,
    child_name: String,
    child: Box<dyn Compressor>,
}

impl Resize {
    /// Resize wrapping `noop` until configured.
    pub fn new() -> Resize {
        Resize {
            dims: Vec::new(),
            child_name: "noop".to_string(),
            child: default_child(),
        }
    }
}

impl Default for Resize {
    fn default() -> Self {
        Resize::new()
    }
}

impl Compressor for Resize {
    fn get_configuration(&self) -> Options {
        let mut o = pressio_core::base_configuration(self);
        o.merge(&self.child.get_configuration());
        o
    }

    fn name(&self) -> &str {
        "resize"
    }

    fn version(&self) -> Version {
        Version::new(1, 0, 0)
    }

    fn thread_safety(&self) -> ThreadSafety {
        self.child.thread_safety()
    }

    fn get_options(&self) -> Options {
        let dims = self
            .dims
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let mut o = Options::new()
            .with("resize:dims", dims)
            .with("resize:compressor", self.child_name.as_str());
        o.merge(&self.child.get_options());
        o
    }

    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(name) = options.get_as::<String>("resize:compressor")? {
            self.child = resolve_child(&name).map_err(|e| e.in_plugin("resize"))?;
            self.child_name = name;
        }
        if let Some(dims) = options.get_as::<String>("resize:dims")? {
            self.dims = if dims.trim().is_empty() {
                Vec::new()
            } else {
                parse_usize_list(&dims).map_err(|e| e.in_plugin("resize"))?
            };
        }
        self.child.set_options(options)
    }

    fn get_documentation(&self) -> Options {
        Options::new()
            .with(
                "resize",
                "reinterprets dimensions before the child compressor (element count must match)",
            )
            .with("resize:dims", "comma-separated new dimensions")
            .with("resize:compressor", "registry name of the child compressor")
    }

    fn compress(&mut self, input: &Data) -> Result<Data> {
        if self.dims.is_empty() {
            return Err(Error::invalid_argument("resize:dims is not set").in_plugin("resize"));
        }
        let mut staged = input.clone();
        staged
            .reshape(self.dims.clone())
            .map_err(|e| e.in_plugin("resize"))?;
        let inner = self.child.compress(&staged)?;
        let mut w = ByteWriter::with_capacity(inner.size_in_bytes() + 64);
        w.put_u32(RESIZE_MAGIC);
        w.put_str(&self.child_name);
        w.put_dims(input.dims());
        w.put_section(inner.as_bytes());
        Ok(Data::from_bytes(&w.into_vec()))
    }

    fn decompress(&mut self, compressed: &Data, output: &mut Data) -> Result<()> {
        let mut r = ByteReader::new(compressed.as_bytes());
        if r.get_u32()? != RESIZE_MAGIC {
            return Err(Error::corrupt("bad resize magic").in_plugin("resize"));
        }
        let child_name = r.get_str()?.to_string();
        let orig_dims = r.get_dims()?;
        pressio_core::checked_geometry(output.dtype(), &orig_dims)
            .map_err(|e| e.in_plugin("resize"))?;
        let inner = r.get_section()?;
        if child_name != self.child_name {
            self.child = resolve_child(&child_name).map_err(|e| e.in_plugin("resize"))?;
            self.child_name = child_name;
        }
        let mut staged = Data::owned(output.dtype(), vec![0]);
        self.child.decompress(&Data::from_bytes(inner), &mut staged)?;
        if staged.num_elements() != orig_dims.iter().product::<usize>() {
            return Err(Error::corrupt("resize child produced wrong element count"));
        }
        staged.reshape(orig_dims)?;
        *output = staged;
        Ok(())
    }

    fn clone_compressor(&self) -> Box<dyn Compressor> {
        Box::new(Resize {
            dims: self.dims.clone(),
            child_name: self.child_name.clone(),
            child: self.child.clone_compressor(),
        })
    }
}

/// Decimating sampler: keeps every `rate`-th element before compression and
/// reconstructs by sample-and-hold. Deliberately *not* error bounded — it is
/// the glossary's analysis/preview tool.
pub struct Sample {
    rate: usize,
    child_name: String,
    child: Box<dyn Compressor>,
}

impl Sample {
    /// Sampler with rate 1 (pass-through) wrapping `noop`.
    pub fn new() -> Sample {
        Sample {
            rate: 1,
            child_name: "noop".to_string(),
            child: default_child(),
        }
    }
}

impl Default for Sample {
    fn default() -> Self {
        Sample::new()
    }
}

impl Compressor for Sample {
    fn get_configuration(&self) -> Options {
        let mut o = pressio_core::base_configuration(self);
        o.merge(&self.child.get_configuration());
        o
    }

    fn name(&self) -> &str {
        "sample"
    }

    fn version(&self) -> Version {
        Version::new(1, 0, 0)
    }

    fn thread_safety(&self) -> ThreadSafety {
        self.child.thread_safety()
    }

    fn get_options(&self) -> Options {
        let mut o = Options::new()
            .with("sample:rate", self.rate as u64)
            .with("sample:compressor", self.child_name.as_str());
        o.merge(&self.child.get_options());
        o
    }

    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(name) = options.get_as::<String>("sample:compressor")? {
            self.child = resolve_child(&name).map_err(|e| e.in_plugin("sample"))?;
            self.child_name = name;
        }
        if let Some(r) = options.get_as::<u64>("sample:rate")? {
            if r == 0 {
                return Err(Error::invalid_argument("sample:rate must be >= 1").in_plugin("sample"));
            }
            self.rate = r as usize;
        }
        self.child.set_options(options)
    }

    fn get_documentation(&self) -> Options {
        Options::new()
            .with(
                "sample",
                "keeps every rate-th element before compression; reconstructs by \
                 sample-and-hold (not error bounded)",
            )
            .with("sample:rate", "decimation factor (1 = pass-through)")
            .with("sample:compressor", "registry name of the child compressor")
    }

    fn compress(&mut self, input: &Data) -> Result<Data> {
        let elem = input.dtype().size();
        let bytes = input.as_bytes();
        let n = input.num_elements();
        let kept: Vec<u8> = (0..n)
            .step_by(self.rate)
            .flat_map(|i| bytes[i * elem..(i + 1) * elem].iter().copied())
            .collect();
        let n_kept = kept.len() / elem;
        let mut staged = Data::owned(input.dtype(), vec![n_kept]);
        staged.as_bytes_mut().copy_from_slice(&kept);
        let inner = self.child.compress(&staged)?;
        let mut w = ByteWriter::with_capacity(inner.size_in_bytes() + 64);
        w.put_u32(SAMPLE_MAGIC);
        w.put_str(&self.child_name);
        w.put_dims(input.dims());
        w.put_u64(self.rate as u64);
        w.put_section(inner.as_bytes());
        Ok(Data::from_bytes(&w.into_vec()))
    }

    fn decompress(&mut self, compressed: &Data, output: &mut Data) -> Result<()> {
        let mut r = ByteReader::new(compressed.as_bytes());
        if r.get_u32()? != SAMPLE_MAGIC {
            return Err(Error::corrupt("bad sample magic").in_plugin("sample"));
        }
        let child_name = r.get_str()?.to_string();
        let orig_dims = r.get_dims()?;
        pressio_core::checked_geometry(output.dtype(), &orig_dims)
            .map_err(|e| e.in_plugin("sample"))?;
        let rate = r.get_len()?;
        if rate == 0 {
            return Err(Error::corrupt("sample stream carries zero rate"));
        }
        let inner = r.get_section()?;
        if child_name != self.child_name {
            self.child = resolve_child(&child_name).map_err(|e| e.in_plugin("sample"))?;
            self.child_name = child_name;
        }
        let n: usize = orig_dims.iter().product();
        let n_kept = n.div_ceil(rate);
        let mut staged = Data::owned(output.dtype(), vec![n_kept]);
        self.child.decompress(&Data::from_bytes(inner), &mut staged)?;
        if output.dtype() != staged.dtype() || output.num_elements() != n {
            *output = Data::owned(staged.dtype(), orig_dims.clone());
        } else if output.dims() != orig_dims {
            output.reshape(orig_dims)?;
        }
        let elem = staged.dtype().size();
        let src = staged.as_bytes().to_vec();
        let dst = output.as_bytes_mut();
        for i in 0..n {
            let s = (i / rate).min(n_kept - 1);
            dst[i * elem..(i + 1) * elem].copy_from_slice(&src[s * elem..(s + 1) * elem]);
        }
        Ok(())
    }

    fn clone_compressor(&self) -> Box<dyn Compressor> {
        Box::new(Sample {
            rate: self.rate,
            child_name: self.child_name.clone(),
            child: self.child.clone_compressor(),
        })
    }
}

/// Runtime switch between child compressors (`switch:active`) — the hook
/// LibPressio-Opt uses to search across compressor types.
pub struct Switch {
    active: String,
    child: Box<dyn Compressor>,
}

impl Switch {
    /// Switch initially pointing at `noop`.
    pub fn new() -> Switch {
        Switch {
            active: "noop".to_string(),
            child: default_child(),
        }
    }
}

impl Default for Switch {
    fn default() -> Self {
        Switch::new()
    }
}

const SWITCH_MAGIC: u32 = 0x5357_4348;

impl Compressor for Switch {
    fn get_configuration(&self) -> Options {
        let mut o = pressio_core::base_configuration(self);
        o.merge(&self.child.get_configuration());
        o
    }

    fn name(&self) -> &str {
        "switch"
    }

    fn version(&self) -> Version {
        Version::new(1, 0, 0)
    }

    fn thread_safety(&self) -> ThreadSafety {
        self.child.thread_safety()
    }

    fn get_options(&self) -> Options {
        let mut o = Options::new().with("switch:active", self.active.as_str());
        o.merge(&self.child.get_options());
        o
    }

    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(name) = options.get_as::<String>("switch:active")? {
            if !registry().has_compressor(&name) {
                return Err(
                    Error::not_found(format!("no compressor named {name:?}")).in_plugin("switch")
                );
            }
            self.child = resolve_child(&name)?;
            self.active = name;
        }
        self.child.set_options(options)
    }

    fn get_documentation(&self) -> Options {
        Options::new()
            .with("switch", "runtime-selectable child compressor")
            .with("switch:active", "registry name of the active child")
    }

    fn compress(&mut self, input: &Data) -> Result<Data> {
        let inner = self.child.compress(input)?;
        let mut w = ByteWriter::with_capacity(inner.size_in_bytes() + 32);
        w.put_u32(SWITCH_MAGIC);
        w.put_str(&self.active);
        w.put_section(inner.as_bytes());
        Ok(Data::from_bytes(&w.into_vec()))
    }

    fn decompress(&mut self, compressed: &Data, output: &mut Data) -> Result<()> {
        let mut r = ByteReader::new(compressed.as_bytes());
        if r.get_u32()? != SWITCH_MAGIC {
            return Err(Error::corrupt("bad switch magic").in_plugin("switch"));
        }
        let name = r.get_str()?.to_string();
        let inner = r.get_section()?;
        if name != self.active {
            self.child = resolve_child(&name).map_err(|e| e.in_plugin("switch"))?;
            self.active = name;
        }
        self.child.decompress(&Data::from_bytes(inner), output)
    }

    fn clone_compressor(&self) -> Box<dyn Compressor> {
        Box::new(Switch {
            active: self.active.clone(),
            child: self.child.clone_compressor(),
        })
    }
}
