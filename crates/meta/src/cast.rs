//! `cast`: dtype-conversion meta-compressor.
//!
//! Converts the input to a different element type before the child
//! compressor and back after decompression — the "store doubles as floats"
//! preprocessing many applications apply by hand, made a composable plugin.
//! Narrowing casts are lossy (by at most the target type's representation
//! error); widening casts are exact.

use pressio_core::{
    ByteReader, ByteWriter, Compressor, DType, Data, Error, Options, Result, ThreadSafety,
    Version,
};

use crate::util::{default_child, resolve_child};

const CAST_MAGIC: u32 = 0x4341_5354;

/// The `cast` meta-compressor.
pub struct Cast {
    target: DType,
    child_name: String,
    child: Box<dyn Compressor>,
}

impl Cast {
    /// Cast to `f32` over `noop` until configured.
    pub fn new() -> Cast {
        Cast {
            target: DType::F32,
            child_name: "noop".to_string(),
            child: default_child(),
        }
    }
}

impl Default for Cast {
    fn default() -> Self {
        Cast::new()
    }
}

impl Compressor for Cast {
    fn get_configuration(&self) -> Options {
        let mut o = pressio_core::base_configuration(self);
        o.merge(&self.child.get_configuration());
        o
    }

    fn name(&self) -> &str {
        "cast"
    }

    fn version(&self) -> Version {
        Version::new(1, 0, 0)
    }

    fn thread_safety(&self) -> ThreadSafety {
        self.child.thread_safety()
    }

    fn get_options(&self) -> Options {
        let mut o = Options::new()
            .with("cast:dtype", self.target.name())
            .with("cast:compressor", self.child_name.as_str());
        o.merge(&self.child.get_options());
        o
    }

    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(name) = options.get_as::<String>("cast:compressor")? {
            self.child = resolve_child(&name).map_err(|e| e.in_plugin("cast"))?;
            self.child_name = name;
        }
        if let Some(t) = options.get_as::<String>("cast:dtype")? {
            let dtype = DType::from_name(&t).map_err(|e| e.in_plugin("cast"))?;
            if dtype == DType::Byte {
                return Err(
                    Error::invalid_argument("cannot cast to the opaque byte type").in_plugin("cast")
                );
            }
            self.target = dtype;
        }
        self.child.set_options(options)
    }

    fn get_documentation(&self) -> Options {
        Options::new()
            .with(
                "cast",
                "converts elements to another dtype before the child compressor and back \
                 after (narrowing casts are lossy)",
            )
            .with("cast:dtype", "target element type (e.g. 'float' to store doubles as f32)")
            .with("cast:compressor", "registry name of the child compressor")
    }

    fn compress(&mut self, input: &Data) -> Result<Data> {
        let staged = if input.dtype() == self.target {
            input.clone()
        } else {
            input.cast(self.target).map_err(|e| e.in_plugin("cast"))?
        };
        let inner = self.child.compress(&staged)?;
        let mut w = ByteWriter::with_capacity(inner.size_in_bytes() + 48);
        w.put_u32(CAST_MAGIC);
        w.put_str(&self.child_name);
        w.put_dtype(input.dtype());
        w.put_dtype(self.target);
        w.put_dims(input.dims());
        w.put_section(inner.as_bytes());
        Ok(Data::from_bytes(&w.into_vec()))
    }

    fn decompress(&mut self, compressed: &Data, output: &mut Data) -> Result<()> {
        let mut r = ByteReader::new(compressed.as_bytes());
        if r.get_u32()? != CAST_MAGIC {
            return Err(Error::corrupt("bad cast magic").in_plugin("cast"));
        }
        let child_name = r.get_str()?.to_string();
        let orig_dtype = r.get_dtype()?;
        let staged_dtype = r.get_dtype()?;
        let dims = r.get_dims()?;
        pressio_core::checked_geometry(orig_dtype, &dims).map_err(|e| e.in_plugin("cast"))?;
        let inner = r.get_section()?;
        if child_name != self.child_name {
            self.child = resolve_child(&child_name).map_err(|e| e.in_plugin("cast"))?;
            self.child_name = child_name;
        }
        let mut staged = Data::owned(staged_dtype, dims.clone());
        self.child.decompress(&Data::from_bytes(inner), &mut staged)?;
        let restored = if staged.dtype() == orig_dtype {
            staged
        } else {
            staged.cast(orig_dtype).map_err(|e| e.in_plugin("cast"))?
        };
        *output = restored;
        Ok(())
    }

    fn clone_compressor(&self) -> Box<dyn Compressor> {
        Box::new(Cast {
            target: self.target,
            child_name: self.child_name.clone(),
            child: self.child.clone_compressor(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn init() {
        pressio_codecs::register_builtins();
        pressio_sz::register_builtins();
        crate::register_builtins();
    }

    #[test]
    fn f64_as_f32_halves_payload_with_bounded_error() {
        init();
        let vals: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.01).sin() * 100.0).collect();
        let input = Data::from_vec(vals.clone(), vec![64, 64]).unwrap();
        let mut c = Cast::new();
        c.set_options(
            &Options::new()
                .with("cast:dtype", "float")
                .with("cast:compressor", "noop"),
        )
        .unwrap();
        let compressed = c.compress(&input).unwrap();
        // noop stores the f32 payload: about half the f64 size.
        assert!(compressed.size_in_bytes() < input.size_in_bytes() * 6 / 10);
        let mut out = Data::owned(DType::F64, vec![64, 64]);
        c.decompress(&compressed, &mut out).unwrap();
        assert_eq!(out.dtype(), DType::F64);
        for (a, b) in vals.iter().zip(out.as_slice::<f64>().unwrap()) {
            // f32 relative representation error.
            assert!((a - b).abs() <= a.abs() * 1e-6 + 1e-6);
        }
    }

    #[test]
    fn composes_with_lossy_child() {
        init();
        let vals: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.02).cos() * 10.0).collect();
        let input = Data::from_vec(vals.clone(), vec![64, 64]).unwrap();
        let mut c = Cast::new();
        c.set_options(
            &Options::new()
                .with("cast:dtype", "float")
                .with("cast:compressor", "sz")
                .with(pressio_core::OPT_ABS, 1e-3f64),
        )
        .unwrap();
        let compressed = c.compress(&input).unwrap();
        let mut out = Data::owned(DType::F64, vec![64, 64]);
        c.decompress(&compressed, &mut out).unwrap();
        for (a, b) in vals.iter().zip(out.as_slice::<f64>().unwrap()) {
            // sz bound plus f32 representation error.
            assert!((a - b).abs() <= 1e-3 + a.abs() * 1e-6);
        }
    }

    #[test]
    fn widening_cast_is_exact() {
        init();
        let vals: Vec<f32> = (0..100).map(|i| i as f32 * 0.5).collect();
        let input = Data::from_vec(vals.clone(), vec![100]).unwrap();
        let mut c = Cast::new();
        c.set_options(
            &Options::new()
                .with("cast:dtype", "double")
                .with("cast:compressor", "deflate"),
        )
        .unwrap();
        let compressed = c.compress(&input).unwrap();
        let mut out = Data::owned(DType::F32, vec![100]);
        c.decompress(&compressed, &mut out).unwrap();
        assert_eq!(out.as_slice::<f32>().unwrap(), &vals[..]);
    }

    #[test]
    fn byte_target_rejected() {
        init();
        let mut c = Cast::new();
        assert!(c
            .set_options(&Options::new().with("cast:dtype", "byte"))
            .is_err());
    }
}
