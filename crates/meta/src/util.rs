//! Shared helpers for meta-compressors.

use pressio_core::wire::{checked_geometry, ByteReader, ByteWriter};
use pressio_core::{registry, Compressor, Data, Error, Options, Result, Version};

/// Instantiate a child compressor by registry name.
pub fn resolve_child(name: &str) -> Result<Box<dyn Compressor>> {
    Ok(registry().compressor(name)?.into_inner())
}

/// The default child for meta-compressors: the registry's `noop` when
/// available (always, once `libpressio::init()` has run), otherwise a
/// private inert pass-through — so constructors are infallible without a
/// panic path.
pub fn default_child() -> Box<dyn Compressor> {
    resolve_child("noop").unwrap_or_else(|_| Box::new(InertChild))
}

/// Stand-in for `noop` used only when the registry has not been populated
/// (e.g. a bare unit test constructing a meta-compressor directly). Mirrors
/// noop's introspection surface; the wire format is private to this type,
/// which is fine because a stream never crosses between registry states.
#[derive(Debug, Clone, Copy)]
struct InertChild;

impl Compressor for InertChild {
    fn name(&self) -> &str {
        "noop"
    }

    fn version(&self) -> Version {
        Version::new(1, 0, 0)
    }

    fn get_options(&self) -> Options {
        Options::new()
    }

    fn set_options(&mut self, _options: &Options) -> Result<()> {
        Ok(())
    }

    fn get_configuration(&self) -> Options {
        pressio_core::base_configuration(self)
    }

    fn compress(&mut self, input: &Data) -> Result<Data> {
        let mut w = ByteWriter::with_capacity(input.size_in_bytes() + 64);
        w.put_dtype(input.dtype());
        w.put_dims(input.dims());
        w.put_bytes(input.as_bytes());
        Ok(Data::from_bytes(&w.into_vec()))
    }

    fn decompress(&mut self, compressed: &Data, output: &mut Data) -> Result<()> {
        let mut r = ByteReader::new(compressed.as_bytes());
        let dtype = r.get_dtype()?;
        let dims = r.get_dims()?;
        let n = checked_geometry(dtype, &dims)?;
        let bytes = r.get_bytes(n)?;
        *output = Data::owned(dtype, dims);
        output.as_bytes_mut().copy_from_slice(bytes);
        Ok(())
    }

    fn clone_compressor(&self) -> Box<dyn Compressor> {
        Box::new(*self)
    }
}

/// Nd transpose of raw element bytes.
///
/// `dims` are the input dims (C order), `axes` maps output axis -> input
/// axis (a permutation). Returns the permuted bytes and the output dims.
pub fn transpose_bytes(
    bytes: &[u8],
    dims: &[usize],
    axes: &[usize],
    elem: usize,
) -> Result<(Vec<u8>, Vec<usize>)> {
    let nd = dims.len();
    if axes.len() != nd {
        return Err(Error::invalid_argument(format!(
            "axes {axes:?} must have the same length as dims {dims:?}"
        )));
    }
    let mut seen = vec![false; nd];
    for &a in axes {
        if a >= nd || seen[a] {
            return Err(Error::invalid_argument(format!(
                "axes {axes:?} is not a permutation of 0..{nd}"
            )));
        }
        seen[a] = true;
    }
    let n: usize = dims.iter().product();
    if bytes.len() != n * elem {
        return Err(Error::invalid_argument(
            "byte length does not match dims and element size",
        ));
    }
    // Input strides (elements).
    let mut in_strides = vec![1usize; nd];
    for i in (0..nd.saturating_sub(1)).rev() {
        in_strides[i] = in_strides[i + 1] * dims[i + 1];
    }
    let out_dims: Vec<usize> = axes.iter().map(|&a| dims[a]).collect();
    let mut out = vec![0u8; bytes.len()];
    // Iterate output indices in order; compute the matching input index.
    let mut coord = vec![0usize; nd];
    for (oi, chunk) in out.chunks_exact_mut(elem).enumerate() {
        // Decompose oi into output coords.
        let mut rem = oi;
        for (k, &od) in out_dims.iter().enumerate().rev() {
            coord[k] = rem % od;
            rem /= od;
        }
        let mut ii = 0usize;
        for (k, &a) in axes.iter().enumerate() {
            ii += coord[k] * in_strides[a];
        }
        chunk.copy_from_slice(&bytes[ii * elem..(ii + 1) * elem]);
    }
    Ok((out, out_dims))
}

/// Parse a comma-separated list of unsigned integers (e.g. `"2,0,1"`).
pub fn parse_usize_list(s: &str) -> Result<Vec<usize>> {
    s.split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| Error::invalid_argument(format!("cannot parse {p:?} as an index")))
        })
        .collect()
}

/// Inverse of a permutation.
pub fn invert_axes(axes: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; axes.len()];
    for (i, &a) in axes.iter().enumerate() {
        inv[a] = i;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_2d_known() {
        // 2x3 row-major [[1,2,3],[4,5,6]] -> 3x2 [[1,4],[2,5],[3,6]].
        let vals: Vec<u8> = vec![1, 2, 3, 4, 5, 6];
        let (out, dims) = transpose_bytes(&vals, &[2, 3], &[1, 0], 1).unwrap();
        assert_eq!(dims, vec![3, 2]);
        assert_eq!(out, vec![1, 4, 2, 5, 3, 6]);
    }

    #[test]
    fn transpose_roundtrip_3d_multibyte() {
        let dims = [3usize, 4, 5];
        let n: usize = dims.iter().product();
        let vals: Vec<u32> = (0..n as u32).collect();
        let bytes = pressio_core::elements_as_bytes(&vals);
        let axes = [2usize, 0, 1];
        let (t, tdims) = transpose_bytes(bytes, &dims, &axes, 4).unwrap();
        assert_eq!(tdims, vec![5, 3, 4]);
        let inv = invert_axes(&axes);
        let (back, bdims) = transpose_bytes(&t, &tdims, &inv, 4).unwrap();
        assert_eq!(bdims, dims.to_vec());
        assert_eq!(back, bytes);
    }

    #[test]
    fn identity_permutation() {
        let vals = vec![9u8, 8, 7, 6];
        let (out, dims) = transpose_bytes(&vals, &[4], &[0], 1).unwrap();
        assert_eq!(out, vals);
        assert_eq!(dims, vec![4]);
    }

    #[test]
    fn invalid_axes_rejected() {
        let vals = vec![0u8; 6];
        assert!(transpose_bytes(&vals, &[2, 3], &[0], 1).is_err());
        assert!(transpose_bytes(&vals, &[2, 3], &[0, 0], 1).is_err());
        assert!(transpose_bytes(&vals, &[2, 3], &[0, 2], 1).is_err());
    }

    #[test]
    fn parse_list() {
        assert_eq!(parse_usize_list("2, 0,1").unwrap(), vec![2, 0, 1]);
        assert!(parse_usize_list("a,b").is_err());
    }

    #[test]
    fn invert() {
        assert_eq!(invert_axes(&[2, 0, 1]), vec![1, 2, 0]);
        assert_eq!(invert_axes(&[0, 1]), vec![0, 1]);
    }
}
