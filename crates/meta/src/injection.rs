//! Fault and statistical error injection meta-compressors (the glossary's
//! *Fault Injector* and *Random Error Injector*): testing tools that fit the
//! compressor interface so they compose with everything else.

use pressio_core::{
    ByteReader, ByteWriter, Compressor, Data, Error, Options, Result, ThreadSafety, Version,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::util::{default_child, resolve_child};

const FAULT_MAGIC: u32 = 0x464C_5421;

/// How a compressed stream is damaged — by the [`FaultInjector`] and by the
/// `pressio fuzz-decode` corruption harness, which share this machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Flip `intensity` randomly chosen bits in place (the default).
    Bitflip,
    /// Drop up to `intensity` bytes from the end of the stream.
    Truncate,
    /// Append `intensity` random garbage bytes past the end.
    Extend,
    /// Overwrite a randomly placed run of up to `intensity` bytes with
    /// zeros.
    ZeroRegion,
}

/// Every mode, in the order the fuzz harness sweeps them.
pub const ALL_FAULT_MODES: [FaultMode; 4] = [
    FaultMode::Bitflip,
    FaultMode::Truncate,
    FaultMode::Extend,
    FaultMode::ZeroRegion,
];

impl FaultMode {
    /// The option-string spelling of this mode.
    pub const fn name(self) -> &'static str {
        match self {
            FaultMode::Bitflip => "bitflip",
            FaultMode::Truncate => "truncate",
            FaultMode::Extend => "extend",
            FaultMode::ZeroRegion => "zero_region",
        }
    }

    /// Parse an option-string spelling.
    pub fn from_name(name: &str) -> Result<FaultMode> {
        ALL_FAULT_MODES
            .iter()
            .copied()
            .find(|m| m.name() == name)
            .ok_or_else(|| {
                Error::invalid_argument(format!(
                    "unknown fault mode {name:?} (expected bitflip | truncate | extend | \
                     zero_region)"
                ))
            })
    }
}

/// Produce a damaged copy of `bytes` according to `mode` and `intensity`.
///
/// `intensity` scales the damage (bits flipped, bytes dropped/appended/
/// zeroed); `intensity == 0` or an empty input returns the stream unchanged
/// (except [`FaultMode::Extend`], which can grow an empty stream). All
/// randomness comes from the caller's `rng`, so identical seeds reproduce
/// identical corruption.
pub fn mutate_stream(bytes: &[u8], mode: FaultMode, intensity: u32, rng: &mut StdRng) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if intensity == 0 {
        return out;
    }
    match mode {
        FaultMode::Bitflip => {
            if !out.is_empty() {
                for _ in 0..intensity {
                    let byte = rng.gen_range(0..out.len());
                    let bit = rng.gen_range(0..8u32);
                    out[byte] ^= 1 << bit;
                }
            }
        }
        FaultMode::Truncate => {
            let cut = (intensity as usize).min(out.len());
            out.truncate(out.len() - cut);
        }
        FaultMode::Extend => {
            for _ in 0..intensity {
                out.push(rng.gen_range(0..256u32) as u8);
            }
        }
        FaultMode::ZeroRegion => {
            if !out.is_empty() {
                let start = rng.gen_range(0..out.len());
                let len = (intensity as usize).min(out.len() - start);
                for b in &mut out[start..start + len] {
                    *b = 0;
                }
            }
        }
    }
    out
}

/// Derive the RNG for one invocation of a seeded injector: the configured
/// seed selects the family, the invocation index selects the stream within
/// it, so repeated calls draw fresh randomness while a fresh instance with
/// the same seed replays the same sequence of streams.
fn stream_rng(seed: u64, invocation: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ invocation.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Damages the child's *compressed* stream — the engine behind fuzz-style
/// robustness testing of decompressors. `fault_injector:mode` picks the
/// damage model (bit flips by default; see [`FaultMode`]).
pub struct FaultInjector {
    num_bits: u32,
    seed: u64,
    mode: FaultMode,
    invocations: u64,
    child_name: String,
    child: Box<dyn Compressor>,
}

impl FaultInjector {
    /// Injector over `noop` until configured; injects nothing by default.
    pub fn new() -> FaultInjector {
        FaultInjector {
            num_bits: 0,
            seed: 0,
            mode: FaultMode::Bitflip,
            invocations: 0,
            child_name: "noop".to_string(),
            child: default_child(),
        }
    }
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::new()
    }
}

impl Compressor for FaultInjector {
    fn get_configuration(&self) -> Options {
        let mut o = pressio_core::base_configuration(self);
        o.merge(&self.child.get_configuration());
        o
    }

    fn name(&self) -> &str {
        "fault_injector"
    }

    fn version(&self) -> Version {
        Version::new(1, 0, 0)
    }

    fn thread_safety(&self) -> ThreadSafety {
        self.child.thread_safety()
    }

    fn get_options(&self) -> Options {
        let mut o = Options::new()
            .with("fault_injector:num_bits", self.num_bits)
            .with("fault_injector:seed", self.seed)
            .with("fault_injector:mode", self.mode.name())
            .with("fault_injector:compressor", self.child_name.as_str());
        o.merge(&self.child.get_options());
        o
    }

    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(name) = options.get_as::<String>("fault_injector:compressor")? {
            self.child = resolve_child(&name).map_err(|e| e.in_plugin("fault_injector"))?;
            self.child_name = name;
        }
        if let Some(n) = options.get_as::<u32>("fault_injector:num_bits")? {
            self.num_bits = n;
        }
        if let Some(s) = options.get_as::<u64>("fault_injector:seed")? {
            self.seed = s;
            self.invocations = 0;
        }
        if let Some(m) = options.get_as::<String>("fault_injector:mode")? {
            self.mode = FaultMode::from_name(&m).map_err(|e| e.in_plugin("fault_injector"))?;
        }
        self.child.set_options(options)
    }

    fn get_documentation(&self) -> Options {
        Options::new()
            .with(
                "fault_injector",
                "damages the child's compressed stream (decompression robustness / fuzz \
                 testing)",
            )
            .with(
                "fault_injector:num_bits",
                "damage intensity: bits flipped, or bytes truncated/appended/zeroed",
            )
            .with(
                "fault_injector:seed",
                "PRNG seed; each compress call draws a fresh per-invocation stream from it",
            )
            .with(
                "fault_injector:mode",
                "bitflip | truncate | extend | zero_region",
            )
            .with("fault_injector:compressor", "registry name of the child")
    }

    fn compress(&mut self, input: &Data) -> Result<Data> {
        let inner = self.child.compress(input)?;
        let mut bytes = inner.as_bytes().to_vec();
        if self.num_bits > 0 {
            let mut rng = stream_rng(self.seed, self.invocations);
            self.invocations += 1;
            bytes = mutate_stream(&bytes, self.mode, self.num_bits, &mut rng);
        }
        let mut w = ByteWriter::with_capacity(bytes.len() + 32);
        w.put_u32(FAULT_MAGIC);
        w.put_str(&self.child_name);
        w.put_section(&bytes);
        Ok(Data::from_bytes(&w.into_vec()))
    }

    fn decompress(&mut self, compressed: &Data, output: &mut Data) -> Result<()> {
        let mut r = ByteReader::new(compressed.as_bytes());
        if r.get_u32()? != FAULT_MAGIC {
            return Err(Error::corrupt("bad fault_injector magic").in_plugin("fault_injector"));
        }
        let name = r.get_str()?.to_string();
        let inner = r.get_section()?;
        if name != self.child_name {
            self.child = resolve_child(&name).map_err(|e| e.in_plugin("fault_injector"))?;
            self.child_name = name;
        }
        self.child.decompress(&Data::from_bytes(inner), output)
    }

    fn clone_compressor(&self) -> Box<dyn Compressor> {
        Box::new(FaultInjector {
            num_bits: self.num_bits,
            seed: self.seed,
            mode: self.mode,
            // A clone replays the seed's stream sequence from the start.
            invocations: 0,
            child_name: self.child_name.clone(),
            child: self.child.clone_compressor(),
        })
    }
}

/// Adds random noise to every input element *before* compression — for
/// studying how compressors respond to measurement error.
pub struct NoiseInjector {
    /// "gaussian" or "uniform".
    dist: String,
    scale: f64,
    seed: u64,
    invocations: u64,
    child_name: String,
    child: Box<dyn Compressor>,
}

impl NoiseInjector {
    /// Injector over `noop` until configured; zero noise by default.
    pub fn new() -> NoiseInjector {
        NoiseInjector {
            dist: "gaussian".to_string(),
            scale: 0.0,
            seed: 0,
            invocations: 0,
            child_name: "noop".to_string(),
            child: default_child(),
        }
    }

    fn sample(&self, rng: &mut StdRng) -> f64 {
        match self.dist.as_str() {
            "uniform" => rng.gen_range(-1.0..1.0) * self.scale,
            _ => {
                // Box-Muller transform for a standard normal.
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * self.scale
            }
        }
    }
}

impl Default for NoiseInjector {
    fn default() -> Self {
        NoiseInjector::new()
    }
}

impl Compressor for NoiseInjector {
    fn get_configuration(&self) -> Options {
        let mut o = pressio_core::base_configuration(self);
        o.merge(&self.child.get_configuration());
        o
    }

    fn name(&self) -> &str {
        "noise"
    }

    fn version(&self) -> Version {
        Version::new(1, 0, 0)
    }

    fn thread_safety(&self) -> ThreadSafety {
        self.child.thread_safety()
    }

    fn get_options(&self) -> Options {
        let mut o = Options::new()
            .with("noise:dist", self.dist.as_str())
            .with("noise:scale", self.scale)
            .with("noise:seed", self.seed)
            .with("noise:compressor", self.child_name.as_str());
        o.merge(&self.child.get_options());
        o
    }

    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(name) = options.get_as::<String>("noise:compressor")? {
            self.child = resolve_child(&name).map_err(|e| e.in_plugin("noise"))?;
            self.child_name = name;
        }
        if let Some(d) = options.get_as::<String>("noise:dist")? {
            if d != "gaussian" && d != "uniform" {
                return Err(Error::invalid_argument(
                    "noise:dist must be 'gaussian' or 'uniform'",
                )
                .in_plugin("noise"));
            }
            self.dist = d;
        }
        if let Some(s) = options.get_as::<f64>("noise:scale")? {
            if !(s.is_finite() && s >= 0.0) {
                return Err(Error::invalid_argument(
                    "noise:scale must be finite and non-negative",
                )
                .in_plugin("noise"));
            }
            self.scale = s;
        }
        if let Some(s) = options.get_as::<u64>("noise:seed")? {
            self.seed = s;
            self.invocations = 0;
        }
        self.child.set_options(options)
    }

    fn get_documentation(&self) -> Options {
        Options::new()
            .with("noise", "adds random noise to each input element before compression")
            .with("noise:dist", "gaussian | uniform")
            .with("noise:scale", "standard deviation (gaussian) or half-width (uniform)")
            .with(
                "noise:seed",
                "PRNG seed; each compress call draws a fresh per-invocation stream from it",
            )
            .with("noise:compressor", "registry name of the child")
    }

    fn compress(&mut self, input: &Data) -> Result<Data> {
        if self.scale == 0.0 {
            return self.child.compress(input);
        }
        pressio_core::require_dtype(
            "noise",
            input,
            &[pressio_core::DType::F32, pressio_core::DType::F64],
        )?;
        let mut staged = input.clone();
        let mut rng = stream_rng(self.seed, self.invocations);
        self.invocations += 1;
        match staged.dtype() {
            pressio_core::DType::F32 => {
                for v in staged.as_mut_slice::<f32>()? {
                    *v += self.sample(&mut rng) as f32;
                }
            }
            _ => {
                for v in staged.as_mut_slice::<f64>()? {
                    *v += self.sample(&mut rng);
                }
            }
        }
        self.child.compress(&staged)
    }

    fn decompress(&mut self, compressed: &Data, output: &mut Data) -> Result<()> {
        self.child.decompress(compressed, output)
    }

    fn clone_compressor(&self) -> Box<dyn Compressor> {
        Box::new(NoiseInjector {
            dist: self.dist.clone(),
            scale: self.scale,
            seed: self.seed,
            // A clone replays the seed's stream sequence from the start.
            invocations: 0,
            child_name: self.child_name.clone(),
            child: self.child.clone_compressor(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn mode_names_roundtrip_and_reject_unknown() {
        for m in ALL_FAULT_MODES {
            assert_eq!(FaultMode::from_name(m.name()).unwrap(), m);
        }
        assert!(FaultMode::from_name("flipbits").is_err());
    }

    #[test]
    fn mutate_stream_is_deterministic_per_rng_state() {
        let data: Vec<u8> = (0..128).map(|i| i as u8).collect();
        for m in ALL_FAULT_MODES {
            let a = mutate_stream(&data, m, 16, &mut rng(7));
            let b = mutate_stream(&data, m, 16, &mut rng(7));
            assert_eq!(a, b, "{m:?} not reproducible");
            assert_ne!(a, data, "{m:?} left the stream untouched");
        }
    }

    #[test]
    fn mutate_stream_mode_shapes() {
        let data = vec![0xffu8; 64];

        // Bitflip: length preserved, content changed.
        let flipped = mutate_stream(&data, FaultMode::Bitflip, 8, &mut rng(1));
        assert_eq!(flipped.len(), data.len());
        assert_ne!(flipped, data);

        // Truncate: shorter by exactly the intensity, prefix preserved.
        let cut = mutate_stream(&data, FaultMode::Truncate, 10, &mut rng(1));
        assert_eq!(cut.len(), 54);
        assert_eq!(cut[..], data[..54]);
        // Truncation past the whole stream empties it without panicking.
        assert!(mutate_stream(&data, FaultMode::Truncate, 1000, &mut rng(1)).is_empty());

        // Extend: longer by exactly the intensity, prefix preserved.
        let grown = mutate_stream(&data, FaultMode::Extend, 10, &mut rng(1));
        assert_eq!(grown.len(), 74);
        assert_eq!(grown[..64], data[..]);
        // Extend is the one mode that can damage an empty stream.
        assert_eq!(mutate_stream(&[], FaultMode::Extend, 4, &mut rng(1)).len(), 4);

        // ZeroRegion: length preserved, a contiguous zero run appears.
        let zeroed = mutate_stream(&data, FaultMode::ZeroRegion, 8, &mut rng(1));
        assert_eq!(zeroed.len(), data.len());
        assert!(zeroed.contains(&0));

        // Zero intensity is the identity for every mode.
        for m in ALL_FAULT_MODES {
            assert_eq!(mutate_stream(&data, m, 0, &mut rng(1)), data);
        }
    }

    #[test]
    fn invocation_streams_differ_but_replay_per_seed() {
        // The per-invocation derivation gives distinct RNG streams for
        // successive calls while a fresh instance with the same seed
        // replays the same sequence (the fixed fault_injector/noise seed
        // reuse bug).
        let draws = |seed: u64, invocation: u64| -> Vec<u64> {
            let mut r = stream_rng(seed, invocation);
            (0..8).map(|_| r.gen_range(0..u64::MAX)).collect()
        };
        assert_ne!(draws(42, 0), draws(42, 1));
        assert_ne!(draws(42, 1), draws(42, 2));
        assert_eq!(draws(42, 0), draws(42, 0));
        assert_eq!(draws(42, 5), draws(42, 5));
        assert_ne!(draws(42, 0), draws(43, 0));
    }
}
