//! Fault and statistical error injection meta-compressors (the glossary's
//! *Fault Injector* and *Random Error Injector*): testing tools that fit the
//! compressor interface so they compose with everything else.

use pressio_core::{
    ByteReader, ByteWriter, Compressor, Data, Error, Options, Result, ThreadSafety, Version,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::util::{default_child, resolve_child};

const FAULT_MAGIC: u32 = 0x464C_5421;

/// Flips random bits in the child's *compressed* stream — the engine behind
/// fuzz-style robustness testing of decompressors.
pub struct FaultInjector {
    num_bits: u32,
    seed: u64,
    child_name: String,
    child: Box<dyn Compressor>,
}

impl FaultInjector {
    /// Injector over `noop` until configured; injects nothing by default.
    pub fn new() -> FaultInjector {
        FaultInjector {
            num_bits: 0,
            seed: 0,
            child_name: "noop".to_string(),
            child: default_child(),
        }
    }
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::new()
    }
}

impl Compressor for FaultInjector {
    fn get_configuration(&self) -> Options {
        let mut o = pressio_core::base_configuration(self);
        o.merge(&self.child.get_configuration());
        o
    }

    fn name(&self) -> &str {
        "fault_injector"
    }

    fn version(&self) -> Version {
        Version::new(1, 0, 0)
    }

    fn thread_safety(&self) -> ThreadSafety {
        self.child.thread_safety()
    }

    fn get_options(&self) -> Options {
        let mut o = Options::new()
            .with("fault_injector:num_bits", self.num_bits)
            .with("fault_injector:seed", self.seed)
            .with("fault_injector:compressor", self.child_name.as_str());
        o.merge(&self.child.get_options());
        o
    }

    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(name) = options.get_as::<String>("fault_injector:compressor")? {
            self.child = resolve_child(&name).map_err(|e| e.in_plugin("fault_injector"))?;
            self.child_name = name;
        }
        if let Some(n) = options.get_as::<u32>("fault_injector:num_bits")? {
            self.num_bits = n;
        }
        if let Some(s) = options.get_as::<u64>("fault_injector:seed")? {
            self.seed = s;
        }
        self.child.set_options(options)
    }

    fn get_documentation(&self) -> Options {
        Options::new()
            .with(
                "fault_injector",
                "flips random bits in the child's compressed stream (decompression \
                 robustness / fuzz testing)",
            )
            .with("fault_injector:num_bits", "number of bit flips to inject")
            .with("fault_injector:seed", "PRNG seed for reproducible faults")
            .with("fault_injector:compressor", "registry name of the child")
    }

    fn compress(&mut self, input: &Data) -> Result<Data> {
        let inner = self.child.compress(input)?;
        let mut bytes = inner.as_bytes().to_vec();
        if self.num_bits > 0 && !bytes.is_empty() {
            let mut rng = StdRng::seed_from_u64(self.seed);
            for _ in 0..self.num_bits {
                let byte = rng.gen_range(0..bytes.len());
                let bit = rng.gen_range(0..8u32);
                bytes[byte] ^= 1 << bit;
            }
        }
        let mut w = ByteWriter::with_capacity(bytes.len() + 32);
        w.put_u32(FAULT_MAGIC);
        w.put_str(&self.child_name);
        w.put_section(&bytes);
        Ok(Data::from_bytes(&w.into_vec()))
    }

    fn decompress(&mut self, compressed: &Data, output: &mut Data) -> Result<()> {
        let mut r = ByteReader::new(compressed.as_bytes());
        if r.get_u32()? != FAULT_MAGIC {
            return Err(Error::corrupt("bad fault_injector magic").in_plugin("fault_injector"));
        }
        let name = r.get_str()?.to_string();
        let inner = r.get_section()?;
        if name != self.child_name {
            self.child = resolve_child(&name).map_err(|e| e.in_plugin("fault_injector"))?;
            self.child_name = name;
        }
        self.child.decompress(&Data::from_bytes(inner), output)
    }

    fn clone_compressor(&self) -> Box<dyn Compressor> {
        Box::new(FaultInjector {
            num_bits: self.num_bits,
            seed: self.seed,
            child_name: self.child_name.clone(),
            child: self.child.clone_compressor(),
        })
    }
}

/// Adds random noise to every input element *before* compression — for
/// studying how compressors respond to measurement error.
pub struct NoiseInjector {
    /// "gaussian" or "uniform".
    dist: String,
    scale: f64,
    seed: u64,
    child_name: String,
    child: Box<dyn Compressor>,
}

impl NoiseInjector {
    /// Injector over `noop` until configured; zero noise by default.
    pub fn new() -> NoiseInjector {
        NoiseInjector {
            dist: "gaussian".to_string(),
            scale: 0.0,
            seed: 0,
            child_name: "noop".to_string(),
            child: default_child(),
        }
    }

    fn sample(&self, rng: &mut StdRng) -> f64 {
        match self.dist.as_str() {
            "uniform" => rng.gen_range(-1.0..1.0) * self.scale,
            _ => {
                // Box-Muller transform for a standard normal.
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * self.scale
            }
        }
    }
}

impl Default for NoiseInjector {
    fn default() -> Self {
        NoiseInjector::new()
    }
}

impl Compressor for NoiseInjector {
    fn get_configuration(&self) -> Options {
        let mut o = pressio_core::base_configuration(self);
        o.merge(&self.child.get_configuration());
        o
    }

    fn name(&self) -> &str {
        "noise"
    }

    fn version(&self) -> Version {
        Version::new(1, 0, 0)
    }

    fn thread_safety(&self) -> ThreadSafety {
        self.child.thread_safety()
    }

    fn get_options(&self) -> Options {
        let mut o = Options::new()
            .with("noise:dist", self.dist.as_str())
            .with("noise:scale", self.scale)
            .with("noise:seed", self.seed)
            .with("noise:compressor", self.child_name.as_str());
        o.merge(&self.child.get_options());
        o
    }

    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(name) = options.get_as::<String>("noise:compressor")? {
            self.child = resolve_child(&name).map_err(|e| e.in_plugin("noise"))?;
            self.child_name = name;
        }
        if let Some(d) = options.get_as::<String>("noise:dist")? {
            if d != "gaussian" && d != "uniform" {
                return Err(Error::invalid_argument(
                    "noise:dist must be 'gaussian' or 'uniform'",
                )
                .in_plugin("noise"));
            }
            self.dist = d;
        }
        if let Some(s) = options.get_as::<f64>("noise:scale")? {
            if !(s.is_finite() && s >= 0.0) {
                return Err(Error::invalid_argument(
                    "noise:scale must be finite and non-negative",
                )
                .in_plugin("noise"));
            }
            self.scale = s;
        }
        if let Some(s) = options.get_as::<u64>("noise:seed")? {
            self.seed = s;
        }
        self.child.set_options(options)
    }

    fn get_documentation(&self) -> Options {
        Options::new()
            .with("noise", "adds random noise to each input element before compression")
            .with("noise:dist", "gaussian | uniform")
            .with("noise:scale", "standard deviation (gaussian) or half-width (uniform)")
            .with("noise:seed", "PRNG seed for reproducibility")
            .with("noise:compressor", "registry name of the child")
    }

    fn compress(&mut self, input: &Data) -> Result<Data> {
        if self.scale == 0.0 {
            return self.child.compress(input);
        }
        pressio_core::require_dtype(
            "noise",
            input,
            &[pressio_core::DType::F32, pressio_core::DType::F64],
        )?;
        let mut staged = input.clone();
        let mut rng = StdRng::seed_from_u64(self.seed);
        match staged.dtype() {
            pressio_core::DType::F32 => {
                for v in staged.as_mut_slice::<f32>()? {
                    *v += self.sample(&mut rng) as f32;
                }
            }
            _ => {
                for v in staged.as_mut_slice::<f64>()? {
                    *v += self.sample(&mut rng);
                }
            }
        }
        self.child.compress(&staged)
    }

    fn decompress(&mut self, compressed: &Data, output: &mut Data) -> Result<()> {
        self.child.decompress(compressed, output)
    }

    fn clone_compressor(&self) -> Box<dyn Compressor> {
        Box::new(NoiseInjector {
            dist: self.dist.clone(),
            scale: self.scale,
            seed: self.seed,
            child_name: self.child_name.clone(),
            child: self.child.clone_compressor(),
        })
    }
}
