//! # pressio-meta
//!
//! Meta-compressors: plugins that implement the compressor interface but
//! delegate the actual coding to child plugins, adding shape manipulation,
//! parallelism, testing instrumentation, or configuration search on top —
//! the paper's Section IV-D.
//!
//! | plugin | role |
//! |---|---|
//! | `cast`      | dtype conversion (e.g. store f64 as f32) |
//! | `transpose` | axis permutation pre/post processing |
//! | `resize`    | dimension reinterpretation (e.g. `A×B×1` → `A×B` for ZFP) |
//! | `sample`    | decimating sampler for analysis workflows |
//! | `switch`    | runtime-selectable child compressor |
//! | `pipeline`  | compose compressors out of reusable stages |
//! | `chunking`  | parallel row-block compression (shared execution engine) |
//! | `many_independent` | embarrassingly parallel multi-buffer compression |
//! | `many_dependent`   | config forwarding between time steps |
//! | `fault_injector`   | stream corruption: bit flips, truncation, ... (fuzzing) |
//! | `noise`     | statistical error injection into inputs |
//! | `opt`       | FRaZ-style fixed-ratio configuration optimizer |
//! | `guard`     | integrity framing, deadlines, retry, fallback chains |
//!
//! The parallel plugins consume the child's thread-safety introspection:
//! `Serialized`/`Single` children degrade to sequential execution instead of
//! racing on shared state.

#![warn(missing_docs)]

pub mod cast;
pub mod guard;
pub mod injection;
pub mod opt;
pub mod parallel;
pub mod pipeline;
pub mod shape;
pub mod util;

pub use cast::Cast;
pub use guard::{jittered_backoff_ms, run_with_deadline, Guard, MAX_BACKOFF_MS};
pub use injection::{mutate_stream, FaultInjector, FaultMode, NoiseInjector, ALL_FAULT_MODES};
pub use opt::{Objective, Opt, OptOutcome};
pub use parallel::{Chunking, ManyDependent, ManyIndependent};
pub use pipeline::Pipeline;
pub use shape::{Resize, Sample, Switch, Transpose};

/// Register every meta-compressor into the global registry.
///
/// Requires a `noop` compressor to already be registered (the codecs crate
/// provides it), since meta-compressors default their child to `noop`.
pub fn register_builtins() {
    let reg = pressio_core::registry();
    reg.register_compressor("cast", || Box::new(Cast::new()));
    reg.register_compressor("transpose", || Box::new(Transpose::new()));
    reg.register_compressor("resize", || Box::new(Resize::new()));
    reg.register_compressor("sample", || Box::new(Sample::new()));
    reg.register_compressor("switch", || Box::new(Switch::new()));
    reg.register_compressor("pipeline", || Box::new(Pipeline::new()));
    reg.register_compressor("chunking", || Box::new(Chunking::new()));
    reg.register_compressor("many_independent", || Box::new(ManyIndependent::new()));
    reg.register_compressor("many_dependent", || Box::new(ManyDependent::new()));
    reg.register_compressor("fault_injector", || Box::new(FaultInjector::new()));
    reg.register_compressor("noise", || Box::new(NoiseInjector::new()));
    reg.register_compressor("opt", || Box::new(Opt::new()));
    reg.register_compressor("guard", || Box::new(Guard::new()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use pressio_core::{Compressor, DType, Data, Options, ThreadSafety};

    fn init() {
        pressio_codecs::register_builtins();
        pressio_sz::register_builtins();
        pressio_zfp::register_builtins();
        register_builtins();
    }

    fn field(dims: &[usize]) -> Data {
        let n: usize = dims.iter().product();
        let nx = *dims.last().expect("non-empty");
        let v: Vec<f64> = (0..n)
            .map(|i| ((i % nx) as f64 * 0.05).sin() + ((i / nx) as f64 * 0.04).cos())
            .collect();
        Data::from_vec(v, dims.to_vec()).unwrap()
    }

    fn max_err(a: &Data, b: &Data) -> f64 {
        a.to_f64_vec()
            .unwrap()
            .iter()
            .zip(b.to_f64_vec().unwrap().iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn transpose_roundtrips_through_lossless_child() {
        init();
        let input = field(&[6, 8, 10]);
        let mut t = Transpose::new();
        t.set_options(
            &Options::new()
                .with("transpose:axes", "2,0,1")
                .with("transpose:compressor", "deflate"),
        )
        .unwrap();
        let c = t.compress(&input).unwrap();
        let mut out = Data::owned(DType::F64, vec![6, 8, 10]);
        t.decompress(&c, &mut out).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn transpose_preserves_error_bound_of_lossy_child() {
        init();
        let input = field(&[8, 16, 16]);
        let mut t = Transpose::new();
        t.set_options(
            &Options::new()
                .with("transpose:compressor", "sz")
                .with("sz:abs_err_bound", 1e-4f64),
        )
        .unwrap();
        let c = t.compress(&input).unwrap();
        let mut out = Data::owned(DType::F64, vec![8, 16, 16]);
        t.decompress(&c, &mut out).unwrap();
        assert!(max_err(&input, &out) <= 1e-4);
    }

    #[test]
    fn resize_helps_zfp_with_degenerate_dims() {
        init();
        // A 64x64x1 buffer: natively ZFP pads the z dimension; resized to
        // 64x64 it codes well-shaped 2-d blocks. This is the glossary's
        // motivating example for `resize`.
        let mut input = field(&[64, 64]);
        input.reshape(vec![64, 64, 1]).unwrap();
        let mut native = pressio_core::registry().compressor("zfp").unwrap();
        native
            .set_options(&Options::new().with("zfp:accuracy", 1e-4f64))
            .unwrap();
        let raw = native.compress(&input).unwrap();

        let mut r = Resize::new();
        r.set_options(
            &Options::new()
                .with("resize:dims", "64,64")
                .with("resize:compressor", "zfp")
                .with("zfp:accuracy", 1e-4f64),
        )
        .unwrap();
        let resized = r.compress(&input).unwrap();
        assert!(
            resized.size_in_bytes() < raw.size_in_bytes(),
            "resize should help: {} vs {}",
            resized.size_in_bytes(),
            raw.size_in_bytes()
        );
        let mut out = Data::owned(DType::F64, vec![64, 64, 1]);
        r.decompress(&resized, &mut out).unwrap();
        assert_eq!(out.dims(), &[64, 64, 1]);
        assert!(max_err(&input, &out) <= 1e-4);
    }

    #[test]
    fn sample_decimates_and_reconstructs_shape() {
        init();
        let input = field(&[100]);
        let mut s = Sample::new();
        s.set_options(
            &Options::new()
                .with("sample:rate", 4u64)
                .with("sample:compressor", "deflate"),
        )
        .unwrap();
        let c = s.compress(&input).unwrap();
        let mut out = Data::owned(DType::F64, vec![100]);
        s.decompress(&c, &mut out).unwrap();
        assert_eq!(out.dims(), &[100]);
        // Kept samples are exact; in-between values are held.
        let orig = input.as_slice::<f64>().unwrap();
        let got = out.as_slice::<f64>().unwrap();
        for i in (0..100).step_by(4) {
            assert_eq!(orig[i], got[i]);
        }
        assert_eq!(got[1], orig[0]);
    }

    #[test]
    fn switch_changes_child_at_runtime() {
        init();
        let input = field(&[32, 32]);
        let mut s = Switch::new();
        s.set_options(&Options::new().with("switch:active", "fpzip")).unwrap();
        let c1 = s.compress(&input).unwrap();
        s.set_options(
            &Options::new()
                .with("switch:active", "sz")
                .with("sz:abs_err_bound", 1e-3f64),
        )
        .unwrap();
        let c2 = s.compress(&input).unwrap();
        // Both decompress correctly even on a *fresh* switch instance,
        // because the stream records the active child.
        for (c, tol) in [(c1, 0.0), (c2, 1e-3)] {
            let mut fresh = Switch::new();
            let mut out = Data::owned(DType::F64, vec![32, 32]);
            fresh.decompress(&c, &mut out).unwrap();
            assert!(max_err(&input, &out) <= tol);
        }
        assert!(s
            .set_options(&Options::new().with("switch:active", "no_such"))
            .is_err());
    }

    #[test]
    fn pipeline_composes_stages() {
        init();
        let input = field(&[64, 64]);
        let mut p = Pipeline::new();
        p.set_options(
            &Options::new()
                .with(
                    "pipeline:stages",
                    vec!["linear_quantizer".to_string(), "rle".to_string()],
                )
                .with("linear_quantizer:abs", 1e-3f64),
        )
        .unwrap();
        let c = p.compress(&input).unwrap();
        let mut out = Data::owned(DType::F64, vec![64, 64]);
        p.decompress(&c, &mut out).unwrap();
        assert!(max_err(&input, &out) <= 1e-3);
        // Empty pipeline is an error.
        assert!(Pipeline::new().compress(&input).is_err());
    }

    #[test]
    fn chunking_parallel_matches_bound() {
        init();
        let input = field(&[32, 64, 64]);
        for threads in [1u32, 3, 8] {
            let mut c = Chunking::new();
            c.set_options(
                &Options::new()
                    .with("chunking:compressor", "sz_threadsafe")
                    .with("chunking:nthreads", threads)
                    .with("sz_threadsafe:abs_err_bound", 1e-4f64),
            )
            .unwrap();
            let compressed = c.compress(&input).unwrap();
            let mut out = Data::owned(DType::F64, vec![32, 64, 64]);
            c.decompress(&compressed, &mut out).unwrap();
            assert!(max_err(&input, &out) <= 1e-4, "threads={threads}");
        }
    }

    #[test]
    fn chunking_serializes_unsafe_children() {
        init();
        // `sz` is Serialized: chunking must still produce correct results
        // (sequentially).
        let input = field(&[16, 32, 32]);
        let mut c = Chunking::new();
        c.set_options(
            &Options::new()
                .with("chunking:compressor", "sz")
                .with("chunking:nthreads", 4u32)
                .with("sz:abs_err_bound", 1e-3f64),
        )
        .unwrap();
        let compressed = c.compress(&input).unwrap();
        let mut out = Data::owned(DType::F64, vec![16, 32, 32]);
        c.decompress(&compressed, &mut out).unwrap();
        assert!(max_err(&input, &out) <= 1e-3);
    }

    #[test]
    fn many_independent_parallel_batch() {
        init();
        let buffers: Vec<Data> = (0..8)
            .map(|i| {
                let v: Vec<f64> = (0..4096).map(|j| ((i * 4096 + j) as f64 * 0.001).sin()).collect();
                Data::from_vec(v, vec![64, 64]).unwrap()
            })
            .collect();
        let refs: Vec<&Data> = buffers.iter().collect();
        let mut m = ManyIndependent::new();
        m.set_options(
            &Options::new()
                .with("many_independent:compressor", "sz_threadsafe")
                .with("many_independent:nthreads", 4u32)
                .with("sz_threadsafe:abs_err_bound", 1e-4f64),
        )
        .unwrap();
        let compressed = m.compress_many(&refs).unwrap();
        assert_eq!(compressed.len(), 8);
        let crefs: Vec<&Data> = compressed.iter().collect();
        let mut outputs: Vec<Data> = (0..8).map(|_| Data::owned(DType::F64, vec![64, 64])).collect();
        m.decompress_many(&crefs, &mut outputs).unwrap();
        for (orig, out) in buffers.iter().zip(&outputs) {
            assert!(max_err(orig, out) <= 1e-4);
        }
    }

    #[test]
    fn many_dependent_forwards_configuration() {
        init();
        let buffers: Vec<Data> = (0..3)
            .map(|i| {
                let scale = 10f64.powi(i);
                let v: Vec<f64> = (0..1000).map(|j| (j as f64 * 0.01).sin() * scale).collect();
                Data::from_vec(v, vec![1000]).unwrap()
            })
            .collect();
        let refs: Vec<&Data> = buffers.iter().collect();
        let mut m = ManyDependent::new();
        m.set_options(
            &Options::new()
                .with("many_dependent:compressor", "sz_threadsafe")
                .with("many_dependent:source", "error_stat:value_range")
                .with("many_dependent:target", pressio_core::OPT_ABS)
                .with("many_dependent:scale", 1e-4f64),
        )
        .unwrap();
        let compressed = m.compress_many(&refs).unwrap();
        // Each buffer's bound was derived from its own range: decompress and
        // verify a 1e-4-relative bound per buffer.
        for (i, (orig, c)) in buffers.iter().zip(&compressed).enumerate() {
            let mut out = Data::owned(DType::F64, vec![1000]);
            let mut dec = pressio_core::registry().compressor("sz_threadsafe").unwrap();
            dec.decompress(c, &mut out).unwrap();
            let range = pressio_core::value_range(orig.as_slice::<f64>().unwrap());
            assert!(max_err(orig, &out) <= 1e-4 * range * 1.001, "buffer {i}");
        }
    }

    #[test]
    fn fault_injector_corrupts_streams_detectably() {
        init();
        let input = field(&[32, 32]);
        let mut f = FaultInjector::new();
        f.set_options(
            &Options::new()
                .with("fault_injector:compressor", "sz")
                .with("sz:abs_err_bound", 1e-3f64)
                .with("fault_injector:num_bits", 16u32)
                .with("fault_injector:seed", 7u64),
        )
        .unwrap();
        let c = f.compress(&input).unwrap();
        let mut out = Data::owned(DType::F64, vec![32, 32]);
        // Corrupt stream must not panic: either clean error or silent damage.
        let _ = f.decompress(&c, &mut out);
        // With zero faults the roundtrip is intact.
        let mut clean = FaultInjector::new();
        clean
            .set_options(
                &Options::new()
                    .with("fault_injector:compressor", "sz")
                    .with("sz:abs_err_bound", 1e-3f64),
            )
            .unwrap();
        let c = clean.compress(&input).unwrap();
        clean.decompress(&c, &mut out).unwrap();
        assert!(max_err(&input, &out) <= 1e-3);
    }

    #[test]
    fn noise_injection_is_seeded_and_bounded() {
        init();
        let input = field(&[1000]);
        let configure = |n: &mut NoiseInjector| {
            n.set_options(
                &Options::new()
                    .with("noise:compressor", "noop")
                    .with("noise:dist", "uniform")
                    .with("noise:scale", 0.01f64)
                    .with("noise:seed", 42u64),
            )
            .unwrap();
        };
        let mut n = NoiseInjector::new();
        configure(&mut n);
        let c1 = n.compress(&input).unwrap();
        let c2 = n.compress(&input).unwrap();
        // Successive invocations draw fresh noise (the seed-reuse bug would
        // stamp identical noise onto every call)...
        assert_ne!(c1, c2, "successive calls must not reuse the noise stream");
        // ...while a fresh instance with the same seed replays the same
        // sequence of streams, so experiments stay reproducible.
        let mut replay = NoiseInjector::new();
        configure(&mut replay);
        assert_eq!(replay.compress(&input).unwrap(), c1);
        assert_eq!(replay.compress(&input).unwrap(), c2);
        // Re-setting the seed rewinds the sequence.
        n.set_options(&Options::new().with("noise:seed", 42u64)).unwrap();
        assert_eq!(n.compress(&input).unwrap(), c1);
        for c in [c1, c2] {
            let mut out = Data::owned(DType::F64, vec![1000]);
            n.decompress(&c, &mut out).unwrap();
            let err = max_err(&input, &out);
            assert!(err > 0.0 && err <= 0.01);
        }
    }

    #[test]
    fn fault_injector_invocations_draw_distinct_streams() {
        init();
        let input = field(&[32, 32]);
        let configure = |f: &mut FaultInjector| {
            f.set_options(
                &Options::new()
                    .with("fault_injector:compressor", "deflate")
                    .with("fault_injector:num_bits", 16u32)
                    .with("fault_injector:seed", 7u64),
            )
            .unwrap();
        };
        let mut f = FaultInjector::new();
        configure(&mut f);
        let c1 = f.compress(&input).unwrap();
        let c2 = f.compress(&input).unwrap();
        assert_ne!(c1, c2, "successive calls must corrupt differently");
        let mut replay = FaultInjector::new();
        configure(&mut replay);
        assert_eq!(replay.compress(&input).unwrap(), c1);
        assert_eq!(replay.compress(&input).unwrap(), c2);
    }

    #[test]
    fn fault_injector_modes_change_stream_shape() {
        init();
        let input = field(&[32, 32]);
        let mut sizes = std::collections::HashMap::new();
        for mode in ALL_FAULT_MODES {
            let mut f = FaultInjector::new();
            f.set_options(
                &Options::new()
                    .with("fault_injector:compressor", "deflate")
                    .with("fault_injector:num_bits", 32u32)
                    .with("fault_injector:seed", 3u64)
                    .with("fault_injector:mode", mode.name()),
            )
            .unwrap();
            assert_eq!(
                f.get_options()
                    .get_as::<String>("fault_injector:mode")
                    .unwrap()
                    .as_deref(),
                Some(mode.name())
            );
            sizes.insert(mode.name(), f.compress(&input).unwrap().size_in_bytes());
        }
        // Truncate shrinks the framed stream, extend grows it, relative to
        // the length-preserving modes.
        assert_eq!(sizes["bitflip"], sizes["zero_region"]);
        assert_eq!(sizes["truncate"], sizes["bitflip"] - 32);
        assert_eq!(sizes["extend"], sizes["bitflip"] + 32);
        // Unknown modes are rejected at set time.
        assert!(FaultInjector::new()
            .set_options(&Options::new().with("fault_injector:mode", "melt"))
            .is_err());
    }

    #[test]
    fn opt_reaches_target_ratio() {
        init();
        let input = field(&[64, 64]);
        let mut o = Opt::new();
        o.set_options(
            &Options::new()
                .with("opt:compressor", "sz")
                .with("opt:target_ratio", 20.0f64)
                .with("opt:lower", 1e-10f64)
                .with("opt:upper", 1.0f64),
        )
        .unwrap();
        let compressed = o.compress(&input).unwrap();
        let ratio = input.size_in_bytes() as f64 / compressed.size_in_bytes() as f64;
        assert!(ratio >= 20.0 * 0.9, "achieved {ratio:.2}");
        let outcome = o.last_outcome().unwrap();
        assert!(outcome.evaluations >= 2);
        let mut out = Data::owned(DType::F64, vec![64, 64]);
        o.decompress(&compressed, &mut out).unwrap();
        assert!(max_err(&input, &out) <= outcome.value * 1.001);
        let results = o.get_configuration();
        assert!(results.get_as::<f64>("opt:achieved_ratio").unwrap().is_some());
    }

    #[test]
    fn opt_rejects_unreachable_target() {
        init();
        // Random data barely compresses: a huge target must fail cleanly.
        let mut v = Vec::with_capacity(4096);
        let mut st = 1u64;
        for _ in 0..4096 {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
            v.push((st >> 11) as f64 / (1u64 << 53) as f64);
        }
        let input = Data::from_vec(v, vec![4096]).unwrap();
        let mut o = Opt::new();
        o.set_options(
            &Options::new()
                .with("opt:compressor", "sz")
                .with("opt:target_ratio", 100000.0f64)
                .with("opt:upper", 1e-6f64),
        )
        .unwrap();
        assert!(o.compress(&input).is_err());
    }

    #[test]
    fn thread_safety_propagates_from_child() {
        init();
        let mut t = Transpose::new();
        t.set_options(&Options::new().with("transpose:compressor", "sz")).unwrap();
        assert_eq!(t.thread_safety(), ThreadSafety::Serialized);
        t.set_options(&Options::new().with("transpose:compressor", "zfp")).unwrap();
        assert_eq!(t.thread_safety(), ThreadSafety::Multiple);
    }

    #[test]
    fn all_meta_plugins_registered() {
        init();
        for name in [
            "cast",
            "transpose",
            "resize",
            "sample",
            "switch",
            "pipeline",
            "chunking",
            "many_independent",
            "many_dependent",
            "fault_injector",
            "noise",
            "opt",
            "guard",
        ] {
            assert!(pressio_core::registry().has_compressor(name), "{name}");
        }
    }
}
