//! `guard`: a meta-compressor that wraps any child with production
//! robustness policies — the "misbehaving plugin cannot hang or crash the
//! host" half of the paper's embeddability argument (Sec. V).
//!
//! Four composable policies, all driven by options:
//!
//! 1. **Integrity framing** — the child's stream is wrapped in a versioned
//!    frame carrying magic, the serving child's name, a dtype/dims echo, the
//!    payload length, and an FNV-1a checksum
//!    ([`pressio_core::checksum`]). Decompression validates the whole frame
//!    first, so truncated, bit-flipped, or mismatched streams are rejected
//!    with [`CorruptStream`](pressio_core::ErrorCode::CorruptStream) before
//!    the child's decoder ever parses hostile bytes.
//! 2. **Deadline enforcement & cancellation** — with `guard:timeout_ms > 0`,
//!    compress and decompress run on a deadline worker from the execution
//!    engine's watchdog pool under a [`pressio_core::CancelToken`]; an
//!    overrun returns [`Timeout`](pressio_core::ErrorCode::Timeout) to the
//!    caller immediately *and trips the token*, so in-flight work — pool
//!    chunks, SZ/ZFP stage loops, entropy coders — stops cooperatively at
//!    its next checkpoint instead of running detached to completion. The
//!    worker then re-registers idle for reuse; a fresh child instance is
//!    re-armed from the registry. `guard:memory_budget_bytes > 0`
//!    additionally caps the child's charged allocations; exhaustion
//!    surfaces as the terminal
//!    [`Cancelled`](pressio_core::ErrorCode::Cancelled) instead of an
//!    abort-on-OOM.
//! 3. **Retry with backoff** — transient errors (per
//!    [`ErrorCode::is_transient`](pressio_core::ErrorCode::is_transient):
//!    `Io`, `Timeout`, and `Busy`) are retried up to `guard:max_retries`
//!    times with exponential backoff from `guard:backoff_ms`, capped at
//!    [`MAX_BACKOFF_MS`] and dithered by deterministic seeded equal
//!    jitter ([`jittered_backoff_ms`], `guard:backoff_jitter_seed`) so
//!    synchronized retry storms decorrelate. Terminal errors (corrupt
//!    stream, bad arguments) are never retried.
//! 4. **Fallback chain** — `guard:fallbacks` names an ordered list of
//!    stand-in compressors. When the primary child fails (after retries),
//!    the guard degrades down the chain — ultimately to a lossless or
//!    `noop` passthrough if so configured — and records which child served
//!    in `guard:served_by`. With `guard:verify = 1` each candidate's stream
//!    is round-trip checked after compression, so a child that *silently*
//!    emits a corrupt stream also triggers the chain.
//!
//! Attempt/failure/timeout counters are exposed both as read-only
//! `guard:*` options and through the metrics interface via
//! [`Guard::stats_metrics`].

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use pressio_core::checksum::Fnv1a64;
use pressio_core::{
    ByteReader, ByteWriter, Compressor, Data, Error, ErrorCode, MetricsPlugin, Options, Result,
    ThreadSafety, Version,
};

use crate::util::{default_child, resolve_child};

const GUARD_MAGIC: u32 = 0x4752_4431; // "GRD1"
const GUARD_VERSION: u16 = 1;

/// Upper bound on a single backoff sleep; retry loops never sleep longer
/// than this per attempt regardless of configuration.
pub const MAX_BACKOFF_MS: u64 = 1_000;

/// The backoff schedule: capped exponential with deterministic
/// *equal jitter*.
///
/// The undithered delay for `attempt` is
/// `base_ms * 2^min(attempt, 10)`, capped at [`MAX_BACKOFF_MS`]; the
/// jittered delay is drawn from `[exp/2, exp]` by a splitmix64 hash of
/// `(seed, attempt)`. Jitter decorrelates retry storms — when many
/// guards (or many `pressio serve` requests) fail at once, synchronized
/// full-exponential schedules re-collide on every attempt, while
/// equal-jitter spreads them across half the window — yet the schedule
/// stays a pure function of `(base_ms, attempt, seed)` so a failing run
/// replays exactly and tests can pin the whole schedule.
pub fn jittered_backoff_ms(base_ms: u64, attempt: u32, seed: u64) -> u64 {
    let exp = base_ms
        .saturating_mul(1u64 << attempt.min(10))
        .min(MAX_BACKOFF_MS);
    if exp <= 1 {
        return exp;
    }
    // splitmix64 finalizer over (seed, attempt): stateless, so concurrent
    // clones of one guard draw identical schedules.
    let mut z = seed
        .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let half = exp / 2;
    (half + z % (exp - half + 1)).min(MAX_BACKOFF_MS)
}

/// Run `f` under a deadline on the execution engine's watchdog pool.
///
/// With `timeout_ms == 0` the closure runs inline (no thread, no copy
/// overhead). Otherwise the closure runs on a pooled deadline worker under
/// an ambient [`pressio_core::CancelToken`]; if the deadline passes first,
/// [`ErrorCode::Timeout`] is returned immediately *and the token is
/// tripped*, so any cancellation-aware work inside `f` stops cooperatively
/// at its next checkpoint and the worker returns to the pool — nothing is
/// left running detached. A closure that panics on the worker surfaces as
/// [`ErrorCode::Internal`], never as an unwinding host thread.
///
/// Thin delegation to [`pressio_core::run_deadlined`], kept for callers
/// (and the fuzz harness) that want the guard's deadline semantics without
/// a full [`Guard`].
pub fn run_with_deadline<T: Send + 'static>(
    timeout_ms: u64,
    what: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> Result<T> {
    pressio_core::run_deadlined(timeout_ms, what, f)
}

/// Attempt/failure counters shared between a [`Guard`] and its
/// [`stats_metrics`](Guard::stats_metrics) view.
#[derive(Debug, Default, Clone)]
struct GuardCounters {
    /// Child invocations attempted (including retries and fallbacks).
    attempts: u64,
    /// Child invocations that returned an error.
    failures: u64,
    /// Attempts that hit the watchdog deadline.
    timeouts: u64,
    /// Attempts stopped by cooperative cancellation (explicit cancel or
    /// memory-budget exhaustion — deadline trips count as timeouts).
    cancelled: u64,
    /// Requests ultimately served by a fallback rather than the primary.
    fallback_served: u64,
    /// Requests that exhausted the whole chain.
    exhausted: u64,
}

/// The guarded-execution meta-compressor.
pub struct Guard {
    child_name: String,
    child: Box<dyn Compressor>,
    fallbacks: Vec<String>,
    timeout_ms: u64,
    memory_budget_bytes: u64,
    max_retries: u32,
    backoff_ms: u64,
    backoff_jitter_seed: u64,
    verify: bool,
    /// Every option set applied so far, merged — used to arm fallback
    /// children and to re-arm a fresh primary after a detached timeout.
    saved_options: Options,
    served_by: Option<String>,
    stats: Arc<Mutex<GuardCounters>>,
}

impl Guard {
    /// A guard over `noop` until configured: framing only, no deadline, no
    /// retries, no fallbacks.
    pub fn new() -> Guard {
        Guard {
            child_name: "noop".to_string(),
            child: default_child(),
            fallbacks: Vec::new(),
            timeout_ms: 0,
            memory_budget_bytes: 0,
            max_retries: 0,
            backoff_ms: 10,
            backoff_jitter_seed: 1,
            verify: false,
            saved_options: Options::new(),
            served_by: None,
            stats: Arc::new(Mutex::new(GuardCounters::default())),
        }
    }

    /// A metrics plugin view over this guard's live counters: attach it to
    /// the surrounding [`CompressorHandle`](pressio_core::CompressorHandle)
    /// (or read `results()` directly) to observe attempts, failures,
    /// timeouts, and fallback use.
    pub fn stats_metrics(&self) -> Box<dyn MetricsPlugin> {
        Box::new(GuardStats {
            stats: Arc::clone(&self.stats),
        })
    }

    /// Which child served the most recent compress/decompress, if any.
    pub fn served_by(&self) -> Option<&str> {
        self.served_by.as_deref()
    }

    /// Resolve and configure one candidate child by registry name.
    fn arm(&self, name: &str) -> Result<Box<dyn Compressor>> {
        let mut c = resolve_child(name).map_err(|e| e.in_plugin("guard"))?;
        c.set_options(&self.saved_options)?;
        Ok(c)
    }

    /// Re-arm the primary child after its instance was lost to a detached
    /// watchdog worker. Falls back to an inert `noop` when even the
    /// registry lookup fails, so the guard stays usable.
    fn rearm_primary(&mut self) {
        self.child = self.arm(&self.child_name).unwrap_or_else(|_| default_child());
    }

    /// One child invocation under the cancellation policies. With a
    /// deadline armed the child instance is moved to a pooled deadline
    /// worker and handed back on completion; on timeout the caller returns
    /// immediately with `None` in its place while the tripped token walks
    /// the in-flight work to a cooperative stop (the worker then
    /// re-registers idle — no thread is left running detached).
    fn timed<T: Send + 'static>(
        &self,
        child: Box<dyn Compressor>,
        what: &'static str,
        op: impl FnOnce(&mut Box<dyn Compressor>) -> Result<T> + Send + 'static,
    ) -> (Option<Box<dyn Compressor>>, Result<T>) {
        if self.timeout_ms == 0 && self.memory_budget_bytes == 0 {
            let mut child = child;
            let r = op(&mut child);
            return (Some(child), r);
        }
        let token = pressio_core::CancelToken::new();
        if self.timeout_ms > 0 {
            token.set_deadline_ms(self.timeout_ms);
        }
        if self.memory_budget_bytes > 0 {
            token.set_memory_budget(self.memory_budget_bytes);
        }
        if self.timeout_ms == 0 {
            // Budget only: there is no deadline to wait out, so the child
            // can run inline under the ambient token.
            let mut child = child;
            let r = pressio_core::cancel::with_token(&token, || op(&mut child));
            return (Some(child), r);
        }
        match pressio_core::run_cancellable(&token, what, move || {
            let mut child = child;
            let r = op(&mut child);
            (child, r)
        }) {
            Ok((child, r)) => (Some(child), r),
            Err(e) => (None, Err(e)),
        }
    }

    /// Retry loop around one candidate's invocation: transient errors are
    /// retried with capped exponential backoff, terminal errors return
    /// immediately. Returns the surviving child instance (if not lost to a
    /// detached worker) and the final outcome.
    fn with_retries<T: Send + 'static>(
        &self,
        name: &str,
        mut child: Box<dyn Compressor>,
        what: &'static str,
        op: impl Fn(&mut Box<dyn Compressor>) -> Result<T> + Send + Clone + 'static,
    ) -> (Option<Box<dyn Compressor>>, Result<T>) {
        let mut attempt = 0u32;
        loop {
            {
                let mut s = self.stats.lock();
                s.attempts += 1;
            }
            let (returned, outcome) = {
                let _span =
                    pressio_core::trace::span_labeled("guard:attempt", || format!("{name} {what}"));
                self.timed(child, what, op.clone())
            };
            match outcome {
                Ok(v) => return (returned, Ok(v)),
                Err(e) => {
                    {
                        let mut s = self.stats.lock();
                        s.failures += 1;
                        if e.code() == ErrorCode::Timeout {
                            s.timeouts += 1;
                            pressio_core::trace::count("guard:timeout", 1);
                        } else if e.code() == ErrorCode::Cancelled {
                            s.cancelled += 1;
                            pressio_core::trace::count("guard:cancelled", 1);
                        }
                    }
                    if attempt >= self.max_retries || !e.is_transient() {
                        return (returned, Err(e));
                    }
                    pressio_core::trace::count("guard:retry", 1);
                    // Child lost to a detached worker: arm a fresh instance
                    // of the same candidate for the retry.
                    child = match returned {
                        Some(c) => c,
                        None => match self.arm(name) {
                            Ok(c) => c,
                            Err(arm_err) => return (None, Err(arm_err)),
                        },
                    };
                    let backoff =
                        jittered_backoff_ms(self.backoff_ms, attempt, self.backoff_jitter_seed);
                    std::thread::sleep(Duration::from_millis(backoff.min(MAX_BACKOFF_MS)));
                    attempt += 1;
                }
            }
        }
    }

    /// Wrap a child payload in the integrity frame.
    fn frame(&self, served_by: &str, input: &Data, payload: &[u8]) -> Data {
        let mut w = ByteWriter::with_capacity(payload.len() + 64);
        w.put_u32(GUARD_MAGIC);
        w.put_u16(GUARD_VERSION);
        w.put_str(served_by);
        w.put_dtype(input.dtype());
        w.put_dims(input.dims());
        w.put_section(payload);
        w.put_u64(frame_checksum(served_by, input.dtype().tag(), input.dims(), payload));
        Data::from_bytes(&w.into_vec())
    }

    /// Parse and fully validate the integrity frame, returning the serving
    /// child's name, the echoed geometry, and the payload. Every rejection
    /// is a [`CorruptStream`](ErrorCode::CorruptStream) raised *before* any
    /// child decoder runs.
    fn unframe<'a>(
        &self,
        bytes: &'a [u8],
    ) -> Result<(String, pressio_core::DType, Vec<usize>, &'a [u8])> {
        let corrupt = |msg: String| Error::corrupt(msg).in_plugin("guard");
        let mut r = ByteReader::new(bytes);
        if r.get_u32()? != GUARD_MAGIC {
            return Err(corrupt("bad guard frame magic".to_string()));
        }
        let version = r.get_u16()?;
        if version != GUARD_VERSION {
            return Err(corrupt(format!(
                "unsupported guard frame version {version} (expected {GUARD_VERSION})"
            )));
        }
        let served_by = r.get_str()?.to_string();
        let dtype = r.get_dtype()?;
        let dims = r.get_dims()?;
        // The echo must describe a plausible buffer before anything is
        // allocated for it.
        pressio_core::checked_geometry(dtype, &dims)?;
        let payload = r.get_section()?;
        let declared = r.get_u64()?;
        let computed = frame_checksum(&served_by, dtype.tag(), &dims, payload);
        if declared != computed {
            return Err(corrupt(format!(
                "guard checksum mismatch: stream declares {declared:#018x}, payload hashes to \
                 {computed:#018x}"
            )));
        }
        if r.remaining() != 0 {
            return Err(corrupt(format!(
                "{} trailing bytes after the guard frame",
                r.remaining()
            )));
        }
        Ok((served_by, dtype, dims, payload))
    }

    /// Round-trip verification of a candidate's output stream.
    fn verify_payload(&self, candidate: &str, input: &Data, payload: &[u8]) -> Result<()> {
        let _span = pressio_core::trace::span("guard:verify");
        pressio_core::trace::count("guard:verify", 1);
        let checker = self.arm(candidate)?;
        let compressed = Data::from_bytes(payload);
        let dtype = input.dtype();
        let dims = input.dims().to_vec();
        let (_, outcome) = self.with_retries(candidate, checker, "verify", move |c| {
            let mut out = Data::owned(dtype, dims.clone());
            c.decompress(&compressed, &mut out)
        });
        outcome.map_err(|e| {
            Error::corrupt(format!(
                "verification decode of {candidate}'s stream failed: {e}"
            ))
            .in_plugin("guard")
        })
    }
}

/// Checksum binding the frame header fields to the payload.
fn frame_checksum(served_by: &str, dtype_tag: u8, dims: &[usize], payload: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(served_by.as_bytes());
    h.update(&[dtype_tag]);
    for &d in dims {
        h.update_u64(d as u64);
    }
    h.update_u64(payload.len() as u64);
    h.update(payload);
    h.finish()
}

impl Default for Guard {
    fn default() -> Self {
        Guard::new()
    }
}

impl Compressor for Guard {
    fn get_configuration(&self) -> Options {
        let stats = self.stats.lock().clone();
        let mut o = pressio_core::base_configuration(self);
        // Read-only telemetry lives on the configuration surface: these
        // keys are reported, never settable (like opt's achieved_ratio).
        o.set("guard:served_by", self.served_by.as_deref().unwrap_or(""));
        o.set("guard:attempts", stats.attempts);
        o.set("guard:failures", stats.failures);
        o.set("guard:timeouts", stats.timeouts);
        o.set("guard:cancelled", stats.cancelled);
        o.set("guard:fallback_served", stats.fallback_served);
        o.merge(&self.child.get_configuration());
        o
    }

    fn name(&self) -> &str {
        "guard"
    }

    fn version(&self) -> Version {
        Version::new(1, 0, 0)
    }

    fn thread_safety(&self) -> ThreadSafety {
        self.child.thread_safety()
    }

    fn get_options(&self) -> Options {
        let mut o = Options::new()
            .with("guard:compressor", self.child_name.as_str())
            .with("guard:fallbacks", self.fallbacks.clone())
            .with("guard:timeout_ms", self.timeout_ms)
            .with("guard:memory_budget_bytes", self.memory_budget_bytes)
            .with("guard:max_retries", self.max_retries)
            .with("guard:backoff_ms", self.backoff_ms)
            .with("guard:backoff_jitter_seed", self.backoff_jitter_seed)
            .with("guard:verify", u32::from(self.verify));
        o.merge(&self.child.get_options());
        o
    }

    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(name) = options.get_as::<String>("guard:compressor")? {
            self.child = resolve_child(&name).map_err(|e| e.in_plugin("guard"))?;
            self.child_name = name;
        }
        if let Some(fallbacks) = options.get_as::<Vec<String>>("guard:fallbacks")? {
            // CLI callers can only pass plain strings, so a single
            // comma-separated entry means a list: `guard:fallbacks=deflate,noop`.
            let fallbacks: Vec<String> = fallbacks
                .iter()
                .flat_map(|f| f.split(','))
                .map(|f| f.trim().to_string())
                .filter(|f| !f.is_empty())
                .collect();
            for f in &fallbacks {
                // Fail configuration, not the first degraded request.
                resolve_child(f).map_err(|e| e.in_plugin("guard"))?;
            }
            self.fallbacks = fallbacks;
        }
        if let Some(t) = options.get_as::<u64>("guard:timeout_ms")? {
            self.timeout_ms = t;
        }
        if let Some(b) = options.get_as::<u64>("guard:memory_budget_bytes")? {
            self.memory_budget_bytes = b;
        }
        if let Some(r) = options.get_as::<u32>("guard:max_retries")? {
            self.max_retries = r;
        }
        if let Some(b) = options.get_as::<u64>("guard:backoff_ms")? {
            self.backoff_ms = b.min(MAX_BACKOFF_MS);
        }
        if let Some(s) = options.get_as::<u64>("guard:backoff_jitter_seed")? {
            self.backoff_jitter_seed = s;
        }
        if let Some(v) = options.get_as::<u32>("guard:verify")? {
            self.verify = v != 0;
        }
        self.child.set_options(options)?;
        // Remember everything ever applied so fallback children and
        // re-armed primaries can be configured identically. Counter echoes
        // from a previous get_options are harmless: they are ignored above
        // and overwritten in every future get_options.
        self.saved_options.merge(options);
        Ok(())
    }

    fn get_documentation(&self) -> Options {
        Options::new()
            .with(
                "guard",
                "wraps a child with integrity framing, a watchdog deadline, retry with \
                 backoff, and an ordered fallback chain",
            )
            .with("guard:compressor", "registry name of the primary child")
            .with(
                "guard:fallbacks",
                "ordered fallback compressor names tried when the primary fails",
            )
            .with(
                "guard:timeout_ms",
                "per-invocation deadline in ms; an overrun returns Timeout and trips the \
                 cancel token so in-flight work stops cooperatively (0 runs inline)",
            )
            .with(
                "guard:memory_budget_bytes",
                "cap on the child's charged working-set allocations per invocation; \
                 exhaustion returns the terminal Cancelled code (0 = unlimited)",
            )
            .with(
                "guard:max_retries",
                "retries per candidate for transient (io/timeout) errors",
            )
            .with(
                "guard:backoff_ms",
                "base backoff between retries; doubles per attempt, capped at 1000 ms",
            )
            .with(
                "guard:backoff_jitter_seed",
                "seed for the deterministic equal-jitter dither on each backoff sleep; \
                 the schedule is a pure function of (backoff_ms, attempt, seed)",
            )
            .with(
                "guard:verify",
                "1 = round-trip check each candidate's stream before accepting it",
            )
            .with("guard:served_by", "read-only: child that served the last request")
            .with("guard:attempts", "read-only: child invocations attempted")
            .with("guard:failures", "read-only: child invocations that errored")
            .with("guard:timeouts", "read-only: attempts that hit the deadline")
            .with(
                "guard:cancelled",
                "read-only: attempts stopped by cooperative cancellation (budget/explicit)",
            )
            .with(
                "guard:fallback_served",
                "read-only: requests served by a fallback child",
            )
    }

    fn compress(&mut self, input: &Data) -> Result<Data> {
        let mut last_err: Option<Error> = None;
        let candidate_names: Vec<String> = std::iter::once(self.child_name.clone())
            .chain(self.fallbacks.iter().cloned())
            .collect();
        for (rank, name) in candidate_names.iter().enumerate() {
            // Rank 0 uses the live primary (preserving its state in the
            // happy path); fallbacks are armed fresh per request.
            let candidate = if rank == 0 {
                std::mem::replace(&mut self.child, default_child())
            } else {
                match self.arm(name) {
                    Ok(c) => c,
                    Err(e) => {
                        last_err = Some(e);
                        continue;
                    }
                }
            };
            let staged = input.clone();
            let (returned, outcome) =
                self.with_retries(name, candidate, "compress", move |c| c.compress(&staged));
            if rank == 0 {
                match returned {
                    Some(c) => self.child = c,
                    None => self.rearm_primary(),
                }
            }
            match outcome {
                Ok(payload_data) => {
                    let payload = payload_data.as_bytes();
                    if self.verify {
                        if let Err(e) = self.verify_payload(name, input, payload) {
                            self.stats.lock().failures += 1;
                            last_err = Some(e);
                            continue;
                        }
                    }
                    if rank > 0 {
                        self.stats.lock().fallback_served += 1;
                        pressio_core::trace::count("guard:fallback", 1);
                    }
                    self.served_by = Some(name.clone());
                    return Ok(self.frame(name, input, payload));
                }
                Err(e) => last_err = Some(e),
            }
        }
        self.stats.lock().exhausted += 1;
        Err(last_err
            .unwrap_or_else(|| Error::internal("guard had no candidates"))
            .in_plugin("guard"))
    }

    fn decompress(&mut self, compressed: &Data, output: &mut Data) -> Result<()> {
        let (served_by, dtype, dims, payload) = self.unframe(compressed.as_bytes())?;
        // Route to the child recorded in the frame: the primary when it
        // served, otherwise a fallback armed with the same options.
        let child = if served_by == self.child_name {
            std::mem::replace(&mut self.child, default_child())
        } else {
            self.arm(&served_by)?
        };
        let payload = Data::from_bytes(payload);
        let out_dtype = dtype;
        let out_dims = dims.clone();
        let (returned, outcome) = self.with_retries(&served_by, child, "decompress", move |c| {
            let mut staged = Data::owned(out_dtype, out_dims.clone());
            c.decompress(&payload, &mut staged)?;
            Ok(staged)
        });
        if served_by == self.child_name {
            match returned {
                Some(c) => self.child = c,
                None => self.rearm_primary(),
            }
        }
        let staged = outcome?;
        self.served_by = Some(served_by);
        *output = staged;
        Ok(())
    }

    fn clone_compressor(&self) -> Box<dyn Compressor> {
        Box::new(Guard {
            child_name: self.child_name.clone(),
            child: self.child.clone_compressor(),
            fallbacks: self.fallbacks.clone(),
            timeout_ms: self.timeout_ms,
            memory_budget_bytes: self.memory_budget_bytes,
            max_retries: self.max_retries,
            backoff_ms: self.backoff_ms,
            backoff_jitter_seed: self.backoff_jitter_seed,
            verify: self.verify,
            saved_options: self.saved_options.clone(),
            served_by: self.served_by.clone(),
            // Counters are per-instance observations, not configuration.
            stats: Arc::new(Mutex::new(GuardCounters::default())),
        })
    }
}

/// Metrics plugin view over a [`Guard`]'s counters (see
/// [`Guard::stats_metrics`]). Results are read live from the shared
/// counters, so one attached instance observes every request the guard
/// serves.
struct GuardStats {
    stats: Arc<Mutex<GuardCounters>>,
}

impl MetricsPlugin for GuardStats {
    fn name(&self) -> &str {
        "guard_stats"
    }

    fn results(&self) -> Options {
        let s = self.stats.lock().clone();
        Options::new()
            .with("guard_stats:attempts", s.attempts)
            .with("guard_stats:failures", s.failures)
            .with("guard_stats:timeouts", s.timeouts)
            .with("guard_stats:cancelled", s.cancelled)
            .with("guard_stats:fallback_served", s.fallback_served)
            .with("guard_stats:exhausted", s.exhausted)
    }

    fn clone_metrics(&self) -> Box<dyn MetricsPlugin> {
        Box::new(GuardStats {
            stats: Arc::clone(&self.stats),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pressio_core::DType;

    #[test]
    fn jittered_backoff_schedule_is_deterministic_and_pinned() {
        let schedule = |seed: u64| -> Vec<u64> {
            (0..6).map(|a| jittered_backoff_ms(10, a, seed)).collect()
        };
        // Same seed, same schedule — concurrent guard clones agree.
        assert_eq!(schedule(42), schedule(42));
        // Different seeds decorrelate.
        assert_ne!(schedule(42), schedule(43));
        // Every draw lands in the equal-jitter window [exp/2, exp].
        for seed in [0u64, 1, 42, u64::MAX] {
            for attempt in 0..16u32 {
                let exp = 10u64
                    .saturating_mul(1 << attempt.min(10))
                    .min(MAX_BACKOFF_MS);
                let j = jittered_backoff_ms(10, attempt, seed);
                assert!(
                    j >= exp / 2 && j <= exp,
                    "seed {seed} attempt {attempt}: {j} outside [{}, {exp}]",
                    exp / 2
                );
            }
        }
        // Degenerate bases pass through unjittered.
        assert_eq!(jittered_backoff_ms(0, 3, 42), 0);
        assert_eq!(jittered_backoff_ms(1, 0, 9), 1);
        // Regression pin: the exact schedule for (base 10, seed 42). A
        // change here silently breaks replayability of recorded failures.
        assert_eq!(schedule(42), vec![6, 15, 20, 40, 105, 185]);
    }

    fn init() {
        pressio_codecs::register_builtins();
        pressio_sz::register_builtins();
        crate::register_builtins();
    }

    fn field(n: usize) -> Data {
        let v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
        Data::from_vec(v, vec![n]).unwrap()
    }

    #[test]
    fn framing_roundtrips_and_reports_served_by() {
        init();
        let input = field(512);
        let mut g = Guard::new();
        g.set_options(
            &Options::new()
                .with("guard:compressor", "sz")
                .with("sz:abs_err_bound", 1e-4f64),
        )
        .unwrap();
        let c = g.compress(&input).unwrap();
        let mut out = Data::owned(DType::F64, vec![512]);
        g.decompress(&c, &mut out).unwrap();
        assert_eq!(g.served_by(), Some("sz"));
        assert_eq!(
            g.get_configuration().get_as::<String>("guard:served_by").unwrap(),
            Some("sz".to_string())
        );
        let max_err = input
            .to_f64_vec()
            .unwrap()
            .iter()
            .zip(out.to_f64_vec().unwrap())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err <= 1e-4);
    }

    #[test]
    fn every_frame_field_is_validated() {
        init();
        let input = field(256);
        let mut g = Guard::new();
        g.set_options(&Options::new().with("guard:compressor", "deflate"))
            .unwrap();
        let c = g.compress(&input).unwrap();
        let clean = c.as_bytes().to_vec();

        let cases: Vec<(&str, Vec<u8>)> = vec![
            ("flipped magic", {
                let mut b = clean.clone();
                b[0] ^= 0xff;
                b
            }),
            ("bumped version", {
                let mut b = clean.clone();
                b[4] ^= 0x01;
                b
            }),
            ("payload bit flip", {
                let mut b = clean.clone();
                let mid = b.len() / 2;
                b[mid] ^= 0x10;
                b
            }),
            ("truncated tail", clean[..clean.len() - 9].to_vec()),
            ("extended tail", {
                let mut b = clean.clone();
                b.extend_from_slice(&[0u8; 16]);
                b
            }),
            ("empty stream", Vec::new()),
        ];
        for (case, bytes) in cases {
            let mut out = Data::owned(DType::F64, vec![256]);
            let err = g.decompress(&Data::from_bytes(&bytes), &mut out).unwrap_err();
            assert_eq!(err.code(), ErrorCode::CorruptStream, "{case}: {err}");
        }
        // The clean stream still decodes after all that.
        let mut out = Data::owned(DType::F64, vec![256]);
        g.decompress(&Data::from_bytes(&clean), &mut out).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn deadline_returns_timeout_and_guard_stays_usable() {
        init();
        let input = field(64);
        // Register a deliberately hanging compressor for this test.
        pressio_core::registry()
            .register_compressor("slowpoke_test", || Box::new(Slowpoke { delay_ms: 600 }));
        let mut g = Guard::new();
        g.set_options(
            &Options::new()
                .with("guard:compressor", "slowpoke_test")
                .with("guard:timeout_ms", 30u64),
        )
        .unwrap();
        let start = std::time::Instant::now();
        let err = g.compress(&input).unwrap_err();
        assert_eq!(err.code(), ErrorCode::Timeout, "{err}");
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "caller waited for the hung worker: {:?}",
            start.elapsed()
        );
        // The guard re-armed a fresh child and still works.
        let stats = g.stats_metrics().results();
        assert_eq!(stats.get_as::<u64>("guard_stats:timeouts").unwrap(), Some(1));

        // With a fallback, the same request degrades and succeeds.
        g.set_options(&Options::new().with("guard:fallbacks", vec!["noop".to_string()]))
            .unwrap();
        let c = g.compress(&input).unwrap();
        assert_eq!(g.served_by(), Some("noop"));
        let mut out = Data::owned(DType::F64, vec![64]);
        g.decompress(&c, &mut out).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn retries_transient_errors_then_succeeds() {
        init();
        // A child that fails with Io twice, then works.
        pressio_core::registry().register_compressor("flaky_test", || {
            Box::new(Flaky {
                failures_left: std::sync::Arc::new(Mutex::new(2)),
            })
        });
        let input = field(64);
        let mut g = Guard::new();
        g.set_options(
            &Options::new()
                .with("guard:compressor", "flaky_test")
                .with("guard:max_retries", 3u32)
                .with("guard:backoff_ms", 1u64),
        )
        .unwrap();
        let c = g.compress(&input).unwrap();
        assert_eq!(g.served_by(), Some("flaky_test"));
        let stats = g.stats_metrics().results();
        assert_eq!(stats.get_as::<u64>("guard_stats:attempts").unwrap(), Some(3));
        assert_eq!(stats.get_as::<u64>("guard_stats:failures").unwrap(), Some(2));
        let mut out = Data::owned(DType::F64, vec![64]);
        g.decompress(&c, &mut out).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn terminal_errors_are_not_retried() {
        init();
        let input = Data::from_slice(&[1i32, 2, 3], vec![3]).unwrap();
        let mut g = Guard::new();
        g.set_options(
            &Options::new()
                .with("guard:compressor", "sz") // rejects integer dtypes
                .with("guard:max_retries", 5u32)
                .with("guard:backoff_ms", 1u64),
        )
        .unwrap();
        let err = g.compress(&input).unwrap_err();
        assert_eq!(err.code(), ErrorCode::Unsupported);
        // One attempt, no retries: Unsupported is terminal.
        let stats = g.stats_metrics().results();
        assert_eq!(stats.get_as::<u64>("guard_stats:attempts").unwrap(), Some(1));
    }

    #[test]
    fn corrupting_child_triggers_fallback_chain_under_verify() {
        init();
        let input = field(512);
        let mut g = Guard::new();
        g.set_options(
            &Options::new()
                .with("guard:compressor", "fault_injector")
                .with("fault_injector:compressor", "sz")
                .with("sz:abs_err_bound", 1e-4f64)
                .with("fault_injector:mode", "truncate")
                .with("fault_injector:num_bits", 64u32)
                .with("guard:verify", 1u32)
                .with("guard:fallbacks", vec!["deflate".to_string(), "noop".to_string()]),
        )
        .unwrap();
        let c = g.compress(&input).unwrap();
        // The corrupting primary was rejected by verification; the first
        // healthy fallback served.
        assert_eq!(g.served_by(), Some("deflate"));
        assert_eq!(
            g.get_configuration().get_as::<String>("guard:served_by").unwrap(),
            Some("deflate".to_string())
        );
        let stats = g.stats_metrics().results();
        assert_eq!(
            stats.get_as::<u64>("guard_stats:fallback_served").unwrap(),
            Some(1)
        );
        // And a *fresh* guard decodes the frame by routing to deflate.
        let mut fresh = Guard::new();
        let mut out = Data::owned(DType::F64, vec![512]);
        fresh.decompress(&c, &mut out).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn exhausted_chain_reports_last_error() {
        init();
        let input = Data::from_slice(&[1i32, 2, 3], vec![3]).unwrap();
        let mut g = Guard::new();
        g.set_options(
            &Options::new()
                .with("guard:compressor", "sz")
                .with("guard:fallbacks", vec!["zfp_like_missing".to_string()]),
        )
        .unwrap_err(); // unknown fallback rejected at configuration time
        let mut g = Guard::new();
        g.set_options(
            &Options::new()
                .with("guard:compressor", "sz")
                .with("guard:fallbacks", vec!["fpzip".to_string()]),
        )
        .unwrap();
        // Integer input: sz and fpzip both refuse; chain exhausts cleanly.
        let err = g.compress(&input).unwrap_err();
        assert_eq!(err.plugin(), Some("guard"));
        let stats = g.stats_metrics().results();
        assert_eq!(stats.get_as::<u64>("guard_stats:exhausted").unwrap(), Some(1));
    }

    #[test]
    fn run_with_deadline_contains_panics() {
        // Generous deadline: the worker panics immediately, but under a
        // loaded test host its thread may take tens of ms to even start —
        // the deadline must not win that race.
        let r: Result<()> = run_with_deadline(5_000, "test", || panic!("boom"));
        assert_eq!(r.unwrap_err().code(), ErrorCode::Internal);
        let r = run_with_deadline(0, "test", || 41 + 1);
        assert_eq!(r.unwrap(), 42);
        let r: Result<u32> = run_with_deadline(10, "test", || {
            std::thread::sleep(Duration::from_millis(400));
            7
        });
        assert_eq!(r.unwrap_err().code(), ErrorCode::Timeout);
    }

    /// Test double: sleeps before answering.
    struct Slowpoke {
        delay_ms: u64,
    }

    impl Compressor for Slowpoke {
        fn name(&self) -> &str {
            "slowpoke_test"
        }
        fn version(&self) -> Version {
            Version::new(1, 0, 0)
        }
        fn get_options(&self) -> Options {
            Options::new()
        }
        fn set_options(&mut self, _: &Options) -> Result<()> {
            Ok(())
        }
        fn get_configuration(&self) -> Options {
            pressio_core::base_configuration(self)
        }
        fn compress(&mut self, input: &Data) -> Result<Data> {
            std::thread::sleep(Duration::from_millis(self.delay_ms));
            Ok(Data::from_bytes(input.as_bytes()))
        }
        fn decompress(&mut self, compressed: &Data, output: &mut Data) -> Result<()> {
            std::thread::sleep(Duration::from_millis(self.delay_ms));
            output.as_bytes_mut().copy_from_slice(compressed.as_bytes());
            Ok(())
        }
        fn clone_compressor(&self) -> Box<dyn Compressor> {
            Box::new(Slowpoke {
                delay_ms: self.delay_ms,
            })
        }
    }

    /// Test double: returns transient Io errors a fixed number of times.
    struct Flaky {
        failures_left: std::sync::Arc<Mutex<u32>>,
    }

    impl Compressor for Flaky {
        fn name(&self) -> &str {
            "flaky_test"
        }
        fn version(&self) -> Version {
            Version::new(1, 0, 0)
        }
        fn get_options(&self) -> Options {
            Options::new()
        }
        fn set_options(&mut self, _: &Options) -> Result<()> {
            Ok(())
        }
        fn get_configuration(&self) -> Options {
            pressio_core::base_configuration(self)
        }
        fn compress(&mut self, input: &Data) -> Result<Data> {
            let mut left = self.failures_left.lock();
            if *left > 0 {
                *left -= 1;
                return Err(Error::new(ErrorCode::Io, "transient blip").in_plugin("flaky_test"));
            }
            let mut w = ByteWriter::with_capacity(input.size_in_bytes() + 64);
            w.put_dtype(input.dtype());
            w.put_dims(input.dims());
            w.put_bytes(input.as_bytes());
            Ok(Data::from_bytes(&w.into_vec()))
        }
        fn decompress(&mut self, compressed: &Data, output: &mut Data) -> Result<()> {
            let mut r = ByteReader::new(compressed.as_bytes());
            let dtype = r.get_dtype()?;
            let dims = r.get_dims()?;
            let n = pressio_core::checked_geometry(dtype, &dims)?;
            let bytes = r.get_bytes(n)?;
            *output = Data::owned(dtype, dims);
            output.as_bytes_mut().copy_from_slice(bytes);
            Ok(())
        }
        fn clone_compressor(&self) -> Box<dyn Compressor> {
            Box::new(Flaky {
                failures_left: std::sync::Arc::clone(&self.failures_left),
            })
        }
    }
}
