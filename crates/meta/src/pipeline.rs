//! `pipeline`: chains several compressor plugins into one.
//!
//! The first stage sees the real typed data; each later stage compresses the
//! previous stage's byte stream. This is the paper's "experiment with
//! different compressor designs out of their consistent functional parts"
//! mechanism — e.g. `linear_quantizer` → `shuffle` → `deflate` composes a new
//! lossy compressor out of reusable stages.

use pressio_core::{
    ByteReader, ByteWriter, Compressor, DType, Data, Error, Options, Result, ThreadSafety,
    Version,
};

use crate::util::resolve_child;

const PIPELINE_MAGIC: u32 = 0x5049_5045;

/// A chain of compressor stages applied in sequence.
pub struct Pipeline {
    names: Vec<String>,
    stages: Vec<Box<dyn Compressor>>,
}

impl Pipeline {
    /// An empty pipeline (identity until configured).
    pub fn new() -> Pipeline {
        Pipeline {
            names: Vec::new(),
            stages: Vec::new(),
        }
    }
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new()
    }
}

impl Compressor for Pipeline {
    fn get_configuration(&self) -> Options {
        let mut o = pressio_core::base_configuration(self);
        for s in &self.stages {
            o.merge(&s.get_configuration());
        }
        o
    }

    fn name(&self) -> &str {
        "pipeline"
    }

    fn version(&self) -> Version {
        Version::new(1, 0, 0)
    }

    fn thread_safety(&self) -> ThreadSafety {
        self.stages
            .iter()
            .map(|s| s.thread_safety())
            .min()
            .unwrap_or(ThreadSafety::Multiple)
    }

    fn get_options(&self) -> Options {
        let mut o = Options::new().with("pipeline:stages", self.names.clone());
        for s in &self.stages {
            o.merge(&s.get_options());
        }
        o
    }

    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(names) = options.get_as::<Vec<String>>("pipeline:stages")? {
            let mut stages = Vec::with_capacity(names.len());
            for n in &names {
                stages.push(resolve_child(n).map_err(|e| e.in_plugin("pipeline"))?);
            }
            self.names = names;
            self.stages = stages;
        }
        for s in &mut self.stages {
            s.set_options(options)?;
        }
        Ok(())
    }

    fn get_documentation(&self) -> Options {
        Options::new()
            .with(
                "pipeline",
                "chains compressor stages; stage 1 sees typed data, later stages see bytes",
            )
            .with("pipeline:stages", "ordered list of stage plugin names")
    }

    fn compress(&mut self, input: &Data) -> Result<Data> {
        if self.stages.is_empty() {
            return Err(Error::invalid_argument("pipeline:stages is not set").in_plugin("pipeline"));
        }
        let mut current = self.stages[0].compress(input)?;
        for s in self.stages.iter_mut().skip(1) {
            current = s.compress(&current)?;
        }
        let mut w = ByteWriter::with_capacity(current.size_in_bytes() + 64);
        w.put_u32(PIPELINE_MAGIC);
        w.put_u32(self.names.len() as u32);
        for n in &self.names {
            w.put_str(n);
        }
        w.put_section(current.as_bytes());
        Ok(Data::from_bytes(&w.into_vec()))
    }

    fn decompress(&mut self, compressed: &Data, output: &mut Data) -> Result<()> {
        let mut r = ByteReader::new(compressed.as_bytes());
        if r.get_u32()? != PIPELINE_MAGIC {
            return Err(Error::corrupt("bad pipeline magic").in_plugin("pipeline"));
        }
        let n = r.get_count()?;
        if n == 0 || n > 64 {
            return Err(Error::corrupt("pipeline stage count out of range"));
        }
        let mut names = Vec::with_capacity(n);
        for _ in 0..n {
            names.push(r.get_str()?.to_string());
        }
        let payload = r.get_section()?;
        if names != self.names {
            let mut stages = Vec::with_capacity(names.len());
            for nm in &names {
                stages.push(resolve_child(nm).map_err(|e| e.in_plugin("pipeline"))?);
            }
            self.names = names;
            self.stages = stages;
        }
        // Unwind the stages: streams are self-describing, so intermediate
        // buffers start as empty byte buffers the plugins reshape.
        let mut current = Data::from_bytes(payload);
        for i in (1..self.stages.len()).rev() {
            let mut staged = Data::owned(DType::Byte, vec![0]);
            self.stages[i].decompress(&current, &mut staged)?;
            current = staged;
        }
        self.stages[0].decompress(&current, output)
    }

    fn clone_compressor(&self) -> Box<dyn Compressor> {
        Box::new(Pipeline {
            names: self.names.clone(),
            stages: self.stages.iter().map(|s| s.clone_compressor()).collect(),
        })
    }
}
