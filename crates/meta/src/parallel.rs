//! Parallel meta-compressors: `chunking`, `many_independent`, and
//! `many_dependent`.
//!
//! These consume the thread-safety introspection of the child plugin
//! (Section IV-B of the paper): a `Multiple`-safe child runs with one clone
//! per worker task on the shared execution engine (`pressio_core::exec`); a
//! `Serialized` or `Single` child silently degrades to sequential execution
//! instead of racing on shared state — which is exactly the reason the
//! interface exposes thread safety at all.
//!
//! `Compressor` is `Send` but not `Sync`, so each task's child clone is
//! staged behind its own uncontended `Mutex` (locked by exactly one task).

use pressio_core::{
    ByteReader, ByteWriter, Compressor, Data, Error, Options, Result, ThreadSafety, Version,
};

use crate::util::{default_child, resolve_child};

const CHUNK_MAGIC: u32 = 0x4348_4E4B;

/// One decompression task: a child clone plus the disjoint output slice it
/// owns, staged behind an uncontended per-task mutex (see module docs).
type DecompressTask<'a> = parking_lot::Mutex<(Box<dyn Compressor>, &'a mut [Data])>;

/// One pool task's state: its child clone plus the pre-staged chunk dims,
/// so the closure takes them instead of allocating (no-alloc-in-par-closure).
type ChunkWorker = parking_lot::Mutex<(Box<dyn Compressor>, Vec<usize>)>;

/// Splits the input into contiguous row blocks along the slowest dimension,
/// compressing them in parallel when the child allows it.
pub struct Chunking {
    nthreads: usize,
    child_name: String,
    child: Box<dyn Compressor>,
}

impl Chunking {
    /// Chunking over `noop` until configured.
    pub fn new() -> Chunking {
        Chunking {
            nthreads: 4,
            child_name: "noop".to_string(),
            child: default_child(),
        }
    }

    fn parallel_allowed(&self) -> bool {
        self.child.thread_safety() == ThreadSafety::Multiple
    }

    fn split(&self, dims: &[usize], elem_bytes: usize) -> Vec<(usize, usize, Vec<usize>)> {
        // (element start, element end, chunk dims). The adaptive plan caps
        // the worker count by the data volume, so small buffers stay serial
        // instead of paying per-chunk staging and stream framing.
        let slow = dims.first().copied().unwrap_or(1).max(1);
        let row: usize = dims.iter().skip(1).product::<usize>().max(1);
        let plan = pressio_core::plan_chunks(
            slow,
            row.saturating_mul(elem_bytes.max(1)),
            self.nthreads.max(1),
        );
        let mut out = Vec::with_capacity(plan.len());
        for rows_range in plan {
            let rows = rows_range.len();
            let mut cdims = vec![rows];
            cdims.extend_from_slice(&dims[1.min(dims.len())..]);
            out.push((rows_range.start * row, rows_range.end * row, cdims));
        }
        out
    }
}

impl Default for Chunking {
    fn default() -> Self {
        Chunking::new()
    }
}

impl Compressor for Chunking {
    fn get_configuration(&self) -> Options {
        let mut o = pressio_core::base_configuration(self);
        o.merge(&self.child.get_configuration());
        o
    }

    fn name(&self) -> &str {
        "chunking"
    }

    fn version(&self) -> Version {
        Version::new(1, 0, 0)
    }

    fn thread_safety(&self) -> ThreadSafety {
        ThreadSafety::Multiple
    }

    fn get_options(&self) -> Options {
        let mut o = Options::new()
            .with("chunking:nthreads", self.nthreads as u32)
            .with("chunking:compressor", self.child_name.as_str());
        o.declare(pressio_core::OPT_NTHREADS, pressio_core::OptionKind::U32);
        o.merge(&self.child.get_options());
        o
    }

    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(name) = options.get_as::<String>("chunking:compressor")? {
            self.child = resolve_child(&name).map_err(|e| e.in_plugin("chunking"))?;
            self.child_name = name;
        }
        if let Some(n) = options
            .get_as::<u32>("chunking:nthreads")?
            .or(options.get_as::<u32>(pressio_core::OPT_NTHREADS)?)
        {
            if n == 0 {
                return Err(
                    Error::invalid_argument("chunking:nthreads must be >= 1").in_plugin("chunking")
                );
            }
            self.nthreads = n as usize;
        }
        self.child.set_options(options)
    }

    fn get_documentation(&self) -> Options {
        Options::new()
            .with(
                "chunking",
                "splits the buffer into row blocks compressed independently; runs in \
                 parallel when the child reports thread safety 'multiple'",
            )
            .with("chunking:nthreads", "maximum worker threads")
            .with("chunking:compressor", "registry name of the child compressor")
    }

    fn compress(&mut self, input: &Data) -> Result<Data> {
        let elem = input.dtype().size();
        let chunks = self.split(input.dims(), elem);
        let bytes = input.as_bytes();
        let dtype = input.dtype();
        let results: Vec<Data> = if self.parallel_allowed() && chunks.len() > 1 {
            let workers: Vec<ChunkWorker> = chunks
                .iter()
                .map(|(_, _, cdims)| {
                    parking_lot::Mutex::new((self.child.clone_compressor(), cdims.clone()))
                })
                .collect();
            pressio_core::par_map_indexed(chunks.len(), |i| {
                let (lo, hi, _) = &chunks[i];
                let mut guard = workers[i].lock();
                let (worker, cdims) = &mut *guard;
                let mut staged = Data::owned(dtype, std::mem::take(cdims));
                staged
                    .as_bytes_mut()
                    .copy_from_slice(&bytes[lo * elem..hi * elem]);
                worker.compress(&staged)
            })?
        } else {
            chunks
                .iter()
                .map(|(lo, hi, cdims)| {
                    pressio_core::cancel::checkpoint()?;
                    let mut staged = Data::owned(dtype, cdims.clone());
                    staged
                        .as_bytes_mut()
                        .copy_from_slice(&bytes[lo * elem..hi * elem]);
                    self.child.compress(&staged)
                })
                .collect::<Result<Vec<Data>>>()?
        };
        let mut w = ByteWriter::new();
        w.put_u32(CHUNK_MAGIC);
        w.put_str(&self.child_name);
        w.put_dtype(dtype);
        w.put_dims(input.dims());
        w.put_u32(chunks.len() as u32);
        for r in &results {
            w.put_section(r.as_bytes());
        }
        Ok(Data::from_bytes(&w.into_vec()))
    }

    fn decompress(&mut self, compressed: &Data, output: &mut Data) -> Result<()> {
        let mut r = ByteReader::new(compressed.as_bytes());
        if r.get_u32()? != CHUNK_MAGIC {
            return Err(Error::corrupt("bad chunking magic").in_plugin("chunking"));
        }
        let child_name = r.get_str()?.to_string();
        let dtype = r.get_dtype()?;
        let dims = r.get_dims()?;
        pressio_core::checked_geometry(dtype, &dims).map_err(|e| e.in_plugin("chunking"))?;
        let n_chunks = r.get_count()?;
        if child_name != self.child_name {
            self.child = resolve_child(&child_name).map_err(|e| e.in_plugin("chunking"))?;
            self.child_name = child_name;
        }
        let slow = dims.first().copied().unwrap_or(1).max(1);
        if n_chunks == 0 || n_chunks > slow {
            return Err(Error::corrupt("chunk count out of range").in_plugin("chunking"));
        }
        let mut sections = Vec::with_capacity(n_chunks);
        for _ in 0..n_chunks {
            sections.push(r.get_section()?);
        }
        let row: usize = dims.iter().skip(1).product::<usize>().max(1);
        let base = slow / n_chunks;
        let extra = slow % n_chunks;
        let n: usize = dims.iter().product();
        if output.dtype() != dtype || output.num_elements() != n {
            *output = Data::owned(dtype, dims.clone());
        } else if output.dims() != dims {
            output.reshape(dims.clone())?;
        }
        let elem = dtype.size();
        let chunk_results: Vec<Data> = if self.parallel_allowed() && n_chunks > 1 {
            // As in compress: chunk dims ride in the task's mutex.
            let workers: Vec<ChunkWorker> = (0..n_chunks)
                .map(|wi| {
                    let rows = base + usize::from(wi < extra);
                    let mut cdims = vec![rows];
                    cdims.extend_from_slice(&dims[1.min(dims.len())..]);
                    parking_lot::Mutex::new((self.child.clone_compressor(), cdims))
                })
                .collect();
            pressio_core::par_map_indexed(sections.len(), |wi| {
                let mut guard = workers[wi].lock();
                let (worker, cdims) = &mut *guard;
                let mut staged = Data::owned(dtype, std::mem::take(cdims));
                worker.decompress(&Data::from_bytes(sections[wi]), &mut staged)?;
                Ok(staged)
            })?
        } else {
            sections
                .iter()
                .enumerate()
                .map(|(wi, sec)| {
                    pressio_core::cancel::checkpoint()?;
                    let rows = base + usize::from(wi < extra);
                    let mut cdims = vec![rows];
                    cdims.extend_from_slice(&dims[1.min(dims.len())..]);
                    let mut staged = Data::owned(dtype, cdims);
                    self.child.decompress(&Data::from_bytes(sec), &mut staged)?;
                    Ok(staged)
                })
                .collect::<Result<Vec<Data>>>()?
        };
        let out_bytes = output.as_bytes_mut();
        let mut start_row = 0usize;
        for (wi, chunk) in chunk_results.into_iter().enumerate() {
            let rows = base + usize::from(wi < extra);
            let lo = start_row * row * elem;
            let hi = (start_row + rows) * row * elem;
            if chunk.as_bytes().len() != hi - lo {
                return Err(Error::corrupt("chunk size mismatch").in_plugin("chunking"));
            }
            out_bytes[lo..hi].copy_from_slice(chunk.as_bytes());
            start_row += rows;
        }
        Ok(())
    }

    fn clone_compressor(&self) -> Box<dyn Compressor> {
        Box::new(Chunking {
            nthreads: self.nthreads,
            child_name: self.child_name.clone(),
            child: self.child.clone_compressor(),
        })
    }
}

/// Embarrassingly parallel compression of *multiple buffers*
/// (`compress_many`), one child clone per worker.
pub struct ManyIndependent {
    nthreads: usize,
    child_name: String,
    child: Box<dyn Compressor>,
}

impl ManyIndependent {
    /// Wrapper over `noop` until configured.
    pub fn new() -> ManyIndependent {
        ManyIndependent {
            nthreads: 4,
            child_name: "noop".to_string(),
            child: default_child(),
        }
    }
}

impl Default for ManyIndependent {
    fn default() -> Self {
        ManyIndependent::new()
    }
}

impl Compressor for ManyIndependent {
    fn get_configuration(&self) -> Options {
        let mut o = pressio_core::base_configuration(self);
        o.merge(&self.child.get_configuration());
        o
    }

    fn name(&self) -> &str {
        "many_independent"
    }

    fn version(&self) -> Version {
        Version::new(1, 0, 0)
    }

    fn thread_safety(&self) -> ThreadSafety {
        ThreadSafety::Multiple
    }

    fn get_options(&self) -> Options {
        let mut o = Options::new()
            .with("many_independent:nthreads", self.nthreads as u32)
            .with("many_independent:compressor", self.child_name.as_str());
        o.declare(pressio_core::OPT_NTHREADS, pressio_core::OptionKind::U32);
        o.merge(&self.child.get_options());
        o
    }

    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(name) = options.get_as::<String>("many_independent:compressor")? {
            self.child = resolve_child(&name).map_err(|e| e.in_plugin("many_independent"))?;
            self.child_name = name;
        }
        if let Some(n) = options
            .get_as::<u32>("many_independent:nthreads")?
            .or(options.get_as::<u32>(pressio_core::OPT_NTHREADS)?)
        {
            if n == 0 {
                return Err(Error::invalid_argument("nthreads must be >= 1")
                    .in_plugin("many_independent"));
            }
            self.nthreads = n as usize;
        }
        self.child.set_options(options)
    }

    fn get_documentation(&self) -> Options {
        Options::new()
            .with(
                "many_independent",
                "embarrassingly parallel compression of multiple buffers; respects the \
                 child's thread-safety introspection",
            )
            .with("many_independent:nthreads", "maximum worker threads")
            .with(
                "many_independent:compressor",
                "registry name of the child compressor",
            )
    }

    fn compress(&mut self, input: &Data) -> Result<Data> {
        self.child.compress(input)
    }

    fn decompress(&mut self, compressed: &Data, output: &mut Data) -> Result<()> {
        self.child.decompress(compressed, output)
    }

    fn compress_many(&mut self, inputs: &[&Data]) -> Result<Vec<Data>> {
        // Group count follows the adaptive plan over the average buffer
        // size: a handful of tiny buffers stays serial, large batches split
        // into at most `nthreads` groups. A Serialized/Single child must not
        // run concurrently at all.
        let groups = if self.child.thread_safety() == ThreadSafety::Multiple {
            let total: usize = inputs.iter().map(|d| d.as_bytes().len()).sum();
            pressio_core::plan_chunks(
                inputs.len(),
                total / inputs.len().max(1),
                self.nthreads.max(1),
            )
        } else {
            Vec::new()
        };
        if groups.len() <= 1 {
            return inputs
                .iter()
                .map(|d| {
                    pressio_core::cancel::checkpoint()?;
                    self.child.compress(d)
                })
                .collect();
        }
        // One task (and one child clone) per worker group: at most `nthreads`
        // children run concurrently, matching the option's contract, while
        // the shared engine's work stealing balances the groups.
        let workers: Vec<parking_lot::Mutex<Box<dyn Compressor>>> = groups
            .iter()
            .map(|_| parking_lot::Mutex::new(self.child.clone_compressor()))
            .collect();
        let grouped = pressio_core::par_map_indexed(groups.len(), |g| {
            let mut worker = workers[g].lock();
            groups[g]
                .clone()
                .map(|i| {
                    // Per-item cooperation: a tripped token stops the group
                    // between buffers, not only at the pool's chunk boundary.
                    pressio_core::cancel::checkpoint()?;
                    worker.compress(inputs[i])
                })
                .collect::<Result<Vec<Data>>>()
        })?;
        Ok(grouped.into_iter().flatten().collect())
    }

    fn decompress_many(&mut self, compressed: &[&Data], outputs: &mut [Data]) -> Result<()> {
        if compressed.len() != outputs.len() {
            return Err(Error::invalid_argument("length mismatch").in_plugin("many_independent"));
        }
        // Same adaptive grouping as compress_many, planned over the average
        // compressed buffer size.
        let groups = if self.child.thread_safety() == ThreadSafety::Multiple {
            let total: usize = compressed.iter().map(|d| d.as_bytes().len()).sum();
            pressio_core::plan_chunks(
                compressed.len(),
                total / compressed.len().max(1),
                self.nthreads.max(1),
            )
        } else {
            Vec::new()
        };
        if groups.len() <= 1 {
            for (c, o) in compressed.iter().zip(outputs.iter_mut()) {
                pressio_core::cancel::checkpoint()?;
                self.child.decompress(c, o)?;
            }
            return Ok(());
        }
        // Split the outputs into per-group disjoint slices so each task owns
        // its outputs outright — no claim protocol needed.
        let mut slices: Vec<&mut [Data]> = Vec::with_capacity(groups.len());
        let mut rest = outputs;
        for g in &groups {
            let (head, tail) = rest.split_at_mut(g.len());
            slices.push(head);
            rest = tail;
        }
        let tasks: Vec<DecompressTask> = slices
            .into_iter()
            .map(|outs| parking_lot::Mutex::new((self.child.clone_compressor(), outs)))
            .collect();
        pressio_core::par_map_indexed(groups.len(), |g| {
            let mut guard = tasks[g].lock();
            let (worker, outs) = &mut *guard;
            for (k, i) in groups[g].clone().enumerate() {
                pressio_core::cancel::checkpoint()?;
                worker.decompress(compressed[i], &mut outs[k])?;
            }
            Ok(())
        })?;
        Ok(())
    }

    fn clone_compressor(&self) -> Box<dyn Compressor> {
        Box::new(ManyIndependent {
            nthreads: self.nthreads,
            child_name: self.child_name.clone(),
            child: self.child.clone_compressor(),
        })
    }
}

/// Sequential pipeline over multiple buffers where a metric observed on each
/// buffer configures the next one (the glossary's *Many Dependent*, used to
/// forward a configuration guess between time steps).
pub struct ManyDependent {
    child_name: String,
    child: Box<dyn Compressor>,
    /// Metrics result key to observe (e.g. `error_stat:value_range`).
    source: String,
    /// Child option key to set from the observed value (e.g. `pressio:abs`).
    target: String,
    /// Scale factor applied to the observed value before forwarding.
    scale: f64,
}

impl ManyDependent {
    /// Pipeline over `noop` until configured.
    pub fn new() -> ManyDependent {
        ManyDependent {
            child_name: "noop".to_string(),
            child: default_child(),
            source: "error_stat:value_range".to_string(),
            target: String::new(),
            scale: 1.0,
        }
    }
}

impl Default for ManyDependent {
    fn default() -> Self {
        ManyDependent::new()
    }
}

impl Compressor for ManyDependent {
    fn get_configuration(&self) -> Options {
        let mut o = pressio_core::base_configuration(self);
        o.merge(&self.child.get_configuration());
        o
    }

    fn name(&self) -> &str {
        "many_dependent"
    }

    fn version(&self) -> Version {
        Version::new(1, 0, 0)
    }

    fn thread_safety(&self) -> ThreadSafety {
        self.child.thread_safety()
    }

    fn get_options(&self) -> Options {
        let mut o = Options::new()
            .with("many_dependent:compressor", self.child_name.as_str())
            .with("many_dependent:source", self.source.as_str())
            .with("many_dependent:target", self.target.as_str())
            .with("many_dependent:scale", self.scale);
        o.merge(&self.child.get_options());
        o
    }

    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(name) = options.get_as::<String>("many_dependent:compressor")? {
            self.child = resolve_child(&name).map_err(|e| e.in_plugin("many_dependent"))?;
            self.child_name = name;
        }
        if let Some(s) = options.get_as::<String>("many_dependent:source")? {
            self.source = s;
        }
        if let Some(t) = options.get_as::<String>("many_dependent:target")? {
            self.target = t;
        }
        if let Some(s) = options.get_as::<f64>("many_dependent:scale")? {
            self.scale = s;
        }
        self.child.set_options(options)
    }

    fn get_documentation(&self) -> Options {
        Options::new()
            .with(
                "many_dependent",
                "sequential multi-buffer pipeline: a metric observed on buffer i \
                 configures buffer i+1 (configuration forwarding between time steps)",
            )
            .with("many_dependent:source", "metrics result key to observe")
            .with("many_dependent:target", "child option key to set from it")
            .with("many_dependent:scale", "factor applied before forwarding")
    }

    fn compress(&mut self, input: &Data) -> Result<Data> {
        self.child.compress(input)
    }

    fn decompress(&mut self, compressed: &Data, output: &mut Data) -> Result<()> {
        self.child.decompress(compressed, output)
    }

    fn compress_many(&mut self, inputs: &[&Data]) -> Result<Vec<Data>> {
        let mut out = Vec::with_capacity(inputs.len());
        for input in inputs {
            // Observe the source metric on this buffer...
            if !self.target.is_empty() {
                let observed = match self.source.as_str() {
                    "error_stat:value_range" => {
                        let vals = input.to_f64_vec()?;
                        Some(pressio_core::value_range(&vals))
                    }
                    _ => None,
                };
                // ...and forward it (scaled) to configure this and later
                // buffers — the first buffer establishes the guess.
                if let Some(v) = observed {
                    let mut o = Options::new();
                    o.set(self.target.clone(), v * self.scale);
                    self.child.set_options(&o)?;
                }
            }
            out.push(self.child.compress(input)?);
        }
        Ok(out)
    }

    fn clone_compressor(&self) -> Box<dyn Compressor> {
        Box::new(ManyDependent {
            child_name: self.child_name.clone(),
            child: self.child.clone_compressor(),
            source: self.source.clone(),
            target: self.target.clone(),
            scale: self.scale,
        })
    }
}
