//! Property-based tests of the meta-compressors: composition must preserve
//! the child's guarantees for arbitrary geometry and thread counts, and
//! corrupt envelopes must fail cleanly.

use pressio_core::{Compressor, DType, Data, Options};
use proptest::prelude::*;

fn init() {
    pressio_codecs::register_builtins();
    pressio_sz::register_builtins();
    pressio_meta::register_builtins();
}

fn max_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn chunking_preserves_bound_for_any_geometry(
        rows in 1usize..40,
        cols in 1usize..40,
        threads in 1u32..9,
        seed in any::<u64>(),
    ) {
        init();
        let mut s = seed | 1;
        let vals: Vec<f64> = (0..rows * cols)
            .map(|_| {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                ((s >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 100.0
            })
            .collect();
        let input = Data::from_vec(vals.clone(), vec![rows, cols]).unwrap();
        let mut c = pressio_meta::Chunking::new();
        c.set_options(
            &Options::new()
                .with("chunking:compressor", "sz_threadsafe")
                .with("chunking:nthreads", threads)
                .with(pressio_core::OPT_ABS, 1e-3f64),
        )
        .unwrap();
        let compressed = c.compress(&input).unwrap();
        let mut out = Data::owned(DType::F64, vec![rows, cols]);
        c.decompress(&compressed, &mut out).unwrap();
        prop_assert!(max_err(&vals, out.as_slice::<f64>().unwrap()) <= 1e-3);
    }

    #[test]
    fn transpose_roundtrips_any_permutation(
        dims in proptest::collection::vec(1usize..8, 1..4),
        perm_seed in any::<u64>(),
    ) {
        init();
        let n: usize = dims.iter().product();
        let vals: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
        let input = Data::from_vec(vals, dims.clone()).unwrap();
        let mut axes: Vec<usize> = (0..dims.len()).collect();
        let mut s = perm_seed;
        for i in (1..axes.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            axes.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let axes_str = axes.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(",");
        let mut t = pressio_meta::Transpose::new();
        t.set_options(
            &Options::new()
                .with("transpose:axes", axes_str)
                .with("transpose:compressor", "deflate"),
        )
        .unwrap();
        let compressed = t.compress(&input).unwrap();
        let mut out = Data::owned(DType::F64, dims.clone());
        t.decompress(&compressed, &mut out).unwrap();
        prop_assert_eq!(out, input);
    }

    #[test]
    fn pipeline_of_lossless_stages_is_lossless(
        stage_pick in proptest::collection::vec(0usize..4, 1..4),
        vals in proptest::collection::vec(any::<u32>(), 1..512),
    ) {
        init();
        let names = ["rle", "lz", "deflate", "huffman"];
        let stages: Vec<String> = stage_pick.iter().map(|&i| names[i].to_string()).collect();
        let n = vals.len();
        let input = Data::from_vec(vals, vec![n]).unwrap();
        let mut p = pressio_meta::Pipeline::new();
        p.set_options(&Options::new().with("pipeline:stages", stages)).unwrap();
        let compressed = p.compress(&input).unwrap();
        let mut out = Data::owned(DType::U32, vec![n]);
        p.decompress(&compressed, &mut out).unwrap();
        prop_assert_eq!(out, input);
    }

    #[test]
    fn corrupt_meta_envelopes_never_panic(
        flips in proptest::collection::vec((any::<u16>(), 0u8..8), 1..8),
        which in 0usize..4,
    ) {
        init();
        let vals: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin()).collect();
        let input = Data::from_vec(vals, vec![16, 16]).unwrap();
        let (name, opts) = match which {
            0 => ("chunking", Options::new().with("chunking:compressor", "deflate")),
            1 => ("transpose", Options::new().with("transpose:compressor", "deflate")),
            2 => ("cast", Options::new().with("cast:dtype", "float").with("cast:compressor", "deflate")),
            _ => ("sample", Options::new().with("sample:rate", 2u64).with("sample:compressor", "deflate")),
        };
        let mut c = pressio_core::registry().compressor(name).unwrap();
        c.set_options(&opts).unwrap();
        let compressed = c.compress(&input).unwrap();
        let mut bad = compressed.as_bytes().to_vec();
        for (pos, bit) in flips {
            let at = pos as usize % bad.len();
            bad[at] ^= 1 << bit;
        }
        let mut out = Data::owned(DType::F64, vec![16, 16]);
        let _ = c.decompress(&Data::from_bytes(&bad), &mut out);
        let _ = c.decompress(&Data::from_bytes(&bad[..bad.len() / 3]), &mut out);
    }

    #[test]
    fn noise_scale_controls_error_magnitude(
        scale_exp in -6i32..0,
        seed in any::<u64>(),
    ) {
        init();
        let scale = 10f64.powi(scale_exp);
        let vals: Vec<f64> = (0..512).map(|i| i as f64 * 0.01).collect();
        let input = Data::from_vec(vals.clone(), vec![512]).unwrap();
        let mut n = pressio_meta::NoiseInjector::new();
        n.set_options(
            &Options::new()
                .with("noise:compressor", "noop")
                .with("noise:dist", "uniform")
                .with("noise:scale", scale)
                .with("noise:seed", seed),
        )
        .unwrap();
        let compressed = n.compress(&input).unwrap();
        let mut out = Data::owned(DType::F64, vec![512]);
        n.decompress(&compressed, &mut out).unwrap();
        let err = max_err(&vals, out.as_slice::<f64>().unwrap());
        prop_assert!(err <= scale);
    }
}
