//! Property-based tests of the ZFP-style kernel's guarantees.

use pressio_zfp::{compress_f64, decompress_f64, ZfpMode};
use proptest::prelude::*;

fn max_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fixed_accuracy_bound_holds_1d(
        vals in proptest::collection::vec(-1e9f64..1e9, 1..2048),
        tol_exp in -8i32..4,
    ) {
        let tol = 10f64.powi(tol_exp);
        let mode = ZfpMode::FixedAccuracy(tol);
        let dims = [vals.len()];
        let enc = compress_f64(&vals, &dims, mode).unwrap();
        let dec = decompress_f64(&enc, &dims, mode).unwrap();
        prop_assert!(max_err(&vals, &dec) <= tol);
    }

    #[test]
    fn fixed_accuracy_bound_holds_2d_3d(
        ny in 1usize..24,
        nx in 1usize..24,
        nz in 1usize..8,
        seed in any::<u64>(),
        tol_exp in -6i32..2,
    ) {
        let tol = 10f64.powi(tol_exp);
        let mut s = seed;
        let vals: Vec<f64> = (0..nz * ny * nx)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((s >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 2e3
            })
            .collect();
        for dims in [vec![ny * nz, nx], vec![nz, ny, nx]] {
            let mode = ZfpMode::FixedAccuracy(tol);
            let enc = compress_f64(&vals, &dims, mode).unwrap();
            let dec = decompress_f64(&enc, &dims, mode).unwrap();
            prop_assert!(max_err(&vals, &dec) <= tol, "dims {:?}", dims);
        }
    }

    #[test]
    fn fixed_rate_size_is_exact(
        n_blocks in 1usize..64,
        rate in 1u32..33,
    ) {
        // 1-d blocks of 4 values at integer rates: stream size must be
        // exactly ceil(blocks * rate * 4 / 8) bytes.
        let n = n_blocks * 4;
        let vals: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let mode = ZfpMode::FixedRate(rate as f64);
        let enc = compress_f64(&vals, &[n], mode).unwrap();
        let expect_bits = (n_blocks as u64) * (rate as u64 * 4).max(13);
        prop_assert_eq!(enc.len() as u64, expect_bits.div_ceil(8));
        // And it must decode.
        let dec = decompress_f64(&enc, &[n], mode).unwrap();
        prop_assert_eq!(dec.len(), n);
    }

    #[test]
    fn full_precision_is_near_lossless(
        vals in proptest::collection::vec(-1e6f64..1e6, 4..512),
    ) {
        let mode = ZfpMode::FixedPrecision(64);
        let dims = [vals.len()];
        let enc = compress_f64(&vals, &dims, mode).unwrap();
        let dec = decompress_f64(&enc, &dims, mode).unwrap();
        let scale = vals.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-300);
        prop_assert!(max_err(&vals, &dec) / scale < 1e-12);
    }

    #[test]
    fn corrupt_streams_never_panic(
        vals in proptest::collection::vec(-1e3f64..1e3, 4..256),
        flips in proptest::collection::vec((any::<u16>(), 0u8..8), 1..6),
    ) {
        let mode = ZfpMode::FixedAccuracy(1e-3);
        let dims = [vals.len()];
        let mut enc = compress_f64(&vals, &dims, mode).unwrap();
        for (pos, bit) in flips {
            let at = pos as usize % enc.len();
            enc[at] ^= 1 << bit;
        }
        let _ = decompress_f64(&enc, &dims, mode);
        let cut = enc.len() / 2;
        let _ = decompress_f64(&enc[..cut], &dims, mode);
    }
}
