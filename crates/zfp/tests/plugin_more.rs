//! Additional ZFP plugin behavior tests: rate-mode size planning, the
//! generic option aliases, and interoperability details that the paper's
//! interface arguments rely on.

use pressio_core::{Compressor, DType, Data, Options};
use pressio_zfp::{Zfp, ZfpMode};

fn field(n: usize) -> Data {
    let vals: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).sin()).collect();
    Data::from_vec(vals, vec![n]).unwrap()
}

#[test]
fn generic_rate_and_prec_aliases() {
    let mut c = Zfp::default();
    c.set_options(&Options::new().with(pressio_core::OPT_RATE, 8.0f64))
        .unwrap();
    assert_eq!(c.mode(), ZfpMode::FixedRate(8.0));
    c.set_options(&Options::new().with(pressio_core::OPT_PREC, 24u32))
        .unwrap();
    assert_eq!(c.mode(), ZfpMode::FixedPrecision(24));
}

#[test]
fn rate_mode_stream_size_is_data_independent() {
    // Random-access planning: the stream size depends only on geometry and
    // rate, never on content.
    let mut c = Zfp::default();
    c.set_options(&Options::new().with("zfp:rate", 6.0f64)).unwrap();
    let smooth = field(4096);
    let noisy = {
        let mut s = 0xDEADu64;
        let vals: Vec<f64> = (0..4096)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (s >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        Data::from_vec(vals, vec![4096]).unwrap()
    };
    let a = c.compress(&smooth).unwrap().size_in_bytes();
    let b = c.compress(&noisy).unwrap().size_in_bytes();
    assert_eq!(a, b, "fixed-rate streams must be content-independent");
}

#[test]
fn accuracy_stream_decodes_after_reconfiguration() {
    // The stream records its own mode: changing the plugin's options after
    // compressing must not corrupt decompression.
    let input = field(2048);
    let mut c = Zfp::default();
    c.set_options(&Options::new().with("zfp:accuracy", 1e-4f64)).unwrap();
    let compressed = c.compress(&input).unwrap();
    // Reconfigure to a completely different mode before decompressing.
    c.set_options(&Options::new().with("zfp:rate", 4.0f64)).unwrap();
    let mut out = Data::owned(DType::F64, vec![2048]);
    c.decompress(&compressed, &mut out).unwrap();
    let max_err = input
        .as_slice::<f64>()
        .unwrap()
        .iter()
        .zip(out.as_slice::<f64>().unwrap())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_err <= 1e-4);
}

#[test]
fn wrong_output_dtype_is_a_clean_error() {
    let input = field(64);
    let mut c = Zfp::default();
    let compressed = c.compress(&input).unwrap();
    let mut wrong = Data::owned(DType::F32, vec![64]);
    let err = c.decompress(&compressed, &mut wrong).unwrap_err();
    assert_eq!(err.code(), pressio_core::ErrorCode::InvalidArgument);
    assert!(err.to_string().contains("dtype"));
}

#[test]
fn four_dimensional_input_collapses() {
    // >3-d inputs collapse extra dims into the slow axis and still honor
    // the tolerance.
    let n = 2 * 3 * 8 * 8;
    let vals: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
    let input = Data::from_vec(vals.clone(), vec![2, 3, 8, 8]).unwrap();
    let mut c = Zfp::default();
    c.set_options(&Options::new().with("zfp:accuracy", 1e-3f64)).unwrap();
    let compressed = c.compress(&input).unwrap();
    let mut out = Data::owned(DType::F64, vec![2, 3, 8, 8]);
    c.decompress(&compressed, &mut out).unwrap();
    for (a, b) in vals.iter().zip(out.as_slice::<f64>().unwrap()) {
        assert!((a - b).abs() <= 1e-3);
    }
}
