//! The ZFP floating-point kernel: block quantization to a common exponent,
//! transform coding, and the three classic modes (fixed rate, fixed
//! precision, fixed accuracy).
//!
//! The kernel natively thinks in **Fortran dimension order** (`x` fastest),
//! like the real ZFP library; the plugin layer translates from the uniform
//! C ordering of the generic interface, transparently to users — the exact
//! transparency the paper's Section IV-B argues for.

use pressio_codecs::bitstream::{BitReader, BitWriter};
use pressio_core::{Error, Result, Scratch};

use crate::bitbudget::{BudgetReader, BudgetWriter};
use crate::block::{
    decode_ints, encode_ints, fwd_xform, int2uint, inv_xform, perm, uint2int, INTPREC,
};

/// IEEE double exponent bias.
const EBIAS: i32 = 1023;
/// Bits used to code a block's common exponent (+1 for the nonzero flag).
const EBITS: u32 = 11;

/// Compression mode, mirroring `zfp_stream_set_rate/precision/accuracy`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ZfpMode {
    /// Fixed rate in (amortized) bits per value: every block occupies exactly
    /// `rate * 4^d` bits — supports random access and exact size planning.
    FixedRate(f64),
    /// Fixed precision: at most this many bit planes per block.
    FixedPrecision(u32),
    /// Fixed accuracy: absolute error tolerance.
    FixedAccuracy(f64),
}

impl ZfpMode {
    /// Stable tag for stream headers.
    pub fn tag(&self) -> u8 {
        match self {
            ZfpMode::FixedRate(_) => 0,
            ZfpMode::FixedPrecision(_) => 1,
            ZfpMode::FixedAccuracy(_) => 2,
        }
    }

    /// Numeric parameter for stream headers.
    pub fn param(&self) -> f64 {
        match self {
            ZfpMode::FixedRate(r) => *r,
            ZfpMode::FixedPrecision(p) => *p as f64,
            ZfpMode::FixedAccuracy(t) => *t,
        }
    }

    /// Rebuild from header tag + parameter.
    pub fn from_tag(tag: u8, param: f64) -> Result<ZfpMode> {
        Ok(match tag {
            0 => ZfpMode::FixedRate(param),
            1 => ZfpMode::FixedPrecision(param as u32),
            2 => ZfpMode::FixedAccuracy(param),
            other => return Err(Error::corrupt(format!("unknown zfp mode tag {other}"))),
        })
    }

    /// Validate user-supplied parameters.
    pub fn validate(&self) -> Result<()> {
        match *self {
            ZfpMode::FixedRate(r) => {
                if !(r.is_finite() && (0.5..=64.0).contains(&r)) {
                    return Err(Error::invalid_argument(format!(
                        "rate must be in [0.5, 64] bits/value, got {r}"
                    )));
                }
            }
            ZfpMode::FixedPrecision(p) => {
                if !(1..=64).contains(&p) {
                    return Err(Error::invalid_argument(format!(
                        "precision must be in [1, 64] bit planes, got {p}"
                    )));
                }
            }
            ZfpMode::FixedAccuracy(t) => {
                if !(t.is_finite() && t > 0.0) {
                    return Err(Error::invalid_argument(format!(
                        "tolerance must be positive and finite, got {t}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Resolved per-stream coding parameters.
#[derive(Debug, Clone, Copy)]
struct Params {
    /// Exact bit budget per block (u64::MAX/2 when unconstrained).
    maxbits: u64,
    /// Whether blocks are padded to exactly `maxbits` (fixed rate).
    fixed_size: bool,
    maxprec: u32,
    minexp: i32,
}

fn resolve(mode: ZfpMode, d: usize) -> Params {
    let blocksize = 1u64 << (2 * d);
    match mode {
        ZfpMode::FixedRate(rate) => {
            let maxbits = ((rate * blocksize as f64).ceil() as u64).max((EBITS + 1) as u64 + 1);
            Params {
                maxbits,
                fixed_size: true,
                maxprec: INTPREC,
                minexp: -(EBIAS + 51),
            }
        }
        ZfpMode::FixedPrecision(p) => Params {
            maxbits: u64::MAX / 2,
            fixed_size: false,
            maxprec: p.min(INTPREC),
            minexp: -(EBIAS + 51),
        },
        ZfpMode::FixedAccuracy(tol) => Params {
            maxbits: u64::MAX / 2,
            fixed_size: false,
            maxprec: INTPREC,
            minexp: tol.log2().floor() as i32,
        },
    }
}

/// ZFP's `precision()`: bit planes worth coding for a block with maximum
/// exponent `emax`.
fn precision(emax: i32, maxprec: u32, minexp: i32, d: usize) -> u32 {
    let guard = 2 * (d as i32 + 1);
    maxprec.min((emax - minexp + guard).max(0) as u32)
}

/// frexp-style exponent of `|x|`, clamped to the normal range like ZFP.
#[inline]
fn exponent(x: f64) -> i32 {
    let a = x.abs();
    if a > 0.0 {
        let bits = a.to_bits();
        let ef = (bits >> 52) as i32 & 0x7FF;
        let e = if ef > 0 {
            ef - (EBIAS - 1)
        } else {
            // Subnormal: derive from the mantissa's leading zeros.
            let mant = bits & ((1u64 << 52) - 1);
            let lz = mant.leading_zeros() as i32;
            -1010 - lz
        };
        e.max(1 - EBIAS)
    } else {
        -EBIAS
    }
}

/// Exact scale by a power of two without forming 2^e separately.
#[inline]
fn ldexp2(x: f64, e: i32) -> f64 {
    #[inline]
    fn pow2(e: i32) -> f64 {
        debug_assert!((-1022..=1023).contains(&e));
        f64::from_bits(((e + EBIAS) as u64) << 52)
    }
    if (-1022..=1023).contains(&e) {
        x * pow2(e)
    } else if e > 0 {
        x * pow2(1023) * pow2(e - 1023)
    } else {
        x * pow2(-1022) * pow2((e + 1022).max(-1022))
    }
}

fn encode_block(
    w: &mut BitWriter,
    fblock: &[f64],
    d: usize,
    p: &Params,
    s: &mut Scratch,
) {
    let start = w.len_bits();
    let emax = fblock.iter().map(|&x| exponent(x)).max().unwrap_or(-EBIAS);
    let maxprec = precision(emax, p.maxprec, p.minexp, d);
    let all_zero = fblock.iter().all(|&x| x == 0.0);
    let e = if maxprec == 0 || all_zero {
        0u64
    } else {
        (emax + EBIAS) as u64
    };
    if e > 0 {
        let mut bw = BudgetWriter::new(w);
        bw.write_bits(2 * e + 1, EBITS + 1);
        // Quantize to the block's common exponent, staging through the
        // thread-local scratch arena (no per-block allocation).
        s.i64s.clear();
        s.i64s.extend(
            fblock
                .iter()
                .map(|&x| ldexp2(x, (INTPREC as i32 - 2) - emax) as i64),
        );
        fwd_xform(&mut s.i64s, d);
        let order = perm(d);
        s.u64s.clear();
        s.u64s.extend(order.iter().map(|&i| int2uint(s.i64s[i])));
        let budget = p.maxbits - (EBITS as u64 + 1);
        encode_ints(&mut bw, budget, maxprec, &s.u64s);
    } else {
        w.write_bit(false);
    }
    if p.fixed_size {
        let used = w.len_bits() - start;
        debug_assert!(used <= p.maxbits);
        for _ in used..p.maxbits {
            w.write_bit(false);
        }
    }
}

fn decode_block(
    r: &mut BitReader<'_>,
    out: &mut [f64],
    d: usize,
    p: &Params,
    s: &mut Scratch,
) -> Result<()> {
    let blocksize = 1usize << (2 * d);
    debug_assert_eq!(out.len(), blocksize);
    let mut used: u64 = 1;
    if r.read_bit()? {
        let e = {
            let mut br = BudgetReader::new(r);
            br.read_bits(EBITS)?
        };
        used += EBITS as u64;
        // We wrote 2e+1 in 12 bits; the low flag bit was consumed above, so
        // the remaining 11 bits are e = emax + EBIAS.
        let emax = e as i32 - EBIAS;
        let maxprec = precision(emax, p.maxprec, p.minexp, d);
        s.u64s.clear();
        s.u64s.resize(blocksize, 0);
        let budget = p.maxbits - (EBITS as u64 + 1);
        let mut br = BudgetReader::new(r);
        used += decode_ints(&mut br, budget, maxprec, &mut s.u64s)?;
        let order = perm(d);
        s.i64s.clear();
        s.i64s.resize(blocksize, 0);
        for (seq, &i) in order.iter().enumerate() {
            s.i64s[i] = uint2int(s.u64s[seq]);
        }
        inv_xform(&mut s.i64s, d);
        for (o, &q) in out.iter_mut().zip(s.i64s.iter()) {
            *o = ldexp2(q as f64, emax - (INTPREC as i32 - 2));
        }
    } else {
        out.fill(0.0);
    }
    if p.fixed_size {
        r.skip(p.maxbits - used)?;
    }
    Ok(())
}

/// Gather a 4^d block at origin `(bx, by, bz)` from a Fortran-ordered array,
/// replicating edge values for partial blocks.
#[allow(clippy::too_many_arguments)]
fn gather(
    data: &[f64],
    nx: usize,
    ny: usize,
    nz: usize,
    bx: usize,
    by: usize,
    bz: usize,
    d: usize,
    block: &mut [f64],
) {
    let mut idx = 0;
    let zs = if d >= 3 { 4 } else { 1 };
    let ys = if d >= 2 { 4 } else { 1 };
    for dz in 0..zs {
        let z = (bz + dz).min(nz - 1);
        for dy in 0..ys {
            let y = (by + dy).min(ny - 1);
            for dx in 0..4 {
                let x = (bx + dx).min(nx - 1);
                block[idx] = data[(z * ny + y) * nx + x];
                idx += 1;
            }
        }
    }
}

/// Scatter a decoded block back, discarding padded lanes.
#[allow(clippy::too_many_arguments)]
fn scatter(
    out: &mut [f64],
    nx: usize,
    ny: usize,
    nz: usize,
    bx: usize,
    by: usize,
    bz: usize,
    d: usize,
    block: &[f64],
) {
    let mut idx = 0;
    let zs = if d >= 3 { 4 } else { 1 };
    let ys = if d >= 2 { 4 } else { 1 };
    for dz in 0..zs {
        let z = bz + dz;
        for dy in 0..ys {
            let y = by + dy;
            for dx in 0..4 {
                let x = bx + dx;
                if x < nx && y < ny && z < nz {
                    out[(z * ny + y) * nx + x] = block[idx];
                }
                idx += 1;
            }
        }
    }
}

/// Normalize Fortran dims to exactly (nx, ny, nz, d) with 1 <= d <= 3.
fn normalize_dims(fdims: &[usize]) -> Result<(usize, usize, usize, usize)> {
    if fdims.is_empty() || fdims.contains(&0) {
        return Err(Error::invalid_argument(format!(
            "invalid dimensions {fdims:?}"
        )));
    }
    match fdims.len() {
        1 => Ok((fdims[0], 1, 1, 1)),
        2 => Ok((fdims[0], fdims[1], 1, 2)),
        3 => Ok((fdims[0], fdims[1], fdims[2], 3)),
        // Collapse trailing (slow) dims into z, like treating >3-d data as
        // 3-d with a large slow dimension.
        _ => Ok((
            fdims[0],
            fdims[1],
            fdims[2..].iter().product(),
            3,
        )),
    }
}

/// Linearized 4^d block grid over a normalized geometry. Blocks are numbered
/// x-fastest (the exact order of the classic serial loop), so splitting the
/// linear index range into contiguous chunks and concatenating the per-chunk
/// streams reproduces the serial stream block-for-block.
#[derive(Debug, Clone, Copy)]
struct BlockGrid {
    nx: usize,
    ny: usize,
    nz: usize,
    d: usize,
    xb: usize,
    yb: usize,
    zb: usize,
}

impl BlockGrid {
    fn new(fdims: &[usize]) -> Result<BlockGrid> {
        let (nx, ny, nz, d) = normalize_dims(fdims)?;
        let xb = nx.div_ceil(4);
        let yb = if d >= 2 { ny.div_ceil(4) } else { 1 };
        let zb = if d >= 3 { nz.div_ceil(4) } else { 1 };
        Ok(BlockGrid {
            nx,
            ny,
            nz,
            d,
            xb,
            yb,
            zb,
        })
    }

    fn blocks(&self) -> usize {
        self.xb * self.yb * self.zb
    }

    fn blocksize(&self) -> usize {
        1usize << (2 * self.d)
    }

    /// Element-space origin of linear block `i`.
    fn origin(&self, i: usize) -> (usize, usize, usize) {
        let bx = (i % self.xb) * 4;
        let by = ((i / self.xb) % self.yb) * 4;
        let bz = (i / (self.xb * self.yb)) * 4;
        (bx, by, bz)
    }
}

/// Number of 4^d coding blocks for a geometry — the unit of parallel work and
/// the upper bound on how many chunks a stream may carry.
pub fn block_count(fdims: &[usize]) -> Result<usize> {
    Ok(BlockGrid::new(fdims)?.blocks())
}

/// One contiguous run of encoded blocks. `nbits` is the exact bit length of
/// the run before byte padding; the plugin records it as the bitbudget offset
/// directory used to validate chunk boundaries at decode time.
#[derive(Debug, Clone)]
pub struct ZfpChunk {
    /// Exact number of payload bits (<= `bytes.len() * 8`).
    pub nbits: u64,
    /// Byte-padded bitstream for this run of blocks.
    pub bytes: Vec<u8>,
}

fn encode_range(
    data: &[f64],
    g: &BlockGrid,
    p: &Params,
    range: std::ops::Range<usize>,
) -> Result<ZfpChunk> {
    pressio_core::with_scratch(|s| {
        let mut w = BitWriter::new();
        s.f64s.clear();
        s.f64s.resize(g.blocksize(), 0.0);
        let mut block = std::mem::take(&mut s.f64s);
        let mut cp = pressio_core::cancel::Checkpointer::new(256);
        let mut res = Ok(());
        for i in range {
            if let Err(stop) = cp.tick() {
                res = Err(stop);
                break;
            }
            let (bx, by, bz) = g.origin(i);
            gather(data, g.nx, g.ny, g.nz, bx, by, bz, g.d, &mut block);
            encode_block(&mut w, &block, g.d, p, s);
        }
        s.f64s = block;
        res?;
        Ok(ZfpChunk {
            nbits: w.len_bits(),
            bytes: w.into_bytes(),
        })
    })
}

/// Decode a run of blocks into block-major order (each consecutive
/// `blocksize` values are one block, ready to scatter).
fn decode_range_blocks(
    payload: &[u8],
    g: &BlockGrid,
    p: &Params,
    nblocks: usize,
) -> Result<Vec<f64>> {
    pressio_core::with_scratch(|s| {
        let blocksize = g.blocksize();
        pressio_core::cancel::charge((nblocks as u64).saturating_mul(blocksize as u64 * 8))?;
        let mut vals = vec![0.0f64; nblocks * blocksize];
        let mut r = BitReader::new(payload);
        let mut cp = pressio_core::cancel::Checkpointer::new(256);
        for block in vals.chunks_mut(blocksize) {
            cp.tick()?;
            decode_block(&mut r, block, g.d, p, s)?;
        }
        Ok(vals)
    })
}

/// Charge the full output array against the ambient memory budget before
/// allocating it: stream-declared geometry is attacker-controlled up to the
/// wire-level decode cap, and a budgeted caller (the guard stacks, the fuzz
/// harness) must see a clean error instead of an OOM abort.
fn charge_output(g: &BlockGrid) -> Result<()> {
    pressio_core::cancel::charge(
        (g.nx as u64)
            .saturating_mul(g.ny as u64)
            .saturating_mul(g.nz as u64)
            .saturating_mul(8),
    )
}

fn validate_input(data: &[f64], fdims: &[usize], g: &BlockGrid) -> Result<()> {
    if g.nx * g.ny * g.nz != data.len() {
        return Err(Error::invalid_argument(format!(
            "dims {fdims:?} do not match {} elements",
            data.len()
        )));
    }
    if data.iter().any(|x| !x.is_finite()) {
        return Err(Error::unsupported(
            "zfp cannot represent non-finite values; mask or replace them first",
        ));
    }
    Ok(())
}

/// Compress a Fortran-ordered `f64` array into up to `pieces` independent
/// chunks of contiguous blocks, encoded in parallel on the shared execution
/// engine. The chunk split depends only on `pieces` and the geometry — never
/// on the host's core count — so streams are machine-independent, and
/// `pieces == 1` is bit-identical to [`compress_f64`].
pub fn compress_f64_chunks(
    data: &[f64],
    fdims: &[usize],
    mode: ZfpMode,
    pieces: usize,
) -> Result<Vec<ZfpChunk>> {
    mode.validate()?;
    let g = BlockGrid::new(fdims)?;
    validate_input(data, fdims, &g)?;
    let p = resolve(mode, g.d);
    let ranges = pressio_core::chunk_ranges(g.blocks(), pieces);
    pressio_core::par_map_indexed(ranges.len(), |i| {
        let _s = pressio_core::trace::span_labeled("zfp:encode_chunk", || {
            format!("blocks {}..{}", ranges[i].start, ranges[i].end)
        });
        encode_range(data, &g, &p, ranges[i].clone())
    })
}

/// Decompress chunks produced by [`compress_f64_chunks`] with identical dims,
/// mode, and chunk count. Chunks decode in parallel; the scatter back into
/// the array is serial.
pub fn decompress_f64_chunks(
    chunks: &[&[u8]],
    fdims: &[usize],
    mode: ZfpMode,
) -> Result<Vec<f64>> {
    mode.validate()?;
    let g = BlockGrid::new(fdims)?;
    let p = resolve(mode, g.d);
    let ranges = pressio_core::chunk_ranges(g.blocks(), chunks.len().max(1));
    if ranges.len() != chunks.len() {
        return Err(Error::corrupt(format!(
            "{} zfp chunks cannot cover {} blocks",
            chunks.len(),
            g.blocks()
        )));
    }
    let decoded = pressio_core::par_map_indexed(ranges.len(), |i| {
        let _s = pressio_core::trace::span_labeled("zfp:decode_chunk", || {
            format!("blocks {}..{}", ranges[i].start, ranges[i].end)
        });
        decode_range_blocks(chunks[i], &g, &p, ranges[i].len())
    })?;
    let blocksize = g.blocksize();
    charge_output(&g)?;
    let mut out = vec![0.0f64; g.nx * g.ny * g.nz];
    for (range, vals) in ranges.iter().zip(&decoded) {
        for (k, i) in range.clone().enumerate() {
            let (bx, by, bz) = g.origin(i);
            let block = &vals[k * blocksize..(k + 1) * blocksize];
            scatter(&mut out, g.nx, g.ny, g.nz, bx, by, bz, g.d, block);
        }
    }
    Ok(out)
}

/// Compress a Fortran-ordered `f64` array. Returns the bit-packed payload.
pub fn compress_f64(data: &[f64], fdims: &[usize], mode: ZfpMode) -> Result<Vec<u8>> {
    let mut chunks = compress_f64_chunks(data, fdims, mode, 1)?;
    Ok(chunks.pop().map(|c| c.bytes).unwrap_or_default())
}

/// Decompress a payload produced by [`compress_f64`] with identical dims and
/// mode. Streams one block at a time through a thread-local scratch arena.
pub fn decompress_f64(payload: &[u8], fdims: &[usize], mode: ZfpMode) -> Result<Vec<f64>> {
    mode.validate()?;
    let g = BlockGrid::new(fdims)?;
    let p = resolve(mode, g.d);
    charge_output(&g)?;
    let mut out = vec![0.0f64; g.nx * g.ny * g.nz];
    let _s = pressio_core::trace::span("zfp:decode_stream");
    pressio_core::with_scratch(|s| {
        s.f64s.clear();
        s.f64s.resize(g.blocksize(), 0.0);
        let mut block = std::mem::take(&mut s.f64s);
        let mut r = BitReader::new(payload);
        let mut res = Ok(());
        let mut cp = pressio_core::cancel::Checkpointer::new(256);
        for i in 0..g.blocks() {
            if let Err(stop) = cp.tick() {
                res = Err(stop);
                break;
            }
            if let Err(e) = decode_block(&mut r, &mut block, g.d, &p, s) {
                res = Err(e);
                break;
            }
            let (bx, by, bz) = g.origin(i);
            scatter(&mut out, g.nx, g.ny, g.nz, bx, by, bz, g.d, &block);
        }
        s.f64s = block;
        res
    })?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth(nx: usize, ny: usize, nz: usize) -> Vec<f64> {
        let mut v = Vec::with_capacity(nx * ny * nz);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    v.push(
                        ((x as f64) * 0.1).sin() + ((y as f64) * 0.07).cos() * 2.0
                            + (z as f64) * 0.01,
                    );
                }
            }
        }
        v
    }

    fn max_err(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn exponent_matches_frexp_semantics() {
        assert_eq!(exponent(1.0), 1); // 1.0 = 0.5 * 2^1
        assert_eq!(exponent(0.5), 0);
        assert_eq!(exponent(0.75), 0);
        assert_eq!(exponent(2.0), 2);
        assert_eq!(exponent(-8.0), 4);
        assert_eq!(exponent(0.0), -EBIAS);
        // Clamped at the bottom of the normal range.
        assert_eq!(exponent(f64::MIN_POSITIVE / 4.0), 1 - EBIAS);
    }

    #[test]
    fn ldexp2_exact_powers() {
        assert_eq!(ldexp2(1.5, 3), 12.0);
        assert_eq!(ldexp2(12.0, -3), 1.5);
        assert_eq!(ldexp2(1.0, 62), (1u64 << 62) as f64);
        // Extreme exponents survive the two-step path (within the f64
        // representable domain: subnormal down, < 2^1024 up).
        assert_eq!(ldexp2(ldexp2(1.0, -1040), 1040), 1.0);
        assert_eq!(ldexp2(f64::MIN_POSITIVE, 1040), (1u64 << 18) as f64);
    }

    #[test]
    fn fixed_accuracy_bounds_error_all_dims() {
        for (fdims, data) in [
            (vec![4096usize], smooth(4096, 1, 1)),
            (vec![64, 64], smooth(64, 64, 1)),
            (vec![32, 32, 16], smooth(32, 32, 16)),
        ] {
            for tol in [1e-1, 1e-3, 1e-6] {
                let mode = ZfpMode::FixedAccuracy(tol);
                let c = compress_f64(&data, &fdims, mode).unwrap();
                let back = decompress_f64(&c, &fdims, mode).unwrap();
                let err = max_err(&data, &back);
                assert!(
                    err <= tol,
                    "dims {fdims:?} tol {tol}: max err {err}"
                );
            }
        }
    }

    #[test]
    fn fixed_accuracy_compresses_smooth_data() {
        let data = smooth(64, 64, 16);
        let c = compress_f64(&data, &[64, 64, 16], ZfpMode::FixedAccuracy(1e-3)).unwrap();
        let ratio = (data.len() * 8) as f64 / c.len() as f64;
        assert!(ratio > 4.0, "ratio {ratio:.2}");
    }

    #[test]
    fn fixed_rate_produces_exact_size() {
        let data = smooth(64, 64, 1);
        for rate in [4.0f64, 8.0, 16.0] {
            let c = compress_f64(&data, &[64, 64], ZfpMode::FixedRate(rate)).unwrap();
            let blocks = (64 / 4) * (64 / 4);
            let expected_bits = blocks as u64 * (rate * 16.0).ceil().max(13.0) as u64;
            assert_eq!(c.len() as u64, expected_bits.div_ceil(8), "rate {rate}");
            let back = decompress_f64(&c, &[64, 64], ZfpMode::FixedRate(rate)).unwrap();
            // Higher rates give lower error; at 16 bits/value error is small
            // relative to the ~3.0 value range.
            if rate >= 16.0 {
                assert!(max_err(&data, &back) < 1e-2);
            }
        }
    }

    #[test]
    fn higher_rate_monotonically_reduces_error() {
        let data = smooth(32, 32, 8);
        let mut last = f64::INFINITY;
        for rate in [2.0, 4.0, 8.0, 16.0, 32.0] {
            let m = ZfpMode::FixedRate(rate);
            let c = compress_f64(&data, &[32, 32, 8], m).unwrap();
            let back = decompress_f64(&c, &[32, 32, 8], m).unwrap();
            let err = max_err(&data, &back);
            assert!(err <= last * 1.5, "rate {rate}: {err} vs {last}");
            last = err;
        }
        assert!(last < 1e-4);
    }

    #[test]
    fn fixed_precision_roundtrip() {
        let data = smooth(32, 32, 1);
        for prec in [8u32, 16, 32, 64] {
            let m = ZfpMode::FixedPrecision(prec);
            let c = compress_f64(&data, &[32, 32], m).unwrap();
            let back = decompress_f64(&c, &[32, 32], m).unwrap();
            if prec == 64 {
                // Full precision is near-lossless for doubles.
                assert!(max_err(&data, &back) < 1e-12);
            }
        }
    }

    #[test]
    fn all_zero_blocks_are_one_bit() {
        let data = vec![0.0f64; 4096];
        let c = compress_f64(&data, &[4096], ZfpMode::FixedAccuracy(1e-6)).unwrap();
        // 1024 blocks * 1 bit = 128 bytes.
        assert_eq!(c.len(), 128);
        let back = decompress_f64(&c, &[4096], ZfpMode::FixedAccuracy(1e-6)).unwrap();
        assert!(back.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn partial_blocks_padding_roundtrip() {
        // Dims not multiples of 4 exercise gather/scatter padding.
        for fdims in [vec![5usize], vec![7, 3], vec![5, 6, 7]] {
            let n: usize = fdims.iter().product();
            let data: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let m = ZfpMode::FixedAccuracy(1e-4);
            let c = compress_f64(&data, &fdims, m).unwrap();
            let back = decompress_f64(&c, &fdims, m).unwrap();
            assert!(max_err(&data, &back) <= 1e-4, "dims {fdims:?}");
        }
    }

    #[test]
    fn small_dims_pad_inefficiently() {
        // The Section V observation: a dimension below the block size forces
        // zero padding and hurts efficiency vs. a well-shaped layout.
        let data = smooth(64, 64, 1);
        let m = ZfpMode::FixedAccuracy(1e-4);
        let well_shaped = compress_f64(&data, &[64, 64], m).unwrap();
        let skinny = compress_f64(&data, &[64 * 64 / 2, 2], m).unwrap();
        assert!(
            skinny.len() > well_shaped.len(),
            "skinny {} vs well-shaped {}",
            skinny.len(),
            well_shaped.len()
        );
    }

    #[test]
    fn nonfinite_rejected() {
        let mut data = smooth(16, 1, 1);
        data[3] = f64::NAN;
        assert!(compress_f64(&data, &[16], ZfpMode::FixedAccuracy(1e-3)).is_err());
    }

    #[test]
    fn invalid_modes_rejected() {
        let data = vec![1.0; 16];
        assert!(compress_f64(&data, &[16], ZfpMode::FixedRate(0.0)).is_err());
        assert!(compress_f64(&data, &[16], ZfpMode::FixedAccuracy(-1.0)).is_err());
        assert!(compress_f64(&data, &[16], ZfpMode::FixedPrecision(0)).is_err());
        assert!(compress_f64(&data, &[16], ZfpMode::FixedPrecision(65)).is_err());
    }

    #[test]
    fn single_chunk_matches_serial_stream() {
        let data = smooth(32, 16, 8);
        let m = ZfpMode::FixedAccuracy(1e-5);
        let serial = compress_f64(&data, &[32, 16, 8], m).unwrap();
        let chunks = compress_f64_chunks(&data, &[32, 16, 8], m, 1).unwrap();
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].bytes, serial);
        assert_eq!(chunks[0].nbits.div_ceil(8), serial.len() as u64);
    }

    #[test]
    fn chunked_roundtrip_matches_serial_values() {
        let data = smooth(21, 13, 9); // partial blocks in every dimension
        for pieces in [1usize, 2, 3, 7, 64] {
            for m in [
                ZfpMode::FixedAccuracy(1e-4),
                ZfpMode::FixedRate(8.0),
                ZfpMode::FixedPrecision(24),
            ] {
                let serial = {
                    let c = compress_f64(&data, &[21, 13, 9], m).unwrap();
                    decompress_f64(&c, &[21, 13, 9], m).unwrap()
                };
                let chunks = compress_f64_chunks(&data, &[21, 13, 9], m, pieces).unwrap();
                let bytes: Vec<Vec<u8>> = chunks.into_iter().map(|c| c.bytes).collect();
                let refs: Vec<&[u8]> = bytes.iter().map(|b| b.as_slice()).collect();
                let back = decompress_f64_chunks(&refs, &[21, 13, 9], m).unwrap();
                assert_eq!(serial, back, "pieces {pieces} mode {m:?}");
            }
        }
    }

    #[test]
    fn chunk_count_is_capped_by_block_count() {
        let data = smooth(4, 4, 1);
        let m = ZfpMode::FixedAccuracy(1e-3);
        // 1 block total: asking for 8 pieces still yields 1 chunk.
        let chunks = compress_f64_chunks(&data, &[4, 4], m, 8).unwrap();
        assert_eq!(chunks.len(), 1);
        // And a stream claiming more chunks than blocks is corrupt.
        let bogus: Vec<&[u8]> = vec![&chunks[0].bytes, &chunks[0].bytes];
        assert!(decompress_f64_chunks(&bogus, &[4, 4], m).is_err());
    }

    #[test]
    fn huge_magnitudes_roundtrip() {
        let data: Vec<f64> = (0..256).map(|i| (i as f64 + 1.0) * 1e300).collect();
        let m = ZfpMode::FixedPrecision(64);
        let c = compress_f64(&data, &[256], m).unwrap();
        let back = decompress_f64(&c, &[256], m).unwrap();
        for (a, b) in data.iter().zip(&back) {
            assert!(((a - b) / a).abs() < 1e-12);
        }
    }

    #[test]
    fn tiny_magnitudes_roundtrip() {
        let data: Vec<f64> = (0..64).map(|i| (i as f64 + 1.0) * 1e-300).collect();
        let m = ZfpMode::FixedPrecision(64);
        let c = compress_f64(&data, &[64], m).unwrap();
        let back = decompress_f64(&c, &[64], m).unwrap();
        for (a, b) in data.iter().zip(&back) {
            assert!(((a - b) / a).abs() < 1e-10, "{a} vs {b}");
        }
    }
}
