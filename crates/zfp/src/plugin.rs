//! The `zfp` compressor plugin.
//!
//! Wraps the kernel behind the generic interface. Notably, the kernel is
//! natively **Fortran-ordered** (like real ZFP) while the generic interface
//! is uniformly C-ordered; this plugin reverses the dimension list on the
//! way in, so users never deal with the mismatch — the transparency argument
//! of the paper's Section IV-B.
//!
//! Two registrations share this type and one stream format: serial `zfp`
//! (`nthreads` defaults to 1) and `zfp_omp` (defaults to 4), which encodes
//! contiguous runs of 4^d blocks in parallel on the shared execution engine
//! and stitches the per-worker bitstreams through a chunk directory in the
//! envelope. Streams are machine-independent (the split depends only on
//! `nthreads`), and either registration decodes the other's output.

use pressio_core::{
    registry, require_dtype, ByteReader, ByteWriter, Compressor, DType, Data, Error, Options,
    Result, ThreadSafety, Version,
};

use crate::kernel::{
    block_count, compress_f64_chunks, decompress_f64, decompress_f64_chunks, ZfpMode,
};

/// Stream envelope magic ("ZFPR").
const MAGIC: u32 = 0x5A46_5052;

/// The ZFP-style transform-based compressor plugin.
#[derive(Debug, Clone)]
pub struct Zfp {
    mode: ZfpMode,
    /// Value-range relative bound adapter: real ZFP has no relative mode,
    /// so (like LibPressio's bound-conversion layer) the plugin resolves
    /// `pressio:rel` to an absolute tolerance from the input's range at
    /// compress time.
    rel: Option<f64>,
    /// Number of independent block-range chunks to encode in parallel.
    nthreads: u32,
    /// Registered as `zfp_omp` (affects the option prefix, not the format).
    omp: bool,
}

impl Default for Zfp {
    fn default() -> Self {
        Zfp {
            mode: ZfpMode::FixedAccuracy(1e-3),
            rel: None,
            nthreads: 1,
            omp: false,
        }
    }
}

impl Zfp {
    /// Create a plugin with an explicit mode.
    pub fn with_mode(mode: ZfpMode) -> Zfp {
        Zfp {
            mode,
            ..Zfp::default()
        }
    }

    /// The chunk-parallel registration (`zfp_omp`).
    pub fn omp() -> Zfp {
        Zfp {
            nthreads: 4,
            omp: true,
            ..Zfp::default()
        }
    }

    /// The currently configured mode.
    pub fn mode(&self) -> ZfpMode {
        self.mode
    }

    fn prefix(&self) -> &'static str {
        if self.omp {
            "zfp_omp"
        } else {
            "zfp"
        }
    }
}

impl Compressor for Zfp {
    fn name(&self) -> &str {
        self.prefix()
    }

    fn version(&self) -> Version {
        // Mirrors the ZFP release evaluated in the paper.
        Version::new(0, 5, 5)
    }

    fn thread_safety(&self) -> ThreadSafety {
        // Like real ZFP: each instance owns independent state.
        ThreadSafety::Multiple
    }

    fn get_options(&self) -> Options {
        let p = self.prefix();
        let mut o = Options::new();
        match self.mode {
            ZfpMode::FixedRate(r) => {
                o.set(format!("{p}:rate"), r);
                o.declare(format!("{p}:precision"), pressio_core::OptionKind::U32);
                o.declare(format!("{p}:accuracy"), pressio_core::OptionKind::F64);
            }
            ZfpMode::FixedPrecision(prec) => {
                o.set(format!("{p}:precision"), prec);
                o.declare(format!("{p}:rate"), pressio_core::OptionKind::F64);
                o.declare(format!("{p}:accuracy"), pressio_core::OptionKind::F64);
            }
            ZfpMode::FixedAccuracy(t) => {
                o.set(format!("{p}:accuracy"), t);
                o.declare(format!("{p}:rate"), pressio_core::OptionKind::F64);
                o.declare(format!("{p}:precision"), pressio_core::OptionKind::U32);
            }
        }
        o.set(format!("{p}:nthreads"), self.nthreads);
        match self.rel {
            Some(r) => o.set(pressio_core::OPT_REL, r),
            None => o.declare(pressio_core::OPT_REL, pressio_core::OptionKind::F64),
        }
        o.declare(pressio_core::OPT_ABS, pressio_core::OptionKind::F64);
        o.declare(pressio_core::OPT_RATE, pressio_core::OptionKind::F64);
        o.declare(pressio_core::OPT_PREC, pressio_core::OptionKind::U32);
        o.declare(pressio_core::OPT_NTHREADS, pressio_core::OptionKind::U32);
        o
    }

    fn set_options(&mut self, options: &Options) -> Result<()> {
        let p = self.prefix();
        // Native keys first, then the generic pressio:* aliases.
        let mut mode = self.mode;
        if let Some(r) = options.get_as::<f64>(&format!("{p}:rate"))? {
            mode = ZfpMode::FixedRate(r);
            self.rel = None;
        }
        if let Some(prec) = options.get_as::<u32>(&format!("{p}:precision"))? {
            mode = ZfpMode::FixedPrecision(prec);
            self.rel = None;
        }
        if let Some(t) = options.get_as::<f64>(&format!("{p}:accuracy"))? {
            mode = ZfpMode::FixedAccuracy(t);
            self.rel = None;
        }
        if let Some(r) = options.get_as::<f64>(pressio_core::OPT_RATE)? {
            mode = ZfpMode::FixedRate(r);
            self.rel = None;
        }
        if let Some(prec) = options.get_as::<u32>(pressio_core::OPT_PREC)? {
            mode = ZfpMode::FixedPrecision(prec);
            self.rel = None;
        }
        if let Some(t) = options.get_as::<f64>(pressio_core::OPT_ABS)? {
            mode = ZfpMode::FixedAccuracy(t);
            self.rel = None;
        }
        if let Some(r) = options.get_as::<f64>(pressio_core::OPT_REL)? {
            if !(r.is_finite() && r > 0.0) {
                return Err(
                    Error::invalid_argument(format!("relative bound must be positive, got {r}"))
                        .in_plugin(p),
                );
            }
            self.rel = Some(r);
            // Mode is resolved per-input at compress time.
        }
        if let Some(n) = options
            .get_as::<u32>(&format!("{p}:nthreads"))?
            .or(options.get_as::<u32>(pressio_core::OPT_NTHREADS)?)
        {
            if n == 0 {
                return Err(Error::invalid_argument("nthreads must be >= 1").in_plugin(p));
            }
            self.nthreads = n;
        }
        mode.validate().map_err(|e| e.in_plugin(p))?;
        self.mode = mode;
        Ok(())
    }

    fn check_options(&self, options: &Options) -> Result<()> {
        let mut probe = self.clone();
        probe.set_options(options)
    }

    fn get_configuration(&self) -> Options {
        let p = self.prefix();
        let mut o = pressio_core::base_configuration(self);
        o.set(format!("{p}:pressio:lossless"), false);
        o.set(format!("{p}:pressio:lossy"), true);
        o.set(format!("{p}:pressio:error_bounded"), true);
        // Read-only: which mode the current parameters select.
        o.set(
            format!("{p}:mode"),
            match self.mode {
                ZfpMode::FixedRate(_) => "rate",
                ZfpMode::FixedPrecision(_) => "precision",
                ZfpMode::FixedAccuracy(_) => "accuracy",
            },
        );
        o
    }

    fn get_documentation(&self) -> Options {
        let p = self.prefix();
        Options::new()
            .with(
                p.to_string(),
                "transform-based compressor: 4^d blocks, block floating point, lifted \
                 orthogonal transform, embedded bit-plane coding",
            )
            .with(
                format!("{p}:rate"),
                "fixed rate in bits per value (enables random access)",
            )
            .with(
                format!("{p}:precision"),
                "fixed precision in bit planes per block",
            )
            .with(
                format!("{p}:accuracy"),
                "fixed accuracy: absolute error tolerance",
            )
            .with(
                format!("{p}:mode"),
                "active mode: rate | precision | accuracy (read-only)",
            )
            .with(
                format!("{p}:nthreads"),
                "block-range chunks encoded in parallel on the shared execution \
                 engine (1 = serial; the stream layout depends only on this value, \
                 never on the host's core count)",
            )
    }

    fn compress(&mut self, input: &Data) -> Result<Data> {
        let p = self.prefix();
        require_dtype(p, input, &[DType::F32, DType::F64])?;
        // Uniform C ordering in; native Fortran ordering inside.
        let fdims: Vec<usize> = input.dims().iter().rev().copied().collect();
        let values: Vec<f64> = input.to_f64_vec()?;
        let mode = match self.rel {
            Some(r) => {
                let range = pressio_core::value_range(&values);
                ZfpMode::FixedAccuracy((r * range).max(f64::MIN_POSITIVE))
            }
            None => self.mode,
        };
        // Adaptive piece count: the engine's plan caps the requested
        // nthreads by what the input can amortize (small fields encode
        // serially — `exec:serial_fallback`), and depends only on the
        // request and the input geometry, never on the host.
        let pieces =
            pressio_core::plan_chunks(values.len(), 8, self.nthreads.max(1) as usize).len();
        let chunks =
            compress_f64_chunks(&values, &fdims, mode, pieces.max(1)).map_err(|e| e.in_plugin(p))?;
        let payload_len: usize = chunks.iter().map(|c| c.bytes.len()).sum();
        let mut w = ByteWriter::with_capacity(payload_len + 64 + 12 * chunks.len());
        w.put_u32(MAGIC);
        w.put_dtype(input.dtype());
        w.put_dims(input.dims());
        w.put_u8(mode.tag());
        w.put_f64(mode.param());
        // Chunk directory: count, then (bit length, bitstream) per chunk. The
        // bit lengths are the bitbudget offsets that let decode validate every
        // chunk boundary before touching the payload.
        w.put_u32(chunks.len() as u32);
        for c in &chunks {
            w.put_u64(c.nbits);
            w.put_section(&c.bytes);
        }
        Ok(Data::from_bytes(&w.into_vec()))
    }

    fn decompress(&mut self, compressed: &Data, output: &mut Data) -> Result<()> {
        let p = self.prefix();
        let mut r = ByteReader::new(compressed.as_bytes());
        if r.get_u32()? != MAGIC {
            return Err(Error::corrupt("bad zfp envelope magic").in_plugin(p));
        }
        let dtype = r.get_dtype()?;
        let dims = r.get_dims()?;
        pressio_core::checked_geometry(dtype, &dims).map_err(|e| e.in_plugin(p))?;
        let mode = ZfpMode::from_tag(r.get_u8()?, r.get_f64()?)?;
        mode.validate()
            .map_err(|_| Error::corrupt("zfp stream carries invalid mode parameters"))?;
        let fdims: Vec<usize> = dims.iter().rev().copied().collect();
        let nblocks = block_count(&fdims).map_err(|e| e.in_plugin(p))?;
        let n_chunks = r.get_count()?;
        if n_chunks == 0 || n_chunks > nblocks {
            return Err(Error::corrupt(format!(
                "zfp stream claims {n_chunks} chunks for {nblocks} blocks"
            ))
            .in_plugin(p));
        }
        let mut sections: Vec<&[u8]> = Vec::with_capacity(n_chunks);
        for _ in 0..n_chunks {
            let nbits = r.get_u64()?;
            let bytes = r.get_section()?;
            if bytes.len() as u64 != nbits.div_ceil(8) {
                return Err(Error::corrupt(format!(
                    "zfp chunk directory declares {nbits} bits but carries {} bytes",
                    bytes.len()
                ))
                .in_plugin(p));
            }
            sections.push(bytes);
        }
        let values = if n_chunks == 1 {
            decompress_f64(sections[0], &fdims, mode)
        } else {
            decompress_f64_chunks(&sections, &fdims, mode)
        }
        .map_err(|e| e.in_plugin(p))?;
        if output.dtype() != dtype {
            return Err(Error::invalid_argument(format!(
                "output dtype {} does not match stream dtype {dtype}",
                output.dtype()
            ))
            .in_plugin(p));
        }
        let n: usize = dims.iter().product();
        if output.num_elements() != n {
            *output = Data::owned(dtype, dims.clone());
        } else if output.dims() != dims {
            output.reshape(dims.clone())?;
        }
        match dtype {
            DType::F32 => {
                let out = output.as_mut_slice::<f32>()?;
                for (o, v) in out.iter_mut().zip(&values) {
                    *o = *v as f32;
                }
            }
            _ => output.as_mut_slice::<f64>()?.copy_from_slice(&values),
        }
        Ok(())
    }

    fn clone_compressor(&self) -> Box<dyn Compressor> {
        Box::new(self.clone())
    }
}

/// Register the `zfp` and `zfp_omp` plugins.
pub fn register_builtins() {
    registry().register_compressor("zfp", || Box::new(Zfp::default()));
    registry().register_compressor("zfp_omp", || Box::new(Zfp::omp()));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(nz: usize, ny: usize, nx: usize) -> Data {
        let mut v = Vec::with_capacity(nz * ny * nx);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    v.push(((x as f64) * 0.06).sin() * ((y as f64) * 0.05).cos() + z as f64 * 0.02);
                }
            }
        }
        Data::from_vec(v, vec![nz, ny, nx]).unwrap()
    }

    fn max_err(a: &Data, b: &Data) -> f64 {
        a.to_f64_vec()
            .unwrap()
            .iter()
            .zip(b.to_f64_vec().unwrap().iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn accuracy_mode_roundtrip() {
        let input = field(8, 32, 32);
        let mut c = Zfp::default();
        c.set_options(&Options::new().with("zfp:accuracy", 1e-4f64))
            .unwrap();
        let compressed = c.compress(&input).unwrap();
        assert!(compressed.size_in_bytes() < input.size_in_bytes() / 2);
        let mut out = Data::owned(DType::F64, vec![8, 32, 32]);
        c.decompress(&compressed, &mut out).unwrap();
        assert!(max_err(&input, &out) <= 1e-4);
    }

    #[test]
    fn generic_abs_maps_to_accuracy() {
        let input = field(4, 16, 16);
        let mut c = Zfp::default();
        c.set_options(&Options::new().with(pressio_core::OPT_ABS, 1e-3f64))
            .unwrap();
        assert_eq!(c.mode(), ZfpMode::FixedAccuracy(1e-3));
        let compressed = c.compress(&input).unwrap();
        let mut out = Data::owned(DType::F64, vec![4, 16, 16]);
        c.decompress(&compressed, &mut out).unwrap();
        assert!(max_err(&input, &out) <= 1e-3);
    }

    #[test]
    fn rate_mode_gives_predictable_size() {
        let input = field(1, 64, 64);
        let mut c = Zfp::default();
        c.set_options(&Options::new().with("zfp:rate", 8.0f64)).unwrap();
        let compressed = c.compress(&input).unwrap();
        // 2-d blocks of 16 values at 8 bits/value = 128 bits each; an input
        // of 64x64 (with the length-1 dim treated as a third dimension of
        // extent 1, padded to 4) has a fixed block count.
        assert!(compressed.size_in_bytes() > 0);
        let mut again = Zfp::default();
        again
            .set_options(&Options::new().with("zfp:rate", 8.0f64))
            .unwrap();
        let compressed2 = again.compress(&input).unwrap();
        assert_eq!(compressed.size_in_bytes(), compressed2.size_in_bytes());
    }

    #[test]
    fn f32_roundtrip_with_ulp_slop() {
        let vals: Vec<f32> = (0..64 * 64).map(|i| (i as f32 * 0.01).sin()).collect();
        let input = Data::from_vec(vals, vec![64, 64]).unwrap();
        let mut c = Zfp::default();
        let tol = 1e-4f64;
        c.set_options(&Options::new().with("zfp:accuracy", tol)).unwrap();
        let compressed = c.compress(&input).unwrap();
        let mut out = Data::owned(DType::F32, vec![64, 64]);
        c.decompress(&compressed, &mut out).unwrap();
        // f32 storage adds at most half an ulp on top of the tolerance.
        assert!(max_err(&input, &out) <= tol + 1e-7);
    }

    #[test]
    fn mode_switching_via_options() {
        let mut c = Zfp::default();
        c.set_options(&Options::new().with("zfp:precision", 20u32))
            .unwrap();
        assert_eq!(c.mode(), ZfpMode::FixedPrecision(20));
        c.set_options(&Options::new().with("zfp:rate", 12.0f64)).unwrap();
        assert_eq!(c.mode(), ZfpMode::FixedRate(12.0));
        let o = c.get_options();
        assert_eq!(
            c.get_configuration().get_as::<String>("zfp:mode").unwrap().unwrap(),
            "rate"
        );
        assert_eq!(o.get_as::<f64>("zfp:rate").unwrap(), Some(12.0));
        // The unset modes are still declared for introspection.
        assert!(o.contains("zfp:precision"));
        assert!(o.contains("zfp:accuracy"));
    }

    #[test]
    fn invalid_options_rejected() {
        let c = Zfp::default();
        assert!(c
            .check_options(&Options::new().with("zfp:rate", 1000.0f64))
            .is_err());
        assert!(c
            .check_options(&Options::new().with("zfp:accuracy", 0.0f64))
            .is_err());
        assert!(c
            .check_options(&Options::new().with("zfp:precision", 0u32))
            .is_err());
        assert!(c
            .check_options(&Options::new().with("zfp:nthreads", 0u32))
            .is_err());
    }

    #[test]
    fn rejects_non_float() {
        let ints = Data::from_vec(vec![1u32, 2, 3, 4], vec![4]).unwrap();
        let mut c = Zfp::default();
        assert!(c.compress(&ints).is_err());
    }

    #[test]
    fn rejects_nan_with_clear_error() {
        let input = Data::from_vec(vec![1.0f64, f64::NAN], vec![2]).unwrap();
        let mut c = Zfp::default();
        let err = c.compress(&input).unwrap_err();
        assert_eq!(err.code(), pressio_core::ErrorCode::Unsupported);
    }

    #[test]
    fn corrupt_stream_errors() {
        let input = field(2, 8, 8);
        let mut c = Zfp::default();
        let compressed = c.compress(&input).unwrap();
        let mut out = Data::owned(DType::F64, vec![2, 8, 8]);
        let mut bad = compressed.as_bytes().to_vec();
        bad[1] ^= 0xFF;
        assert!(c.decompress(&Data::from_bytes(&bad), &mut out).is_err());
        assert!(c
            .decompress(&Data::from_bytes(&bad[..10]), &mut out)
            .is_err());
    }

    #[test]
    fn omp_uses_its_own_prefix() {
        let c = Zfp::omp();
        assert_eq!(c.name(), "zfp_omp");
        let o = c.get_options();
        assert_eq!(o.get_as::<u32>("zfp_omp:nthreads").unwrap(), Some(4));
        assert!(o.contains("zfp_omp:accuracy"));
        let mut c = Zfp::omp();
        c.set_options(&Options::new().with(pressio_core::OPT_NTHREADS, 7u32))
            .unwrap();
        assert_eq!(c.get_options().get_as::<u32>("zfp_omp:nthreads").unwrap(), Some(7));
    }

    #[test]
    fn omp_roundtrip_matches_serial_values() {
        let input = field(9, 21, 13); // partial blocks in every dimension
        for threads in [2u32, 7] {
            let mut serial = Zfp::default();
            serial
                .set_options(&Options::new().with("zfp:accuracy", 1e-4f64))
                .unwrap();
            let mut par = Zfp::omp();
            par.set_options(
                &Options::new()
                    .with("zfp_omp:accuracy", 1e-4f64)
                    .with("zfp_omp:nthreads", threads),
            )
            .unwrap();
            let cs = serial.compress(&input).unwrap();
            let cp = par.compress(&input).unwrap();
            let mut outs = Data::owned(DType::F64, vec![9, 21, 13]);
            let mut outp = Data::owned(DType::F64, vec![9, 21, 13]);
            serial.decompress(&cs, &mut outs).unwrap();
            par.decompress(&cp, &mut outp).unwrap();
            // Chunking never changes decoded values, only stream framing.
            assert_eq!(
                outs.to_f64_vec().unwrap(),
                outp.to_f64_vec().unwrap(),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn serial_and_parallel_streams_cross_decode() {
        let input = field(4, 12, 10);
        let mut par = Zfp::omp();
        par.set_options(&Options::new().with("zfp_omp:nthreads", 3u32))
            .unwrap();
        let cp = par.compress(&input).unwrap();
        // A serial instance decodes the multi-chunk stream...
        let mut serial = Zfp::default();
        let mut out = Data::owned(DType::F64, vec![4, 12, 10]);
        serial.decompress(&cp, &mut out).unwrap();
        assert!(max_err(&input, &out) <= 1e-3);
        // ...and the parallel instance decodes a serial stream.
        let cs = serial.compress(&input).unwrap();
        let mut out2 = Data::owned(DType::F64, vec![4, 12, 10]);
        par.decompress(&cs, &mut out2).unwrap();
        assert!(max_err(&input, &out2) <= 1e-3);
    }

    #[test]
    fn chunk_directory_validates_bit_lengths() {
        let input = field(4, 12, 10);
        let mut par = Zfp::omp();
        par.set_options(&Options::new().with("zfp_omp:nthreads", 3u32))
            .unwrap();
        let cp = par.compress(&input).unwrap();
        // Corrupt the first chunk's declared bit length (directly after the
        // fixed header: magic + dtype + dims(count + 3 x u64) + tag + param
        // + chunk count).
        let mut bad = cp.as_bytes().to_vec();
        let dir = 4 + 1 + (4 + 3 * 8) + 1 + 8 + 4;
        bad[dir] ^= 0xFF;
        let mut out = Data::owned(DType::F64, vec![4, 12, 10]);
        assert!(par.decompress(&Data::from_bytes(&bad), &mut out).is_err());
    }

    #[test]
    fn registered_and_constructible() {
        register_builtins();
        let h = registry().compressor("zfp").unwrap();
        assert_eq!(h.name(), "zfp");
        assert_eq!(h.thread_safety(), ThreadSafety::Multiple);
        let h = registry().compressor("zfp_omp").unwrap();
        assert_eq!(h.name(), "zfp_omp");
        assert_eq!(h.thread_safety(), ThreadSafety::Multiple);
    }
}
