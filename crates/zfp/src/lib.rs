//! # pressio-zfp
//!
//! A ZFP-style transform-based compressor written from scratch in Rust,
//! standing in for ZFP 0.5.5 in this reproduction of the LibPressio paper
//! (see the workspace DESIGN.md substitution table).
//!
//! The pipeline follows the published algorithm: 4^d blocks are aligned to a
//! common exponent (block floating point), decorrelated with a reversible
//! integer lifting transform, reordered by total sequency, mapped to
//! negabinary, and coded one bit plane at a time with unary group testing.
//! Fixed-rate, fixed-precision, and fixed-accuracy modes are supported.
//!
//! Like the real library, the kernel is natively Fortran-ordered; the plugin
//! translates from the interface's uniform C ordering.

#![warn(missing_docs)]

pub mod bitbudget;
pub mod block;
pub mod kernel;
pub mod plugin;

pub use kernel::{compress_f64, decompress_f64, ZfpMode};
pub use plugin::{register_builtins, Zfp};
