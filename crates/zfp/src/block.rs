//! ZFP block machinery: the reversible integer lifting transform, negabinary
//! mapping, sequency reordering, and embedded bit-plane coding.
//!
//! This follows the published ZFP algorithm (Lindstrom, TVCG 2014; the 0.5.x
//! stream layout): blocks of `4^d` integers are decorrelated by a lifted
//! orthogonal transform applied along each dimension, reordered so that
//! low-frequency coefficients come first, mapped to negabinary so magnitude
//! sorts by bit plane, and then coded one bit plane at a time with a unary
//! group test that exploits the coefficients' magnitude ordering.

use crate::bitbudget::{BudgetReader, BudgetWriter};
use pressio_core::Result;

/// Number of bits in the integer representation (`f64` path).
pub const INTPREC: u32 = 64;

/// Forward lifting transform on 4 values at stride `s`.
#[inline]
pub fn fwd_lift(p: &mut [i64], base: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) = (p[base], p[base + s], p[base + 2 * s], p[base + 3 * s]);
    // Non-orthogonal transform: (the ZFP lifting scheme)
    x = x.wrapping_add(w);
    x >>= 1;
    w = w.wrapping_sub(x);
    z = z.wrapping_add(y);
    z >>= 1;
    y = y.wrapping_sub(z);
    x = x.wrapping_add(z);
    x >>= 1;
    z = z.wrapping_sub(x);
    w = w.wrapping_add(y);
    w >>= 1;
    y = y.wrapping_sub(w);
    w = w.wrapping_add(y >> 1);
    y = y.wrapping_sub(w >> 1);
    p[base] = x;
    p[base + s] = y;
    p[base + 2 * s] = z;
    p[base + 3 * s] = w;
}

/// Inverse of [`fwd_lift`].
#[inline]
pub fn inv_lift(p: &mut [i64], base: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) = (p[base], p[base + s], p[base + 2 * s], p[base + 3 * s]);
    y = y.wrapping_add(w >> 1);
    w = w.wrapping_sub(y >> 1);
    y = y.wrapping_add(w);
    w <<= 1;
    w = w.wrapping_sub(y);
    z = z.wrapping_add(x);
    x <<= 1;
    x = x.wrapping_sub(z);
    y = y.wrapping_add(z);
    z <<= 1;
    z = z.wrapping_sub(y);
    w = w.wrapping_add(x);
    x <<= 1;
    x = x.wrapping_sub(w);
    p[base] = x;
    p[base + s] = y;
    p[base + 2 * s] = z;
    p[base + 3 * s] = w;
}

/// Apply the forward transform to a `4^d` block (d = 1, 2, 3).
pub fn fwd_xform(block: &mut [i64], d: usize) {
    match d {
        1 => fwd_lift(block, 0, 1),
        2 => {
            for y in 0..4 {
                fwd_lift(block, 4 * y, 1); // along x
            }
            for x in 0..4 {
                fwd_lift(block, x, 4); // along y
            }
        }
        3 => {
            for z in 0..4 {
                for y in 0..4 {
                    fwd_lift(block, 16 * z + 4 * y, 1); // x
                }
            }
            for z in 0..4 {
                for x in 0..4 {
                    fwd_lift(block, 16 * z + x, 4); // y
                }
            }
            for y in 0..4 {
                for x in 0..4 {
                    fwd_lift(block, 4 * y + x, 16); // z
                }
            }
        }
        _ => unreachable!("block dimensionality must be 1..=3"),
    }
}

/// Apply the inverse transform to a `4^d` block.
pub fn inv_xform(block: &mut [i64], d: usize) {
    match d {
        1 => inv_lift(block, 0, 1),
        2 => {
            for x in 0..4 {
                inv_lift(block, x, 4);
            }
            for y in 0..4 {
                inv_lift(block, 4 * y, 1);
            }
        }
        3 => {
            for y in 0..4 {
                for x in 0..4 {
                    inv_lift(block, 4 * y + x, 16);
                }
            }
            for z in 0..4 {
                for x in 0..4 {
                    inv_lift(block, 16 * z + x, 4);
                }
            }
            for z in 0..4 {
                for y in 0..4 {
                    inv_lift(block, 16 * z + 4 * y, 1);
                }
            }
        }
        _ => unreachable!("block dimensionality must be 1..=3"),
    }
}

/// Two's complement → negabinary.
#[inline]
pub fn int2uint(x: i64) -> u64 {
    const MASK: u64 = 0xAAAA_AAAA_AAAA_AAAA;
    ((x as u64).wrapping_add(MASK)) ^ MASK
}

/// Negabinary → two's complement.
#[inline]
pub fn uint2int(x: u64) -> i64 {
    const MASK: u64 = 0xAAAA_AAAA_AAAA_AAAA;
    (x ^ MASK).wrapping_sub(MASK) as i64
}

/// Sequency-order permutation for a `4^d` block: coefficient index sorted by
/// total frequency (coordinate sum), matching ZFP's ordering in spirit.
pub fn perm(d: usize) -> &'static [usize] {
    use std::sync::OnceLock;
    static P1: OnceLock<Vec<usize>> = OnceLock::new();
    static P2: OnceLock<Vec<usize>> = OnceLock::new();
    static P3: OnceLock<Vec<usize>> = OnceLock::new();
    let build = |d: usize| -> Vec<usize> {
        let n = 1usize << (2 * d);
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by_key(|&i| {
            let x = i & 3;
            let y = (i >> 2) & 3;
            let z = (i >> 4) & 3;
            (x + y + z, i)
        });
        idx
    };
    match d {
        1 => P1.get_or_init(|| build(1)),
        2 => P2.get_or_init(|| build(2)),
        3 => P3.get_or_init(|| build(3)),
        _ => unreachable!("block dimensionality must be 1..=3"),
    }
}

/// Embedded coding of `size <= 64` negabinary coefficients, from bit plane
/// `INTPREC-1` down to `kmin`, within a budget of `maxbits` (ZFP's
/// `encode_ints`). Returns bits written.
pub fn encode_ints(
    s: &mut BudgetWriter<'_>,
    maxbits: u64,
    maxprec: u32,
    data: &[u64],
) -> u64 {
    let size = data.len();
    debug_assert!(size <= 64);
    let kmin = INTPREC.saturating_sub(maxprec);
    let mut bits = maxbits;
    let mut n: usize = 0;
    let mut k = INTPREC;
    while bits > 0 && k > kmin {
        k -= 1;
        // Extract bit plane k.
        let mut x: u64 = 0;
        for (i, v) in data.iter().enumerate() {
            x += ((v >> k) & 1) << i;
        }
        // Verbatim part: the first n coefficients have been group-tested
        // significant in earlier planes.
        let m = (n as u64).min(bits);
        bits -= m;
        s.write_bits(x, m as u32);
        x = if m >= 64 { 0 } else { x >> m };
        // Unary run-length encoding of the remainder.
        loop {
            if !(n < size && bits > 0) {
                break;
            }
            bits -= 1;
            let significant = x != 0;
            s.write_bit(significant);
            if !significant {
                break;
            }
            loop {
                if !(n < size - 1 && bits > 0) {
                    break;
                }
                bits -= 1;
                let one = x & 1 != 0;
                s.write_bit(one);
                if one {
                    break;
                }
                x >>= 1;
                n += 1;
            }
            x >>= 1;
            n += 1;
        }
    }
    maxbits - bits
}

/// Inverse of [`encode_ints`]. Returns bits read.
pub fn decode_ints(
    s: &mut BudgetReader<'_, '_>,
    maxbits: u64,
    maxprec: u32,
    data: &mut [u64],
) -> Result<u64> {
    let size = data.len();
    debug_assert!(size <= 64);
    for v in data.iter_mut() {
        *v = 0;
    }
    let kmin = INTPREC.saturating_sub(maxprec);
    let mut bits = maxbits;
    let mut n: usize = 0;
    let mut k = INTPREC;
    while bits > 0 && k > kmin {
        k -= 1;
        let m = (n as u64).min(bits);
        bits -= m;
        let mut x = s.read_bits(m as u32)?;
        loop {
            if !(n < size && bits > 0) {
                break;
            }
            bits -= 1;
            if !s.read_bit()? {
                break;
            }
            loop {
                if !(n < size - 1 && bits > 0) {
                    break;
                }
                bits -= 1;
                if s.read_bit()? {
                    break;
                }
                n += 1;
            }
            x += 1u64 << n;
            n += 1;
        }
        // Deposit plane k.
        let mut xx = x;
        let mut i = 0usize;
        while xx != 0 {
            data[i] += (xx & 1) << k;
            xx >>= 1;
            i += 1;
        }
    }
    Ok(maxbits - bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitbudget::{BudgetReader, BudgetWriter};
    use pressio_codecs::bitstream::{BitReader, BitWriter};

    fn lift_roundtrip(vals: [i64; 4]) {
        let mut p = vals.to_vec();
        fwd_lift(&mut p, 0, 1);
        inv_lift(&mut p, 0, 1);
        // The ZFP lifting scheme uses right shifts, so it is *near*-exact:
        // inverse reconstruction may differ by a few units in the last place
        // (this is why full-precision ZFP is near-lossless, not lossless).
        for (a, b) in p.iter().zip(vals.iter()) {
            assert!((a - b).abs() <= 4, "lift roundtrip for {vals:?}: {p:?}");
        }
    }

    #[test]
    fn lift_is_near_invertible() {
        lift_roundtrip([0, 0, 0, 0]);
        lift_roundtrip([1, 2, 3, 4]);
        lift_roundtrip([-100, 50, -25, 12]);
        lift_roundtrip([i64::MAX / 4, i64::MIN / 4, 12345, -54321]);
        // Deterministic pseudo-random cases.
        let mut st = 0xDEADBEEFu64;
        for _ in 0..500 {
            let mut v = [0i64; 4];
            for e in v.iter_mut() {
                st ^= st << 13;
                st ^= st >> 7;
                st ^= st << 17;
                *e = (st as i64) >> 3; // keep headroom like quantized values
            }
            lift_roundtrip(v);
        }
    }

    #[test]
    fn xform_roundtrip_all_dims() {
        let mut st = 0x12345u64;
        for d in 1..=3usize {
            let n = 1usize << (2 * d);
            let mut block: Vec<i64> = (0..n)
                .map(|_| {
                    st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (st as i64) >> 4
                })
                .collect();
            let orig = block.clone();
            fwd_xform(&mut block, d);
            assert_ne!(block, orig, "transform should change data (d={d})");
            inv_xform(&mut block, d);
            for (a, b) in block.iter().zip(orig.iter()) {
                // Error compounds over d lifting passes but stays tiny
                // relative to the quantized magnitudes (~2^60).
                assert!((a - b).abs() <= 32, "xform roundtrip d={d}");
            }
        }
    }

    #[test]
    fn negabinary_roundtrip_and_magnitude() {
        for x in [0i64, 1, -1, 2, -2, 1000, -1000, i64::MAX / 2, i64::MIN / 2] {
            assert_eq!(uint2int(int2uint(x)), x);
        }
        // Negabinary of small magnitudes has small leading bits.
        assert!(int2uint(0) < int2uint(100));
        assert!(int2uint(1).leading_zeros() > int2uint(1 << 40).leading_zeros());
    }

    #[test]
    fn perm_is_a_permutation_starting_at_dc() {
        for d in 1..=3usize {
            let p = perm(d);
            let n = 1usize << (2 * d);
            assert_eq!(p.len(), n);
            let mut seen = vec![false; n];
            for &i in p {
                assert!(!seen[i]);
                seen[i] = true;
            }
            assert_eq!(p[0], 0, "DC coefficient first (d={d})");
        }
    }

    #[test]
    fn encode_decode_ints_exact_with_full_budget() {
        let mut st = 77u64;
        for d in 1..=3usize {
            let size = 1usize << (2 * d);
            let data: Vec<u64> = (0..size)
                .map(|i| {
                    st = st.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                    // Roughly descending magnitudes like transformed blocks.
                    st >> (i % 32)
                })
                .collect();
            let mut w = BitWriter::new();
            let mut bw = BudgetWriter::new(&mut w);
            let written = encode_ints(&mut bw, u64::MAX / 2, INTPREC, &data);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            let mut br = BudgetReader::new(&mut r);
            let mut out = vec![0u64; size];
            let read = decode_ints(&mut br, u64::MAX / 2, INTPREC, &mut out).unwrap();
            assert_eq!(out, data, "d={d}");
            assert_eq!(written, read);
        }
    }

    #[test]
    fn truncated_budget_preserves_high_planes() {
        // With a tight budget the decoder must still recover the most
        // significant bit planes that fit.
        let data: Vec<u64> = (0..16).map(|i| (i as u64) << 40).collect();
        let mut w = BitWriter::new();
        let mut bw = BudgetWriter::new(&mut w);
        let budget = 200u64;
        let written = encode_ints(&mut bw, budget, INTPREC, &data);
        assert!(written <= budget);
        // Pad to the full budget like fixed-rate mode does.
        for _ in written..budget {
            bw.write_bit(false);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut br = BudgetReader::new(&mut r);
        let mut out = vec![0u64; 16];
        decode_ints(&mut br, budget, INTPREC, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            // Reconstruction must agree on the top bit planes.
            assert_eq!(a >> 45, b >> 45, "{a:#x} vs {b:#x}");
        }
    }

    #[test]
    fn limited_precision_drops_low_planes_only() {
        let data: Vec<u64> = (0..4).map(|i| 0x0123_4567_89AB_CDEF ^ (i as u64)).collect();
        let mut w = BitWriter::new();
        let mut bw = BudgetWriter::new(&mut w);
        encode_ints(&mut bw, u64::MAX / 2, 16, &data);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut br = BudgetReader::new(&mut r);
        let mut out = vec![0u64; 4];
        decode_ints(&mut br, u64::MAX / 2, 16, &mut out).unwrap();
        for (a, b) in data.iter().zip(&out) {
            assert_eq!(a >> 48, b >> 48);
            assert_eq!(b & ((1 << 48) - 1), 0, "low planes must be zero");
        }
    }
}
