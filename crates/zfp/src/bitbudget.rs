//! Thin bit-stream adapters for the block coder.
//!
//! The embedded coder in [`crate::block`] tracks its own bit budget (like
//! ZFP's `encode_ints`); these wrappers only delegate to the shared
//! [`pressio_codecs::bitstream`] primitives while keeping the coder's
//! signatures explicit about mutation of an underlying stream.

use pressio_codecs::bitstream::{BitReader, BitWriter};
use pressio_core::Result;

/// A mutable borrow of a [`BitWriter`] used by one block encoding.
pub struct BudgetWriter<'a> {
    inner: &'a mut BitWriter,
}

impl<'a> BudgetWriter<'a> {
    /// Wrap a writer.
    pub fn new(inner: &'a mut BitWriter) -> Self {
        BudgetWriter { inner }
    }

    /// Append one bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.inner.write_bit(bit);
    }

    /// Append the low `n` bits of `v`.
    #[inline]
    pub fn write_bits(&mut self, v: u64, n: u32) {
        self.inner.write_bits(v, n);
    }

    /// Total bits in the underlying stream.
    pub fn len_bits(&self) -> u64 {
        self.inner.len_bits()
    }
}

/// A mutable borrow of a [`BitReader`] used by one block decoding.
pub struct BudgetReader<'a, 'b> {
    inner: &'a mut BitReader<'b>,
}

impl<'a, 'b> BudgetReader<'a, 'b> {
    /// Wrap a reader.
    pub fn new(inner: &'a mut BitReader<'b>) -> Self {
        BudgetReader { inner }
    }

    /// Read one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool> {
        self.inner.read_bit()
    }

    /// Read `n` bits.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64> {
        self.inner.read_bits(n)
    }

    /// Skip `n` bits (fixed-rate block padding).
    pub fn skip(&mut self, n: u64) -> Result<()> {
        self.inner.skip(n)
    }
}
