//! # pressio-tthresh
//!
//! A tthresh-style SVD-based lossy compressor (the glossary's "principles
//! of singular value decomposition" entry): truncated SVD by power
//! iteration with deflation, quantized factors, and a relative
//! Frobenius-norm accuracy target. Registered as `tthresh`.
//!
//! Simplification vs. the real tool (documented in DESIGN.md): inputs of
//! more than two dimensions are unfolded along the slowest axis instead of
//! a full Tucker/HOSVD decomposition; the interface surface (options,
//! introspection, not-error-bounded advertisement) is what the reproduction
//! exercises.

#![warn(missing_docs)]

pub mod plugin;
pub mod svd;

pub use plugin::{register_builtins, Tthresh};
pub use svd::{frobenius, reconstruct, truncated_svd, Triplet};
