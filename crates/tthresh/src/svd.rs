//! Truncated SVD by power iteration with deflation — the linear-algebra
//! substrate of the tthresh-style compressor, written from scratch.
//!
//! For an `m × n` matrix `A`, each singular triplet is found by iterating
//! `v ← normalize(Aᵀ(A v))` (never forming `AᵀA`), extracting
//! `σ = |A v|`, `u = A v / σ`, then deflating `A ← A − σ u vᵀ`. Iteration
//! stops when the accumulated energy reaches the requested fraction of
//! `‖A‖²_F` or the rank cap is hit.

/// One singular triplet.
#[derive(Debug, Clone)]
pub struct Triplet {
    /// Singular value.
    pub sigma: f64,
    /// Left singular vector (length m).
    pub u: Vec<f64>,
    /// Right singular vector (length n).
    pub v: Vec<f64>,
}

fn matvec(a: &[f64], m: usize, n: usize, x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(out.len(), m);
    for (i, o) in out.iter_mut().enumerate() {
        let row = &a[i * n..(i + 1) * n];
        *o = row.iter().zip(x).map(|(r, xi)| r * xi).sum();
    }
}

fn matvec_t(a: &[f64], m: usize, n: usize, x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(x.len(), m);
    debug_assert_eq!(out.len(), n);
    out.fill(0.0);
    for i in 0..m {
        let row = &a[i * n..(i + 1) * n];
        let xi = x[i];
        for (o, r) in out.iter_mut().zip(row) {
            *o += r * xi;
        }
    }
}

fn norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Frobenius norm of a matrix stored row-major.
pub fn frobenius(a: &[f64]) -> f64 {
    norm(a)
}

/// Compute the leading singular triplets of `a` (row-major `m × n`) until
/// the captured energy reaches `energy_fraction` of `‖A‖²_F` or `max_rank`
/// triplets have been extracted. Returns the triplets and the residual
/// Frobenius norm.
pub fn truncated_svd(
    a: &[f64],
    m: usize,
    n: usize,
    energy_fraction: f64,
    max_rank: usize,
) -> (Vec<Triplet>, f64) {
    debug_assert_eq!(a.len(), m * n);
    let total_energy: f64 = a.iter().map(|v| v * v).sum();
    if total_energy == 0.0 {
        return (Vec::new(), 0.0);
    }
    let target_residual = total_energy * (1.0 - energy_fraction).max(0.0);
    let mut work = a.to_vec();
    let mut triplets = Vec::new();
    let mut residual_energy = total_energy;
    let mut tmp_m = vec![0.0; m];
    let mut v = vec![0.0; n];
    let cap = max_rank.min(m.min(n));

    while triplets.len() < cap && residual_energy > target_residual.max(total_energy * 1e-24) {
        // Deterministic varied start vector to avoid orthogonal-start stalls.
        for (j, vj) in v.iter_mut().enumerate() {
            *vj = 1.0 + ((j * 2654435761usize.wrapping_add(triplets.len() * 97)) % 1000) as f64
                / 1000.0;
        }
        let nv = norm(&v);
        for vj in v.iter_mut() {
            *vj /= nv;
        }
        let mut sigma = 0.0f64;
        for _ in 0..60 {
            matvec(&work, m, n, &v, &mut tmp_m);
            matvec_t(&work, m, n, &tmp_m, &mut v);
            let nv = norm(&v);
            if nv < 1e-300 {
                break;
            }
            for vj in v.iter_mut() {
                *vj /= nv;
            }
            let new_sigma = nv.sqrt();
            if (new_sigma - sigma).abs() <= 1e-12 * new_sigma.max(1e-300) {
                sigma = new_sigma;
                break;
            }
            sigma = new_sigma;
        }
        if sigma < 1e-300 {
            break;
        }
        matvec(&work, m, n, &v, &mut tmp_m);
        let sig = norm(&tmp_m);
        if sig < 1e-300 {
            break;
        }
        let u: Vec<f64> = tmp_m.iter().map(|x| x / sig).collect();
        // Deflate.
        for i in 0..m {
            let ui = u[i] * sig;
            let row = &mut work[i * n..(i + 1) * n];
            for (r, vj) in row.iter_mut().zip(&v) {
                *r -= ui * vj;
            }
        }
        residual_energy = work.iter().map(|x| x * x).sum();
        triplets.push(Triplet {
            sigma: sig,
            u,
            v: v.clone(),
        });
    }
    (triplets, residual_energy.max(0.0).sqrt())
}

/// Reconstruct `U S Vᵀ` back into a row-major `m × n` matrix.
pub fn reconstruct(triplets: &[Triplet], m: usize, n: usize) -> Vec<f64> {
    let mut out = vec![0.0; m * n];
    for t in triplets {
        for i in 0..m {
            let ui = t.u[i] * t.sigma;
            let row = &mut out[i * n..(i + 1) * n];
            for (o, vj) in row.iter_mut().zip(&t.v) {
                *o += ui * vj;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank_matrix(m: usize, n: usize, rank: usize) -> Vec<f64> {
        // Sum of `rank` outer products with distinct scales.
        let mut a = vec![0.0; m * n];
        for r in 0..rank {
            let scale = 10.0 / (r + 1) as f64;
            for i in 0..m {
                let ui = ((i * (r + 3)) as f64 * 0.37).sin();
                for j in 0..n {
                    let vj = ((j * (r + 5)) as f64 * 0.23).cos();
                    a[i * n + j] += scale * ui * vj;
                }
            }
        }
        a
    }

    #[test]
    fn exact_rank_recovery() {
        let (m, n, rank) = (24, 18, 3);
        let a = rank_matrix(m, n, rank);
        let (triplets, residual) = truncated_svd(&a, m, n, 1.0 - 1e-14, 10);
        assert!(triplets.len() <= rank + 1, "found {}", triplets.len());
        assert!(residual <= 1e-6 * frobenius(&a), "residual {residual}");
        let back = reconstruct(&triplets, m, n);
        let err: f64 = a
            .iter()
            .zip(&back)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!(err <= 1e-6 * frobenius(&a));
    }

    #[test]
    fn singular_values_are_decreasing() {
        let a = rank_matrix(30, 30, 8);
        let (triplets, _) = truncated_svd(&a, 30, 30, 0.9999, 8);
        for w in triplets.windows(2) {
            assert!(w[0].sigma >= w[1].sigma * 0.999, "{} then {}", w[0].sigma, w[1].sigma);
        }
    }

    #[test]
    fn singular_vectors_are_unit_norm() {
        let a = rank_matrix(20, 25, 4);
        let (triplets, _) = truncated_svd(&a, 20, 25, 0.999, 6);
        for t in &triplets {
            assert!((norm(&t.u) - 1.0).abs() < 1e-9);
            assert!((norm(&t.v) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn energy_fraction_controls_residual() {
        let a = rank_matrix(32, 32, 16);
        let total = frobenius(&a);
        let (_, loose) = truncated_svd(&a, 32, 32, 0.90, 32);
        let (_, tight) = truncated_svd(&a, 32, 32, 0.9999, 32);
        assert!(tight < loose);
        assert!(loose <= total * 0.32 + 1e-12, "loose {loose} vs {total}");
    }

    #[test]
    fn zero_matrix_is_rank_zero() {
        let a = vec![0.0; 12 * 9];
        let (triplets, residual) = truncated_svd(&a, 12, 9, 0.999, 5);
        assert!(triplets.is_empty());
        assert_eq!(residual, 0.0);
    }

    #[test]
    fn rank_cap_respected() {
        let a = rank_matrix(20, 20, 10);
        let (triplets, _) = truncated_svd(&a, 20, 20, 1.0, 3);
        assert_eq!(triplets.len(), 3);
    }
}
