//! The `tthresh` compressor plugin: truncated SVD with quantized factors.
//!
//! Like real tthresh, the accuracy target is a *relative Frobenius-norm*
//! error (`tthresh:target_eps`, the `-e` flag), not a point-wise L∞ bound —
//! `get_configuration` advertises `error_bounded = false` accordingly, and
//! generic tools can discover that by introspection. Inputs of more than
//! two dimensions are unfolded along the slowest axis (a simplification of
//! tthresh's full Tucker decomposition, documented in DESIGN.md).

use pressio_codecs::{deflate, varint};
use pressio_core::{
    registry, require_dtype, ByteReader, ByteWriter, Compressor, DType, Data, Error, Options,
    Result, ThreadSafety, Version,
};

use crate::svd::{reconstruct, truncated_svd, Triplet};

/// Stream envelope magic ("TTHR").
const MAGIC: u32 = 0x5454_4852;
/// Factor-quantization resolution relative to each vector's max magnitude.
const FACTOR_QUANT: f64 = 1.0 / (1 << 15) as f64;

/// The tthresh-style SVD compressor.
#[derive(Debug, Clone)]
pub struct Tthresh {
    /// Relative Frobenius error target in (0, 1).
    target_eps: f64,
    /// Hard cap on stored rank.
    max_rank: u32,
}

impl Default for Tthresh {
    fn default() -> Self {
        Tthresh {
            target_eps: 1e-3,
            max_rank: 512,
        }
    }
}

fn quantize_vector(v: &[f64], out: &mut Vec<u8>) {
    let max = v.iter().fold(0.0f64, |m, x| m.max(x.abs())).max(1e-300);
    let step = max * FACTOR_QUANT;
    out.extend_from_slice(&max.to_le_bytes());
    for &x in v {
        varint::write_u64(out, varint::zigzag((x / step).round() as i64));
    }
}

fn dequantize_vector(bytes: &[u8], pos: &mut usize, len: usize) -> Result<Vec<f64>> {
    let Some(max) = bytes.get(*pos..).and_then(pressio_core::wire::f64_le) else {
        return Err(Error::corrupt("tthresh factor header truncated"));
    };
    *pos += 8;
    if !(max.is_finite() && max > 0.0) {
        return Err(Error::corrupt("tthresh factor scale invalid"));
    }
    let step = max * FACTOR_QUANT;
    let mut v = Vec::with_capacity(len);
    for _ in 0..len {
        let q = varint::unzigzag(varint::read_u64(bytes, pos)?);
        v.push(q as f64 * step);
    }
    Ok(v)
}

/// Unfold input dims into a near-square (m, n) matrix shape.
fn matrix_shape(dims: &[usize]) -> (usize, usize) {
    match dims.len() {
        0 => (1, 1),
        1 => {
            // Fold a vector into a near-square matrix for low-rank structure.
            let n = dims[0];
            let mut cols = (n as f64).sqrt() as usize;
            while cols > 1 && !n.is_multiple_of(cols) {
                cols -= 1;
            }
            (n / cols.max(1), cols.max(1))
        }
        _ => {
            let n = dims.last().copied().unwrap_or(1);
            (dims[..dims.len() - 1].iter().product(), n)
        }
    }
}

impl Compressor for Tthresh {
    fn name(&self) -> &str {
        "tthresh"
    }

    fn version(&self) -> Version {
        Version::new(0, 2, 0)
    }

    fn thread_safety(&self) -> ThreadSafety {
        ThreadSafety::Multiple
    }

    fn get_options(&self) -> Options {
        Options::new()
            .with("tthresh:target_eps", self.target_eps)
            .with("tthresh:max_rank", self.max_rank)
    }

    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(e) = options.get_as::<f64>("tthresh:target_eps")? {
            if !(e.is_finite() && (0.0..1.0).contains(&e) && e > 0.0) {
                return Err(Error::invalid_argument(format!(
                    "target_eps must be in (0, 1), got {e}"
                ))
                .in_plugin("tthresh"));
            }
            self.target_eps = e;
        }
        if let Some(r) = options.get_as::<u32>("tthresh:max_rank")? {
            if r == 0 {
                return Err(Error::invalid_argument("max_rank must be >= 1").in_plugin("tthresh"));
            }
            self.max_rank = r;
        }
        Ok(())
    }

    fn check_options(&self, options: &Options) -> Result<()> {
        let mut probe = self.clone();
        probe.set_options(options)
    }

    fn get_configuration(&self) -> Options {
        let mut o = pressio_core::base_configuration(self);
        o.set("tthresh:pressio:lossless", false);
        o.set("tthresh:pressio:lossy", true);
        // Frobenius-norm target, not a point-wise guarantee.
        o.set("tthresh:pressio:error_bounded", false);
        o
    }

    fn get_documentation(&self) -> Options {
        Options::new()
            .with(
                "tthresh",
                "SVD-based lossy compressor (tthresh style): truncated singular value \
                 decomposition with quantized factors; targets a relative Frobenius error",
            )
            .with("tthresh:target_eps", "relative Frobenius-norm error target in (0, 1)")
            .with("tthresh:max_rank", "hard cap on the stored rank")
    }

    fn compress(&mut self, input: &Data) -> Result<Data> {
        require_dtype("tthresh", input, &[DType::F32, DType::F64])?;
        let values = input.to_f64_vec()?;
        if values.iter().any(|v| !v.is_finite()) {
            return Err(Error::unsupported(
                "tthresh cannot represent non-finite values; mask or replace them first",
            )
            .in_plugin("tthresh"));
        }
        let (m, n) = matrix_shape(input.dims());
        if m * n != values.len() {
            return Err(Error::internal("unfolding mismatch").in_plugin("tthresh"));
        }
        // Target slightly tighter than requested to leave headroom for the
        // factor quantization noise.
        let eps = self.target_eps * 0.8;
        let energy_fraction = 1.0 - eps * eps;
        let (triplets, _residual) =
            truncated_svd(&values, m, n, energy_fraction, self.max_rank as usize);

        let mut payload = Vec::new();
        for t in &triplets {
            payload.extend_from_slice(&t.sigma.to_le_bytes());
            quantize_vector(&t.u, &mut payload);
            quantize_vector(&t.v, &mut payload);
        }
        let packed = deflate::compress(&payload)?;
        let mut w = ByteWriter::with_capacity(packed.len() + 64);
        w.put_u32(MAGIC);
        w.put_dtype(input.dtype());
        w.put_dims(input.dims());
        w.put_u64(m as u64);
        w.put_u64(n as u64);
        w.put_u32(triplets.len() as u32);
        w.put_section(&packed);
        Ok(Data::from_bytes(&w.into_vec()))
    }

    fn decompress(&mut self, compressed: &Data, output: &mut Data) -> Result<()> {
        let mut r = ByteReader::new(compressed.as_bytes());
        if r.get_u32()? != MAGIC {
            return Err(Error::corrupt("bad tthresh envelope magic").in_plugin("tthresh"));
        }
        let dtype = r.get_dtype()?;
        let dims = r.get_dims()?;
        pressio_core::checked_geometry(dtype, &dims).map_err(|e| e.in_plugin("tthresh"))?;
        let m = r.get_len()?;
        let n = r.get_len()?;
        let rank = r.get_count()?;
        let total: usize = dims.iter().product();
        if m.checked_mul(n) != Some(total) || rank > m.min(n).max(1) {
            return Err(Error::corrupt("tthresh geometry inconsistent").in_plugin("tthresh"));
        }
        let payload = deflate::decompress(r.get_section()?)?;
        let mut pos = 0usize;
        let mut triplets = Vec::with_capacity(rank);
        for _ in 0..rank {
            let Some(sigma) = payload.get(pos..).and_then(pressio_core::wire::f64_le) else {
                return Err(Error::corrupt("tthresh sigma truncated"));
            };
            pos += 8;
            if !(sigma.is_finite() && sigma >= 0.0) {
                return Err(Error::corrupt("tthresh sigma invalid"));
            }
            let u = dequantize_vector(&payload, &mut pos, m)?;
            let v = dequantize_vector(&payload, &mut pos, n)?;
            triplets.push(Triplet { sigma, u, v });
        }
        let values = reconstruct(&triplets, m, n);
        if output.dtype() != dtype {
            return Err(Error::invalid_argument(format!(
                "output dtype {} does not match stream dtype {dtype}",
                output.dtype()
            ))
            .in_plugin("tthresh"));
        }
        if output.num_elements() != total {
            *output = Data::owned(dtype, dims.clone());
        } else if output.dims() != dims {
            output.reshape(dims.clone())?;
        }
        match dtype {
            DType::F32 => {
                let out = output.as_mut_slice::<f32>()?;
                for (o, v) in out.iter_mut().zip(&values) {
                    *o = *v as f32;
                }
            }
            _ => output.as_mut_slice::<f64>()?.copy_from_slice(&values),
        }
        Ok(())
    }

    fn clone_compressor(&self) -> Box<dyn Compressor> {
        Box::new(self.clone())
    }
}

/// Register the `tthresh` plugin.
pub fn register_builtins() {
    registry().register_compressor("tthresh", || Box::new(Tthresh::default()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svd::frobenius;

    fn low_rank_field(m: usize, n: usize) -> Data {
        // Separable (rank ~3) field: SVD's best case.
        let mut vals = Vec::with_capacity(m * n);
        for i in 0..m {
            for j in 0..n {
                vals.push(
                    (i as f64 * 0.1).sin() * (j as f64 * 0.07).cos() * 10.0
                        + (i as f64 * 0.02).cos() * 2.0
                        + (j as f64 * 0.03).sin(),
                );
            }
        }
        Data::from_vec(vals, vec![m, n]).unwrap()
    }

    fn rel_frobenius_err(a: &Data, b: &Data) -> f64 {
        let x = a.to_f64_vec().unwrap();
        let y = b.to_f64_vec().unwrap();
        let diff: Vec<f64> = x.iter().zip(&y).map(|(p, q)| p - q).collect();
        frobenius(&diff) / frobenius(&x)
    }

    #[test]
    fn frobenius_target_met_on_low_rank_data() {
        let input = low_rank_field(48, 40);
        for eps in [1e-1, 1e-2, 1e-3] {
            let mut c = Tthresh::default();
            c.set_options(&Options::new().with("tthresh:target_eps", eps))
                .unwrap();
            let compressed = c.compress(&input).unwrap();
            let mut out = Data::owned(DType::F64, vec![48, 40]);
            c.decompress(&compressed, &mut out).unwrap();
            let err = rel_frobenius_err(&input, &out);
            assert!(err <= eps, "eps {eps}: rel frobenius err {err}");
        }
    }

    #[test]
    fn low_rank_data_compresses_strongly() {
        let input = low_rank_field(96, 96);
        let mut c = Tthresh::default();
        c.set_options(&Options::new().with("tthresh:target_eps", 1e-3f64))
            .unwrap();
        let compressed = c.compress(&input).unwrap();
        let ratio = input.size_in_bytes() as f64 / compressed.size_in_bytes() as f64;
        assert!(ratio > 8.0, "ratio {ratio:.2}");
    }

    #[test]
    fn rank_cap_limits_quality_and_size() {
        let input = low_rank_field(64, 64);
        let mut capped = Tthresh::default();
        capped
            .set_options(
                &Options::new()
                    .with("tthresh:target_eps", 1e-6f64)
                    .with("tthresh:max_rank", 1u32),
            )
            .unwrap();
        let small = capped.compress(&input).unwrap();
        let mut full = Tthresh::default();
        full.set_options(&Options::new().with("tthresh:target_eps", 1e-6f64))
            .unwrap();
        let big = full.compress(&input).unwrap();
        assert!(small.size_in_bytes() < big.size_in_bytes());
    }

    #[test]
    fn introspection_reports_not_error_bounded() {
        let c = Tthresh::default();
        let cfg = c.get_configuration();
        assert_eq!(
            cfg.get_as::<bool>("tthresh:pressio:error_bounded").unwrap(),
            Some(false)
        );
    }

    #[test]
    fn invalid_options_rejected() {
        let c = Tthresh::default();
        assert!(c
            .check_options(&Options::new().with("tthresh:target_eps", 1.5f64))
            .is_err());
        assert!(c
            .check_options(&Options::new().with("tthresh:target_eps", 0.0f64))
            .is_err());
        assert!(c
            .check_options(&Options::new().with("tthresh:max_rank", 0u32))
            .is_err());
    }

    #[test]
    fn one_dimensional_input_folds() {
        let vals: Vec<f64> = (0..900).map(|i| (i as f64 * 0.05).sin()).collect();
        let input = Data::from_vec(vals, vec![900]).unwrap();
        let mut c = Tthresh::default();
        c.set_options(&Options::new().with("tthresh:target_eps", 1e-2f64))
            .unwrap();
        let compressed = c.compress(&input).unwrap();
        let mut out = Data::owned(DType::F64, vec![900]);
        c.decompress(&compressed, &mut out).unwrap();
        assert!(rel_frobenius_err(&input, &out) <= 1e-2);
    }

    #[test]
    fn nan_rejected_and_corrupt_streams_error() {
        let mut c = Tthresh::default();
        let bad = Data::from_vec(vec![1.0f64, f64::NAN], vec![2]).unwrap();
        assert!(c.compress(&bad).is_err());

        let input = low_rank_field(16, 16);
        let compressed = c.compress(&input).unwrap();
        let bytes = compressed.as_bytes();
        let mut out = Data::owned(DType::F64, vec![16, 16]);
        for cut in (0..bytes.len()).step_by(9) {
            let _ = c.decompress(&Data::from_bytes(&bytes[..cut]), &mut out);
        }
        let mut flipped = bytes.to_vec();
        flipped[8] ^= 0x42;
        let _ = c.decompress(&Data::from_bytes(&flipped), &mut out);
    }

    #[test]
    fn registered() {
        register_builtins();
        assert!(registry().has_compressor("tthresh"));
    }
}
