//! Library side of the pressio tools.
//!
//! * [`contract`] — the live plugin-contract checker: iterates the global
//!   registry and verifies that every registered compressor, metrics, and IO
//!   plugin honors the LibPressio interface contract (introspection
//!   idempotency, unknown-key rejection, documentation consistency, and
//!   metadata-preserving round trips).
//!
//! * [`lint`] — the `pressio-lint` static-analysis engine: a
//!   dependency-light source scanner enforcing workspace hygiene rules
//!   (no panics in library code, `// SAFETY:` comments on `unsafe`,
//!   complete plugin trait surfaces, and forbidden debug/wire patterns).
//!
//! * [`fuzz`] — the `pressio fuzz-decode` corruption harness: feeds every
//!   registered compressor's decompressor deterministically damaged streams
//!   (bit flips, truncation, extension, zeroed regions) and fails on
//!   panics, hangs, or a `guard` frame accepting damage.
//!
//! * [`chaos`] — the `pressio chaos` fault-injection sweep: arms the
//!   execution engine's seeded chaos hooks (`--features chaos`) and drives
//!   every pooled plugin plus the guard/parallel meta stacks through
//!   faulted round trips, asserting the pool self-heals, stops are
//!   structured errors, and a faulted handle never corrupts later runs.
//!
//! * [`bench`] — the `pressio bench` overhead harness: measures native
//!   (static-dispatch) versus through-interface compression time per plugin
//!   and serial versus pooled (`zfp`/`zfp_omp`, `sz`/`sz_omp`) wall-clock,
//!   emitting schema-validated `BENCH_overhead.json`.
//!
//! * [`trace_cmd`] — the `pressio trace` observability harness: runs a
//!   round trip on a datagen field with the `pressio_core::trace` span
//!   collector enabled and reports the per-stage span tree, with a
//!   chrome-trace JSON export and a `--check` well-nestedness validation.
//!
//! All are also exposed as binaries: `pressio contract`,
//! `pressio fuzz-decode`, and `pressio-lint`. Third-party plugin authors
//! can run the contract checker and fuzzer against their own plugins by
//! registering them and calling [`contract::check_all`] /
//! [`fuzz::fuzz_all`].

pub mod bench;
pub mod chaos;
pub mod contract;
pub mod fuzz;
pub mod lint;
pub mod serve;
pub mod trace_cmd;
