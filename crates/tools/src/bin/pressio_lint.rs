//! `pressio-lint` — the workspace static-analysis pass.
//!
//! ```text
//! pressio-lint [--root <dir>] [--allow <file>] [--show-allowed] [--strict-allowlist]
//! pressio-lint --list-rules
//! pressio-lint --explain <rule>
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or IO error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pressio_tools::lint::{self, Allowlist, ALL_RULES};

const USAGE: &str = "usage: pressio-lint [--root <dir>] [--allow <file>] [--show-allowed] [--strict-allowlist]
       pressio-lint --list-rules
       pressio-lint --explain <rule>

Scans the workspace's library sources (src/ and crates/*/src/) for contract
violations rustc cannot express. Findings can be waived via an allowlist
(default: <root>/lint-allow.txt), one `rule file substring  # reason` per
line. --strict-allowlist also fails on stale allowlist entries.";

/// Walk upward from `start` to the directory whose Cargo.toml declares the
/// workspace.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn run() -> Result<bool, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut allow_path: Option<PathBuf> = None;
    let mut show_allowed = false;
    let mut strict_allowlist = false;

    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--list-rules" => {
                for r in ALL_RULES {
                    println!("{r}");
                }
                return Ok(true);
            }
            "--explain" => {
                let rule = argv
                    .get(i + 1)
                    .ok_or_else(|| "missing rule after --explain".to_string())?;
                match lint::explain(rule) {
                    Some(text) => {
                        println!("{text}");
                        return Ok(true);
                    }
                    None => {
                        return Err(format!(
                            "unknown rule {rule:?}; known rules: {}",
                            ALL_RULES.join(", ")
                        ))
                    }
                }
            }
            "--root" => {
                root = Some(PathBuf::from(
                    argv.get(i + 1).ok_or_else(|| "missing dir after --root".to_string())?,
                ));
                i += 2;
            }
            "--allow" => {
                allow_path = Some(PathBuf::from(
                    argv.get(i + 1)
                        .ok_or_else(|| "missing file after --allow".to_string())?,
                ));
                i += 2;
            }
            "--show-allowed" => {
                show_allowed = true;
                i += 1;
            }
            "--strict-allowlist" => {
                strict_allowlist = true;
                i += 1;
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_workspace_root(&cwd)
                .ok_or_else(|| "no workspace root found; pass --root".to_string())?
        }
    };

    let allow_path = allow_path.unwrap_or_else(|| root.join("lint-allow.txt"));
    let allowlist = if allow_path.is_file() {
        Allowlist::parse(
            &std::fs::read_to_string(&allow_path)
                .map_err(|e| format!("{}: {e}", allow_path.display()))?,
        )
    } else {
        Allowlist::default()
    };

    let report = lint::run(&root, &allowlist).map_err(|e| e.to_string())?;

    let mut clean = true;
    for f in &report.findings {
        if f.allowed {
            if show_allowed {
                println!("{f}");
            }
        } else {
            println!("{f}");
            clean = false;
        }
    }
    if !report.unused_allows.is_empty() {
        for stale in &report.unused_allows {
            eprintln!("warning: unused allowlist entry: {stale}");
        }
        eprintln!(
            "note: {n} allowlist entr{ies} no longer match{es} any finding — the code they \
             waived was fixed or moved. Remove the line{s} above from {path} (ci.sh runs with \
             --strict-allowlist, so stale entries fail the build).",
            n = report.unused_allows.len(),
            ies = if report.unused_allows.len() == 1 { "y" } else { "ies" },
            es = if report.unused_allows.len() == 1 { "es" } else { "" },
            s = if report.unused_allows.len() == 1 { "" } else { "s" },
            path = allow_path.display(),
        );
        if strict_allowlist {
            clean = false;
        }
    }
    let allowed = report.findings.iter().filter(|f| f.allowed).count();
    let violations = report.findings.len() - allowed;
    eprintln!(
        "pressio-lint: {} files scanned, {} violation(s), {} allowlisted",
        report.files_scanned, violations, allowed
    );
    Ok(clean)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("pressio-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
