//! The `pressio chaos` fault-injection sweep.
//!
//! Builds on the execution engine's seeded chaos hooks (the `chaos` cargo
//! feature of `pressio-core`): with faults armed, every scheduling point in
//! the shared pool may inject a bounded delay, a worker panic, a task panic,
//! a spurious cancellation, or a forced memory-budget failure. The sweep
//! drives every pooled plugin — and the guard/fallback and parallel
//! meta-compressor stacks — through compress/decompress round trips across
//! many seeds and asserts the *self-healing contract*:
//!
//! * **no deadlocks** — every faulted run finishes inside a harness
//!   deadline (enforced with [`pressio_core::run_deadlined`], the same
//!   cooperative-cancellation machinery `guard:timeout_ms` uses);
//! * **structured outcomes** — a faulted run either completes a valid
//!   round trip or fails with `Cancelled`, `Timeout`, `Internal`, or `Io` —
//!   never a panic that unwinds into the host;
//! * **no cross-run corruption** — after faults are disarmed, the *same*
//!   handle completes a clean round trip bit-identical to a fresh handle's;
//! * **no leaked workers** — the deadline-watchdog pool drains back to
//!   fully idle once in-flight work stops cooperatively.
//!
//! Without the `chaos` feature the subcommand refuses to run (the hooks
//! compile to nothing in release builds, so there is nothing to sweep).

use std::fmt;

/// Tuning for one chaos sweep.
#[derive(Debug, Clone)]
pub struct ChaosSweepConfig {
    /// Number of consecutive seeds swept per target.
    pub seeds: u32,
    /// First seed; targets sweep `first_seed..first_seed + seeds`.
    pub first_seed: u64,
    /// Harness deadline per faulted run, in ms. A run that misses it is
    /// reported as a deadlock suspect.
    pub run_deadline_ms: u64,
}

impl Default for ChaosSweepConfig {
    fn default() -> Self {
        ChaosSweepConfig {
            seeds: 64,
            first_seed: 1,
            run_deadline_ms: 5_000,
        }
    }
}

impl ChaosSweepConfig {
    /// The smoke-test profile used by `pressio chaos --quick` and CI's
    /// pre-gate: few seeds, same assertions.
    pub fn quick() -> ChaosSweepConfig {
        ChaosSweepConfig {
            seeds: 8,
            ..ChaosSweepConfig::default()
        }
    }
}

/// One self-healing-contract violation.
#[derive(Debug, Clone)]
pub struct ChaosFailure {
    /// Sweep target (plugin or stack label).
    pub target: String,
    /// Seed that produced the violation.
    pub seed: u64,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [seed {}]: {}", self.target, self.seed, self.detail)
    }
}

/// Outcome of a chaos sweep.
#[derive(Debug, Default)]
pub struct ChaosReport {
    /// Targets swept.
    pub targets: usize,
    /// Faulted runs executed (one per target/seed pair).
    pub runs: usize,
    /// Faulted runs that completed a valid round trip despite injection.
    pub survived: usize,
    /// Faulted runs stopped with a structured cancellation/timeout error.
    pub cancelled: usize,
    /// Faulted runs stopped with a contained worker/task failure.
    pub contained: usize,
    /// Faults actually injected, summed over the sweep:
    /// `(delays, worker panics, task panics, spurious cancels, charge fails)`.
    pub faults: (u64, u64, u64, u64, u64),
    /// Service-point faults (request delays + spurious request cancels)
    /// injected into the `pressio serve` request path; nonzero only for
    /// the `--serve` sweep.
    pub service_faults: u64,
    /// Self-healing-contract violations.
    pub failures: Vec<ChaosFailure>,
}

impl ChaosReport {
    /// True when every run honored the self-healing contract.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (d, wp, tp, sc, cf) = self.faults;
        writeln!(
            f,
            "chaos-swept {} targets, {} faulted runs: {} survived, {} cancelled cleanly, \
             {} contained, {} failure(s)",
            self.targets,
            self.runs,
            self.survived,
            self.cancelled,
            self.contained,
            self.failures.len()
        )?;
        writeln!(
            f,
            "  faults injected: {d} delays, {wp} worker panics, {tp} task panics, \
             {sc} spurious cancels, {cf} charge failures, {} service faults",
            self.service_faults
        )?;
        for v in &self.failures {
            writeln!(f, "  FAIL {v}")?;
        }
        Ok(())
    }
}

/// Run the sweep. Errors with a rebuild hint when the binary was built
/// without the `chaos` feature.
pub fn chaos_all(cfg: &ChaosSweepConfig) -> Result<ChaosReport, String> {
    imp::chaos_all(cfg)
}

/// Chaos-sweep the `pressio serve` daemon end to end: for each seed an
/// in-process server (2 workers, capacity-2 queue, TCP loopback) takes a
/// burst of compress/decompress/health traffic with the service-point
/// faults armed, then — faults disarmed — must still serve a clean
/// request bit-identical to a pristine server's, and drain with zero
/// stuck requests and no leaked watchdog workers.
pub fn chaos_serve(cfg: &ChaosSweepConfig) -> Result<ChaosReport, String> {
    imp::chaos_serve(cfg)
}

#[cfg(not(feature = "chaos"))]
mod imp {
    use super::{ChaosReport, ChaosSweepConfig};

    const NO_CHAOS: &str = "this binary was built without fault injection; rebuild with \
         `cargo run -p pressio-tools --features chaos --bin pressio -- chaos`";

    pub fn chaos_all(_cfg: &ChaosSweepConfig) -> Result<ChaosReport, String> {
        Err(NO_CHAOS.to_string())
    }

    pub fn chaos_serve(_cfg: &ChaosSweepConfig) -> Result<ChaosReport, String> {
        Err(NO_CHAOS.to_string())
    }
}

#[cfg(feature = "chaos")]
mod imp {
    use super::{ChaosFailure, ChaosReport, ChaosSweepConfig};

    use libpressio::core::chaos;
    use libpressio::core::ErrorCode;
    use libpressio::{Data, Options};

    /// One sweep target: a registry name plus the options assembling it.
    struct Target {
        label: &'static str,
        name: &'static str,
        options: Options,
    }

    /// Every pooled plugin plus the guard/fallback and parallel meta
    /// stacks. All run their chunk work on the shared execution engine, so
    /// all exercise the injected scheduling points.
    fn targets() -> Vec<Target> {
        let nthreads = 4u32;
        vec![
            Target {
                label: "sz_omp",
                name: "sz_omp",
                options: Options::new()
                    .with("sz_omp:nthreads", nthreads)
                    .with("pressio:abs", 1e-4f64),
            },
            Target {
                label: "zfp_omp",
                name: "zfp_omp",
                options: Options::new()
                    .with("zfp_omp:nthreads", nthreads)
                    .with("pressio:abs", 1e-4f64),
            },
            Target {
                label: "huffman",
                name: "huffman",
                options: Options::new().with("huffman:nthreads", nthreads),
            },
            Target {
                label: "deflate",
                name: "deflate",
                options: Options::new().with("deflate:nthreads", nthreads),
            },
            Target {
                label: "chunking>sz",
                name: "chunking",
                options: Options::new()
                    .with("chunking:compressor", "sz")
                    .with("chunking:nthreads", nthreads)
                    .with("pressio:abs", 1e-4f64),
            },
            Target {
                label: "many_independent>zfp",
                name: "many_independent",
                options: Options::new()
                    .with("many_independent:compressor", "zfp")
                    .with("many_independent:nthreads", nthreads)
                    .with("pressio:abs", 1e-4f64),
            },
            Target {
                label: "guard>chunking>sz",
                name: "guard",
                options: Options::new()
                    .with("guard:compressor", "chunking")
                    .with("chunking:compressor", "sz")
                    .with("chunking:nthreads", nthreads)
                    .with("guard:timeout_ms", 4_000u64)
                    .with("guard:fallbacks", vec!["deflate".to_string()])
                    .with("pressio:abs", 1e-4f64),
            },
        ]
    }

    /// The field every target round-trips: small enough that a 64-seed
    /// sweep stays in CI minutes, large enough to split across workers.
    fn seed_input() -> Data {
        let dims = vec![24usize, 24, 24];
        let n: usize = dims.iter().product();
        let v: Vec<f32> = (0..n)
            .map(|i| ((i as f32) * 0.013).sin() * 50.0 + (i as f32) * 0.002)
            .collect();
        Data::from_vec(v, dims).expect("static geometry")
    }

    fn armed(t: &Target) -> Result<libpressio::CompressorHandle, libpressio::Error> {
        let mut h = libpressio::registry().compressor(t.name)?;
        let _ = h.set_options_unchecked(&t.options);
        Ok(h)
    }

    /// One clean (faults disarmed) round trip; returns the compressed
    /// bytes and the decompressed output bytes.
    fn clean_roundtrip(
        h: &mut libpressio::CompressorHandle,
        input: &Data,
    ) -> Result<(Vec<u8>, Vec<u8>), libpressio::Error> {
        let c = h.compress(input)?;
        let mut out = Data::owned(input.dtype(), input.dims().to_vec());
        h.decompress(&c, &mut out)?;
        Ok((c.as_bytes().to_vec(), out.as_bytes().to_vec()))
    }

    /// Error codes a faulted run may legally surface: cooperative stops
    /// (`Cancelled`, `Timeout`) and contained worker/task failures
    /// (`Internal`, `Io`). Anything else means an injected fault leaked
    /// through as a miscategorized error.
    fn acceptable(code: ErrorCode) -> bool {
        matches!(
            code,
            ErrorCode::Cancelled | ErrorCode::Timeout | ErrorCode::Internal | ErrorCode::Io
        )
    }

    /// Wait (bounded) for the deadline-watchdog pool to drain back to
    /// fully idle; a worker still busy after the grace period means a
    /// faulted run left work running past its cooperative stop.
    fn watchdogs_drain() -> bool {
        for attempt in 0..200u64 {
            let (spawned, idle) = libpressio::core::watchdog_stats();
            if idle >= spawned {
                return true;
            }
            std::thread::sleep(std::time::Duration::from_millis(attempt.min(20)));
        }
        false
    }

    pub fn chaos_all(cfg: &ChaosSweepConfig) -> Result<ChaosReport, String> {
        libpressio::init();
        let mut report = ChaosReport::default();
        let input = seed_input();
        chaos::reset_stats();

        // Injected panics are the whole point of the sweep; the pool's
        // `catch_unwind` contains them, so silence the default hook's
        // per-panic backtrace spew for the duration.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));

        for t in targets() {
            report.targets += 1;
            for seed in cfg.first_seed..cfg.first_seed + cfg.seeds as u64 {
                report.runs += 1;
                let handle = match armed(&t) {
                    Ok(h) => h,
                    Err(e) => {
                        report.failures.push(ChaosFailure {
                            target: t.label.to_string(),
                            seed,
                            detail: format!("cannot configure: {e}"),
                        });
                        continue;
                    }
                };

                // ---- faulted run -------------------------------------
                chaos::configure(&chaos::ChaosConfig::from_seed(seed));
                chaos::enable();
                let staged = input.clone();
                let faulted = libpressio::core::run_deadlined(
                    cfg.run_deadline_ms,
                    "chaos run",
                    move || {
                        let mut handle = handle;
                        let r = (|| {
                            let c = handle.compress(&staged)?;
                            let mut out = Data::owned(staged.dtype(), staged.dims().to_vec());
                            handle.decompress(&c, &mut out)?;
                            Ok::<Vec<u8>, libpressio::Error>(out.as_bytes().to_vec())
                        })();
                        (handle, r)
                    },
                );
                chaos::disable();

                let mut survivor = match faulted {
                    Ok((handle, Ok(out))) => {
                        if out.len() != input.as_bytes().len() {
                            report.failures.push(ChaosFailure {
                                target: t.label.to_string(),
                                seed,
                                detail: format!(
                                    "faulted run 'succeeded' with a malformed output: \
                                     {} bytes instead of {}",
                                    out.len(),
                                    input.as_bytes().len()
                                ),
                            });
                            continue;
                        }
                        report.survived += 1;
                        handle
                    }
                    Ok((handle, Err(e))) if acceptable(e.code()) => {
                        if matches!(e.code(), ErrorCode::Cancelled | ErrorCode::Timeout) {
                            report.cancelled += 1;
                        } else {
                            report.contained += 1;
                        }
                        handle
                    }
                    Ok((_, Err(e))) => {
                        report.failures.push(ChaosFailure {
                            target: t.label.to_string(),
                            seed,
                            detail: format!(
                                "faulted run failed with a non-fault error code {:?}: {e}",
                                e.code()
                            ),
                        });
                        continue;
                    }
                    Err(e) if e.code() == ErrorCode::Timeout => {
                        // The handle rode the timed-out worker; the run is a
                        // deadlock suspect only if the pool never drains.
                        report.failures.push(ChaosFailure {
                            target: t.label.to_string(),
                            seed,
                            detail: format!(
                                "deadlock suspect: faulted run missed the {} ms harness \
                                 deadline",
                                cfg.run_deadline_ms
                            ),
                        });
                        continue;
                    }
                    Err(e) => {
                        report.failures.push(ChaosFailure {
                            target: t.label.to_string(),
                            seed,
                            detail: format!("harness worker failed: {e}"),
                        });
                        continue;
                    }
                };

                // ---- same handle, faults disarmed --------------------
                // Whatever the faulted run did, the handle must now serve a
                // clean round trip bit-identical to a fresh instance's.
                let reused = clean_roundtrip(&mut survivor, &input);
                let fresh = armed(&t).and_then(|mut h| clean_roundtrip(&mut h, &input));
                match (reused, fresh) {
                    (Ok((rc, ro)), Ok((fc, fo))) => {
                        if rc != fc || ro != fo {
                            report.failures.push(ChaosFailure {
                                target: t.label.to_string(),
                                seed,
                                detail: "cross-run corruption: the reused handle's clean \
                                         round trip diverged from a fresh handle's"
                                    .to_string(),
                            });
                        }
                    }
                    (Err(e), _) => report.failures.push(ChaosFailure {
                        target: t.label.to_string(),
                        seed,
                        detail: format!("reused handle failed a clean round trip: {e}"),
                    }),
                    (_, Err(e)) => report.failures.push(ChaosFailure {
                        target: t.label.to_string(),
                        seed,
                        detail: format!("fresh handle failed a clean round trip: {e}"),
                    }),
                }
            }

            if !watchdogs_drain() {
                let (spawned, idle) = libpressio::core::watchdog_stats();
                report.failures.push(ChaosFailure {
                    target: t.label.to_string(),
                    seed: 0,
                    detail: format!(
                        "leaked workers: {}/{spawned} deadline workers still busy after \
                         the sweep",
                        spawned - idle
                    ),
                });
            }
        }

        report.faults = chaos::stats();
        report.service_faults = chaos::service_stats();
        chaos::disable();
        std::panic::set_hook(prev_hook);
        Ok(report)
    }

    // ---- the `--serve` sweep --------------------------------------------

    use crate::serve::client::{Client, ServeOutcome};
    use crate::serve::{ProfileSpec, ServeConfig, Server};
    use libpressio::DType;

    /// Profile the serve sweep hammers: lossless, so a surviving round
    /// trip must reproduce the payload exactly and a clean compress must
    /// be bit-identical across server instances.
    const SERVE_PROFILE: &str = "lossless";
    const SERVE_DIMS: [usize; 2] = [64, 64];
    /// Requests fired per faulted seed (compress + round-trip decompress
    /// each, so the wire sees roughly twice this many frames).
    const SERVE_BURST: usize = 4;

    fn serve_payload() -> Vec<u8> {
        let n: usize = SERVE_DIMS.iter().product();
        (0..n)
            .flat_map(|i| (((i as f32) * 0.031).sin() * 40.0).to_le_bytes())
            .collect()
    }

    fn start_server(cfg: &ChaosSweepConfig) -> Result<Server, libpressio::Error> {
        Server::start(ServeConfig {
            profiles: vec![
                ProfileSpec::parse("raw=noop")?,
                ProfileSpec::parse(&format!("{SERVE_PROFILE}=deflate"))?,
            ],
            workers: 2,
            queue_capacity: 2,
            tcp_addr: Some("127.0.0.1:0".to_string()),
            drain_deadline_ms: 2_000,
            default_deadline_ms: cfg.run_deadline_ms.max(1),
            ..ServeConfig::default()
        })
    }

    fn connect(server: &Server, cfg: &ChaosSweepConfig) -> Result<Client, libpressio::Error> {
        let addr = server
            .tcp_addr()
            .ok_or_else(|| libpressio::Error::internal("server has no TCP listener"))?;
        let mut client = Client::connect_tcp(&addr.to_string())?;
        client.set_timeout_ms(cfg.run_deadline_ms.max(1));
        Ok(client)
    }

    /// What one faulted request resolved to.
    enum FaultedOutcome {
        Served,
        Shed,
        Stopped,
        Contained,
    }

    /// Classify a faulted request's result against the structured-outcome
    /// contract; `Err(detail)` is a contract violation.
    fn classify(
        result: Result<ServeOutcome, libpressio::Error>,
    ) -> Result<FaultedOutcome, String> {
        match result {
            Ok(ServeOutcome::Ok(_)) => Ok(FaultedOutcome::Served),
            Ok(ServeOutcome::Busy { retry_after_ms, .. }) => {
                if retry_after_ms == 0 {
                    Err("Busy response carried no retry hint".to_string())
                } else {
                    Ok(FaultedOutcome::Shed)
                }
            }
            Err(e) if matches!(e.code(), ErrorCode::Cancelled | ErrorCode::Timeout) => {
                Ok(FaultedOutcome::Stopped)
            }
            Err(e) if matches!(e.code(), ErrorCode::Internal | ErrorCode::Io) => {
                Ok(FaultedOutcome::Contained)
            }
            Err(e) => Err(format!(
                "faulted request failed with a non-fault error code {:?}: {e}",
                e.code()
            )),
        }
    }

    /// A clean compress with bounded Busy patience; only used with faults
    /// disarmed, where Busy can linger just briefly while the last faulted
    /// requests retire.
    fn clean_compress(
        client: &mut Client,
        payload: &[u8],
    ) -> Result<Vec<u8>, libpressio::Error> {
        for _ in 0..100u32 {
            match client.compress(SERVE_PROFILE, DType::F32, &SERVE_DIMS, payload)? {
                ServeOutcome::Ok(bytes) => return Ok(bytes),
                ServeOutcome::Busy { retry_after_ms, .. } => {
                    let backoff_ms = u64::from(retry_after_ms);
                    std::thread::sleep(std::time::Duration::from_millis(backoff_ms.min(20)));
                }
            }
        }
        Err(libpressio::Error::internal(
            "clean request still shed after 100 retries",
        ))
    }

    pub fn chaos_serve(cfg: &ChaosSweepConfig) -> Result<ChaosReport, String> {
        libpressio::init();
        let mut report = ChaosReport {
            targets: 1,
            ..ChaosReport::default()
        };
        let payload = serve_payload();
        chaos::reset_stats();

        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));

        // Reference bytes from a pristine, fault-free server: the yardstick
        // every post-chaos server must match bit for bit.
        let reference = (|| -> Result<Vec<u8>, libpressio::Error> {
            let server = start_server(cfg)?;
            let mut client = connect(&server, cfg)?;
            let bytes = clean_compress(&mut client, &payload)?;
            let dr = server.shutdown();
            if dr.stuck_inflight != 0 {
                return Err(libpressio::Error::internal("pristine server drained dirty"));
            }
            Ok(bytes)
        })()
        .map_err(|e| format!("cannot establish the pristine reference: {e}"))?;

        for seed in cfg.first_seed..cfg.first_seed + cfg.seeds as u64 {
            report.runs += 1;
            let fail = |detail: String| ChaosFailure {
                target: "serve".to_string(),
                seed,
                detail,
            };

            chaos::configure(&chaos::ChaosConfig::from_seed(seed));
            chaos::enable();
            let server = match start_server(cfg) {
                Ok(s) => s,
                Err(e) => {
                    chaos::disable();
                    report.failures.push(fail(format!("server failed to start: {e}")));
                    continue;
                }
            };

            // ---- faulted burst -----------------------------------------
            let mut served = 0usize;
            let mut stopped = 0usize;
            let mut contained = 0usize;
            let mut violation: Option<String> = None;
            let mut client = connect(&server, cfg).ok();
            for i in 0..SERVE_BURST {
                let c = match client.as_mut() {
                    Some(c) => c,
                    // The previous request poisoned the connection (an
                    // acceptable Io outcome); accept again under faults.
                    None => match connect(&server, cfg) {
                        Ok(c) => {
                            client = Some(c);
                            client.as_mut().expect("just stored")
                        }
                        Err(e) => {
                            violation = Some(format!("reconnect refused mid-sweep: {e}"));
                            break;
                        }
                    },
                };
                let compress =
                    c.compress(SERVE_PROFILE, DType::F32, &SERVE_DIMS, &payload);
                let round_trip = match &compress {
                    Ok(ServeOutcome::Ok(bytes)) => {
                        let bytes = bytes.clone();
                        Some(c.decompress(SERVE_PROFILE, DType::F32, &SERVE_DIMS, &bytes))
                    }
                    _ => None,
                };
                let health = if i == 0 { Some(c.health()) } else { None };
                let mut dead = false;
                for result in [Some(compress), round_trip]
                    .into_iter()
                    .flatten()
                {
                    match classify(result) {
                        Ok(FaultedOutcome::Served) => served += 1,
                        Ok(FaultedOutcome::Shed) => {}
                        Ok(FaultedOutcome::Stopped) => stopped += 1,
                        Ok(FaultedOutcome::Contained) => {
                            contained += 1;
                            dead = true;
                        }
                        Err(detail) => violation = Some(detail),
                    }
                }
                if let Some(h) = health {
                    match h {
                        Ok(doc) if doc.contains("pressio-serve/health-v1") => {}
                        Ok(_) => violation = Some("health document lost its schema".into()),
                        Err(e) if acceptable(e.code()) => {
                            contained += 1;
                            dead = true;
                        }
                        Err(e) => violation = Some(format!("health failed oddly: {e}")),
                    }
                }
                if dead {
                    client = None;
                }
                if violation.is_some() {
                    break;
                }
            }
            chaos::disable();
            drop(client);

            if let Some(detail) = violation {
                report.failures.push(fail(detail));
                let _ = server.shutdown();
                continue;
            }

            // ---- faults disarmed: same server must serve clean ---------
            let clean = connect(&server, cfg)
                .and_then(|mut c| clean_compress(&mut c, &payload));
            match clean {
                Ok(bytes) if bytes == reference => {}
                Ok(_) => report.failures.push(fail(
                    "cross-run corruption: the chaos-survivor server's clean \
                     compress diverged from the pristine reference"
                        .to_string(),
                )),
                Err(e) => report
                    .failures
                    .push(fail(format!("survivor refused a clean request: {e}"))),
            }

            // ---- drain must settle with nothing stuck or leaked --------
            let dr = server.shutdown();
            if dr.stuck_inflight != 0 {
                report.failures.push(fail(format!(
                    "{} request(s) stuck in flight after drain escalation",
                    dr.stuck_inflight
                )));
            }
            if dr.watchdog.0 != dr.watchdog.1 {
                report.failures.push(fail(format!(
                    "leaked workers: watchdog {}/{} idle after drain",
                    dr.watchdog.1, dr.watchdog.0
                )));
            }
            if dr.queue.depth != 0
                || dr.queue.accepted != dr.queue.popped + dr.cleared_queued as u64
            {
                report.failures.push(fail(format!(
                    "queue conservation broken: {:?} with {} cleared",
                    dr.queue, dr.cleared_queued
                )));
            }

            if served > 0 && stopped == 0 && contained == 0 {
                report.survived += 1;
            } else if stopped > 0 {
                report.cancelled += 1;
            } else if contained > 0 {
                report.contained += 1;
            } else {
                // Everything shed: legal (capacity 2, after all) but worth
                // counting as survival only if the clean phase passed,
                // which the checks above already enforced.
                report.survived += 1;
            }
        }

        report.faults = chaos::stats();
        report.service_faults = chaos::service_stats();
        chaos::disable();
        std::panic::set_hook(prev_hook);
        Ok(report)
    }
}
