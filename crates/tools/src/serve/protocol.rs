//! The `pressio serve` wire protocol: length-prefixed binary frames.
//!
//! Every message — request or response, over TCP or a Unix socket — is one
//! frame:
//!
//! ```text
//! magic      u32le  0x50535631 ("PSV1")
//! kind       u8     frame kind (request 1..=4, response 129..=132)
//! request_id u64le  client-chosen correlation id, echoed in the response
//! body_len   u32le  byte length of the body that follows
//! body       [u8; body_len]   kind-specific, see below
//! ```
//!
//! The 17-byte header is fixed-size and is parsed *before any allocation*:
//! [`parse_header`] works on a stack array, validates the magic, the kind,
//! and `body_len` against the connection's cap, and only then does the
//! socket layer allocate `body_len` bytes. A hostile peer declaring a
//! 1 TiB body costs 17 bytes of reads and a structured
//! [`CorruptStream`](ErrorCode::CorruptStream) — never an allocation.
//! Bodies are parsed with [`ByteReader`], whose length fields are
//! bounds-checked against the remaining slice, and geometry is validated
//! with [`checked_geometry`] before any output buffer is sized.
//!
//! Request bodies:
//! - `Compress` / `Decompress`: profile name (section), dtype tag (u8),
//!   dims (u32 count + u64 each), payload (section). For `Compress` the
//!   payload is the raw typed buffer and must match the declared geometry
//!   exactly; for `Decompress` it is a compressed stream and the geometry
//!   declares the output buffer.
//! - `Health`, `Shutdown`: empty body.
//!
//! Response bodies:
//! - `RespOk`: payload (section) — compressed or decompressed bytes.
//! - `RespError`: numeric [`ErrorCode`] (u8) + message (section).
//! - `RespBusy`: retry-after hint in ms (u32), queue depth (u32),
//!   message (section). Maps to [`ErrorCode::Busy`].
//! - `RespHealth`: UTF-8 JSON stats document (section).

use libpressio::core::{checked_geometry, trace, ByteReader, ByteWriter};
use libpressio::{DType, Error, ErrorCode, Result};

/// Frame magic: "PSV1" as a little-endian u32.
pub const FRAME_MAGIC: u32 = 0x5053_5631;

/// Fixed frame-header size: magic + kind + request_id + body_len.
pub const HEADER_LEN: usize = 4 + 1 + 8 + 4;

/// Default per-connection cap on a frame body. Requests past this are
/// rejected structurally before allocation.
pub const DEFAULT_MAX_BODY: usize = 256 << 20;

/// The wire format's hard body ceiling: `body_len` is a `u32`, so no frame
/// body can exceed this many bytes. [`frame`] asserts it; servers answer a
/// structured error instead of building such a frame.
pub const MAX_WIRE_BODY: usize = u32::MAX as usize;

/// Default mid-frame stall deadline: once a frame's first byte has
/// arrived, the peer must keep making progress — this many milliseconds
/// with no new bytes is a [`CorruptStream`](ErrorCode::CorruptStream)
/// abandonment, never an indefinitely parked reader thread.
pub const MID_FRAME_STALL_MS: u64 = 5_000;

/// Longest accepted profile name.
pub const MAX_PROFILE_NAME: usize = 128;

/// Most dimensions a request may declare.
pub const MAX_REQUEST_DIMS: usize = 8;

/// Frame kinds. Requests have the high bit clear, responses set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Compress `payload` (raw typed buffer) under a named profile.
    Compress = 1,
    /// Decompress `payload` into the declared geometry under a profile.
    Decompress = 2,
    /// Queue depth, shed counts, per-profile latency percentiles.
    Health = 3,
    /// Ask the daemon to drain gracefully and exit.
    Shutdown = 4,
    /// Success; body is the result payload.
    RespOk = 129,
    /// Structured failure; body is code + message.
    RespError = 130,
    /// Load-shed; body is retry-after + depth + message.
    RespBusy = 131,
    /// Health report; body is a JSON document.
    RespHealth = 132,
}

impl FrameKind {
    /// Decode a wire tag.
    pub fn from_tag(tag: u8) -> Result<FrameKind> {
        Ok(match tag {
            1 => FrameKind::Compress,
            2 => FrameKind::Decompress,
            3 => FrameKind::Health,
            4 => FrameKind::Shutdown,
            129 => FrameKind::RespOk,
            130 => FrameKind::RespError,
            131 => FrameKind::RespBusy,
            132 => FrameKind::RespHealth,
            other => {
                return Err(Error::corrupt(format!("unknown frame kind {other}"))
                    .in_plugin("serve"))
            }
        })
    }
}

/// A validated frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// What the body means.
    pub kind: FrameKind,
    /// Client correlation id, echoed back in the response.
    pub request_id: u64,
    /// Validated body length (`<= max_body`).
    pub body_len: usize,
}

/// Parse and validate the fixed-size header. Pure stack math — nothing is
/// allocated, so oversized or garbage headers are rejected for free.
pub fn parse_header(raw: &[u8; HEADER_LEN], max_body: usize) -> Result<FrameHeader> {
    let mut r = ByteReader::new(raw);
    let magic = r.get_u32()?;
    if magic != FRAME_MAGIC {
        return Err(Error::corrupt(format!(
            "bad frame magic {magic:#010x} (expected {FRAME_MAGIC:#010x})"
        ))
        .in_plugin("serve"));
    }
    let kind = FrameKind::from_tag(r.get_u8()?)?;
    let request_id = r.get_u64()?;
    let body_len = r.get_count()?;
    if body_len > max_body {
        return Err(Error::corrupt(format!(
            "declared body length {body_len} exceeds the {max_body}-byte frame cap"
        ))
        .in_plugin("serve"));
    }
    Ok(FrameHeader {
        kind,
        request_id,
        body_len,
    })
}

/// A parsed request body, payload borrowed from the frame buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum RequestBody<'a> {
    /// Compress a raw typed buffer.
    Compress {
        /// Named profile to dispatch to.
        profile: &'a str,
        /// Element type of `payload`.
        dtype: DType,
        /// Geometry of `payload`.
        dims: Vec<usize>,
        /// The raw typed buffer; length must equal the geometry's bytes.
        payload: &'a [u8],
    },
    /// Decompress a stream into a declared geometry.
    Decompress {
        /// Named profile to dispatch to.
        profile: &'a str,
        /// Element type of the output buffer.
        dtype: DType,
        /// Geometry of the output buffer.
        dims: Vec<usize>,
        /// The compressed stream.
        payload: &'a [u8],
    },
    /// Stats request (empty body).
    Health,
    /// Graceful-drain request (empty body).
    Shutdown,
}

/// Reject profile names that cannot possibly be registry names before any
/// lookup: empty, oversized, or containing bytes outside `[A-Za-z0-9_:.-]`.
pub fn validate_profile_name(name: &str) -> Result<()> {
    if name.is_empty() {
        return Err(Error::corrupt("empty profile name").in_plugin("serve"));
    }
    if name.len() > MAX_PROFILE_NAME {
        return Err(Error::corrupt(format!(
            "profile name of {} bytes exceeds the {MAX_PROFILE_NAME}-byte cap",
            name.len()
        ))
        .in_plugin("serve"));
    }
    if let Some(bad) = name
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '_' | ':' | '.' | '-')))
    {
        return Err(Error::corrupt(format!(
            "profile name contains forbidden character {bad:?}"
        ))
        .in_plugin("serve"));
    }
    Ok(())
}

/// Parse a request body for a validated header. Every declared length is
/// checked against the actual slice before it is consumed, the profile
/// name is sanity-checked, and the geometry must pass [`checked_geometry`]
/// — so a garbage body can never size an allocation.
pub fn parse_request<'a>(kind: FrameKind, body: &'a [u8]) -> Result<RequestBody<'a>> {
    match kind {
        FrameKind::Health => {
            if !body.is_empty() {
                return Err(Error::corrupt("health request body must be empty").in_plugin("serve"));
            }
            Ok(RequestBody::Health)
        }
        FrameKind::Shutdown => {
            if !body.is_empty() {
                return Err(
                    Error::corrupt("shutdown request body must be empty").in_plugin("serve")
                );
            }
            Ok(RequestBody::Shutdown)
        }
        FrameKind::Compress | FrameKind::Decompress => {
            let mut r = ByteReader::new(body);
            let profile = r.get_str()?;
            validate_profile_name(profile)?;
            let dtype = r.get_dtype()?;
            let dims = r.get_dims()?;
            if dims.is_empty() || dims.len() > MAX_REQUEST_DIMS {
                return Err(Error::corrupt(format!(
                    "request declares {} dimensions (accepted: 1..={MAX_REQUEST_DIMS})",
                    dims.len()
                ))
                .in_plugin("serve"));
            }
            let geometry_bytes = checked_geometry(dtype, &dims)?;
            let payload = r.get_section()?;
            if r.remaining() != 0 {
                return Err(Error::corrupt(format!(
                    "{} trailing bytes after the request body",
                    r.remaining()
                ))
                .in_plugin("serve"));
            }
            if kind == FrameKind::Compress {
                if payload.len() != geometry_bytes {
                    return Err(Error::corrupt(format!(
                        "payload is {} bytes but the declared geometry needs {geometry_bytes}",
                        payload.len()
                    ))
                    .in_plugin("serve"));
                }
                Ok(RequestBody::Compress {
                    profile,
                    dtype,
                    dims,
                    payload,
                })
            } else {
                Ok(RequestBody::Decompress {
                    profile,
                    dtype,
                    dims,
                    payload,
                })
            }
        }
        FrameKind::RespOk | FrameKind::RespError | FrameKind::RespBusy | FrameKind::RespHealth => {
            Err(Error::corrupt("response frame sent to the server").in_plugin("serve"))
        }
    }
}

/// A parsed response body (client side), payloads owned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success; the compressed / decompressed bytes.
    Ok(Vec<u8>),
    /// Structured failure.
    Error {
        /// The failure's [`ErrorCode`], numeric on the wire.
        code: ErrorCode,
        /// Human-readable message.
        message: String,
    },
    /// The request was shed (admission queue full or daemon draining).
    Busy {
        /// Suggested client backoff before retrying.
        retry_after_ms: u32,
        /// Queue depth observed at shed time.
        depth: u32,
        /// Human-readable reason.
        message: String,
    },
    /// Health report (JSON document).
    Health(String),
}

fn frame(kind: FrameKind, request_id: u64, body: &[u8]) -> Vec<u8> {
    // A body past u32::MAX would silently truncate the length field and
    // desynchronize the stream; callers bound payloads well below this
    // (requests by max_body, responses by the server's size guard).
    assert!(
        body.len() <= MAX_WIRE_BODY,
        "frame body of {} bytes exceeds the u32 wire limit",
        body.len()
    );
    let mut w = ByteWriter::with_capacity(HEADER_LEN + body.len());
    w.put_u32(FRAME_MAGIC);
    w.put_u8(kind as u8);
    w.put_u64(request_id);
    w.put_u32(body.len() as u32);
    w.put_bytes(body);
    w.into_vec()
}

/// Encode a compress / decompress request frame.
pub fn encode_request(
    kind: FrameKind,
    request_id: u64,
    profile: &str,
    dtype: DType,
    dims: &[usize],
    payload: &[u8],
) -> Vec<u8> {
    let mut b = ByteWriter::with_capacity(payload.len() + profile.len() + 64);
    b.put_str(profile);
    b.put_dtype(dtype);
    b.put_dims(dims);
    b.put_section(payload);
    frame(kind, request_id, b.as_slice())
}

/// Encode a bodyless request frame ([`FrameKind::Health`] /
/// [`FrameKind::Shutdown`]).
pub fn encode_bodyless(kind: FrameKind, request_id: u64) -> Vec<u8> {
    frame(kind, request_id, &[])
}

/// Encode a response frame.
pub fn encode_response(request_id: u64, resp: &Response) -> Vec<u8> {
    match resp {
        Response::Ok(payload) => {
            let mut b = ByteWriter::with_capacity(payload.len() + 16);
            b.put_section(payload);
            frame(FrameKind::RespOk, request_id, b.as_slice())
        }
        Response::Error { code, message } => {
            let mut b = ByteWriter::with_capacity(message.len() + 16);
            // Codes are 1..=10 today; u8 leaves headroom for 255 more.
            b.put_u8(code.code().clamp(0, 255) as u8);
            b.put_section(message.as_bytes());
            frame(FrameKind::RespError, request_id, b.as_slice())
        }
        Response::Busy {
            retry_after_ms,
            depth,
            message,
        } => {
            let mut b = ByteWriter::with_capacity(message.len() + 16);
            b.put_u32(*retry_after_ms);
            b.put_u32(*depth);
            b.put_section(message.as_bytes());
            frame(FrameKind::RespBusy, request_id, b.as_slice())
        }
        Response::Health(json) => {
            let mut b = ByteWriter::with_capacity(json.len() + 16);
            b.put_section(json.as_bytes());
            frame(FrameKind::RespHealth, request_id, b.as_slice())
        }
    }
}

/// Map a wire error code back to an [`ErrorCode`], exhaustively over
/// [`ErrorCode::ALL`] — an unknown number is itself a corrupt stream, so
/// new codes can never silently collapse into `Internal`.
pub fn error_code_from_wire(n: u8) -> Result<ErrorCode> {
    ErrorCode::ALL
        .iter()
        .copied()
        .find(|c| c.code() == i32::from(n))
        .ok_or_else(|| Error::corrupt(format!("unknown error code {n} on the wire")).in_plugin("serve"))
}

/// Parse a response body (client side).
pub fn parse_response(kind: FrameKind, body: &[u8]) -> Result<Response> {
    let mut r = ByteReader::new(body);
    let resp = match kind {
        FrameKind::RespOk => Response::Ok(r.get_section()?.to_vec()),
        FrameKind::RespError => {
            let code = error_code_from_wire(r.get_u8()?)?;
            let message = std::str::from_utf8(r.get_section()?)
                .map_err(|_| Error::corrupt("error message is not UTF-8").in_plugin("serve"))?
                .to_string();
            Response::Error { code, message }
        }
        FrameKind::RespBusy => {
            let retry_after_ms = r.get_u32()?;
            let depth = r.get_u32()?;
            let message = std::str::from_utf8(r.get_section()?)
                .map_err(|_| Error::corrupt("busy message is not UTF-8").in_plugin("serve"))?
                .to_string();
            Response::Busy {
                retry_after_ms,
                depth,
                message,
            }
        }
        FrameKind::RespHealth => Response::Health(
            std::str::from_utf8(r.get_section()?)
                .map_err(|_| Error::corrupt("health body is not UTF-8").in_plugin("serve"))?
                .to_string(),
        ),
        _ => return Err(Error::corrupt("request frame sent to the client").in_plugin("serve")),
    };
    if r.remaining() != 0 {
        return Err(Error::corrupt(format!(
            "{} trailing bytes after the response body",
            r.remaining()
        ))
        .in_plugin("serve"));
    }
    Ok(resp)
}

/// What one blocking frame read produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete frame.
    Frame(FrameHeader, Vec<u8>),
    /// Clean EOF at a frame boundary (peer closed).
    Eof,
    /// The socket's read timeout elapsed with *no* bytes of a new frame
    /// read — the connection is idle, the caller re-checks its flags.
    Idle,
}

/// Read one frame from a blocking stream with an optional read timeout,
/// using the default [`MID_FRAME_STALL_MS`] stall deadline.
///
/// The 17-byte header is read into a stack buffer and validated before the
/// body allocation. Timeouts *between* frames surface as
/// [`ReadOutcome::Idle`]; EOF inside a frame is a [`CorruptStream`]
/// truncation error; a peer that starts a frame and then stops sending is
/// abandoned as [`CorruptStream`] once no bytes arrive for the stall
/// deadline — a half-written frame can never park the reader forever.
pub fn read_frame(stream: &mut impl std::io::Read, max_body: usize) -> Result<ReadOutcome> {
    read_frame_stall(stream, max_body, MID_FRAME_STALL_MS)
}

/// [`read_frame`] with an explicit mid-frame stall deadline in
/// milliseconds (`0` means a single timeout tick is already a stall).
pub fn read_frame_stall(
    stream: &mut impl std::io::Read,
    max_body: usize,
    stall_ms: u64,
) -> Result<ReadOutcome> {
    let mut header = [0u8; HEADER_LEN];
    match read_fully(stream, &mut header, true, stall_ms)? {
        FillOutcome::Filled => {}
        FillOutcome::CleanEof => return Ok(ReadOutcome::Eof),
        FillOutcome::Idle => return Ok(ReadOutcome::Idle),
    }
    let parsed = parse_header(&header, max_body)?;
    // Allocation happens only here, after the length passed validation.
    let mut body = vec![0u8; parsed.body_len];
    match read_fully(stream, &mut body, false, stall_ms)? {
        FillOutcome::Filled => Ok(ReadOutcome::Frame(parsed, body)),
        FillOutcome::CleanEof | FillOutcome::Idle => Err(Error::corrupt(
            "stream truncated inside a frame body",
        )
        .in_plugin("serve")),
    }
}

enum FillOutcome {
    Filled,
    CleanEof,
    Idle,
}

/// Fill `buf` from the stream. With `idle_ok`, a timeout before the first
/// byte reports [`FillOutcome::Idle`]; once any byte has arrived the frame
/// is in flight and timeouts retry only while the peer keeps making
/// progress — `stall_ms` without a single new byte abandons the frame as
/// [`CorruptStream`], so a half-written header or body can never pin the
/// reading thread indefinitely (a mid-frame EOF is an error handled by the
/// caller via [`FillOutcome::CleanEof`] + `got > 0`).
fn read_fully(
    stream: &mut impl std::io::Read,
    buf: &mut [u8],
    idle_ok: bool,
    stall_ms: u64,
) -> Result<FillOutcome> {
    let mut got = 0usize;
    let stall_ns = stall_ms.saturating_mul(1_000_000);
    let mut stall_deadline = trace::monotonic_ns().saturating_add(stall_ns);
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 && idle_ok {
                    return Ok(FillOutcome::CleanEof);
                }
                return Err(Error::corrupt(format!(
                    "peer closed mid-frame after {got} bytes"
                ))
                .in_plugin("serve"));
            }
            Ok(n) => {
                got += n;
                stall_deadline = trace::monotonic_ns().saturating_add(stall_ns);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if got == 0 && idle_ok {
                    return Ok(FillOutcome::Idle);
                }
                // Mid-frame: tolerate a slow peer, but only one that is
                // still making progress.
                if trace::monotonic_ns() >= stall_deadline {
                    return Err(Error::corrupt(format!(
                        "peer stalled mid-frame for {stall_ms} ms after {got} bytes"
                    ))
                    .in_plugin("serve"));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(Error::new(ErrorCode::Io, e.to_string()).in_plugin("serve")),
        }
    }
    Ok(FillOutcome::Filled)
}

/// Write a full frame to a blocking stream.
pub fn write_frame(stream: &mut impl std::io::Write, bytes: &[u8]) -> Result<()> {
    stream
        .write_all(bytes)
        .and_then(|()| stream.flush())
        .map_err(|e| Error::new(ErrorCode::Io, e.to_string()).in_plugin("serve"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let f = encode_bodyless(FrameKind::Health, 7);
        assert_eq!(f.len(), HEADER_LEN);
        let mut raw = [0u8; HEADER_LEN];
        raw.copy_from_slice(&f);
        let h = parse_header(&raw, DEFAULT_MAX_BODY).expect("valid header");
        assert_eq!(h.kind, FrameKind::Health);
        assert_eq!(h.request_id, 7);
        assert_eq!(h.body_len, 0);
    }

    #[test]
    fn request_roundtrip() {
        let payload: Vec<u8> = (0..32).flat_map(|i| (i as f32).to_le_bytes()).collect();
        let f = encode_request(FrameKind::Compress, 3, "fast", DType::F32, &[8, 4], &payload);
        let mut raw = [0u8; HEADER_LEN];
        raw.copy_from_slice(&f[..HEADER_LEN]);
        let h = parse_header(&raw, DEFAULT_MAX_BODY).expect("valid header");
        assert_eq!(h.body_len, f.len() - HEADER_LEN);
        match parse_request(h.kind, &f[HEADER_LEN..]).expect("valid body") {
            RequestBody::Compress {
                profile,
                dtype,
                dims,
                payload: p,
            } => {
                assert_eq!(profile, "fast");
                assert_eq!(dtype, DType::F32);
                assert_eq!(dims, vec![8, 4]);
                assert_eq!(p, &payload[..]);
            }
            other => panic!("wrong body {other:?}"),
        }
    }

    #[test]
    fn oversized_declared_length_is_rejected_without_allocation() {
        // A header declaring a body over the cap must fail in parse_header
        // (which allocates nothing), not at the allocation site.
        let mut w = ByteWriter::with_capacity(HEADER_LEN);
        w.put_u32(FRAME_MAGIC);
        w.put_u8(FrameKind::Compress as u8);
        w.put_u64(1);
        w.put_u32(u32::MAX);
        let mut raw = [0u8; HEADER_LEN];
        raw.copy_from_slice(w.as_slice());
        let err = parse_header(&raw, DEFAULT_MAX_BODY).expect_err("must reject");
        assert_eq!(err.code(), ErrorCode::CorruptStream);
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            Response::Ok(vec![1, 2, 3]),
            Response::Error {
                code: ErrorCode::Timeout,
                message: "too slow".into(),
            },
            Response::Busy {
                retry_after_ms: 25,
                depth: 4,
                message: "queue full".into(),
            },
            Response::Health("{\"ok\":true}".into()),
        ] {
            let f = encode_response(9, &resp);
            let mut raw = [0u8; HEADER_LEN];
            raw.copy_from_slice(&f[..HEADER_LEN]);
            let h = parse_header(&raw, DEFAULT_MAX_BODY).expect("valid header");
            assert_eq!(h.request_id, 9);
            let parsed = parse_response(h.kind, &f[HEADER_LEN..]).expect("valid body");
            assert_eq!(parsed, resp);
        }
    }

    #[test]
    fn every_error_code_survives_the_wire() {
        for code in ErrorCode::ALL {
            let f = encode_response(
                1,
                &Response::Error {
                    code: *code,
                    message: "x".into(),
                },
            );
            match parse_response(FrameKind::RespError, &f[HEADER_LEN..]).expect("valid") {
                Response::Error { code: back, .. } => assert_eq!(back, *code),
                other => panic!("wrong body {other:?}"),
            }
        }
        assert!(error_code_from_wire(0).is_err());
        assert!(error_code_from_wire(200).is_err());
    }

    /// Yields `feed` one byte per read, then reports `WouldBlock` forever —
    /// a peer that starts a frame and goes silent.
    struct StallingStream {
        feed: Vec<u8>,
        pos: usize,
    }

    impl std::io::Read for StallingStream {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos < self.feed.len() && !buf.is_empty() {
                buf[0] = self.feed[self.pos];
                self.pos += 1;
                Ok(1)
            } else {
                Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
            }
        }
    }

    #[test]
    fn mid_frame_stall_is_abandoned_not_retried_forever() {
        // A partial header followed by silence must end in CorruptStream
        // once the stall deadline passes — never an infinite retry loop.
        let mut partial = StallingStream {
            feed: encode_bodyless(FrameKind::Health, 1)[..5].to_vec(),
            pos: 0,
        };
        let err = read_frame_stall(&mut partial, DEFAULT_MAX_BODY, 20).expect_err("must abandon");
        assert_eq!(err.code(), ErrorCode::CorruptStream);
        assert!(err.to_string().contains("stalled mid-frame"), "{err}");

        // Same for a complete header whose promised body never arrives.
        let mut bodyless = StallingStream {
            feed: encode_request(FrameKind::Compress, 2, "p", DType::U8, &[4], &[0u8; 4])
                [..HEADER_LEN]
                .to_vec(),
            pos: 0,
        };
        let err = read_frame_stall(&mut bodyless, DEFAULT_MAX_BODY, 20).expect_err("must abandon");
        assert_eq!(err.code(), ErrorCode::CorruptStream);

        // A timeout before any byte is still a plain Idle, not an error.
        let mut idle = StallingStream {
            feed: Vec::new(),
            pos: 0,
        };
        assert!(matches!(
            read_frame_stall(&mut idle, DEFAULT_MAX_BODY, 20),
            Ok(ReadOutcome::Idle)
        ));
    }

    #[test]
    fn garbage_profile_names_are_rejected() {
        for name in ["", "a b", "p\u{1F980}", "../../etc/passwd\0"] {
            let mut b = ByteWriter::new();
            b.put_str(name);
            b.put_u8(DType::F32.tag());
            b.put_dims(&[4]);
            b.put_section(&[0u8; 16]);
            let err = parse_request(FrameKind::Compress, b.as_slice()).expect_err(name);
            assert_eq!(err.code(), ErrorCode::CorruptStream, "{name:?}");
        }
        // Too-long name.
        let long = "x".repeat(MAX_PROFILE_NAME + 1);
        let mut b = ByteWriter::new();
        b.put_str(&long);
        b.put_u8(DType::F32.tag());
        b.put_dims(&[4]);
        b.put_section(&[0u8; 16]);
        let err = parse_request(FrameKind::Compress, b.as_slice()).expect_err("too long");
        assert_eq!(err.code(), ErrorCode::CorruptStream);
    }
}
