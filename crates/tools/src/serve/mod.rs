//! `pressio serve`: a long-lived, admission-controlled compression daemon.
//!
//! The daemon listens on a Unix socket and/or TCP, speaks the
//! length-prefixed frame protocol of [`protocol`], and dispatches requests
//! to a pool of pre-configured named **profiles** — each a `guard`-wrapped
//! compressor stack armed once at startup and cloned per worker. The
//! robustness composition is the point (this is the first multi-request
//! concurrent composition of every safety layer in the tree):
//!
//! - **Admission control**: a bounded [`AdmissionQueue`] sheds load with a
//!   structured `Busy`/retry-after response instead of queueing
//!   unboundedly, so accepted-request latency stays bounded by
//!   `queue_capacity × worst-case service time`.
//! - **Per-request safety envelope**: every request runs under its own
//!   [`CancelToken`] (per-profile deadline + memory budget) on a watchdog
//!   worker via [`run_cancellable`], inside the profile's `guard` stack —
//!   a hung or panicking codec costs one structured error, never a wedged
//!   worker or an unwinding daemon.
//! - **Backpressure**: responses flow through a *bounded* per-connection
//!   write buffer. A slow reader fills it, which stalls the workers
//!   serving it (bounded patience), which fills the admission queue, which
//!   sheds — pressure propagates to the edge instead of accumulating as
//!   memory. A reader stalled past `slow_writer_give_up_ms` forfeits the
//!   response and the connection is poisoned and closed; a peer that
//!   half-writes a frame and goes silent is abandoned by the protocol
//!   layer's mid-frame stall deadline.
//! - **Bounded connections**: accepted connections are capped
//!   (`max_connections`); past the cap a new peer gets one structured
//!   `Busy` frame and is closed at accept, and finished connection
//!   threads are reaped on every accept instead of accumulating for the
//!   daemon's lifetime.
//! - **Graceful drain**: `SIGTERM` (CLI) or a `Shutdown` frame stops
//!   admission ([`DrainGate::begin_drain`]), finishes everything already
//!   admitted, and escalates to cooperative cancellation of in-flight
//!   tokens if the drain deadline passes. [`Server::shutdown`] joins every
//!   thread it spawned — force-closing the sockets of connections that do
//!   not wind down within a bounded grace period, so a stalled peer can
//!   never hang the drain — and reports whether it was clean. A `Shutdown`
//!   frame is only honored from the Unix socket unless
//!   `allow_remote_shutdown` is set: an unauthenticated TCP peer cannot
//!   terminate the daemon.
//! - **Observability**: a `Health` frame returns queue depth, shed counts,
//!   and per-profile p50/p99 latency; the same numbers flow through the
//!   trace layer as `serve:*` counters.

pub mod client;
pub mod load;
pub mod protocol;

use std::collections::{BTreeMap, HashMap};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use libpressio::core::cancel::CancelToken;
use libpressio::core::serve::{AdmissionQueue, DrainGate, InFlightPermit, ShedReason};
use libpressio::core::{
    checked_geometry, registry, run_cancellable, spawn_service, trace, watchdog_stats,
};
use libpressio::{CompressorHandle, DType, Data, Error, ErrorCode, Options, Result};

use protocol::{
    encode_response, parse_request, read_frame, FrameKind, ReadOutcome, RequestBody, Response,
    DEFAULT_MAX_BODY,
};

/// Socket read timeout: how often idle readers re-check the drain flag.
const READ_POLL_MS: u64 = 50;
/// Socket write timeout: the longest a writer blocks on a stuffed peer
/// before the connection is declared dead.
const WRITE_TIMEOUT_MS: u64 = 500;
/// Acceptor poll interval while the listener has no pending connection.
const ACCEPT_POLL_MS: u64 = 10;
/// Re-poll interval while a bounded response send waits for buffer space.
const SEND_POLL_MS: u64 = 2;

/// One named compressor profile: what to arm, how to bound it.
#[derive(Debug, Clone)]
pub struct ProfileSpec {
    /// Wire name clients address (charset-validated like the protocol).
    pub name: String,
    /// Registry name of the child compressor the guard wraps.
    pub compressor: String,
    /// Options applied to the guard stack (child keys forwarded).
    pub options: Options,
    /// Per-request deadline; 0 uses the server default (never unbounded).
    pub deadline_ms: u64,
    /// Per-request memory budget in bytes; 0 = unlimited.
    pub memory_budget_bytes: u64,
}

impl ProfileSpec {
    /// Parse a CLI profile spec: `name=compressor[,key=value]*`.
    ///
    /// `deadline_ms` and `memory_budget_bytes` are profile-level keys;
    /// `fallbacks=a|b` becomes the guard's fallback chain; every other
    /// key is forwarded to the compressor stack (typed like `-O`:
    /// integer, then float, then string).
    pub fn parse(spec: &str) -> Result<ProfileSpec> {
        let (name, rest) = spec
            .split_once('=')
            .ok_or_else(|| Error::invalid_argument(format!("profile spec {spec:?}: expected name=compressor[,key=value]*")))?;
        protocol::validate_profile_name(name)
            .map_err(|e| Error::invalid_argument(format!("profile name {name:?}: {e}")))?;
        let mut parts = rest.split(',');
        let compressor = parts
            .next()
            .filter(|c| !c.is_empty())
            .ok_or_else(|| Error::invalid_argument(format!("profile {name:?}: missing compressor name")))?
            .to_string();
        let mut out = ProfileSpec {
            name: name.to_string(),
            compressor,
            options: Options::new(),
            deadline_ms: 0,
            memory_budget_bytes: 0,
        };
        for part in parts {
            let (k, v) = part.split_once('=').ok_or_else(|| {
                Error::invalid_argument(format!("profile {name:?}: expected key=value, got {part:?}"))
            })?;
            match k {
                "deadline_ms" => {
                    out.deadline_ms = v.parse::<u64>().map_err(|_| {
                        Error::invalid_argument(format!("profile {name:?}: bad deadline_ms {v:?}"))
                    })?;
                }
                "memory_budget_bytes" => {
                    out.memory_budget_bytes = v.parse::<u64>().map_err(|_| {
                        Error::invalid_argument(format!(
                            "profile {name:?}: bad memory_budget_bytes {v:?}"
                        ))
                    })?;
                }
                "fallbacks" => {
                    out.options
                        .set("guard:fallbacks", v.split('|').collect::<Vec<_>>().join(","));
                }
                _ => {
                    if let Ok(i) = v.parse::<i64>() {
                        out.options.set(k, i);
                    } else if let Ok(f) = v.parse::<f64>() {
                        out.options.set(k, f);
                    } else {
                        out.options.set(k, v);
                    }
                }
            }
        }
        Ok(out)
    }

    /// The default profile set armed when the CLI passes no `--profile`:
    /// a raw passthrough, a lossless stack, and the two lossy floats.
    pub fn defaults() -> Vec<ProfileSpec> {
        let plain = |name: &str, compressor: &str| ProfileSpec {
            name: name.to_string(),
            compressor: compressor.to_string(),
            options: Options::new(),
            deadline_ms: 0,
            memory_budget_bytes: 0,
        };
        let mut sz = plain("sz_abs_1e3", "sz");
        sz.options.set("sz:abs_err_bound", 1e-3);
        vec![
            plain("raw", "noop"),
            plain("lossless", "deflate"),
            sz,
            plain("zfp_default", "zfp"),
        ]
    }
}

/// Daemon tuning. Zero-valued fields resolve to defaults in
/// [`Server::start`].
#[derive(Debug, Clone, Default)]
pub struct ServeConfig {
    /// Named profiles to arm (empty → [`ProfileSpec::defaults`]).
    pub profiles: Vec<ProfileSpec>,
    /// Worker threads executing requests (0 → min(4, pool width)).
    pub workers: usize,
    /// Admission-queue bound (0 → 2 × workers).
    pub queue_capacity: usize,
    /// Unix socket path to bind.
    pub unix_path: Option<PathBuf>,
    /// TCP address to bind, e.g. `127.0.0.1:0`.
    pub tcp_addr: Option<String>,
    /// Graceful-drain deadline before escalating to cancellation (0 → 5000).
    pub drain_deadline_ms: u64,
    /// Per-connection frame-body cap (0 → [`DEFAULT_MAX_BODY`]).
    pub max_body: usize,
    /// Bounded write-buffer depth, in frames (0 → 8).
    pub write_buffer_frames: usize,
    /// Deadline for profiles that declare none (0 → 30_000); requests are
    /// never unbounded.
    pub default_deadline_ms: u64,
    /// Worker patience for a stuffed write buffer before the response is
    /// forfeited and the connection poisoned (0 → 2000).
    pub slow_writer_give_up_ms: u64,
    /// Cap on concurrently accepted connections; past it a new peer is
    /// answered with one `Busy` frame and closed at accept (0 → 256).
    pub max_connections: usize,
    /// Honor `Shutdown` frames arriving over TCP. Off by default: any
    /// peer that can reach the TCP listener could otherwise terminate the
    /// daemon; the Unix socket (filesystem-permissioned) always may.
    pub allow_remote_shutdown: bool,
}

/// A connection's response path: the bounded write buffer plus the poison
/// flag that condemns the whole connection. Cloned into every [`Request`]
/// admitted from that connection.
#[derive(Clone)]
struct ConnTx {
    tx: SyncSender<Vec<u8>>,
    /// Set when the connection is condemned — a slow-writer give-up or a
    /// write failure. The writer thread closes the stream on sight and the
    /// reader stops consuming, honoring the documented contract that a
    /// forfeited response ends the connection rather than leaving the
    /// client blocked on a request that will never be answered.
    poisoned: Arc<AtomicBool>,
}

/// What a request needs once admitted: everything owned, plus the permit
/// proving it counts as in-flight. Dropping a `Request` (shed after
/// admission, cleared at hard shutdown) retires the permit.
struct Request {
    /// Server-unique id, key into the active-token table.
    serial: u64,
    /// Client correlation id, echoed in the response frame.
    client_id: u64,
    kind: FrameKind,
    profile: String,
    dtype: DType,
    dims: Vec<usize>,
    payload: Vec<u8>,
    /// The originating connection's response path.
    conn: ConnTx,
    permit: InFlightPermit,
    /// Trace-clock ns at admission, for end-to-end latency accounting.
    enqueue_ns: u64,
}

/// Per-profile accounting for the health frame.
struct ProfileStats {
    requests: u64,
    ok: u64,
    errors: u64,
    timeouts: u64,
    cancelled: u64,
    /// Latency ring (ms, end-to-end from admission), capacity 4096.
    samples: Vec<f64>,
    next: usize,
}

impl ProfileStats {
    fn new() -> ProfileStats {
        ProfileStats {
            requests: 0,
            ok: 0,
            errors: 0,
            timeouts: 0,
            cancelled: 0,
            samples: Vec::new(),
            next: 0,
        }
    }

    fn record(&mut self, outcome: &Response, latency_ms: f64) {
        self.requests += 1;
        match outcome {
            Response::Ok(_) => self.ok += 1,
            Response::Error { code, .. } => {
                self.errors += 1;
                match code {
                    ErrorCode::Timeout => self.timeouts += 1,
                    ErrorCode::Cancelled => self.cancelled += 1,
                    _ => {}
                }
            }
            _ => {}
        }
        const RING: usize = 4096;
        if self.samples.len() < RING {
            self.samples.push(latency_ms);
        } else {
            self.samples[self.next] = latency_ms;
        }
        self.next = (self.next + 1) % RING;
    }
}

/// `q`-th percentile (0..=100) of a sample set, by sorted copy.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = (q / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Cross-thread daemon state.
struct Shared {
    queue: AdmissionQueue<Request>,
    gate: Arc<DrainGate>,
    /// Pristine per-profile guard stacks, cloned by workers.
    templates: Mutex<HashMap<String, CompressorHandle>>,
    /// Resolved per-profile bounds.
    bounds: HashMap<String, (u64, u64)>,
    /// Tokens of requests currently executing, for drain escalation.
    active: Mutex<HashMap<u64, CancelToken>>,
    per_profile: Mutex<BTreeMap<String, ProfileStats>>,
    draining: AtomicBool,
    shutdown_requested: AtomicBool,
    serial: AtomicU64,
    busy_responses: AtomicU64,
    malformed: AtomicU64,
    slow_drops: AtomicU64,
    connections: AtomicU64,
    /// Live connections: reaped on every accept, force-closed at drain.
    conns: Mutex<Vec<ConnSlot>>,
    max_body: usize,
    write_buffer_frames: usize,
    slow_writer_give_up_ms: u64,
    max_connections: usize,
    allow_remote_shutdown: bool,
}

/// One accepted connection's threads plus a stream clone kept solely so
/// shutdown can force-close a peer that will not wind down on its own.
struct ConnSlot {
    reader: JoinHandle<()>,
    writer: JoinHandle<()>,
    stream: Stream,
}

/// Join and drop every connection whose threads have both finished, so a
/// long-lived daemon's thread table tracks *live* connections instead of
/// every connection ever accepted.
fn reap_finished(conns: &mut Vec<ConnSlot>) {
    let mut i = 0;
    while i < conns.len() {
        if conns[i].reader.is_finished() && conns[i].writer.is_finished() {
            let slot = conns.swap_remove(i);
            let _ = slot.reader.join();
            let _ = slot.writer.join();
        } else {
            i += 1;
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

impl Stream {
    fn configure(&self) -> std::io::Result<()> {
        let read = Some(Duration::from_millis(READ_POLL_MS));
        let write = Some(Duration::from_millis(WRITE_TIMEOUT_MS));
        match self {
            Stream::Tcp(s) => {
                s.set_nodelay(true)?;
                s.set_read_timeout(read)?;
                s.set_write_timeout(write)
            }
            Stream::Unix(s) => {
                s.set_read_timeout(read)?;
                s.set_write_timeout(write)
            }
        }
    }

    fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    fn shutdown(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl std::io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl std::io::Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// How a completed [`Server::shutdown`] went.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Did every in-flight request finish inside the drain deadline
    /// without escalation?
    pub drained_clean: bool,
    /// In-flight tokens cooperatively cancelled after the deadline.
    pub cancelled_inflight: usize,
    /// Admitted-but-undispatched requests answered `Busy` at hard cutoff.
    pub cleared_queued: usize,
    /// Requests in flight after escalation (0 on any sane run).
    pub stuck_inflight: usize,
    /// Watchdog pool `(spawned, idle)` after the drain settled; equal
    /// numbers mean no leaked deadline workers.
    pub watchdog: (usize, usize),
    /// Total `Busy` responses served over the daemon's lifetime.
    pub busy_responses: u64,
    /// Final queue counters.
    pub queue: libpressio::core::QueueStats,
}

/// A running daemon: listeners, workers, and connection threads.
pub struct Server {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    tcp_local: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    drain_deadline_ms: u64,
}

impl Server {
    /// Arm the profiles, bind the listeners, and start the daemon.
    pub fn start(cfg: ServeConfig) -> Result<Server> {
        libpressio::init();
        let workers = if cfg.workers == 0 {
            libpressio::core::available_threads().min(4)
        } else {
            cfg.workers
        };
        let queue_capacity = if cfg.queue_capacity == 0 {
            workers * 2
        } else {
            cfg.queue_capacity
        };
        let default_deadline_ms = if cfg.default_deadline_ms == 0 {
            30_000
        } else {
            cfg.default_deadline_ms
        };
        let specs = if cfg.profiles.is_empty() {
            ProfileSpec::defaults()
        } else {
            cfg.profiles.clone()
        };

        // Arm every profile eagerly: bad names or options fail startup,
        // not the first request.
        let mut templates = HashMap::new();
        let mut bounds = HashMap::new();
        for spec in &specs {
            protocol::validate_profile_name(&spec.name)
                .map_err(|e| Error::invalid_argument(format!("profile {:?}: {e}", spec.name)))?;
            let mut handle = registry().compressor("guard")?;
            let mut opts = Options::new();
            opts.set("guard:compressor", spec.compressor.as_str());
            opts.merge(&spec.options);
            // The serve layer owns the deadline through the request token;
            // the guard still enforces an explicit per-profile
            // guard:timeout_ms if the spec set one.
            handle.set_options(&opts).map_err(|e| {
                Error::invalid_argument(format!("profile {:?}: {e}", spec.name))
            })?;
            let deadline = if spec.deadline_ms == 0 {
                default_deadline_ms
            } else {
                spec.deadline_ms
            };
            templates.insert(spec.name.clone(), handle);
            bounds.insert(spec.name.clone(), (deadline, spec.memory_budget_bytes));
        }

        let shared = Arc::new(Shared {
            queue: AdmissionQueue::new(queue_capacity),
            gate: Arc::new(DrainGate::new()),
            templates: Mutex::new(templates),
            bounds,
            active: Mutex::new(HashMap::new()),
            per_profile: Mutex::new(BTreeMap::new()),
            draining: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            serial: AtomicU64::new(1),
            busy_responses: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            slow_drops: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            max_body: if cfg.max_body == 0 {
                DEFAULT_MAX_BODY
            } else {
                cfg.max_body
            },
            write_buffer_frames: if cfg.write_buffer_frames == 0 {
                8
            } else {
                cfg.write_buffer_frames
            },
            slow_writer_give_up_ms: if cfg.slow_writer_give_up_ms == 0 {
                2_000
            } else {
                cfg.slow_writer_give_up_ms
            },
            max_connections: if cfg.max_connections == 0 {
                256
            } else {
                cfg.max_connections
            },
            allow_remote_shutdown: cfg.allow_remote_shutdown,
        });

        let mut threads = Vec::new();
        let mut tcp_local = None;
        let mut unix_path = None;

        if let Some(addr) = &cfg.tcp_addr {
            let listener = TcpListener::bind(addr.as_str())
                .map_err(|e| Error::new(ErrorCode::Io, format!("bind {addr}: {e}")))?;
            tcp_local = listener.local_addr().ok();
            listener
                .set_nonblocking(true)
                .map_err(|e| Error::new(ErrorCode::Io, e.to_string()))?;
            let sh = Arc::clone(&shared);
            threads.push(spawn_service("serve-accept-tcp", move || {
                acceptor_loop(sh, Listener::Tcp(listener));
            })?);
        }
        if let Some(path) = &cfg.unix_path {
            // A stale socket file from a crashed daemon blocks bind.
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)
                .map_err(|e| Error::new(ErrorCode::Io, format!("bind {}: {e}", path.display())))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| Error::new(ErrorCode::Io, e.to_string()))?;
            unix_path = Some(path.clone());
            let sh = Arc::clone(&shared);
            threads.push(spawn_service("serve-accept-unix", move || {
                acceptor_loop(sh, Listener::Unix(listener));
            })?);
        }
        if tcp_local.is_none() && unix_path.is_none() {
            return Err(Error::invalid_argument(
                "serve needs at least one listener (tcp_addr or unix_path)",
            ));
        }

        for i in 0..workers {
            let sh = Arc::clone(&shared);
            threads.push(spawn_service(&format!("serve-worker-{i}"), move || {
                worker_loop(sh);
            })?);
        }

        Ok(Server {
            shared,
            threads,
            tcp_local,
            unix_path,
            drain_deadline_ms: if cfg.drain_deadline_ms == 0 {
                5_000
            } else {
                cfg.drain_deadline_ms
            },
        })
    }

    /// The bound TCP address (useful with port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_local
    }

    /// The bound Unix socket path.
    pub fn unix_path(&self) -> Option<&PathBuf> {
        self.unix_path.as_ref()
    }

    /// Did a client send a `Shutdown` frame?
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::Relaxed)
    }

    /// The health document, identical to the `Health` frame's body.
    pub fn health_json(&self) -> String {
        health_json(&self.shared)
    }

    /// Graceful drain: stop admission, finish what was admitted, escalate
    /// to cooperative cancellation at the drain deadline, join every
    /// thread, and report.
    pub fn shutdown(self) -> DrainReport {
        let sh = &self.shared;
        sh.draining.store(true, Ordering::SeqCst);
        sh.gate.begin_drain();
        // Already-admitted requests are still served; new ones shed Closed.
        sh.queue.close();

        let drained_clean = sh.gate.wait_idle_ms(self.drain_deadline_ms);
        let mut cancelled_inflight = 0;
        let mut cleared_queued = 0;
        if !drained_clean {
            // Escalation: trip every in-flight token (their watchdogs
            // return Timeout/Cancelled structurally) and answer queued
            // requests that never started with a shutdown Busy.
            for token in sh.active.lock().unwrap_or_else(|p| p.into_inner()).values() {
                token.cancel();
                cancelled_inflight += 1;
            }
            for req in sh.queue.close_and_clear() {
                respond_busy(sh, &req.conn, req.client_id, 0, "daemon shutting down");
                cleared_queued += 1;
                drop(req); // retires the permit
            }
            sh.gate.wait_idle_ms(self.drain_deadline_ms);
        }
        let stuck_inflight = sh.gate.inflight();

        // Workers exit when the closed queue empties; acceptors poll the
        // drain flag; readers see it at the next idle tick; writers exit
        // when every sender is gone.
        for t in self.threads {
            let _ = t.join();
        }
        // Connection threads get a bounded grace window to wind down (an
        // idle reader notices the drain flag within one read-timeout
        // tick); whoever is left — a peer mid-frame, a stuffed writer —
        // has its socket force-closed so the joins below cannot hang on a
        // half-written frame.
        let grace_deadline = trace::monotonic_ns().saturating_add(500_000_000);
        loop {
            let all_done = {
                let mut conns = lock_ignore(&sh.conns);
                reap_finished(&mut conns);
                conns.is_empty()
            };
            if all_done || trace::monotonic_ns() >= grace_deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(SEND_POLL_MS.min(5)));
        }
        let leftovers: Vec<ConnSlot> = lock_ignore(&sh.conns).drain(..).collect();
        for slot in &leftovers {
            slot.stream.shutdown();
        }
        for slot in leftovers {
            let _ = slot.reader.join();
            let _ = slot.writer.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }

        // The watchdog pool drains asynchronously (cancelled work stops at
        // its next checkpoint); wait boundedly for spawned == idle.
        let wd_deadline = trace::monotonic_ns().saturating_add(2_000_000_000);
        let mut watchdog = watchdog_stats();
        while watchdog.0 != watchdog.1 && trace::monotonic_ns() < wd_deadline {
            std::thread::sleep(Duration::from_millis(SEND_POLL_MS.min(5)));
            watchdog = watchdog_stats();
        }

        DrainReport {
            drained_clean,
            cancelled_inflight,
            cleared_queued,
            stuck_inflight,
            watchdog,
            busy_responses: sh.busy_responses.load(Ordering::Relaxed),
            queue: sh.queue.stats(),
        }
    }
}

fn lock_ignore<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn acceptor_loop(shared: Arc<Shared>, listener: Listener) {
    // TCP peers are "remote" for the Shutdown-frame policy; the Unix
    // socket is local (its reach is bounded by filesystem permissions).
    let remote = matches!(listener, Listener::Tcp(_));
    loop {
        if shared.draining.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok(stream) => {
                if spawn_connection(&shared, stream, remote).is_err() {
                    trace::count("serve:conn_spawn_failed", 1);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(ACCEPT_POLL_MS.min(50)));
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(ACCEPT_POLL_MS.min(50)));
            }
        }
    }
}

fn spawn_connection(shared: &Arc<Shared>, stream: Stream, remote: bool) -> Result<()> {
    stream
        .configure()
        .map_err(|e| Error::new(ErrorCode::Io, e.to_string()))?;
    // Reap finished connections on every accept, then enforce the cap —
    // both are what keep a long-lived daemon's thread table bounded by
    // *live* connections. The slight overshoot two racing acceptors can
    // cause is harmless; the Busy write below happens outside the lock so
    // a slow rejected peer cannot stall accepts.
    let live = {
        let mut conns = lock_ignore(&shared.conns);
        reap_finished(&mut conns);
        conns.len()
    };
    if live >= shared.max_connections {
        shared.busy_responses.fetch_add(1, Ordering::Relaxed);
        trace::count("serve:conn_rejected", 1);
        let frame = encode_response(
            0,
            &Response::Busy {
                retry_after_ms: 100,
                depth: live as u32,
                message: format!("connection limit ({}) reached", shared.max_connections),
            },
        );
        let mut stream = stream;
        let _ = protocol::write_frame(&mut stream, &frame);
        stream.shutdown();
        return Ok(());
    }
    let writer_stream = stream
        .try_clone()
        .map_err(|e| Error::new(ErrorCode::Io, e.to_string()))?;
    let shutdown_stream = stream
        .try_clone()
        .map_err(|e| Error::new(ErrorCode::Io, e.to_string()))?;
    shared.connections.fetch_add(1, Ordering::Relaxed);
    trace::count("serve:connections", 1);
    let (tx, rx) = sync_channel::<Vec<u8>>(shared.write_buffer_frames);
    let conn = ConnTx {
        tx,
        poisoned: Arc::new(AtomicBool::new(false)),
    };

    let sh = Arc::clone(shared);
    let poisoned_w = Arc::clone(&conn.poisoned);
    let writer = spawn_service("serve-conn-writer", move || {
        writer_loop(sh, writer_stream, rx, poisoned_w);
    })?;
    let sh = Arc::clone(shared);
    let reader = spawn_service("serve-conn-reader", move || {
        reader_loop(sh, stream, conn, remote);
    })?;
    lock_ignore(&shared.conns).push(ConnSlot {
        reader,
        writer,
        stream: shutdown_stream,
    });
    Ok(())
}

fn writer_loop(
    _shared: Arc<Shared>,
    mut stream: Stream,
    rx: Receiver<Vec<u8>>,
    poisoned: Arc<AtomicBool>,
) {
    loop {
        match rx.recv_timeout(Duration::from_millis(READ_POLL_MS)) {
            Ok(frame) => {
                if poisoned.load(Ordering::Relaxed) {
                    break;
                }
                if protocol::write_frame(&mut stream, &frame).is_err() {
                    // Stuffed or dead peer past the write timeout: the
                    // connection is over; readers see the poison flag.
                    poisoned.store(true, Ordering::SeqCst);
                    break;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if poisoned.load(Ordering::Relaxed) {
                    break;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    stream.shutdown();
}

/// Bounded-patience send into a connection's write buffer. Blocks while
/// the buffer is full (this is the backpressure path: the worker stalls,
/// the queue fills, admission sheds) but gives up after
/// `slow_writer_give_up_ms` — and a give-up *poisons the connection*: the
/// writer closes the stream, so the client sees a closed socket instead
/// of silently waiting forever on a request id that was forfeited.
fn bounded_send(shared: &Shared, conn: &ConnTx, frame: Vec<u8>) -> bool {
    let deadline = trace::monotonic_ns()
        .saturating_add(shared.slow_writer_give_up_ms.saturating_mul(1_000_000));
    let mut frame = frame;
    loop {
        if conn.poisoned.load(Ordering::Relaxed) {
            return false;
        }
        match conn.tx.try_send(frame) {
            Ok(()) => return true,
            Err(TrySendError::Full(f)) => {
                if trace::monotonic_ns() >= deadline {
                    shared.slow_drops.fetch_add(1, Ordering::Relaxed);
                    trace::count("serve:slow_reader_drop", 1);
                    conn.poisoned.store(true, Ordering::SeqCst);
                    return false;
                }
                frame = f;
                std::thread::sleep(Duration::from_millis(SEND_POLL_MS.min(5)));
            }
            Err(TrySendError::Disconnected(_)) => return false,
        }
    }
}

fn respond_busy(shared: &Shared, conn: &ConnTx, client_id: u64, depth: usize, msg: &str) {
    shared.busy_responses.fetch_add(1, Ordering::Relaxed);
    trace::count("serve:busy", 1);
    // Retry hint grows with the backlog the shed request saw.
    let retry_after_ms = (5 + 2 * depth as u32).clamp(5, 250);
    let frame = encode_response(
        client_id,
        &Response::Busy {
            retry_after_ms,
            depth: depth as u32,
            message: msg.to_string(),
        },
    );
    let _ = bounded_send(shared, conn, frame);
}

fn reader_loop(shared: Arc<Shared>, mut stream: Stream, conn: ConnTx, remote: bool) {
    loop {
        if conn.poisoned.load(Ordering::Relaxed) {
            break;
        }
        match read_frame(&mut stream, shared.max_body) {
            Ok(ReadOutcome::Idle) => {
                if shared.draining.load(Ordering::Relaxed) {
                    break;
                }
            }
            Ok(ReadOutcome::Eof) => break,
            Ok(ReadOutcome::Frame(header, body)) => {
                if !handle_frame(&shared, &conn, header, &body, remote) {
                    break;
                }
            }
            Err(e) if e.code() == ErrorCode::CorruptStream => {
                // Malformed framing (including a mid-frame stall): answer
                // structurally, then close — we cannot trust the byte
                // stream to be in sync anymore.
                shared.malformed.fetch_add(1, Ordering::Relaxed);
                trace::count("serve:malformed", 1);
                let frame = encode_response(
                    0,
                    &Response::Error {
                        code: ErrorCode::CorruptStream,
                        message: e.to_string(),
                    },
                );
                let _ = bounded_send(&shared, &conn, frame);
                break;
            }
            Err(_) => break,
        }
    }
    // Dropping the ConnTx lets the writer drain pending responses and exit.
}

/// Handle one parsed frame; `false` closes the connection.
fn handle_frame(
    shared: &Arc<Shared>,
    conn: &ConnTx,
    header: protocol::FrameHeader,
    body: &[u8],
    remote: bool,
) -> bool {
    let parsed = match parse_request(header.kind, body) {
        Ok(p) => p,
        Err(e) => {
            // The frame boundary itself was sound (header validated, body
            // consumed), so a garbage *body* is answerable in-protocol
            // without losing sync.
            shared.malformed.fetch_add(1, Ordering::Relaxed);
            trace::count("serve:malformed", 1);
            let frame = encode_response(
                header.request_id,
                &Response::Error {
                    code: e.code(),
                    message: e.to_string(),
                },
            );
            return bounded_send(shared, conn, frame);
        }
    };
    match parsed {
        RequestBody::Health => {
            let frame =
                encode_response(header.request_id, &Response::Health(health_json(shared)));
            bounded_send(shared, conn, frame)
        }
        RequestBody::Shutdown => {
            if remote && !shared.allow_remote_shutdown {
                trace::count("serve:shutdown_refused", 1);
                let frame = encode_response(
                    header.request_id,
                    &Response::Error {
                        code: ErrorCode::Unsupported,
                        message: "shutdown over TCP is disabled; use the unix socket or \
                                  start the daemon with --allow-remote-shutdown"
                            .to_string(),
                    },
                );
                return bounded_send(shared, conn, frame);
            }
            shared.shutdown_requested.store(true, Ordering::SeqCst);
            trace::count("serve:shutdown_requested", 1);
            let frame = encode_response(header.request_id, &Response::Ok(Vec::new()));
            let _ = bounded_send(shared, conn, frame);
            true
        }
        RequestBody::Compress {
            profile,
            dtype,
            dims,
            payload,
        }
        | RequestBody::Decompress {
            profile,
            dtype,
            dims,
            payload,
        } => {
            if !shared.bounds.contains_key(profile) {
                let frame = encode_response(
                    header.request_id,
                    &Response::Error {
                        code: ErrorCode::NotFound,
                        message: format!("no profile named {profile:?}"),
                    },
                );
                return bounded_send(shared, conn, frame);
            }
            // A decompress declares its *output* geometry; cap it by the
            // same frame-body limit as inputs, or a hostile client could
            // make a worker allocate (and frame) an arbitrarily large
            // response from a tiny request.
            if header.kind == FrameKind::Decompress {
                let out_bytes = checked_geometry(dtype, &dims).unwrap_or(usize::MAX);
                if out_bytes > shared.max_body {
                    let frame = encode_response(
                        header.request_id,
                        &Response::Error {
                            code: ErrorCode::InvalidArgument,
                            message: format!(
                                "declared output geometry of {out_bytes} bytes exceeds the \
                                 {}-byte frame cap",
                                shared.max_body
                            ),
                        },
                    );
                    return bounded_send(shared, conn, frame);
                }
            }
            let Some(permit) = shared.gate.admit() else {
                respond_busy(shared, conn, header.request_id, 0, "draining: not accepting new requests");
                return true;
            };
            let request = Request {
                serial: shared.serial.fetch_add(1, Ordering::Relaxed),
                client_id: header.request_id,
                kind: header.kind,
                profile: profile.to_string(),
                dtype,
                dims,
                payload: payload.to_vec(),
                conn: conn.clone(),
                permit,
                enqueue_ns: trace::monotonic_ns(),
            };
            match shared.queue.try_submit(request) {
                Ok(_) => true,
                Err((request, reason)) => {
                    let depth = shared.queue.depth();
                    let msg = match reason {
                        ShedReason::Full => "admission queue full",
                        ShedReason::Closed => "draining: not accepting new requests",
                    };
                    respond_busy(shared, &request.conn, request.client_id, depth, msg);
                    drop(request); // permit retires here, never executed
                    true
                }
            }
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    // Each worker owns private clones of the profile stacks, pre-armed so
    // the first request pays no arming latency.
    let mut handles: HashMap<String, CompressorHandle> = {
        let templates = lock_ignore(&shared.templates);
        templates
            .iter()
            .map(|(name, h)| (name.clone(), h.clone()))
            .collect()
    };
    while let Some(request) = shared.queue.pop() {
        process_request(&shared, &mut handles, request);
    }
}

fn execute(
    handle: &mut CompressorHandle,
    kind: FrameKind,
    dtype: DType,
    dims: &[usize],
    payload: &[u8],
) -> Result<Vec<u8>> {
    match kind {
        FrameKind::Compress => {
            let expect = checked_geometry(dtype, dims)?;
            if payload.len() != expect {
                return Err(Error::invalid_argument(format!(
                    "payload is {} bytes, geometry needs {expect}",
                    payload.len()
                )));
            }
            let mut input = Data::owned(dtype, dims.to_vec());
            input.as_bytes_mut().copy_from_slice(payload);
            handle.compress(&input).map(|d| d.as_bytes().to_vec())
        }
        FrameKind::Decompress => {
            let stream = Data::from_bytes(payload);
            let mut out = Data::owned(dtype, dims.to_vec());
            handle
                .decompress(&stream, &mut out)
                .map(|()| out.as_bytes().to_vec())
        }
        _ => Err(Error::internal("non-request frame reached a worker")),
    }
}

fn process_request(
    shared: &Arc<Shared>,
    handles: &mut HashMap<String, CompressorHandle>,
    request: Request,
) {
    let Request {
        serial,
        client_id,
        kind,
        profile,
        dtype,
        dims,
        payload,
        conn,
        permit,
        enqueue_ns,
    } = request;

    let (deadline_ms, budget_bytes) = shared
        .bounds
        .get(&profile)
        .copied()
        .unwrap_or((30_000, 0));
    let token = CancelToken::new();
    token.set_deadline_ms(deadline_ms.max(1));
    if budget_bytes > 0 {
        token.set_memory_budget(budget_bytes);
    }
    #[cfg(feature = "chaos")]
    libpressio::core::chaos::service_point(&token);

    lock_ignore(&shared.active).insert(serial, token.clone());

    // Arm this worker's stack (lazily re-armed after a detached timeout
    // lost the previous instance to its watchdog worker).
    let armed = handles.remove(&profile).or_else(|| {
        let templates = lock_ignore(&shared.templates);
        templates.get(&profile).cloned()
    });

    let profile_label = profile.clone();
    let outcome = match armed {
        None => Err(Error::not_found(format!("no profile named {profile:?}"))),
        Some(mut handle) => {
            let dims_exec = dims.clone();
            run_cancellable(&token, "serve:request", move || {
                let _span = trace::span_labeled("serve:request", || profile_label.clone());
                let r = execute(&mut handle, kind, dtype, &dims_exec, &payload);
                (handle, r)
            })
            .map(|(handle, r)| {
                handles.insert(profile.clone(), handle);
                r
            })
            .and_then(|r| r)
        }
    };

    lock_ignore(&shared.active).remove(&serial);

    let response = match outcome {
        // Never build a frame whose length field would truncate: a result
        // past the wire's u32 body limit becomes a structured error.
        Ok(bytes) if bytes.len() > protocol::MAX_WIRE_BODY - 64 => Response::Error {
            code: ErrorCode::Unsupported,
            message: format!(
                "result of {} bytes exceeds the wire frame limit",
                bytes.len()
            ),
        },
        Ok(bytes) => Response::Ok(bytes),
        Err(e) => Response::Error {
            code: e.code(),
            message: e.to_string(),
        },
    };
    let latency_ms =
        (trace::monotonic_ns().saturating_sub(enqueue_ns)) as f64 / 1_000_000.0;
    {
        let mut per_profile = lock_ignore(&shared.per_profile);
        per_profile
            .entry(profile)
            .or_insert_with(ProfileStats::new)
            .record(&response, latency_ms);
    }
    trace::count("serve:served", 1);

    #[cfg(feature = "chaos")]
    libpressio::core::chaos::service_point(&token);

    let frame = encode_response(client_id, &response);
    // A give-up here poisons the connection (see bounded_send): the client
    // is never left alive-but-unanswered on a forfeited response.
    let _ = bounded_send(shared, &conn, frame);
    drop(permit);
}

fn health_json(shared: &Arc<Shared>) -> String {
    let q = shared.queue.stats();
    let (wd_spawned, wd_idle) = watchdog_stats();
    let mut out = String::with_capacity(1024);
    out.push_str("{\"schema\":\"pressio-serve/health-v1\"");
    out.push_str(&format!(
        ",\"queue\":{{\"depth\":{},\"capacity\":{},\"accepted\":{},\"shed\":{},\"popped\":{},\"closed\":{}}}",
        q.depth, q.capacity, q.accepted, q.shed, q.popped, q.closed
    ));
    out.push_str(&format!(
        ",\"inflight\":{},\"draining\":{},\"connections\":{},\"busy_responses\":{},\"malformed\":{},\"slow_reader_drops\":{}",
        shared.gate.inflight(),
        shared.draining.load(Ordering::Relaxed),
        shared.connections.load(Ordering::Relaxed),
        shared.busy_responses.load(Ordering::Relaxed),
        shared.malformed.load(Ordering::Relaxed),
        shared.slow_drops.load(Ordering::Relaxed),
    ));
    out.push_str(&format!(
        ",\"watchdog\":{{\"spawned\":{wd_spawned},\"idle\":{wd_idle}}}"
    ));
    out.push_str(",\"profiles\":{");
    {
        let per_profile = lock_ignore(&shared.per_profile);
        let mut first = true;
        for (name, st) in per_profile.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\"{name}\":{{\"requests\":{},\"ok\":{},\"errors\":{},\"timeouts\":{},\"cancelled\":{},\"p50_ms\":{:.3},\"p99_ms\":{:.3}}}",
                st.requests,
                st.ok,
                st.errors,
                st.timeouts,
                st.cancelled,
                percentile(&st.samples, 50.0),
                percentile(&st.samples, 99.0),
            ));
        }
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_spec_parses() {
        let p = ProfileSpec::parse(
            "fast=sz,sz:abs_err_bound=0.001,deadline_ms=250,memory_budget_bytes=1048576,fallbacks=deflate|noop",
        )
        .expect("valid spec");
        assert_eq!(p.name, "fast");
        assert_eq!(p.compressor, "sz");
        assert_eq!(p.deadline_ms, 250);
        assert_eq!(p.memory_budget_bytes, 1_048_576);
        assert_eq!(
            p.options.get_as::<f64>("sz:abs_err_bound").unwrap(),
            Some(0.001)
        );
        assert_eq!(
            p.options.get_as::<String>("guard:fallbacks").unwrap(),
            Some("deflate,noop".to_string())
        );
        assert!(ProfileSpec::parse("bad profile=sz").is_err());
        assert!(ProfileSpec::parse("nameonly").is_err());
        assert!(ProfileSpec::parse("p=").is_err());
    }

    #[test]
    fn percentile_is_sane() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&samples, 50.0), 51.0);
        assert_eq!(percentile(&samples, 99.0), 99.0);
        assert_eq!(percentile(&samples, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
