//! `pressio bench --serve`: the daemon load harness.
//!
//! Starts an in-process [`Server`](super::Server) on loopback TCP, then
//! ramps concurrent clients through stages from nominal capacity to past
//! 2× capacity. Every request outcome is structured — `Ok` with a
//! latency sample, `Busy` with a retry hint, or a hard error — and the
//! report captures per-stage p50/p99 latency, throughput, and shed rate,
//! plus the final drain's cleanliness. The run itself *fails* (it does
//! not merely report) if overload produced a non-`Busy` failure, if the
//! drain left requests in flight, or if watchdog workers leaked: those
//! are the overload-robustness acceptance criteria, so the harness is the
//! gate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use libpressio::core::{spawn_service, trace};
use libpressio::{DType, Error, Result};

use super::client::{Client, ServeOutcome};
use super::{percentile, ServeConfig, Server};
use crate::bench::{json_string, parse_json, Json};

/// Schema marker for `BENCH_serve.json`.
pub const SERVE_SCHEMA: &str = "pressio-serve/bench-v1";

/// Load-harness tuning.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon worker threads (capacity ≈ workers).
    pub workers: usize,
    /// Admission queue bound.
    pub queue_capacity: usize,
    /// Client counts per stage, as multiples of `workers`; the default
    /// `[1, 2, 4]` ramps from nominal capacity to 4× past it.
    pub stage_multipliers: Vec<usize>,
    /// Requests each client issues per stage.
    pub requests_per_client: usize,
    /// Elements (f32) in the request payload.
    pub payload_elems: usize,
    /// Profile every request targets.
    pub profile: String,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            workers: 2,
            queue_capacity: 2,
            stage_multipliers: vec![1, 2, 4],
            requests_per_client: 8,
            payload_elems: 256 * 1024,
            profile: "lossless".to_string(),
        }
    }
}

impl LoadConfig {
    /// A smaller run for smoke tiers: tiny payloads, fewer requests.
    pub fn quick() -> LoadConfig {
        LoadConfig {
            payload_elems: 16 * 1024,
            requests_per_client: 4,
            ..LoadConfig::default()
        }
    }
}

/// One ramp stage's outcome.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Concurrent clients in this stage.
    pub clients: usize,
    /// Requests issued (clients × requests-per-client, counting retries
    /// of shed requests as new requests).
    pub requests: u64,
    /// Requests that executed and returned bytes.
    pub ok: u64,
    /// Requests shed with a structured `Busy`.
    pub busy: u64,
    /// Hard failures (must be zero for the gate to pass).
    pub errors: u64,
    /// Median accepted-request latency, milliseconds.
    pub p50_ms: f64,
    /// Tail accepted-request latency, milliseconds.
    pub p99_ms: f64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// busy / (ok + busy + errors).
    pub shed_rate: f64,
}

/// The full harness outcome.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Daemon worker threads.
    pub workers: usize,
    /// Admission queue bound.
    pub queue_capacity: usize,
    /// Request payload size in bytes.
    pub payload_bytes: usize,
    /// Profile under test.
    pub profile: String,
    /// Per-stage results, in ramp order.
    pub stages: Vec<StageReport>,
    /// Did the post-ramp drain finish without escalation?
    pub drained_clean: bool,
    /// Requests still in flight after the drain (must be 0).
    pub stuck_inflight: usize,
    /// Watchdog pool `(spawned, idle)` after the drain.
    pub watchdog: (usize, usize),
    /// Total structured Busy responses the daemon served.
    pub busy_total: u64,
}

struct StageTallies {
    ok: AtomicU64,
    busy: AtomicU64,
    errors: AtomicU64,
    latencies_ms: Mutex<Vec<f64>>,
}

fn run_stage(
    addr: &str,
    cfg: &LoadConfig,
    clients: usize,
    payload: &Arc<Vec<u8>>,
) -> Result<StageReport> {
    let tallies = Arc::new(StageTallies {
        ok: AtomicU64::new(0),
        busy: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        latencies_ms: Mutex::new(Vec::new()),
    });
    let dims = vec![cfg.payload_elems];
    let t0 = trace::monotonic_ns();
    let mut joins = Vec::new();
    for _ in 0..clients {
        let addr = addr.to_string();
        let profile = cfg.profile.clone();
        let dims = dims.clone();
        let payload = Arc::clone(payload);
        let tallies = Arc::clone(&tallies);
        let requests = cfg.requests_per_client;
        joins.push(spawn_service("serve-load-client", move || {
            let Ok(mut client) = Client::connect_tcp(&addr) else {
                tallies.errors.fetch_add(1, Ordering::Relaxed);
                return;
            };
            for _ in 0..requests {
                let start = trace::monotonic_ns();
                match client.compress(&profile, DType::F32, &dims, &payload) {
                    Ok(ServeOutcome::Ok(_)) => {
                        let ms = (trace::monotonic_ns().saturating_sub(start)) as f64 / 1e6;
                        tallies.ok.fetch_add(1, Ordering::Relaxed);
                        let mut lat = tallies
                            .latencies_ms
                            .lock()
                            .unwrap_or_else(|p| p.into_inner());
                        lat.push(ms);
                    }
                    Ok(ServeOutcome::Busy { retry_after_ms, .. }) => {
                        tallies.busy.fetch_add(1, Ordering::Relaxed);
                        let ms = u64::from(retry_after_ms);
                        std::thread::sleep(Duration::from_millis(ms.min(250)));
                    }
                    Err(_) => {
                        tallies.errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        })?);
    }
    for j in joins {
        let _ = j.join();
    }
    let wall_s = (trace::monotonic_ns().saturating_sub(t0)) as f64 / 1e9;

    let ok = tallies.ok.load(Ordering::Relaxed);
    let busy = tallies.busy.load(Ordering::Relaxed);
    let errors = tallies.errors.load(Ordering::Relaxed);
    let latencies = tallies
        .latencies_ms
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    let total = ok + busy + errors;
    Ok(StageReport {
        clients,
        requests: total,
        ok,
        busy,
        errors,
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        throughput_rps: if wall_s > 0.0 { ok as f64 / wall_s } else { 0.0 },
        shed_rate: if total > 0 { busy as f64 / total as f64 } else { 0.0 },
    })
}

/// Run the ramp and gate on the overload-robustness criteria.
pub fn run(cfg: &LoadConfig) -> Result<LoadReport> {
    let serve_cfg = ServeConfig {
        workers: cfg.workers,
        queue_capacity: cfg.queue_capacity,
        tcp_addr: Some("127.0.0.1:0".to_string()),
        ..ServeConfig::default()
    };
    let server = Server::start(serve_cfg)?;
    let addr = server
        .tcp_addr()
        .ok_or_else(|| Error::internal("load harness: no TCP address"))?
        .to_string();

    let payload: Arc<Vec<u8>> = Arc::new(
        (0..cfg.payload_elems)
            .flat_map(|i| ((i as f32 * 0.125).sin() * 64.0).to_le_bytes())
            .collect(),
    );

    let mut stages = Vec::new();
    for &m in &cfg.stage_multipliers {
        let clients = (m * cfg.workers).max(1);
        stages.push(run_stage(&addr, cfg, clients, &payload)?);
    }

    let drain = server.shutdown();
    let report = LoadReport {
        workers: cfg.workers,
        queue_capacity: cfg.queue_capacity,
        payload_bytes: cfg.payload_elems * 4,
        profile: cfg.profile.clone(),
        stages,
        drained_clean: drain.drained_clean,
        stuck_inflight: drain.stuck_inflight,
        watchdog: drain.watchdog,
        busy_total: drain.busy_responses,
    };

    // The acceptance criteria ARE the gate: overload may shed, never
    // break.
    for s in &report.stages {
        if s.errors > 0 {
            return Err(Error::internal(format!(
                "stage with {} clients produced {} non-Busy failure(s)",
                s.clients, s.errors
            )));
        }
    }
    if !report.drained_clean || report.stuck_inflight != 0 {
        return Err(Error::internal(format!(
            "drain was not clean: clean={}, stuck={}",
            report.drained_clean, report.stuck_inflight
        )));
    }
    if report.watchdog.0 != report.watchdog.1 {
        return Err(Error::internal(format!(
            "leaked watchdog workers: spawned={}, idle={}",
            report.watchdog.0, report.watchdog.1
        )));
    }
    Ok(report)
}

/// Serialize a [`LoadReport`] to the `pressio-serve/bench-v1` document.
pub fn to_json(report: &LoadReport) -> String {
    let mut s = String::with_capacity(2048);
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": {},\n", json_string(SERVE_SCHEMA)));
    s.push_str(&format!("  \"workers\": {},\n", report.workers));
    s.push_str(&format!(
        "  \"queue_capacity\": {},\n",
        report.queue_capacity
    ));
    s.push_str(&format!("  \"payload_bytes\": {},\n", report.payload_bytes));
    s.push_str(&format!("  \"profile\": {},\n", json_string(&report.profile)));
    s.push_str("  \"stages\": [\n");
    for (i, st) in report.stages.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"clients\": {}, \"requests\": {}, \"ok\": {}, \"busy\": {}, \"errors\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"throughput_rps\": {:.2}, \"shed_rate\": {:.4}}}{}\n",
            st.clients,
            st.requests,
            st.ok,
            st.busy,
            st.errors,
            st.p50_ms,
            st.p99_ms,
            st.throughput_rps,
            st.shed_rate,
            if i + 1 < report.stages.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"drain\": {{\"clean\": {}, \"stuck_inflight\": {}, \"watchdog_spawned\": {}, \"watchdog_idle\": {}}},\n",
        report.drained_clean, report.stuck_inflight, report.watchdog.0, report.watchdog.1
    ));
    s.push_str(&format!("  \"busy_total\": {}\n", report.busy_total));
    s.push_str("}\n");
    s
}

/// Validate a committed `BENCH_serve.json` against the schema's
/// invariants (the serve analog of `bench --check`).
pub fn validate_json(text: &str) -> Result<()> {
    let doc = parse_json(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| Error::corrupt("serve report: missing \"schema\""))?;
    if schema != SERVE_SCHEMA {
        return Err(Error::corrupt(format!(
            "schema {schema:?} != {SERVE_SCHEMA:?}"
        )));
    }
    let num = |key: &str| -> Result<f64> {
        doc.get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| Error::corrupt(format!("serve report: missing number {key:?}")))
    };
    if num("workers")? < 1.0 || num("queue_capacity")? < 1.0 {
        return Err(Error::corrupt("serve report: capacity must be >= 1"));
    }
    let workers = num("workers")?;
    let stages = doc
        .get("stages")
        .and_then(Json::as_arr)
        .ok_or_else(|| Error::corrupt("serve report: missing \"stages\""))?;
    if stages.is_empty() {
        return Err(Error::corrupt("serve report: no stages"));
    }
    let mut max_mult = 0.0f64;
    for st in stages {
        let snum = |key: &str| -> Result<f64> {
            st.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| Error::corrupt(format!("stage: missing number {key:?}")))
        };
        let (clients, requests) = (snum("clients")?, snum("requests")?);
        let (ok, busy, errors) = (snum("ok")?, snum("busy")?, snum("errors")?);
        if errors != 0.0 {
            return Err(Error::corrupt(
                "stage: overload produced non-Busy failures",
            ));
        }
        if (ok + busy + errors - requests).abs() > 0.5 {
            return Err(Error::corrupt(
                "stage: ok + busy + errors must equal requests",
            ));
        }
        if ok > 0.0 && snum("p99_ms")? < snum("p50_ms")? {
            return Err(Error::corrupt("stage: p99 below p50"));
        }
        let rate = snum("shed_rate")?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(Error::corrupt("stage: shed_rate out of [0, 1]"));
        }
        max_mult = max_mult.max(clients / workers.max(1.0));
    }
    // The whole point of the harness: the ramp must actually go past 2x
    // capacity.
    if max_mult < 2.0 {
        return Err(Error::corrupt(
            "serve report: ramp never exceeded 2x capacity",
        ));
    }
    let drain = doc
        .get("drain")
        .ok_or_else(|| Error::corrupt("serve report: missing \"drain\""))?;
    if drain.get("clean").and_then(Json::as_bool) != Some(true) {
        return Err(Error::corrupt("serve report: drain was not clean"));
    }
    if drain.get("stuck_inflight").and_then(Json::as_num) != Some(0.0) {
        return Err(Error::corrupt("serve report: requests stuck in flight"));
    }
    let spawned = drain.get("watchdog_spawned").and_then(Json::as_num);
    let idle = drain.get("watchdog_idle").and_then(Json::as_num);
    if spawned.is_none() || spawned != idle {
        return Err(Error::corrupt("serve report: leaked watchdog workers"));
    }
    Ok(())
}

/// A one-screen human summary of the report.
pub fn render_table(report: &LoadReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "serve load: {} worker(s), queue {}, {} B payload, profile {:?}\n",
        report.workers, report.queue_capacity, report.payload_bytes, report.profile
    ));
    out.push_str("clients  requests      ok    busy    errs   p50_ms   p99_ms     rps  shed\n");
    for s in &report.stages {
        out.push_str(&format!(
            "{:>7} {:>9} {:>7} {:>7} {:>7} {:>8.2} {:>8.2} {:>7.1} {:>5.1}%\n",
            s.clients,
            s.requests,
            s.ok,
            s.busy,
            s.errors,
            s.p50_ms,
            s.p99_ms,
            s.throughput_rps,
            s.shed_rate * 100.0
        ));
    }
    out.push_str(&format!(
        "drain: clean={} stuck={} watchdog={}/{} busy_total={}\n",
        report.drained_clean,
        report.stuck_inflight,
        report.watchdog.0,
        report.watchdog.1,
        report.busy_total
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> LoadReport {
        LoadReport {
            workers: 2,
            queue_capacity: 2,
            payload_bytes: 1024,
            profile: "lossless".to_string(),
            stages: vec![
                StageReport {
                    clients: 2,
                    requests: 16,
                    ok: 16,
                    busy: 0,
                    errors: 0,
                    p50_ms: 1.0,
                    p99_ms: 2.0,
                    throughput_rps: 100.0,
                    shed_rate: 0.0,
                },
                StageReport {
                    clients: 8,
                    requests: 64,
                    ok: 50,
                    busy: 14,
                    errors: 0,
                    p50_ms: 2.0,
                    p99_ms: 9.0,
                    throughput_rps: 80.0,
                    shed_rate: 14.0 / 64.0,
                },
            ],
            drained_clean: true,
            stuck_inflight: 0,
            watchdog: (3, 3),
            busy_total: 14,
        }
    }

    #[test]
    fn serve_report_json_round_trips_validation() {
        let json = to_json(&sample_report());
        validate_json(&json).expect("self-emitted report validates");
    }

    #[test]
    fn validation_rejects_broken_invariants() {
        let mut r = sample_report();
        r.stages[1].errors = 1;
        r.stages[1].requests += 1;
        assert!(validate_json(&to_json(&r)).is_err(), "errors > 0 rejected");

        let mut r = sample_report();
        r.drained_clean = false;
        assert!(validate_json(&to_json(&r)).is_err(), "dirty drain rejected");

        let mut r = sample_report();
        r.watchdog = (4, 3);
        assert!(validate_json(&to_json(&r)).is_err(), "leak rejected");

        let mut r = sample_report();
        r.stages.truncate(1);
        assert!(
            validate_json(&to_json(&r)).is_err(),
            "a ramp that never passes 2x capacity rejected"
        );
    }
}
