//! A small synchronous client for the `pressio serve` frame protocol.
//!
//! One [`Client`] wraps one connection and issues one request at a time
//! (the daemon itself multiplexes many clients). `Busy` responses are
//! surfaced as a distinct [`ServeOutcome`] variant rather than an error so
//! load harnesses can count sheds without string-matching; server-side
//! failures arrive as structured [`Error`]s with the original
//! [`ErrorCode`](libpressio::ErrorCode) reconstructed from the wire.

use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use libpressio::core::trace;
use libpressio::{DType, Error, ErrorCode, Result};

use super::protocol::{
    encode_bodyless, encode_request, parse_response, read_frame, write_frame, FrameKind,
    ReadOutcome, Response, DEFAULT_MAX_BODY,
};

/// How often a waiting client re-checks its overall response deadline.
const CLIENT_POLL_MS: u64 = 50;

enum ClientStream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl std::io::Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.read(buf),
            ClientStream::Unix(s) => s.read(buf),
        }
    }
}

impl std::io::Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.write(buf),
            ClientStream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.flush(),
            ClientStream::Unix(s) => s.flush(),
        }
    }
}

/// What one request produced: a payload, or a structured shed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeOutcome {
    /// The request executed; compressed or decompressed bytes.
    Ok(Vec<u8>),
    /// The daemon shed the request; back off `retry_after_ms`.
    Busy {
        /// Server's retry hint in milliseconds.
        retry_after_ms: u32,
        /// Queue depth the shed request observed.
        depth: u32,
    },
}

/// One connection to a `pressio serve` daemon.
pub struct Client {
    stream: ClientStream,
    next_id: u64,
    /// Overall per-request response deadline.
    timeout_ms: u64,
}

impl Client {
    /// Connect over TCP, e.g. `127.0.0.1:7335`.
    pub fn connect_tcp(addr: &str) -> Result<Client> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| Error::new(ErrorCode::Io, format!("connect {addr}: {e}")))?;
        stream
            .set_nodelay(true)
            .and_then(|()| stream.set_read_timeout(Some(Duration::from_millis(CLIENT_POLL_MS))))
            .map_err(|e| Error::new(ErrorCode::Io, e.to_string()))?;
        Ok(Client {
            stream: ClientStream::Tcp(stream),
            next_id: 1,
            timeout_ms: 60_000,
        })
    }

    /// Connect over a Unix socket.
    pub fn connect_unix(path: &Path) -> Result<Client> {
        let stream = UnixStream::connect(path)
            .map_err(|e| Error::new(ErrorCode::Io, format!("connect {}: {e}", path.display())))?;
        stream
            .set_read_timeout(Some(Duration::from_millis(CLIENT_POLL_MS)))
            .map_err(|e| Error::new(ErrorCode::Io, e.to_string()))?;
        Ok(Client {
            stream: ClientStream::Unix(stream),
            next_id: 1,
            timeout_ms: 60_000,
        })
    }

    /// Override the per-request response deadline (default 60 s).
    pub fn set_timeout_ms(&mut self, ms: u64) {
        self.timeout_ms = ms.max(1);
    }

    /// Compress `payload` (raw bytes of a `dtype`/`dims` tensor) under the
    /// named profile.
    pub fn compress(
        &mut self,
        profile: &str,
        dtype: DType,
        dims: &[usize],
        payload: &[u8],
    ) -> Result<ServeOutcome> {
        let id = self.next_id();
        let frame = encode_request(FrameKind::Compress, id, profile, dtype, dims, payload);
        self.round_trip(id, frame)
    }

    /// Decompress a stream back into a `dtype`/`dims` tensor under the
    /// named profile.
    pub fn decompress(
        &mut self,
        profile: &str,
        dtype: DType,
        dims: &[usize],
        stream: &[u8],
    ) -> Result<ServeOutcome> {
        let id = self.next_id();
        let frame = encode_request(FrameKind::Decompress, id, profile, dtype, dims, stream);
        self.round_trip(id, frame)
    }

    /// Fetch the daemon's health/stats document (JSON).
    pub fn health(&mut self) -> Result<String> {
        let id = self.next_id();
        let frame = encode_bodyless(FrameKind::Health, id);
        match self.round_trip_raw(id, frame)? {
            Response::Health(json) => Ok(json),
            other => Err(Error::new(
                ErrorCode::CorruptStream,
                format!("expected a health response, got {other:?}"),
            )),
        }
    }

    /// Ask the daemon to begin a graceful drain.
    pub fn shutdown(&mut self) -> Result<()> {
        let id = self.next_id();
        let frame = encode_bodyless(FrameKind::Shutdown, id);
        match self.round_trip_raw(id, frame)? {
            Response::Ok(_) => Ok(()),
            Response::Error { code, message } => Err(Error::new(code, message)),
            other => Err(Error::new(
                ErrorCode::CorruptStream,
                format!("expected an ack, got {other:?}"),
            )),
        }
    }

    fn next_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn round_trip(&mut self, id: u64, frame: Vec<u8>) -> Result<ServeOutcome> {
        match self.round_trip_raw(id, frame)? {
            Response::Ok(bytes) => Ok(ServeOutcome::Ok(bytes)),
            Response::Busy {
                retry_after_ms,
                depth,
                ..
            } => Ok(ServeOutcome::Busy {
                retry_after_ms,
                depth,
            }),
            Response::Error { code, message } => Err(Error::new(code, message)),
            Response::Health(_) => Err(Error::new(
                ErrorCode::CorruptStream,
                "unexpected health response to a data request",
            )),
        }
    }

    fn round_trip_raw(&mut self, id: u64, frame: Vec<u8>) -> Result<Response> {
        write_frame(&mut self.stream, &frame)?;
        let deadline =
            trace::monotonic_ns().saturating_add(self.timeout_ms.saturating_mul(1_000_000));
        loop {
            match read_frame(&mut self.stream, DEFAULT_MAX_BODY)? {
                ReadOutcome::Idle => {
                    if trace::monotonic_ns() >= deadline {
                        return Err(Error::timeout(format!(
                            "no response to request {id} within {} ms",
                            self.timeout_ms
                        )));
                    }
                }
                ReadOutcome::Eof => {
                    return Err(Error::new(
                        ErrorCode::Io,
                        "server closed the connection before responding",
                    ));
                }
                ReadOutcome::Frame(header, body) => {
                    let response = parse_response(header.kind, &body)?;
                    // id 0 marks a connection-level error (framing desync);
                    // anything else must match the outstanding request.
                    if header.request_id == id || header.request_id == 0 {
                        return match response {
                            Response::Error { code, message } if header.request_id == 0 => {
                                Err(Error::new(code, message))
                            }
                            r => Ok(r),
                        };
                    }
                    // A stale response (e.g. from a forfeited slow read)
                    // is discarded; keep waiting for ours.
                }
            }
        }
    }
}
