//! The `pressio-lint` static-analysis engine.
//!
//! A dependency-light source scanner over the workspace enforcing hygiene
//! rules that `rustc` and `clippy` do not express:
//!
//! * [`RULE_NO_PANIC`] — library code of the core, codec, and compressor
//!   crates must not `unwrap()`/`expect()`/`panic!()`: fallible paths route
//!   through `pressio_core::error` so generic callers (the paper's C/Rust
//!   clients) see recoverable errors, never aborts.
//! * [`RULE_SAFETY_COMMENT`] — every `unsafe` block/fn/impl must be
//!   preceded by a `// SAFETY:` comment stating the proof obligation.
//! * [`RULE_PLUGIN_SURFACE`] — every `impl Compressor for ...` in a plugin
//!   crate must define `set_options`, `get_options`, `get_configuration`,
//!   and `version` rather than inheriting introspection defaults.
//! * [`RULE_WIRE_CAST`] — wire-format lengths decoded from untrusted
//!   streams must not flow through bare `as usize` casts on the same
//!   expression without a bounds check (`checked_geometry`,
//!   `MAX_DECODE_BYTES`, ...).
//! * [`RULE_NO_DEBUG_PRINT`] — no `dbg!`/`println!`/`print!` in library
//!   crates; user-visible output belongs to the binaries.
//! * [`RULE_NO_UNBOUNDED_SLEEP`] — `thread::sleep` in library code must cap
//!   its duration on the same line (`.min(...)`/`.clamp(...)`), so retry
//!   backoff can never stall a host past its watchdog deadlines.
//! * [`RULE_NO_ADHOC_THREAD_SPAWN`] — library crates must not create their
//!   own threads; all parallelism routes through the shared execution
//!   engine (`pressio_core::exec`). Only `crates/core/src/exec.rs` itself,
//!   binaries, and test modules are exempt.
//!
//! v2 adds a lightweight token-tree front end ([`tokens`]) — a lexer and
//! delimiter-matched parser, no rustc dependency — feeding three deeper
//! passes that line/regex matching cannot express:
//!
//! * [`RULE_TAINT_ALLOC`] / [`RULE_TAINT_ARITH`] — intraprocedural taint
//!   analysis ([`taint`]) from wire reads into allocation sites and
//!   unchecked length arithmetic.
//! * [`RULE_PLUGIN_SURFACE_KEYS`] — key-level option-surface symmetry for
//!   every `impl Compressor` block ([`surface`]): accepted keys must be
//!   declared, declared keys must be read.
//! * [`RULE_LOCK_ORDER`] / [`RULE_NO_LOCK_IN_PAR_CLOSURE`] — the global
//!   lock acquisition order and the no-locks-on-the-pool rule ([`locks`]).
//!
//! The scanner strips string literals, comments, and `#[cfg(test)] mod`
//! blocks before matching, so tests and docs never trip the rules. Findings
//! can be waived through an allowlist file (default `lint-allow.txt` at the
//! workspace root); each line is
//!
//! ```text
//! <rule> <file> <substring of the offending line>   # justification
//! ```
//!
//! matched by rule id, workspace-relative path, and line *content* (stable
//! across unrelated edits, unlike line numbers). `pressio-lint --explain
//! <rule>` prints the rationale and the allowlist recipe for each rule.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod locks;
pub mod surface;
pub mod taint;
pub mod tokens;

/// Rule id: no `unwrap`/`expect`/`panic!` in library code.
pub const RULE_NO_PANIC: &str = "no-panic";
/// Rule id: `unsafe` requires a `// SAFETY:` comment.
pub const RULE_SAFETY_COMMENT: &str = "safety-comment";
/// Rule id: compressor impls must define the full introspection surface.
pub const RULE_PLUGIN_SURFACE: &str = "plugin-surface";
/// Rule id: wire lengths must be bounds-checked before `as usize`.
pub const RULE_WIRE_CAST: &str = "wire-cast";
/// Rule id: no debug printing in library crates.
pub const RULE_NO_DEBUG_PRINT: &str = "no-debug-print";
/// Rule id: library sleeps must carry an explicit cap.
pub const RULE_NO_UNBOUNDED_SLEEP: &str = "no-unbounded-sleep";
/// Rule id: no ad-hoc thread creation outside the shared execution engine.
pub const RULE_NO_ADHOC_THREAD_SPAWN: &str = "no-adhoc-thread-spawn";
/// Rule id: no raw clock reads outside the trace module.
pub const RULE_NO_TIMESTAMP: &str = "no-timestamp-outside-trace";
/// Rule id: no wire-tainted value may size an allocation unchecked.
pub const RULE_TAINT_ALLOC: &str = "taint-alloc";
/// Rule id: no unchecked `*`/`+`/`<<` on wire-tainted lengths.
pub const RULE_TAINT_ARITH: &str = "taint-arith";
/// Rule id: option keys must be symmetric across the introspection surface.
pub const RULE_PLUGIN_SURFACE_KEYS: &str = "plugin-surface-keys";
/// Rule id: global locks follow one acquisition order.
pub const RULE_LOCK_ORDER: &str = "lock-order";
/// Rule id: no lock acquisition inside shared-pool closures.
pub const RULE_NO_LOCK_IN_PAR_CLOSURE: &str = "no-lock-in-par-closure";
/// Rule id: no heap allocation inside shared-pool closures.
pub const RULE_NO_ALLOC_IN_PAR_CLOSURE: &str = "no-alloc-in-par-closure";

/// All rule ids, in reporting order.
pub const ALL_RULES: &[&str] = &[
    RULE_NO_PANIC,
    RULE_SAFETY_COMMENT,
    RULE_PLUGIN_SURFACE,
    RULE_WIRE_CAST,
    RULE_NO_DEBUG_PRINT,
    RULE_NO_UNBOUNDED_SLEEP,
    RULE_NO_ADHOC_THREAD_SPAWN,
    RULE_NO_TIMESTAMP,
    RULE_TAINT_ALLOC,
    RULE_TAINT_ARITH,
    RULE_PLUGIN_SURFACE_KEYS,
    RULE_LOCK_ORDER,
    RULE_NO_LOCK_IN_PAR_CLOSURE,
    RULE_NO_ALLOC_IN_PAR_CLOSURE,
];

/// Long-form rationale for `--explain`.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        RULE_NO_PANIC => {
            "no-panic: library code of the core, codec, and compressor crates must not call \
             .unwrap(), .expect(), panic!, todo!, unimplemented!, or unreachable!. LibPressio \
             is embedded in long-running simulations; a poisoned option value or corrupt \
             stream must surface as a pressio_core::error::Error the caller can handle, \
             never abort the host. Test modules (#[cfg(test)]) are exempt. To waive a \
             genuinely infallible case (e.g. a mutex that cannot be poisoned), add \
             `no-panic <file> <line substring>  # why it cannot fail` to the allowlist."
        }
        RULE_SAFETY_COMMENT => {
            "safety-comment: every `unsafe` block, fn, or impl must be immediately preceded \
             by a `// SAFETY:` comment stating why the operation is sound (which invariant \
             of which type guarantees it). An unsafe block without a written proof \
             obligation cannot be audited. The comment must be on the same line or in the \
             contiguous comment block directly above. Allowlisting is possible but adding \
             the comment is always the better fix."
        }
        RULE_PLUGIN_SURFACE => {
            "plugin-surface: every `impl Compressor for ...` in a plugin crate must define \
             set_options, get_options, get_configuration, and version. The paper's \
             introspection contract (options declare themselves; configuration reports \
             thread safety and pedigree) only holds if plugins implement it explicitly \
             instead of inheriting an empty default. Test doubles inside #[cfg(test)] are \
             exempt."
        }
        RULE_WIRE_CAST => {
            "wire-cast: a length decoded from an untrusted stream (get_u16/get_u32/get_u64/\
             from_le_bytes) must not be turned into a buffer size via a bare `as usize` on \
             the same expression: a hostile stream can then drive a multi-gigabyte \
             allocation or an overflowing product. Route lengths through \
             pressio_core::wire::checked_geometry / bytes_to_elements or compare against \
             MAX_DECODE_BYTES first. Allowlist only casts whose bound is established on a \
             previous line."
        }
        RULE_NO_DEBUG_PRINT => {
            "no-debug-print: dbg!, println!, and print! are forbidden in library crates — \
             a compression library must not write to the host's stdout. Report through \
             metrics results, error messages, or return values; only the CLI binaries \
             print. (eprintln! in binaries is fine; this rule does not scan src/main.rs \
             or src/bin/.)"
        }
        RULE_NO_UNBOUNDED_SLEEP => {
            "no-unbounded-sleep: a `thread::sleep` in library code must cap its duration \
             on the same line (e.g. `backoff.min(MAX_BACKOFF_MS)`). Sleep durations \
             derived from options or retry arithmetic can otherwise grow without bound \
             and stall the host past any watchdog deadline — the guard meta-compressor's \
             own backoff is the model: exponential growth clamped by an explicit \
             constant. Test modules and binaries are exempt. Allowlist only sleeps \
             whose bound is established on a previous line."
        }
        RULE_NO_ADHOC_THREAD_SPAWN => {
            "no-adhoc-thread-spawn: library crates must not create their own threads \
             (`thread::spawn`, `thread::Builder`, `thread::scope`, `crossbeam::scope`) — \
             all parallelism routes through the shared execution engine \
             (`pressio_core::exec`: par_chunks / par_map_indexed), which caps worker \
             count, isolates panics, and reuses per-worker scratch arenas. Ad-hoc \
             threads pay spawn/teardown per call, ignore the engine's thread budget, \
             and escape its panic containment. crates/core/src/exec.rs itself, binaries, \
             and test modules are exempt. Allowlist only threads whose job the pool \
             cannot express (e.g. the guard watchdog, which must detach a hung worker)."
        }
        RULE_NO_TIMESTAMP => {
            "no-timestamp-outside-trace: library crates must not read clocks directly \
             (`Instant::now`, `SystemTime::now`) — all timing routes through \
             `pressio_core::trace` (spans share one monotonic epoch, cost one relaxed \
             atomic load when tracing is off, and surface uniformly through the trace \
             metrics plugin, the chrome-trace exporter, and `pressio trace`). A private \
             clock read is invisible to that pipeline and re-pays the syscall even when \
             nobody is measuring. crates/core/src/trace.rs itself, binaries, and test \
             modules are exempt. Allowlist only measurement harnesses that must time \
             foreign code outside a span (e.g. the bench library's median timer)."
        }
        RULE_TAINT_ALLOC => {
            "taint-alloc: a value read from an untrusted compressed stream (get_len, \
             get_count, get_dims, get_u16/u32/u64, from_le_bytes, read_u16/u32/u64) must \
             not size an allocation (Vec::with_capacity, vec![x; n], .reserve, .resize) \
             until a bounds check dominates it. The fuzz harness found exactly this in \
             the sz decoder: a corrupt header drove a 34 GB allocation before any \
             validation ran. Sanitize by binding through checked_geometry / \
             bytes_to_elements / .min(..) / .clamp(..) / try_into, or guard with an \
             `if <len> > <bound> { return Err(..) }` before the allocation. The analysis \
             is intraprocedural and token-ordered; waive a false positive with \
             `taint-alloc <file> <line substring>  # why the bound holds` only when the \
             bound is established somewhere the analysis cannot see (another function)."
        }
        RULE_TAINT_ARITH => {
            "taint-arith: a wire-tainted length must not feed a raw `*`, `+`, or `<<` — \
             the classic overflow shapes that turn three plausible u32 dims into a tiny \
             (or enormous) wrapped product that later sizes a buffer or indexes a slice. \
             Use checked_mul / checked_add / checked_shl / saturating_* or \
             pressio_core::wire::checked_geometry, or compare against an explicit bound \
             first (a comparison in the same statement, or a dominating guard that \
             returns Err, silences the rule). Waive only arithmetic whose operands are \
             provably bounded elsewhere, with the proof in the allowlist comment."
        }
        RULE_PLUGIN_SURFACE_KEYS => {
            "plugin-surface-keys: within each `impl Compressor` block, every option key \
             set_options reads (options.get_as / options.get) must be declared by \
             get_options or get_configuration, and every key get_options declares must \
             be read by set_options. An accepted-but-undeclared key is invisible to \
             `pressio options` introspection; a declared-but-ignored key makes setting \
             it a silent no-op. get_configuration is exempt from the second direction \
             (it is a read-only capability surface). Keys are matched canonically: \
             format!(\"{p}:key\") placeholders, plain literals, and OPT_* constants \
             unify. Dynamic keys computed in helpers are skipped, not guessed; if the \
             pass cannot see a genuine declaration, allowlist with the helper named."
        }
        RULE_LOCK_ORDER => {
            "lock-order: the workspace's global locks have one sanctioned acquisition \
             order, outermost first: sz store lock (lock_store, rank 10) > exec pool \
             internals (lock_ignore_poison, rank 20) > trace ring (buffers().lock(), \
             rank 30). Acquiring a lower-rank lock while a let-bound guard of a higher \
             rank is live inverts that order and is one store-lock cascade away from \
             deadlock. Statement-scoped temporaries drop at the `;` and do not count. \
             Restructure so the outer lock is released first, or allowlist with a proof \
             that the two locks can never be contended by the same pair of threads."
        }
        RULE_NO_LOCK_IN_PAR_CLOSURE => {
            "no-lock-in-par-closure: closures passed to par_map_indexed / par_chunks run \
             on the shared pool; a lock taken inside one serializes the workers the pool \
             exists to parallelize, and a *global* lock there reproduces the PR 3 \
             store-lock cascade (workers convoy, the submitter helps, watchdogs fire). \
             Hoist the lock outside the parallel region or partition the state per \
             task. crates/core/src/exec.rs (the pool's own bookkeeping) is exempt. \
             Allowlist only per-task locks that are provably uncontended — one task, \
             one mutex, no sharing — and say so in the justification."
        }
        RULE_NO_ALLOC_IN_PAR_CLOSURE => {
            "no-alloc-in-par-closure: closures passed to par_map_indexed / par_chunks \
             are the per-chunk hot path; a Vec::new(), vec![..], or with_capacity(..) \
             inside one pays the allocator once per chunk per round — exactly the \
             malloc traffic the per-worker Scratch arena (exec::with_scratch) was \
             built to remove, and under glibc the workers additionally contend on \
             the allocator's arena lock. Route the buffer through with_scratch \
             (s.u8_slice / s.f64_slice / take_vec helpers) or hoist the allocation \
             out of the closure and move it in. crates/core/src/exec.rs (the pool's \
             own task plumbing) is exempt. Allowlist only allocations that provably \
             cannot be hoisted or scratch-routed (e.g. the closure returns the Vec \
             as its per-chunk result), and say why in the justification."
        }
        _ => return None,
    })
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// True when an allowlist entry waived this finding.
    pub allowed: bool,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}{}",
            self.file,
            self.line,
            self.rule,
            self.snippet,
            if self.allowed { "  (allowlisted)" } else { "" }
        )
    }
}

/// One allowlist entry: `rule file substring`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    rule: String,
    file: String,
    substring: String,
    /// Set once a finding matched; unused entries are reported.
    used: std::cell::Cell<bool>,
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parse the allowlist format: one `rule file substring` triple per
    /// line; `#` starts a comment; blank lines ignored.
    pub fn parse(text: &str) -> Allowlist {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = match line.find('#') {
                Some(i) => &line[..i],
                None => line,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let (rule, file, substring) = (parts.next(), parts.next(), parts.next());
            if let (Some(rule), Some(file), Some(substring)) = (rule, file, substring) {
                entries.push(AllowEntry {
                    rule: rule.to_string(),
                    file: file.to_string(),
                    substring: substring.trim().to_string(),
                    used: std::cell::Cell::new(false),
                });
            }
        }
        Allowlist { entries }
    }

    /// True when `finding` is waived by some entry (marks the entry used).
    fn permits(&self, finding: &Finding) -> bool {
        for e in &self.entries {
            if e.rule == finding.rule
                && e.file == finding.file
                && finding.snippet.contains(&e.substring)
            {
                e.used.set(true);
                return true;
            }
        }
        false
    }

    /// Entries that never matched a finding (likely stale).
    pub fn unused(&self) -> Vec<String> {
        self.entries
            .iter()
            .filter(|e| !e.used.get())
            .map(|e| format!("{} {} {}", e.rule, e.file, e.substring))
            .collect()
    }
}

/// Result of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Every finding, allowlisted or not.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Stale allowlist entries (matched nothing).
    pub unused_allows: Vec<String>,
}

impl LintReport {
    /// Findings not waived by the allowlist.
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.allowed)
    }

    /// True when no un-waived findings exist.
    pub fn is_clean(&self) -> bool {
        self.violations().next().is_none()
    }
}

// --------------------------------------------------------------- sanitizing

/// A preprocessed source file: raw lines for display/SAFETY detection,
/// sanitized lines (strings and comments blanked) for rule matching, and a
/// per-line "is test code" mask.
struct Source<'a> {
    raw_lines: Vec<&'a str>,
    sanitized_lines: Vec<String>,
    in_test: Vec<bool>,
}

/// Blank out string/char literals and comments, preserving length and line
/// structure so byte offsets keep meaning. Handles raw strings (`r"..."`,
/// `r#"..."#`), line and block comments.
fn sanitize(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = vec![b' '; b.len()];
    // Preserve newlines.
    for (i, &c) in b.iter().enumerate() {
        if c == b'\n' {
            out[i] = b'\n';
        }
    }
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                i += 2;
                let mut depth = 1usize;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                out[i] = b'"';
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
                if i < b.len() {
                    out[i] = b'"';
                    i += 1;
                }
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // Raw string: r"..."  or  r#"..."#  (any # count).
                let start = i;
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    j += 1;
                    'scan: while j < b.len() {
                        if b[j] == b'"' {
                            let mut k = j + 1;
                            let mut h = 0;
                            while k < b.len() && b[k] == b'#' && h < hashes {
                                h += 1;
                                k += 1;
                            }
                            if h == hashes {
                                j = k;
                                break 'scan;
                            }
                        }
                        j += 1;
                    }
                    out[start] = b'r';
                    i = j;
                } else {
                    out[i] = b[i];
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal or lifetime. Lifetimes ('a, 'static) have no
                // closing quote nearby; char literals do ('x', '\n', '\u{..}').
                let mut j = i + 1;
                if j < b.len() && b[j] == b'\\' {
                    j += 2;
                    while j < b.len() && b[j] != b'\'' {
                        j += 1;
                    }
                    i = if j < b.len() { j + 1 } else { j };
                } else if j + 1 < b.len() && b[j] != b'\'' && b[j + 1] == b'\'' {
                    i = j + 2; // simple 'x'
                } else {
                    out[i] = b'\'';
                    i += 1; // lifetime: leave following ident visible
                }
            }
            c => {
                out[i] = c;
                i += 1;
            }
        }
    }
    // Multi-byte UTF-8 sequences may have been partially blanked, so rebuild
    // through lossy conversion rather than asserting validity.
    String::from_utf8_lossy(&out).into_owned()
}

/// Mark the line spans of `#[cfg(test)] mod ... { ... }` blocks.
fn test_mask(sanitized: &str) -> Vec<bool> {
    let lines: Vec<&str> = sanitized.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim_start().starts_with("#[cfg(test)]") {
            // Find the next `{` from here and brace-match.
            let mut depth = 0usize;
            let mut opened = false;
            let start = i;
            let mut j = i;
            'outer: while j < lines.len() {
                for ch in lines[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => {
                            depth = depth.saturating_sub(1);
                            if opened && depth == 0 {
                                break 'outer;
                            }
                        }
                        _ => {}
                    }
                }
                j += 1;
            }
            for m in mask.iter_mut().take((j + 1).min(lines.len())).skip(start) {
                *m = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

impl<'a> Source<'a> {
    fn new(raw: &'a str) -> Source<'a> {
        let sanitized = sanitize(raw);
        let in_test = test_mask(&sanitized);
        Source {
            raw_lines: raw.lines().collect(),
            sanitized_lines: sanitized.lines().map(str::to_string).collect(),
            in_test,
        }
    }

    fn is_test_line(&self, idx: usize) -> bool {
        self.in_test.get(idx).copied().unwrap_or(false)
    }
}

// -------------------------------------------------------------- rule scans

/// Crates whose library code falls under the no-panic rule: the core and
/// every compressor/codec crate (Section IV's "errors are values" contract).
const NO_PANIC_CRATES: &[&str] = &[
    "core", "codecs", "sz", "sz3", "zfp", "mgard", "tthresh", "meta",
];

const PANIC_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "todo!(",
    "unimplemented!(",
    "unreachable!(",
];

const WIRE_READS: &[&str] = &["get_u16", "get_u32", "get_u64", "from_le_bytes", "read_u32", "read_u64"];
const WIRE_GUARDS: &[&str] = &[
    "checked_geometry",
    "bytes_to_elements",
    "MAX_DECODE_BYTES",
    "try_into",
    "min(",
];

const DEBUG_PRINTS: &[&str] = &["dbg!(", "println!(", "print!("];

/// Cap markers accepted by `no-unbounded-sleep` on the sleeping line.
const SLEEP_GUARDS: &[&str] = &[".min(", ".clamp("];

/// Thread-creation expressions forbidden outside the execution engine.
const THREAD_SPAWN_PATTERNS: &[&str] = &[
    "thread::spawn",
    "thread::Builder",
    "thread::scope",
    "crossbeam::scope",
    "crossbeam::thread",
];

/// The one library file allowed to create threads: the shared engine.
const EXEC_ENGINE_FILE: &str = "crates/core/src/exec.rs";

/// Raw clock reads forbidden outside the trace module.
const TIMESTAMP_PATTERNS: &[&str] = &["Instant::now", "SystemTime::now"];

/// The one library file allowed to read clocks: the span collector.
const TRACE_FILE: &str = "crates/core/src/trace.rs";

/// Name of the crate a workspace-relative path belongs to, e.g.
/// `crates/sz/src/plugin.rs` -> `sz`; the facade `src/lib.rs` -> `.` .
fn crate_of(rel: &str) -> Option<&str> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        rest.split('/').next()
    } else if rel.starts_with("src/") {
        Some(".")
    } else {
        None
    }
}

/// True for binary sources (CLI code), exempt from library-only rules.
fn is_binary_source(rel: &str) -> bool {
    rel.ends_with("/main.rs") || rel.contains("/src/bin/")
}

/// Does the line contain an `unsafe` keyword that introduces an unsafe
/// item or block (as opposed to appearing inside a function-pointer *type*
/// like `Option<unsafe extern "C" fn(..)>`, which creates no obligation at
/// this site)?
fn introduces_unsafe(line: &str) -> bool {
    let b = line.as_bytes();
    let mut from = 0;
    while let Some(off) = line[from..].find("unsafe") {
        let start = from + off;
        let end = start + "unsafe".len();
        let left_ok = start == 0 || !(b[start - 1].is_ascii_alphanumeric() || b[start - 1] == b'_');
        let right_ok = end >= b.len() || !(b[end].is_ascii_alphanumeric() || b[end] == b'_');
        if left_ok && right_ok {
            // Type position: the previous non-space char opens a generic
            // argument, tuple, reference, or union of types.
            let prev = line[..start].trim_end().chars().next_back();
            if !matches!(prev, Some('<' | '(' | '&' | ',' | '|' | ':')) {
                return true;
            }
        }
        from = end;
    }
    false
}

/// Is the `unsafe` at `line_idx` covered by a `// SAFETY:` comment — on the
/// same line or in the contiguous comment block directly above?
fn has_safety_comment(src: &Source, line_idx: usize) -> bool {
    if src.raw_lines[line_idx].contains("SAFETY:") {
        return true;
    }
    let mut i = line_idx;
    while i > 0 {
        i -= 1;
        let t = src.raw_lines[i].trim_start();
        if t.starts_with("//") {
            // A rustdoc `# Safety` section on a pub unsafe item is the
            // idiomatic equivalent of a `// SAFETY:` comment.
            if t.contains("SAFETY:") || (t.starts_with("///") && t.contains("# Safety")) {
                return true;
            }
        } else if t.starts_with("#[") || t.ends_with("]") && t.starts_with('#') {
            // attribute between the comment and the unsafe item: keep walking
            continue;
        } else {
            break;
        }
    }
    false
}

/// Scan one file's content; `rel` is its workspace-relative path with `/`
/// separators. Pure function over the source text — the unit-test surface.
pub fn scan_source(rel: &str, content: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(krate) = crate_of(rel) else {
        return findings;
    };
    let binary = is_binary_source(rel);
    let src = Source::new(content);

    let push = |findings: &mut Vec<Finding>, rule, idx: usize, src: &Source| {
        findings.push(Finding {
            rule,
            file: rel.to_string(),
            line: idx + 1,
            snippet: src.raw_lines[idx].trim().to_string(),
            allowed: false,
        });
    };

    for (idx, line) in src.sanitized_lines.iter().enumerate() {
        if src.is_test_line(idx) {
            continue;
        }

        // no-panic: core + compressor crates, library code only.
        if !binary && NO_PANIC_CRATES.contains(&krate)
            && PANIC_PATTERNS.iter().any(|p| line.contains(p))
        {
            push(&mut findings, RULE_NO_PANIC, idx, &src);
        }

        // safety-comment: everywhere.
        if introduces_unsafe(line) && !has_safety_comment(&src, idx) {
            push(&mut findings, RULE_SAFETY_COMMENT, idx, &src);
        }

        // wire-cast: everywhere in library code.
        if !binary
            && line.contains("as usize")
            && WIRE_READS.iter().any(|p| line.contains(p))
            && !WIRE_GUARDS.iter().any(|g| line.contains(g))
        {
            push(&mut findings, RULE_WIRE_CAST, idx, &src);
        }

        // no-debug-print: library code of every crate.
        if !binary && DEBUG_PRINTS.iter().any(|p| line.contains(p)) {
            push(&mut findings, RULE_NO_DEBUG_PRINT, idx, &src);
        }

        // no-unbounded-sleep: library code of every crate.
        if !binary
            && line.contains("thread::sleep")
            && !SLEEP_GUARDS.iter().any(|g| line.contains(g))
        {
            push(&mut findings, RULE_NO_UNBOUNDED_SLEEP, idx, &src);
        }

        // no-adhoc-thread-spawn: library code of every crate except the
        // execution engine itself.
        if !binary
            && rel != EXEC_ENGINE_FILE
            && THREAD_SPAWN_PATTERNS.iter().any(|p| line.contains(p))
        {
            push(&mut findings, RULE_NO_ADHOC_THREAD_SPAWN, idx, &src);
        }

        // no-timestamp-outside-trace: library code of every crate except
        // the span collector itself.
        if !binary
            && rel != TRACE_FILE
            && TIMESTAMP_PATTERNS.iter().any(|p| line.contains(p))
        {
            push(&mut findings, RULE_NO_TIMESTAMP, idx, &src);
        }
    }

    // plugin-surface: brace-match each `impl Compressor for` block.
    // Binary sources (experiment drivers with local test doubles) are exempt.
    let required = ["fn set_options", "fn get_options", "fn get_configuration", "fn version"];
    let mut idx = 0;
    while idx < src.sanitized_lines.len() {
        let line = &src.sanitized_lines[idx];
        if !binary && !src.is_test_line(idx) && line.contains("impl Compressor for") {
            // Collect the block text.
            let mut depth = 0usize;
            let mut opened = false;
            let mut block = String::new();
            let mut j = idx;
            'block: while j < src.sanitized_lines.len() {
                block.push_str(&src.sanitized_lines[j]);
                block.push('\n');
                for ch in src.sanitized_lines[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => {
                            depth = depth.saturating_sub(1);
                            if opened && depth == 0 {
                                break 'block;
                            }
                        }
                        _ => {}
                    }
                }
                j += 1;
            }
            for missing in required.iter().filter(|r| !block.contains(*r)) {
                findings.push(Finding {
                    rule: RULE_PLUGIN_SURFACE,
                    file: rel.to_string(),
                    line: idx + 1,
                    snippet: format!(
                        "{} — missing `{}`",
                        src.raw_lines[idx].trim(),
                        missing
                    ),
                    allowed: false,
                });
            }
            idx = j + 1;
        } else {
            idx += 1;
        }
    }

    // v2 token-tree passes: taint, key-level surface symmetry, lock
    // discipline. Library code only; binaries decode nothing untrusted and
    // own their own locking.
    if !binary {
        let nodes = tokens::parse_source(content);
        let is_test = |idx: usize| src.is_test_line(idx);
        let snippet_at = |idx: usize, msg: &str| {
            let line = src.raw_lines.get(idx).map(|l| l.trim()).unwrap_or("");
            format!("{line} — {msg}")
        };
        for t in taint::scan(&nodes, &is_test) {
            findings.push(Finding {
                rule: if t.alloc { RULE_TAINT_ALLOC } else { RULE_TAINT_ARITH },
                file: rel.to_string(),
                line: t.line_idx + 1,
                snippet: snippet_at(t.line_idx, &t.why),
                allowed: false,
            });
        }
        for s in surface::scan(&nodes, &is_test) {
            findings.push(Finding {
                rule: RULE_PLUGIN_SURFACE_KEYS,
                file: rel.to_string(),
                line: s.line_idx + 1,
                snippet: snippet_at(s.line_idx, &s.msg),
                allowed: false,
            });
        }
        for l in locks::scan(&nodes, &is_test) {
            // The pool's own bookkeeping must lock inside its machinery.
            if !l.order && rel == EXEC_ENGINE_FILE {
                continue;
            }
            findings.push(Finding {
                rule: if l.order { RULE_LOCK_ORDER } else { RULE_NO_LOCK_IN_PAR_CLOSURE },
                file: rel.to_string(),
                line: l.line_idx + 1,
                snippet: snippet_at(l.line_idx, &l.msg),
                allowed: false,
            });
        }
        for a in locks::scan_allocs(&nodes, &is_test) {
            // The pool's own task plumbing allocates its result vectors.
            if rel == EXEC_ENGINE_FILE {
                continue;
            }
            findings.push(Finding {
                rule: RULE_NO_ALLOC_IN_PAR_CLOSURE,
                file: rel.to_string(),
                line: a.line_idx + 1,
                snippet: snippet_at(a.line_idx, &a.msg),
                allowed: false,
            });
        }
    }

    findings
}

// ---------------------------------------------------------------- running

/// Recursively collect `.rs` files under `dir`, skipping `target/`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "tests" || name == "benches" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run the linter over the workspace rooted at `root`, applying
/// `allowlist`. Scans `src/` of the facade and every `crates/*/src/`.
pub fn run(root: &Path, allowlist: &Allowlist) -> io::Result<LintReport> {
    let mut files = Vec::new();
    let facade = root.join("src");
    if facade.is_dir() {
        collect_rs(&facade, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in fs::read_dir(&crates)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();

    let mut report = LintReport::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let content = fs::read_to_string(&path)?;
        report.files_scanned += 1;
        for mut f in scan_source(&rel, &content) {
            f.allowed = allowlist.permits(&f);
            report.findings.push(f);
        }
    }
    report.unused_allows = allowlist.unused();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_for(rel: &str, src: &str) -> Vec<Finding> {
        scan_source(rel, src)
    }

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    // ------------------------------------------------------------ no-panic

    #[test]
    fn no_panic_flags_unwrap_in_compressor_crate() {
        let f = findings_for(
            "crates/sz/src/plugin.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        assert_eq!(rules(&f), vec![RULE_NO_PANIC]);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn no_panic_ignores_tests_strings_comments_and_foreign_crates() {
        let src = "\
// a comment mentioning .unwrap() is fine
fn msg() -> &'static str { \"call .unwrap() later\" }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); }
}
";
        assert!(findings_for("crates/sz/src/plugin.rs", src).is_empty());
        // metrics crate is outside the no-panic scope
        let f = findings_for("crates/metrics/src/basic.rs", "fn f() { x.unwrap(); }\n");
        assert!(!rules(&f).contains(&RULE_NO_PANIC));
    }

    #[test]
    fn no_panic_flags_every_panic_macro() {
        for pat in ["panic!(\"x\")", "todo!()", "unimplemented!()", "unreachable!()"] {
            let src = format!("fn f() {{ {pat} }}\n");
            let f = findings_for("crates/core/src/data.rs", &src);
            assert_eq!(rules(&f), vec![RULE_NO_PANIC], "{pat}");
        }
    }

    // ------------------------------------------------------ safety-comment

    #[test]
    fn safety_comment_required_and_honored() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let f = findings_for("crates/core/src/alloc.rs", bad);
        assert_eq!(rules(&f), vec![RULE_SAFETY_COMMENT]);

        let good = "\
// SAFETY: caller guarantees p is valid for reads.
fn f(p: *const u8) -> u8 { unsafe { *p } }
";
        assert!(findings_for("crates/core/src/alloc.rs", good).is_empty());

        let same_line = "let x = unsafe { *p }; // SAFETY: p outlives x\n";
        assert!(findings_for("crates/core/src/alloc.rs", same_line).is_empty());

        // Rustdoc `# Safety` sections count: they are the public-API spelling
        // of the same proof obligation.
        let doc_section = "\
/// Marker for plain-old-data scalars.
///
/// # Safety
///
/// Every bit pattern must be valid.
pub unsafe trait Element {}
";
        assert!(findings_for("crates/core/src/dtype.rs", doc_section).is_empty());
    }

    #[test]
    fn safety_comment_sees_through_attributes_and_comment_blocks() {
        let src = "\
// SAFETY: repr(C) layout is pointer-compatible with the C header;
// the handle is never aliased mutably.
#[no_mangle]
unsafe fn pressio_thing() {}
";
        assert!(findings_for("crates/capi/src/lib.rs", src).is_empty());
    }

    #[test]
    fn safety_comment_skips_fn_pointer_type_positions() {
        let src = "\
struct H { deleter: Option<unsafe extern \"C\" fn(*mut u8)> }
fn take(f: unsafe extern \"C\" fn()) {}
";
        assert!(findings_for("crates/capi/src/lib.rs", src).is_empty());
        // ... but a real unsafe item still needs its comment.
        let f = findings_for("crates/capi/src/lib.rs", "unsafe impl Sync for H {}\n");
        assert_eq!(rules(&f), vec![RULE_SAFETY_COMMENT]);
    }

    #[test]
    fn safety_comment_ignores_the_word_in_strings_and_docs() {
        let src = "/// This type has no unsafe code.\nfn f() -> &'static str { \"unsafe\" }\n";
        assert!(findings_for("crates/core/src/data.rs", src).is_empty());
    }

    // ------------------------------------------------------ plugin-surface

    #[test]
    fn plugin_surface_flags_missing_methods() {
        let src = "\
impl Compressor for Thing {
    fn name(&self) -> &str { \"thing\" }
    fn set_options(&mut self, _: &Options) -> Result<()> { Ok(()) }
    fn get_options(&self) -> Options { Options::new() }
}
";
        let f = findings_for("crates/zfp/src/plugin.rs", src);
        assert_eq!(rules(&f), vec![RULE_PLUGIN_SURFACE, RULE_PLUGIN_SURFACE]);
        assert!(f[0].snippet.contains("fn get_configuration"));
        assert!(f[1].snippet.contains("fn version"));
    }

    #[test]
    fn plugin_surface_accepts_complete_impls_and_skips_test_doubles() {
        let complete = "\
impl Compressor for Thing {
    fn version(&self) -> Version { Version::new(1, 0, 0) }
    fn set_options(&mut self, _: &Options) -> Result<()> { Ok(()) }
    fn get_options(&self) -> Options { Options::new() }
    fn get_configuration(&self) -> Options { base_configuration(self) }
}
";
        assert!(findings_for("crates/zfp/src/plugin.rs", complete).is_empty());

        let test_double = "\
#[cfg(test)]
mod tests {
    impl Compressor for Dummy {
        fn name(&self) -> &str { \"dummy\" }
    }
}
";
        assert!(findings_for("crates/zfp/src/plugin.rs", test_double).is_empty());
    }

    // ----------------------------------------------------------- wire-cast

    #[test]
    fn wire_cast_flags_unchecked_lengths() {
        let src = "let n = r.get_u64()? as usize;\n";
        let f = findings_for("crates/core/src/wire.rs", src);
        assert_eq!(rules(&f), vec![RULE_WIRE_CAST]);
    }

    #[test]
    fn wire_cast_accepts_guarded_lengths() {
        for guarded in [
            "let n = (r.get_u64()?.min(MAX_DECODE_BYTES as u64)) as usize;",
            "let n: usize = r.get_u64()?.try_into().map_err(bad)?;",
            "let dims = checked_geometry(r.get_u32()? as usize, raw)?;",
        ] {
            let f = findings_for("crates/core/src/wire.rs", &format!("{guarded}\n"));
            assert!(f.is_empty(), "{guarded} -> {f:?}");
        }
        // `as usize` with no wire read on the line is out of scope.
        assert!(findings_for("crates/core/src/wire.rs", "let x = y as usize;\n").is_empty());
    }

    // ------------------------------------------------------ no-debug-print

    #[test]
    fn debug_print_flagged_in_libraries_not_binaries() {
        let f = findings_for("crates/io/src/basic.rs", "fn f() { println!(\"x\"); }\n");
        assert_eq!(rules(&f), vec![RULE_NO_DEBUG_PRINT]);
        let f = findings_for("crates/io/src/basic.rs", "fn f() { dbg!(3); }\n");
        assert_eq!(rules(&f), vec![RULE_NO_DEBUG_PRINT]);
        assert!(findings_for("crates/tools/src/main.rs", "fn f() { println!(\"x\"); }\n").is_empty());
        assert!(findings_for("crates/tools/src/bin/x.rs", "fn f() { println!(); }\n").is_empty());
    }

    // ------------------------------------------------- no-unbounded-sleep

    #[test]
    fn unbounded_sleep_flagged_in_libraries() {
        let f = findings_for(
            "crates/meta/src/guard.rs",
            "fn f(ms: u64) { std::thread::sleep(Duration::from_millis(ms)); }\n",
        );
        assert_eq!(rules(&f), vec![RULE_NO_UNBOUNDED_SLEEP]);
    }

    #[test]
    fn capped_sleep_and_exempt_contexts_pass() {
        let capped =
            "std::thread::sleep(Duration::from_millis(backoff.min(MAX_BACKOFF_MS)));\n";
        assert!(findings_for("crates/meta/src/guard.rs", capped).is_empty());
        let clamped = "thread::sleep(Duration::from_millis(ms.clamp(0, 500)));\n";
        assert!(findings_for("crates/meta/src/guard.rs", clamped).is_empty());
        // Binaries and test modules may sleep freely.
        let raw = "fn f() { std::thread::sleep(Duration::from_secs(5)); }\n";
        assert!(findings_for("crates/tools/src/main.rs", raw).is_empty());
        let in_test = format!("#[cfg(test)]\nmod tests {{\n    {raw}}}\n");
        assert!(findings_for("crates/meta/src/guard.rs", &in_test).is_empty());
    }

    // ------------------------------------------- no-adhoc-thread-spawn

    #[test]
    fn adhoc_spawn_flagged_in_libraries() {
        for pat in [
            "std::thread::spawn(move || work());",
            "std::thread::Builder::new().name(n).spawn(f)?;",
            "std::thread::scope(|s| { s.spawn(|| work()); });",
            "crossbeam::scope(|s| { s.spawn(|_| work()); });",
        ] {
            let src = format!("fn f() {{ {pat} }}\n");
            let f = findings_for("crates/sz/src/plugin.rs", &src);
            assert_eq!(rules(&f), vec![RULE_NO_ADHOC_THREAD_SPAWN], "{pat}");
        }
    }

    #[test]
    fn adhoc_spawn_exempts_engine_binaries_and_tests() {
        let spawn = "fn f() { std::thread::spawn(|| work()); }\n";
        // The execution engine itself owns its workers.
        assert!(findings_for("crates/core/src/exec.rs", spawn).is_empty());
        // Binaries may spawn freely.
        assert!(findings_for("crates/tools/src/main.rs", spawn).is_empty());
        assert!(findings_for("crates/bench/src/bin/exp.rs", spawn).is_empty());
        // Test modules are masked.
        let in_test = format!("#[cfg(test)]\nmod tests {{\n    {spawn}}}\n");
        assert!(findings_for("crates/sz/src/plugin.rs", &in_test).is_empty());
    }

    // ------------------------------------------- no-timestamp-outside-trace

    #[test]
    fn timestamp_flagged_in_libraries() {
        for pat in [
            "let t0 = std::time::Instant::now();",
            "let wall = SystemTime::now();",
        ] {
            let src = format!("fn f() {{ {pat} }}\n");
            let f = findings_for("crates/sz/src/plugin.rs", &src);
            assert_eq!(rules(&f), vec![RULE_NO_TIMESTAMP], "{pat}");
        }
    }

    #[test]
    fn timestamp_exempts_trace_module_binaries_and_tests() {
        let clock = "fn f() { let t = std::time::Instant::now(); }\n";
        // The span collector owns the clock.
        assert!(findings_for("crates/core/src/trace.rs", clock).is_empty());
        // Binaries may read clocks freely.
        assert!(findings_for("crates/tools/src/main.rs", clock).is_empty());
        assert!(findings_for("crates/bench/src/bin/exp.rs", clock).is_empty());
        // Test modules are masked.
        let in_test = format!("#[cfg(test)]\nmod tests {{\n    {clock}}}\n");
        assert!(findings_for("crates/zfp/src/kernel.rs", &in_test).is_empty());
    }

    // ----------------------------------------------------------- allowlist

    #[test]
    fn allowlist_waives_by_rule_file_and_substring() {
        let allow = Allowlist::parse(
            "# comment line\n\
             no-panic crates/sz/src/global.rs lock_store().expect  # cannot poison\n",
        );
        let mut hit = Finding {
            rule: RULE_NO_PANIC,
            file: "crates/sz/src/global.rs".to_string(),
            line: 10,
            snippet: "let g = lock_store().expect(\"never poisoned\");".to_string(),
            allowed: false,
        };
        assert!(allow.permits(&hit));
        hit.file = "crates/sz/src/plugin.rs".to_string();
        assert!(!allow.permits(&hit));
        // rule mismatch
        hit.file = "crates/sz/src/global.rs".to_string();
        hit.rule = RULE_WIRE_CAST;
        assert!(!allow.permits(&hit));
    }

    #[test]
    fn allowlist_reports_unused_entries() {
        let allow = Allowlist::parse("no-panic crates/x/src/a.rs nothing matches this\n");
        assert_eq!(allow.unused().len(), 1);
        let used = Allowlist::parse("no-panic crates/x/src/a.rs boom\n");
        let f = Finding {
            rule: RULE_NO_PANIC,
            file: "crates/x/src/a.rs".to_string(),
            line: 1,
            snippet: "boom".to_string(),
            allowed: false,
        };
        assert!(used.permits(&f));
        assert!(used.unused().is_empty());
    }

    // ----------------------------------------------------------- sanitizer

    #[test]
    fn sanitizer_strips_strings_comments_and_raw_strings() {
        let s = sanitize("let a = \"panic!(\"; // .unwrap()\nlet r = r#\"x.expect(\"#;");
        assert!(!s.contains("panic!("));
        assert!(!s.contains(".unwrap()"));
        assert!(!s.contains(".expect("));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn sanitizer_keeps_lifetimes_and_chars_straight() {
        let s = sanitize("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(s.contains("fn f<'a>"));
        assert!(!s.contains("'x'"));
    }

    #[test]
    fn explain_covers_every_rule() {
        for rule in ALL_RULES {
            assert!(explain(rule).is_some(), "{rule}");
        }
        assert!(explain("nonsense").is_none());
    }
}
