//! A lightweight Rust token-tree parser — the front end of `pressio-lint
//! v2`'s flow-sensitive passes (taint, plugin-surface keys, lock
//! discipline).
//!
//! This is deliberately *not* a full Rust parser and has no `rustc`/`syn`
//! dependency: it lexes a source file into identifiers, numbers, string
//! literals, and single-character punctuation (comments and doc comments
//! are skipped; raw strings, nested block comments, char literals, and
//! lifetimes are handled), then brace/paren/bracket-matches the stream into
//! nested token trees. That is exactly enough structure to
//!
//! * find `fn` items and their body groups (the unit of taint analysis),
//! * find `impl Compressor for X` blocks and their method bodies (the unit
//!   of the plugin-surface key pass),
//! * resolve call argument groups (`par_map_indexed(...)` closures, key
//!   expressions like `&format!("{p}:abs_err_bound")`).
//!
//! Unbalanced delimiters — which appear in macro fragments — degrade
//! gracefully: an unmatched closer ends the innermost group, an unmatched
//! opener is closed at end of file. The parser never panics on adversarial
//! input; the worst failure mode is a pass seeing a smaller tree and
//! reporting nothing, which fails safe for an advisory linter backed by a
//! self-test corpus (`crates/tools/tests/fixtures/`).

/// Token kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `let`, `with_capacity`, ...).
    Ident,
    /// Numeric literal (`42`, `0x40`, `1e-4`, `8usize`).
    Num,
    /// String literal; `text` holds the *contents* (quotes stripped,
    /// escapes left verbatim). Raw strings included.
    Str,
    /// Single-character punctuation (`*`, `+`, `<`, `;`, `?`, ...).
    /// Delimiters never appear here — they become [`Node::Group`]s.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    /// Kind of token.
    pub kind: Kind,
    /// Token text (contents for strings).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: usize,
}

/// One node of a token tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A leaf token.
    Tok(Tok),
    /// A delimited group: `delim` is the opening delimiter (`(`, `[`, `{`).
    Group {
        /// Opening delimiter character.
        delim: char,
        /// Line of the opening delimiter.
        line: usize,
        /// Nested nodes.
        children: Vec<Node>,
    },
}

impl Node {
    /// Leaf accessor: the token if this node is one.
    pub fn tok(&self) -> Option<&Tok> {
        match self {
            Node::Tok(t) => Some(t),
            Node::Group { .. } => None,
        }
    }

    /// True when the node is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(self.tok(), Some(t) if t.kind == Kind::Ident && t.text == name)
    }

    /// True when the node is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self.tok(), Some(t) if t.kind == Kind::Punct && t.text.len() == 1 && t.text.as_bytes()[0] as char == c)
    }

    /// The group's children if this is a group with delimiter `delim`.
    pub fn group(&self, d: char) -> Option<&[Node]> {
        match self {
            Node::Group { delim, children, .. } if *delim == d => Some(children),
            _ => None,
        }
    }

    /// Source line of the node (group: its opening delimiter).
    pub fn line(&self) -> usize {
        match self {
            Node::Tok(t) => t.line,
            Node::Group { line, .. } => *line,
        }
    }
}

/// Lex `src` into a flat token stream. Comments are dropped; strings keep
/// their contents. Never fails: unknown bytes are skipped.
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    let bump_lines = |from: usize, to: usize, line: &mut usize| {
        *line += b[from..to].iter().filter(|&&c| c == b'\n').count();
    };
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                i += 2;
                let mut depth = 1usize;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                bump_lines(start, i.min(b.len()), &mut line);
            }
            b'"' => {
                let start = i;
                i += 1;
                let content_start = i;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
                let content_end = i.min(b.len());
                toks.push(Tok {
                    kind: Kind::Str,
                    text: String::from_utf8_lossy(&b[content_start..content_end]).into_owned(),
                    line,
                });
                bump_lines(start, content_end, &mut line);
                i = (content_end + 1).min(b.len());
            }
            b'r' | b'b'
                if i + 1 < b.len()
                    && (b[i + 1] == b'"' || b[i + 1] == b'#')
                    && !prev_is_word(b, i) =>
            {
                // Raw (or byte/raw-byte) string: r"..." / r#"..."# / br"..".
                let start = i;
                let mut j = i + 1;
                if b[i] == b'b' && j < b.len() && b[j] == b'r' {
                    j += 1;
                }
                let mut hashes = 0usize;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    j += 1;
                    let content_start = j;
                    let mut content_end = b.len();
                    'scan: while j < b.len() {
                        if b[j] == b'"' {
                            let mut k = j + 1;
                            let mut h = 0usize;
                            while k < b.len() && b[k] == b'#' && h < hashes {
                                h += 1;
                                k += 1;
                            }
                            if h == hashes {
                                content_end = j;
                                j = k;
                                break 'scan;
                            }
                        }
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: Kind::Str,
                        text: String::from_utf8_lossy(&b[content_start..content_end.min(b.len())])
                            .into_owned(),
                        line,
                    });
                    bump_lines(start, j.min(b.len()), &mut line);
                    i = j;
                } else {
                    // Just an identifier starting with r/b.
                    let (tok, next) = lex_word(b, i, line);
                    toks.push(tok);
                    i = next;
                }
            }
            b'\'' => {
                // Char literal or lifetime; mirror the sanitizer's rule.
                let j = i + 1;
                if j < b.len() && b[j] == b'\\' {
                    let mut k = j + 2;
                    while k < b.len() && b[k] != b'\'' {
                        k += 1;
                    }
                    i = (k + 1).min(b.len());
                } else if j + 1 < b.len() && b[j] != b'\'' && b[j + 1] == b'\'' {
                    i = j + 2; // simple 'x'
                } else {
                    // Lifetime: emit the tick as punct, continue with ident.
                    toks.push(Tok {
                        kind: Kind::Punct,
                        text: "'".to_string(),
                        line,
                    });
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let (tok, next) = lex_word(b, i, line);
                toks.push(tok);
                i = next;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                // Numbers: digits, `_`, type suffixes, hex/oct/bin, simple
                // float forms including exponents (1e-4 / 1E+9).
                while i < b.len() {
                    let d = b[i];
                    if d.is_ascii_alphanumeric() || d == b'_' || d == b'.' {
                        // A second dot ends the number (range expr `0..n`).
                        if d == b'.' && i + 1 < b.len() && b[i + 1] == b'.' {
                            break;
                        }
                        i += 1;
                    } else if (d == b'+' || d == b'-')
                        && matches!(b[i - 1], b'e' | b'E')
                        && b[start..i].iter().any(|x| x.is_ascii_digit())
                    {
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: Kind::Num,
                    text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                    line,
                });
            }
            _ => {
                toks.push(Tok {
                    kind: Kind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Is the byte before `i` part of a word (so `r`/`b` is an ident tail, not
/// a raw-string prefix)?
fn prev_is_word(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

fn lex_word(b: &[u8], start: usize, line: usize) -> (Tok, usize) {
    let mut i = start;
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    (
        Tok {
            kind: Kind::Ident,
            text: String::from_utf8_lossy(&b[start..i]).into_owned(),
            line,
        },
        i,
    )
}

/// Build token trees from a flat stream: `(`/`[`/`{` open groups, their
/// partners close them. An unmatched closer closes the innermost group; an
/// unmatched opener is closed at end of input.
pub fn parse(toks: Vec<Tok>) -> Vec<Node> {
    let mut iter = toks.into_iter().peekable();
    parse_group(&mut iter, None)
}

fn closer(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        '{' => '}',
        _ => open,
    }
}

fn parse_group(
    iter: &mut std::iter::Peekable<std::vec::IntoIter<Tok>>,
    closing: Option<char>,
) -> Vec<Node> {
    let mut out = Vec::new();
    while let Some(t) = iter.peek() {
        if t.kind == Kind::Punct {
            let ch = t.text.as_bytes().first().copied().unwrap_or(b' ') as char;
            if Some(ch) == closing {
                iter.next();
                return out;
            }
            if matches!(ch, ')' | ']' | '}') {
                // Unmatched closer: treat as end of the innermost group so
                // outer levels get a chance to consume it. If we are at the
                // top level, skip it.
                if closing.is_some() {
                    return out;
                }
                iter.next();
                continue;
            }
            if matches!(ch, '(' | '[' | '{') {
                let line = t.line;
                iter.next();
                let children = parse_group(iter, Some(closer(ch)));
                out.push(Node::Group {
                    delim: ch,
                    line,
                    children,
                });
                continue;
            }
        }
        out.push(Node::Tok(iter.next().expect("peeked")));
    }
    out
}

/// Lex and tree-parse a source file in one step.
pub fn parse_source(src: &str) -> Vec<Node> {
    parse(lex(src))
}

/// One `fn` item found in a token tree: name, parameter group, body group.
#[derive(Debug)]
pub struct FnItem<'a> {
    /// Function name.
    pub name: &'a str,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Parameter list nodes (contents of the `(...)` group).
    pub params: &'a [Node],
    /// Body nodes (contents of the `{...}` group).
    pub body: &'a [Node],
}

/// Collect every `fn` item (with a body) in `nodes`, recursing into groups
/// — so methods inside `impl` blocks and nested modules are found. Trait
/// method *signatures* (no body before `;`) are skipped.
pub fn functions<'a>(nodes: &'a [Node]) -> Vec<FnItem<'a>> {
    let mut out = Vec::new();
    collect_functions(nodes, &mut out);
    out
}

fn collect_functions<'a>(nodes: &'a [Node], out: &mut Vec<FnItem<'a>>) {
    let mut i = 0;
    while i < nodes.len() {
        if nodes[i].is_ident("fn") {
            let line = nodes[i].line();
            // fn <name> <generics?> ( params ) <-> ret / where ...> { body }
            if let Some(Node::Tok(name_tok)) = nodes.get(i + 1) {
                if name_tok.kind == Kind::Ident {
                    // Find the parameter group, skipping a possible generic
                    // parameter list `<...>` (lexed as puncts, not a group).
                    let mut j = i + 2;
                    let mut params: Option<&[Node]> = None;
                    while j < nodes.len() {
                        match &nodes[j] {
                            n if n.is_punct(';') => break,
                            Node::Group { delim: '(', children, .. } => {
                                params = Some(children);
                                j += 1;
                                break;
                            }
                            Node::Group { delim: '{', .. } => break,
                            _ => j += 1,
                        }
                    }
                    if let Some(params) = params {
                        // Find the body group before the next `;`.
                        let mut body: Option<&[Node]> = None;
                        while j < nodes.len() {
                            match &nodes[j] {
                                n if n.is_punct(';') => break,
                                Node::Group { delim: '{', children, .. } => {
                                    body = Some(children);
                                    break;
                                }
                                _ => j += 1,
                            }
                        }
                        if let Some(body) = body {
                            out.push(FnItem {
                                name: &name_tok.text,
                                line,
                                params,
                                body,
                            });
                            collect_functions(body, out);
                            i = j + 1;
                            continue;
                        }
                    }
                }
            }
        }
        if let Node::Group { children, .. } = &nodes[i] {
            // Don't double-recurse into fn bodies (handled above); other
            // groups (impl blocks, modules, match arms) are walked here.
            collect_functions(children, out);
        }
        i += 1;
    }
}

/// Walk every node depth-first, calling `f` on each (groups before their
/// children).
pub fn walk<'a>(nodes: &'a [Node], f: &mut impl FnMut(&'a Node)) {
    for n in nodes {
        f(n);
        if let Node::Group { children, .. } = n {
            walk(children, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_idents_numbers_strings_puncts_with_lines() {
        let toks = lex("let n = r.get_len()?;\nlet s = \"a:b\"; // comment\n");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["let", "n", "=", "r", ".", "get_len", "(", ")", "?", ";", "let", "s", "=", "a:b", ";"]
        );
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[10].line, 2); // second `let`
        let s = toks.iter().find(|t| t.kind == Kind::Str).unwrap();
        assert_eq!(s.text, "a:b");
    }

    #[test]
    fn raw_strings_and_escapes_lex_as_single_tokens() {
        let toks = lex(r####"let a = r#"x { } ""#; let b = "q\"r";"####);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == Kind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec![r#"x { } ""#, "q\\\"r"]);
    }

    #[test]
    fn numbers_with_exponents_and_ranges() {
        let toks = lex("1e-4 0x40 8usize 0..n 1.5");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == Kind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["1e-4", "0x40", "8usize", "0", "1.5"]);
    }

    #[test]
    fn lifetimes_and_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.iter().any(|t| t.text == "'"));
        assert!(toks.iter().any(|t| t.text == "a" && t.kind == Kind::Ident));
        // The char literal body never becomes a token.
        assert!(!toks.iter().any(|t| t.text == "x" && t.kind == Kind::Str));
    }

    #[test]
    fn trees_nest_and_tolerate_imbalance() {
        let nodes = parse_source("fn f() { a(b[c]); }");
        // fn f () { ... }
        assert!(nodes[0].is_ident("fn"));
        let body = nodes
            .iter()
            .find_map(|n| n.group('{'))
            .expect("body group");
        assert!(body.iter().any(|n| n.group('(').is_some()));

        // Unbalanced: extra closer and unclosed opener both survive.
        let nodes = parse_source("} fn g( { a(b }");
        assert!(nodes.iter().any(|n| n.is_ident("fn")));
    }

    #[test]
    fn functions_found_including_nested_and_methods() {
        let src = "
impl Compressor for X {
    fn set_options(&mut self, o: &Options) -> Result<()> {
        fn helper(n: usize) -> usize { n }
        Ok(())
    }
}
fn top() {}
trait T { fn sig_only(&self); }
";
        let nodes = parse_source(src);
        let fns = functions(&nodes);
        let names: Vec<&str> = fns.iter().map(|f| f.name).collect();
        assert!(names.contains(&"set_options"));
        assert!(names.contains(&"helper"));
        assert!(names.contains(&"top"));
        assert!(!names.contains(&"sig_only"));
    }

    #[test]
    fn nested_macros_parse_as_groups() {
        let src = "fn f(n: usize, m: usize) { let v = vec![vec![0u8; n]; m]; }";
        let nodes = parse_source(src);
        let fns = functions(&nodes);
        assert_eq!(fns.len(), 1);
        let mut brackets = 0;
        walk(fns[0].body, &mut |n| {
            if n.group('[').is_some() {
                brackets += 1;
            }
        });
        assert_eq!(brackets, 2);
    }
}
