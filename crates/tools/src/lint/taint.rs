//! Intraprocedural wire-taint analysis (`taint-alloc` / `taint-arith`).
//!
//! Values read from untrusted compressed streams — [`ByteReader::get_len`],
//! `get_count`, `get_u16/u32/u64`, `get_dims`, `from_le_bytes`,
//! `read_u16/u32/u64` — are *tainted*: a hostile stream controls them
//! completely. The fuzz harness (PR 2) showed what happens when a tainted
//! value reaches an allocation before validation: the `sz` decoder briefly
//! allocated 34 GB for a corrupt header's declared geometry. This pass turns
//! that bug class into a compile-time (well, lint-time) guarantee:
//!
//! * **`taint-alloc`** — a tainted value flows into an allocation site
//!   (`Vec::with_capacity`, `vec![x; n]`, `.reserve(n)`, `.resize(n, ..)`,
//!   `.with_capacity(n)`) without a dominating bounds check.
//! * **`taint-arith`** — a tainted value feeds an unchecked `*`, `+`, or
//!   `<<` (the classic length-overflow shapes) without a dominating check;
//!   a wrapped product that later sizes a buffer or indexes a slice is the
//!   same bug wearing overflow clothing.
//!
//! The analysis is intraprocedural and flow-ordered over each function's
//! token tree (see [`super::tokens`]): `let` bindings propagate taint,
//! rebinding a name to a clean expression clears it, and two forms
//! *sanitize* a value —
//!
//! 1. binding through a guarded expression: `checked_geometry(..)`,
//!    `bytes_to_elements(..)`, `.min(..)` / `.clamp(..)`, `try_into()`,
//!    `checked_mul` / `checked_add` / `checked_sub` / `checked_shl`,
//!    `saturating_*`, or comparison against `MAX_DECODE_BYTES`;
//! 2. a dominating guard statement: an `if`/`if let` whose condition
//!    mentions the tainted name in a comparison and whose body exits
//!    (`return` / `Err` / `break` / `continue`) — the `if n >
//!    payload.len() * 8 { return Err(..) }` idiom.
//!
//! The walk is token-order, which for the straight-line decode functions
//! this rule targets coincides with domination; pathological control flow
//! can fool it in both directions, which is the accepted price of a
//! dependency-light linter. Findings that prove intentional are waived in
//! `lint-allow.txt` with a written justification — but the intended fix is
//! a real bound, and PR 6 fixed every in-tree finding instead of waiving.

use std::collections::HashSet;

use super::tokens::{functions, Kind, Node, Tok};

/// Wire-read calls whose results are attacker-controlled.
const SOURCES: &[&str] = &[
    "get_len",
    "get_count",
    "get_dims",
    "get_u16",
    "get_u32",
    "get_u64",
    "get_i64",
    "from_le_bytes",
    "read_u16",
    "read_u32",
    "read_u64",
];

/// Idents that sanitize an expression they appear in (bounded conversion,
/// checked arithmetic, explicit caps).
const SANITIZERS: &[&str] = &[
    "checked_geometry",
    "bytes_to_elements",
    "try_into",
    "try_from",
    "min",
    "clamp",
    "MAX_DECODE_BYTES",
    // The length of a materialized container is bounded by memory the
    // process already owns — `.len()` / dtype `.size()` results are not
    // attacker-amplifiable even when the container itself is tainted.
    "len",
    "size",
];

/// Allocation sinks: `<recv>.NAME(len, ..)` or `Path::NAME(len)`.
const ALLOC_SINKS: &[&str] = &["with_capacity", "reserve", "resize", "reserve_exact"];

/// One raw taint finding: which rule, where, and why.
#[derive(Debug)]
pub struct TaintFinding {
    /// `taint-alloc` or `taint-arith` (rule ids owned by `super`).
    pub alloc: bool,
    /// 0-based line index of the sink.
    pub line_idx: usize,
    /// Human-readable cause, appended to the snippet.
    pub why: String,
}

/// Run the taint pass over a parsed file. `is_test_line` masks
/// `#[cfg(test)]` regions (0-based line index).
pub fn scan(nodes: &[Node], is_test_line: &dyn Fn(usize) -> bool) -> Vec<TaintFinding> {
    let mut findings = Vec::new();
    for f in functions(nodes) {
        if f.line == 0 || is_test_line(f.line - 1) {
            continue;
        }
        let mut st = State {
            tainted: HashSet::new(),
            findings: &mut findings,
        };
        st.scan_block(f.body);
    }
    // One report per (rule, line): compound expressions like `nz * ny * nx`
    // hit several op sites on the same line.
    let mut seen = HashSet::new();
    findings.retain(|f| seen.insert((f.alloc, f.line_idx)));
    findings
}

struct State<'a> {
    tainted: HashSet<String>,
    findings: &'a mut Vec<TaintFinding>,
}

impl State<'_> {
    /// Does this expression *read* taint: a source call, or a tainted name?
    fn expr_tainted(&self, nodes: &[Node]) -> Option<String> {
        let mut found = None;
        walk_until(nodes, &mut |n| {
            if let Some(t) = n.tok() {
                if t.kind == Kind::Ident {
                    if SOURCES.contains(&t.text.as_str()) {
                        found = Some(format!("wire read `{}`", t.text));
                        return true;
                    }
                    if self.tainted.contains(&t.text) {
                        found = Some(format!("tainted `{}`", t.text));
                        return true;
                    }
                }
            }
            false
        });
        found
    }

    /// Does this expression contain a sanitizer?
    fn expr_sanitized(&self, nodes: &[Node]) -> bool {
        let mut yes = false;
        walk_until(nodes, &mut |n| {
            if let Some(t) = n.tok() {
                if t.kind == Kind::Ident
                    && (SANITIZERS.contains(&t.text.as_str())
                        || t.text.starts_with("checked_")
                        || t.text.starts_with("saturating_"))
                {
                    yes = true;
                    return true;
                }
            }
            false
        });
        yes
    }

    /// Names bound by a `let` pattern (plain, tuple, `mut`, type-annotated).
    fn pattern_names(pat: &[Node]) -> Vec<String> {
        let mut names = Vec::new();
        let mut stop = false;
        walk_until(pat, &mut |n| {
            if n.is_punct(':') || n.is_punct('=') {
                stop = true;
            }
            if stop {
                return true;
            }
            if let Some(t) = n.tok() {
                if t.kind == Kind::Ident && !matches!(t.text.as_str(), "mut" | "ref" | "_") {
                    names.push(t.text.clone());
                }
            }
            false
        });
        names
    }

    /// Statement-ordered walk of one block.
    fn scan_block(&mut self, nodes: &[Node]) {
        let mut i = 0;
        while i < nodes.len() {
            if nodes[i].is_ident("let") {
                // let <pat> (: ty)? = <expr> ;   (or let-else)
                let eq = find_punct(nodes, i, '=');
                let end = find_punct(nodes, i, ';').unwrap_or(nodes.len());
                if let Some(eq) = eq.filter(|&e| e < end) {
                    let pat = &nodes[i + 1..eq];
                    let expr = &nodes[eq + 1..end];
                    self.scan_expr(expr, statement_guarded(expr));
                    let names = Self::pattern_names(pat);
                    let dirty = self.expr_tainted(expr).is_some() && !self.expr_sanitized(expr);
                    for name in names {
                        if dirty {
                            self.tainted.insert(name);
                        } else {
                            self.tainted.remove(&name);
                        }
                    }
                }
                i = end + 1;
                continue;
            }
            if nodes[i].is_ident("if") || nodes[i].is_ident("while") {
                // Guard statement: `if <cond involving tainted + cmp> {
                // <exits> }` sanitizes the mentioned names.
                let body_at = nodes[i + 1..]
                    .iter()
                    .position(|n| n.group('{').is_some())
                    .map(|p| p + i + 1);
                if let Some(body_at) = body_at {
                    let cond = &nodes[i + 1..body_at];
                    let body = nodes[body_at].group('{').unwrap_or(&[]);
                    let mentioned: Vec<String> = self
                        .tainted
                        .iter()
                        .filter(|name| mentions_ident(cond, name))
                        .cloned()
                        .collect();
                    let compares = has_comparison(cond) || self.expr_sanitized(cond);
                    // The guard body still gets scanned either way (it may
                    // allocate an error message — harmless — or do real
                    // work).
                    self.scan_expr(cond, statement_guarded(cond));
                    self.scan_block(body);
                    if !mentioned.is_empty() && compares && block_exits(body) {
                        for name in mentioned {
                            self.tainted.remove(&name);
                        }
                    }
                    i = body_at + 1;
                    continue;
                }
            }
            // Any other statement: gather tokens up to the `;` at this
            // level and scan as an expression. A fallible sanitizer
            // statement — `checked_geometry(dtype, &dims)?;` and friends —
            // dominates every later use of the names it mentions.
            let end = find_punct(nodes, i, ';').unwrap_or(nodes.len());
            let stmt = &nodes[i..end];
            self.scan_expr(stmt, statement_guarded(stmt));
            if self.expr_sanitized(stmt) && stmt.iter().any(|n| n.is_punct('?')) {
                let mentioned: Vec<String> = self
                    .tainted
                    .iter()
                    .filter(|name| mentions_ident(stmt, name))
                    .cloned()
                    .collect();
                for name in mentioned {
                    self.tainted.remove(&name);
                }
            }
            i = end + 1;
        }
    }

    /// Expression scan: sinks + arithmetic, recursing into groups (closure
    /// bodies inside become nested blocks). `guarded` carries the enclosing
    /// statement's bounds-check context into nested argument groups.
    fn scan_expr(&mut self, nodes: &[Node], guarded: bool) {
        let guarded = guarded || statement_guarded(nodes);
        let mut i = 0;
        while i < nodes.len() {
            match &nodes[i] {
                Node::Group {
                    delim: '{',
                    children,
                    ..
                } => self.scan_block(children),
                _ => self.scan_at(nodes, i, guarded),
            }
            i += 1;
        }
    }

    /// Check sink/arith patterns anchored at `nodes[i]`, recursing into
    /// non-block groups.
    fn scan_at(&mut self, nodes: &[Node], i: usize, guarded: bool) {
        // Allocation sinks: NAME ( args ).
        if let Some(t) = nodes[i].tok() {
            if t.kind == Kind::Ident && ALLOC_SINKS.contains(&t.text.as_str()) {
                if let Some(args) = nodes.get(i + 1).and_then(|n| n.group('(')) {
                    if let Some(why) = self.expr_tainted(args) {
                        if !self.expr_sanitized(args) {
                            self.findings.push(TaintFinding {
                                alloc: true,
                                line_idx: t.line.saturating_sub(1),
                                why: format!("`{}` sized by {}", t.text, why),
                            });
                        }
                    }
                }
            }
            // vec![ x ; n ] macro sink.
            if t.kind == Kind::Ident
                && t.text == "vec"
                && nodes.get(i + 1).map(|n| n.is_punct('!')).unwrap_or(false)
            {
                if let Some(body) = nodes.get(i + 2).and_then(|n| n.group('[')) {
                    if let Some(semi) = body.iter().position(|n| n.is_punct(';')) {
                        let len_expr = &body[semi + 1..];
                        if let Some(why) = self.expr_tainted(len_expr) {
                            if !self.expr_sanitized(len_expr) {
                                self.findings.push(TaintFinding {
                                    alloc: true,
                                    line_idx: t.line.saturating_sub(1),
                                    why: format!("`vec![..; n]` sized by {}", why),
                                });
                            }
                        }
                    }
                }
            }
        }
        // Arithmetic sinks: tainted operand adjacent to binary * + <<.
        if let Some(t) = nodes[i].tok() {
            if t.kind == Kind::Punct {
                let c = t.text.as_bytes().first().copied().unwrap_or(b' ') as char;
                let is_shift = c == '<'
                    && nodes.get(i + 1).map(|n| n.is_punct('<')).unwrap_or(false)
                    && !nodes.get(i + 2).map(|n| n.is_punct('=')).unwrap_or(false);
                let is_mul_add = matches!(c, '*' | '+');
                if is_mul_add || is_shift {
                    // Binary position: the previous node must be a value
                    // (ident, number, or closing group), not an operator —
                    // otherwise `*x` is a deref / `+` a bound.
                    let prev_value = i > 0
                        && match &nodes[i - 1] {
                            Node::Group { .. } => true,
                            Node::Tok(p) => p.kind != Kind::Punct,
                        };
                    // Float arithmetic cannot wrap into an allocation size
                    // or index — `pred + qi as f64 * two_eb` is math, not a
                    // length computation.
                    let float_ctx = nodes.iter().any(|n| n.is_ident("f64") || n.is_ident("f32"));
                    if prev_value && !guarded && !float_ctx {
                        let next_at = if is_shift { i + 2 } else { i + 1 };
                        let left = operand_ident(nodes.get(i.wrapping_sub(1)));
                        let right = operand_ident(nodes.get(next_at));
                        for name in [left, right].into_iter().flatten() {
                            if self.tainted.contains(name) {
                                self.findings.push(TaintFinding {
                                    alloc: false,
                                    line_idx: t.line.saturating_sub(1),
                                    why: format!(
                                        "unchecked `{}` on tainted `{}`",
                                        if is_shift { "<<" } else { &t.text },
                                        name
                                    ),
                                });
                                break;
                            }
                        }
                    }
                }
            }
        }
        // Recurse into call-argument groups for nested sinks.
        if let Node::Group {
            delim, children, ..
        } = &nodes[i]
        {
            if *delim != '{' {
                self.scan_expr(children, guarded);
            }
        }
    }
}

/// The ident directly at an operand position (method names and field names
/// qualify — they are never tainted, which keeps `x.len() * 8` quiet).
fn operand_ident(node: Option<&Node>) -> Option<&str> {
    match node {
        Some(Node::Tok(Tok {
            kind: Kind::Ident,
            text,
            ..
        })) => Some(text.as_str()),
        _ => None,
    }
}

/// Does this statement-level slice carry a comparison (guard shape)?
fn has_comparison(nodes: &[Node]) -> bool {
    for (i, n) in nodes.iter().enumerate() {
        if n.is_punct('<') || n.is_punct('>') {
            // `<<`/`>>` are shifts, `->` is an arrow; single angles compare.
            let prev_same = i > 0 && (nodes[i - 1].is_punct('<') || nodes[i - 1].is_punct('-'));
            let next_same = nodes
                .get(i + 1)
                .map(|m| m.is_punct('<') || m.is_punct('>'))
                .unwrap_or(false);
            if !prev_same && !next_same {
                return true;
            }
        }
        if (n.is_punct('=') || n.is_punct('!'))
            && nodes.get(i + 1).map(|m| m.is_punct('=')).unwrap_or(false)
        {
            return true;
        }
    }
    false
}

/// Is the op's statement guarded? True when the *enclosing statement slice*
/// (up to the nearest `;` on both sides) carries a comparison or a checked
/// helper — `if out.len() + n > expect` or `n.checked_mul(8)` shapes.
fn statement_guarded(nodes: &[Node]) -> bool {
    has_comparison(nodes)
        || nodes.iter().any(|n| {
            n.tok().is_some_and(|t| {
                t.kind == Kind::Ident
                    && (t.text.starts_with("checked_")
                        || t.text.starts_with("saturating_")
                        || SANITIZERS.contains(&t.text.as_str())
                        || t.text == "get")
            })
        })
}

/// Does a guard body exit the enclosing function/loop?
fn block_exits(body: &[Node]) -> bool {
    let mut yes = false;
    walk_until(body, &mut |n| {
        if let Some(t) = n.tok() {
            if t.kind == Kind::Ident
                && matches!(
                    t.text.as_str(),
                    "return" | "Err" | "break" | "continue" | "bail"
                )
            {
                yes = true;
                return true;
            }
        }
        false
    });
    yes
}

/// Index of the first `c` punct at this level, at or after `from`.
fn find_punct(nodes: &[Node], from: usize, c: char) -> Option<usize> {
    nodes[from..]
        .iter()
        .position(|n| n.is_punct(c))
        .map(|p| p + from)
}

fn mentions_ident(nodes: &[Node], name: &str) -> bool {
    let mut yes = false;
    walk_until(nodes, &mut |n| {
        if n.is_ident(name) {
            yes = true;
            return true;
        }
        false
    });
    yes
}

/// Depth-first walk aborting when `f` returns true.
fn walk_until(nodes: &[Node], f: &mut impl FnMut(&Node) -> bool) -> bool {
    for n in nodes {
        if f(n) {
            return true;
        }
        if let Node::Group { children, .. } = n {
            if walk_until(children, f) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::super::tokens::parse_source;
    use super::*;

    fn run(src: &str) -> Vec<TaintFinding> {
        scan(&parse_source(src), &|_| false)
    }

    #[test]
    fn unchecked_wire_allocation_flagged() {
        let f = run("fn d(r: &mut ByteReader) -> Result<()> {\n\
                     let n = r.get_len()?;\n\
                     let mut out = Vec::with_capacity(n);\n\
                     Ok(())\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].alloc);
        assert_eq!(f[0].line_idx, 2);
        assert!(f[0].why.contains("tainted `n`"), "{}", f[0].why);
    }

    #[test]
    fn direct_source_in_sink_flagged() {
        let f = run("fn d(r: &mut ByteReader) {\n\
                     let mut v = Vec::with_capacity(r.get_u32()? as usize);\n}\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].why.contains("wire read"), "{}", f[0].why);
    }

    #[test]
    fn vec_macro_and_reserve_and_resize_flagged() {
        let f = run("fn d(r: &mut ByteReader) {\n\
                     let n = r.get_len()?;\n\
                     let a = vec![0u8; n];\n\
                     let mut b = Vec::new();\n\
                     b.reserve(n);\n\
                     b.resize(n, 0);\n}\n");
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|x| x.alloc));
    }

    #[test]
    fn dominating_guard_sanitizes() {
        // The huffman decode_serial idiom: check against payload bits, then
        // allocate.
        let f = run("fn d(r: &mut ByteReader, payload: &[u8]) -> Result<()> {\n\
                     let n = r.get_len()?;\n\
                     if n > payload.len().saturating_mul(8) {\n\
                         return Err(Error::corrupt(\"too many symbols\"));\n\
                     }\n\
                     let mut out = Vec::with_capacity(n);\n\
                     Ok(())\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn guard_split_across_lines_still_dominates() {
        let f = run("fn d(r: &mut ByteReader, total: usize) -> Result<()> {\n\
                     let m = r.get_len()?;\n\
                     let n = r.get_len()?;\n\
                     if m.checked_mul(n)\n\
                         != Some(total)\n\
                     {\n\
                         return Err(Error::corrupt(\"bad geometry\"));\n\
                     }\n\
                     let mut u = Vec::with_capacity(m);\n\
                     let mut v = Vec::with_capacity(n);\n\
                     Ok(())\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn sanitizing_binding_clears_taint() {
        for clean in [
            "let n = r.get_u64()?.min(MAX_DECODE_BYTES) as usize;",
            "let n: usize = r.get_u64()?.try_into().map_err(bad)?;",
            "let n = checked_geometry(dtype, &dims)?;",
            "let n = r.get_u32()?.clamp(0, 4096) as usize;",
        ] {
            let src = format!(
                "fn d(r: &mut ByteReader) {{\n{clean}\nlet v = Vec::with_capacity(n);\n}}\n"
            );
            assert!(run(&src).is_empty(), "{clean}");
        }
    }

    #[test]
    fn rebinding_clean_value_clears_taint() {
        let f = run("fn d(r: &mut ByteReader, buf: &[u8]) {\n\
                     let n = r.get_len()?;\n\
                     let n = buf.len();\n\
                     let v = Vec::with_capacity(n);\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unchecked_product_of_wire_dims_flagged() {
        // The seeded sz regression shape: three wire dims multiplied raw.
        let f = run("fn d(r: &mut ByteReader) -> Result<()> {\n\
                     let nz = r.get_len()?;\n\
                     let ny = r.get_len()?;\n\
                     let nx = r.get_len()?;\n\
                     let n = nz * ny * nx;\n\
                     let out = vec![0.0f64; n];\n\
                     Ok(())\n}\n");
        let arith = f.iter().filter(|x| !x.alloc).count();
        let alloc = f.iter().filter(|x| x.alloc).count();
        assert!(arith >= 1, "{f:?}");
        assert_eq!(alloc, 1, "{f:?}");
    }

    #[test]
    fn shift_on_tainted_length_flagged() {
        let f = run("fn d(r: &mut ByteReader) {\n\
                     let bits = r.get_u32()? as usize;\n\
                     let n = 1usize << bits;\n}\n");
        assert_eq!(f.iter().filter(|x| !x.alloc).count(), 1, "{f:?}");
    }

    #[test]
    fn comparison_context_suppresses_arith() {
        let f = run(
            "fn d(r: &mut ByteReader, expect: usize, out: &[u8]) -> Result<()> {\n\
                     let n = r.get_len()?;\n\
                     if out.len() + n > expect {\n\
                         return Err(Error::corrupt(\"overrun\"));\n\
                     }\n\
                     Ok(())\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn untainted_arithmetic_quiet() {
        let f = run("fn d(payload: &[u8]) {\n\
                     let n = payload.len() * 8;\n\
                     let v = Vec::with_capacity(n);\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_modules_masked() {
        let src = "fn d(r: &mut ByteReader) {\nlet n = r.get_len().unwrap();\nlet v = Vec::with_capacity(n);\n}\n";
        let all = scan(&parse_source(src), &|_| false);
        assert_eq!(all.len(), 1);
        let masked = scan(&parse_source(src), &|_| true);
        assert!(masked.is_empty());
    }
}
