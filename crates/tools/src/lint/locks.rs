//! Lock discipline (`lock-order`, `no-lock-in-par-closure`) and hot-loop
//! allocation hygiene (`no-alloc-in-par-closure`).
//!
//! PR 3's store-lock cascade — `sz` global-store serialization composing
//! with the shared pool into timeouts — is a protocol bug: locks are fine,
//! lock *composition* is what deadlocks. This pass encodes the workspace's
//! two composition rules.
//!
//! **Global acquisition order** (`lock-order`). The workspace's global
//! locks have one sanctioned order, outermost first:
//!
//! | rank | lock                    | acquired via            |
//! |------|-------------------------|-------------------------|
//! | 10   | sz global store lock    | `lock_store()`          |
//! | 20   | exec pool internals     | `lock_ignore_poison(..)`|
//! | 30   | trace ring buffer       | `buffers().lock()`      |
//!
//! A plugin may hold the store lock while compressing (which reaches the
//! pool, which may emit trace events), so store > pool > trace is the only
//! order that composes. Within one function, acquiring a *lower*-rank lock
//! while a `let`-bound guard of a *higher* rank is still live inverts the
//! order and is flagged. Temporary acquisitions (`lock_x().do_y()`) drop
//! at the end of their statement and do not count as held. Per-instance
//! locks (a plugin's own `self.stats.lock()`) have no global rank and are
//! exempt — they cannot participate in a cross-subsystem cycle unless they
//! wrap one of the ranked locks, which the nesting check still sees.
//!
//! **No locks in parallel closures** (`no-lock-in-par-closure`). Closures
//! handed to `par_map_indexed` / `par_chunks` run on the shared pool; a
//! lock acquired inside one serializes the very work the pool exists to
//! parallelize, and — worse — a *global* lock there is the PR 3 cascade:
//! every worker convoys on it while the submitter helps, inflating
//! latencies past the guard's watchdog. Any `.lock()` / `.try_lock()` /
//! `lock_store()` / `lock_ignore_poison()` inside the argument list of a
//! `par_map_indexed(..)` / `par_chunks(..)` call is flagged. `exec.rs`
//! itself is exempt (the pool's own bookkeeping must lock); per-task
//! mutexes that are provably uncontended (one task = one mutex) may be
//! waived in `lint-allow.txt` with that argument spelled out.
//!
//! **No allocations in parallel closures** (`no-alloc-in-par-closure`).
//! The per-worker [`Scratch`] arena exists so the hot kernels stop paying
//! the allocator on every chunk; a `Vec::new()` / `vec![..]` /
//! `with_capacity(..)` inside a `par_map_indexed` / `par_chunks` closure
//! reintroduces exactly the per-chunk malloc traffic the arena removed
//! (and, under glibc, contends on the arena lock across workers). Route
//! the buffer through `with_scratch` or hoist it out of the closure.
//! `exec.rs` is exempt (the pool's own plumbing allocates task vectors);
//! other sites need a `lint-allow.txt` waiver spelling out why the
//! allocation cannot be hoisted.

use super::tokens::{functions, Kind, Node};

/// Rank in the global acquisition order (lower = outermost).
fn rank_of(callee: &str) -> Option<u32> {
    match callee {
        "lock_store" | "try_lock_store" => Some(10),
        "lock_ignore_poison" => Some(20),
        _ => None,
    }
}

/// Lock-ish method/function names that count as acquisitions inside
/// parallel closures.
const LOCK_CALLS: &[&str] = &[
    "lock",
    "try_lock",
    "lock_store",
    "try_lock_store",
    "lock_ignore_poison",
];

const PAR_ENTRY: &[&str] = &["par_map_indexed", "par_chunks"];

#[derive(Debug)]
pub struct LockFinding {
    /// true → `lock-order`; false → `no-lock-in-par-closure`.
    pub order: bool,
    pub line_idx: usize,
    pub msg: String,
}

/// Scan a parsed file. `is_test_line` masks `#[cfg(test)]` regions.
pub fn scan(nodes: &[Node], is_test_line: &dyn Fn(usize) -> bool) -> Vec<LockFinding> {
    let mut findings = Vec::new();
    for f in functions(nodes) {
        if f.line == 0 || is_test_line(f.line - 1) {
            continue;
        }
        check_order(f.body, &mut findings);
        check_par_closures(f.body, &mut findings);
    }
    findings
}

/// One acquisition event in token order.
struct Acq {
    rank: u32,
    callee: String,
    line: usize,
    /// `let`-bound guards live past their statement; temporaries do not.
    held: bool,
}

fn check_order(body: &[Node], findings: &mut Vec<LockFinding>) {
    let mut acqs: Vec<Acq> = Vec::new();
    collect_acquisitions(body, &mut acqs);
    // Token order approximates program order in the straight-line functions
    // these global locks appear in. Flag rank inversions against any
    // still-held earlier guard.
    for i in 0..acqs.len() {
        if !acqs[i].held {
            continue;
        }
        for later in &acqs[i + 1..] {
            if later.rank < acqs[i].rank {
                findings.push(LockFinding {
                    order: true,
                    line_idx: later.line.saturating_sub(1),
                    msg: format!(
                        "`{}` (rank {}) acquired while `{}` (rank {}) guard from line {} may \
                         still be held — global order is store(10) > pool(20) > trace(30), \
                         outermost first",
                        later.callee,
                        later.rank,
                        acqs[i].callee,
                        acqs[i].rank,
                        acqs[i].line,
                    ),
                });
            }
        }
    }
}

/// Flatten ranked acquisitions in token order, marking which are
/// `let`-bound. Statement boundaries are `;` tokens at each block level.
fn collect_acquisitions(nodes: &[Node], out: &mut Vec<Acq>) {
    let mut stmt_start = 0;
    let mut i = 0;
    while i <= nodes.len() {
        let at_end = i == nodes.len();
        if at_end || nodes[i].is_punct(';') {
            let stmt = &nodes[stmt_start..i];
            let let_bound = stmt.first().map(|n| n.is_ident("let")).unwrap_or(false);
            scan_stmt(stmt, let_bound, out);
            stmt_start = i + 1;
        }
        i += 1;
    }
}

fn scan_stmt(stmt: &[Node], let_bound: bool, out: &mut Vec<Acq>) {
    let mut i = 0;
    while i < stmt.len() {
        if let Some(t) = stmt[i].tok() {
            if t.kind == Kind::Ident {
                let ranked = rank_of(&t.text).or_else(|| {
                    // buffers().lock() — the trace ring.
                    (t.text == "lock"
                        && stmt[..i]
                            .iter()
                            .rev()
                            .take(4)
                            .any(|n| n.is_ident("buffers")))
                    .then_some(30)
                });
                if let Some(rank) = ranked {
                    let is_call = stmt
                        .get(i + 1)
                        .map(|n| n.group('(').is_some())
                        .unwrap_or(false);
                    if is_call {
                        out.push(Acq {
                            rank,
                            callee: t.text.clone(),
                            line: t.line,
                            held: let_bound,
                        });
                    }
                }
            }
        }
        if let Node::Group { delim, children, .. } = &stmt[i] {
            if *delim == '{' {
                // Nested block: its own statements; guards there die with
                // the block, but an inversion inside still counts, so keep
                // collecting into the same list.
                collect_acquisitions(children, out);
            } else {
                scan_stmt(children, let_bound, out);
            }
        }
        i += 1;
    }
}

fn check_par_closures(body: &[Node], findings: &mut Vec<LockFinding>) {
    let mut i = 0;
    while i < body.len() {
        if let Some(t) = body[i].tok() {
            if t.kind == Kind::Ident && PAR_ENTRY.contains(&t.text.as_str()) {
                if let Some(args) = body.get(i + 1).and_then(|n| n.group('(')) {
                    flag_locks_in(args, &t.text, findings);
                    i += 2;
                    continue;
                }
            }
        }
        if let Node::Group { children, .. } = &body[i] {
            check_par_closures(children, findings);
        }
        i += 1;
    }
}

fn flag_locks_in(args: &[Node], entry: &str, findings: &mut Vec<LockFinding>) {
    let mut i = 0;
    while i < args.len() {
        if let Some(t) = args[i].tok() {
            if t.kind == Kind::Ident
                && LOCK_CALLS.contains(&t.text.as_str())
                && args
                    .get(i + 1)
                    .map(|n| n.group('(').is_some())
                    .unwrap_or(false)
            {
                findings.push(LockFinding {
                    order: false,
                    line_idx: t.line.saturating_sub(1),
                    msg: format!(
                        "`{}()` inside a `{entry}` closure runs on the shared pool and \
                         serializes its workers (PR 3 store-lock cascade shape)",
                        t.text,
                    ),
                });
            }
        }
        if let Node::Group { children, .. } = &args[i] {
            flag_locks_in(children, entry, findings);
        }
        i += 1;
    }
}

/// An allocation inside a parallel closure (`no-alloc-in-par-closure`).
#[derive(Debug)]
pub struct AllocFinding {
    pub line_idx: usize,
    pub msg: String,
}

/// Scan a parsed file for allocations inside `par_map_indexed` /
/// `par_chunks` closures. `is_test_line` masks `#[cfg(test)]` regions.
pub fn scan_allocs(nodes: &[Node], is_test_line: &dyn Fn(usize) -> bool) -> Vec<AllocFinding> {
    let mut findings = Vec::new();
    for f in functions(nodes) {
        if f.line == 0 || is_test_line(f.line - 1) {
            continue;
        }
        check_par_allocs(f.body, &mut findings);
    }
    findings
}

fn check_par_allocs(body: &[Node], findings: &mut Vec<AllocFinding>) {
    let mut i = 0;
    while i < body.len() {
        if let Some(t) = body[i].tok() {
            if t.kind == Kind::Ident && PAR_ENTRY.contains(&t.text.as_str()) {
                if let Some(args) = body.get(i + 1).and_then(|n| n.group('(')) {
                    flag_allocs_in(args, &t.text, findings);
                    i += 2;
                    continue;
                }
            }
        }
        if let Node::Group { children, .. } = &body[i] {
            check_par_allocs(children, findings);
        }
        i += 1;
    }
}

/// Flag the allocation heads inside a parallel-entry argument list:
/// `vec![..]`, `..::with_capacity(..)`, and `Vec::new()` (looking back a
/// few tokens for the `Vec` path segment so a plugin's own `Self::new()`
/// constructors stay clean).
fn flag_allocs_in(args: &[Node], entry: &str, findings: &mut Vec<AllocFinding>) {
    let mut i = 0;
    while i < args.len() {
        if let Some(t) = args[i].tok() {
            if t.kind == Kind::Ident {
                let next_is_call = args
                    .get(i + 1)
                    .map(|n| n.group('(').is_some())
                    .unwrap_or(false);
                let hit = match t.text.as_str() {
                    // vec![..] — the macro bang follows the ident.
                    "vec" => args.get(i + 1).map(|n| n.is_punct('!')).unwrap_or(false),
                    "with_capacity" => next_is_call,
                    "new" => {
                        next_is_call
                            && args[..i]
                                .iter()
                                .rev()
                                .take(3)
                                .any(|n| n.is_ident("Vec") || n.is_ident("String"))
                    }
                    _ => false,
                };
                if hit {
                    findings.push(AllocFinding {
                        line_idx: t.line.saturating_sub(1),
                        msg: format!(
                            "`{}` allocates inside a `{entry}` closure — per-chunk malloc \
                             traffic the per-worker Scratch arena exists to remove; route \
                             the buffer through `with_scratch` or hoist it out",
                            t.text,
                        ),
                    });
                }
            }
        }
        if let Node::Group { children, .. } = &args[i] {
            flag_allocs_in(children, entry, findings);
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::super::tokens::parse_source;
    use super::*;

    fn run(src: &str) -> Vec<LockFinding> {
        scan(&parse_source(src), &|_| false)
    }

    fn run_allocs(src: &str) -> Vec<AllocFinding> {
        scan_allocs(&parse_source(src), &|_| false)
    }

    #[test]
    fn sanctioned_order_is_clean() {
        let f = run("fn go() {\n\
                     let _guard = lock_store();\n\
                     let mut q = lock_ignore_poison(&shared.injector);\n\
                     q.push_back(t);\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn inverted_order_flagged() {
        let f = run("fn go(shared: &Shared) {\n\
                     let _q = lock_ignore_poison(&shared.injector);\n\
                     let _guard = lock_store();\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].order);
        assert!(f[0].msg.contains("rank 10"), "{}", f[0].msg);
    }

    #[test]
    fn temporary_acquisition_not_held() {
        // A statement-scoped temporary drops before the next statement.
        let f = run("fn go(shared: &Shared) {\n\
                     lock_ignore_poison(&shared.injector).push_back(t);\n\
                     let _guard = lock_store();\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn trace_lock_ranked_innermost() {
        let f = run("fn go() {\n\
                     let b = buffers().lock();\n\
                     let _guard = lock_store();\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("lock_store"), "{}", f[0].msg);
    }

    #[test]
    fn unranked_instance_locks_exempt() {
        let f = run("fn go(&self) {\n\
                     let mut s = self.stats.lock();\n\
                     let _guard = lock_store();\n\
                     s.hits += 1;\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn lock_inside_par_closure_flagged() {
        let f = run("fn go(workers: &[Mutex<W>]) {\n\
                     let out = pressio_core::par_map_indexed(n, |i| {\n\
                         workers[i].lock().compress(&chunks[i])\n\
                     });\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(!f[0].order);
        assert!(f[0].msg.contains("par_map_indexed"), "{}", f[0].msg);
    }

    #[test]
    fn par_chunks_and_global_locks_flagged() {
        let f = run("fn go(data: &[u8]) {\n\
                     par_chunks(data, 4, |c| {\n\
                         let _g = lock_store();\n\
                         encode(c)\n\
                     });\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("lock_store"), "{}", f[0].msg);
    }

    #[test]
    fn lock_outside_closure_not_flagged() {
        let f = run("fn go(data: &[u8]) {\n\
                     let _g = lock_store();\n\
                     par_chunks(data, 4, |c| encode(c));\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_modules_masked() {
        let src = "fn go(shared: &Shared) {\nlet _q = lock_ignore_poison(&x);\nlet _g = lock_store();\n}\n";
        assert_eq!(run(src).len(), 1);
        assert!(scan(&parse_source(src), &|_| true).is_empty());
    }

    #[test]
    fn vec_macro_inside_par_closure_flagged() {
        let f = run_allocs(
            "fn go(n: usize) {\n\
             let out = par_map_indexed(n, |i| {\n\
                 let mut buf = vec![0u8; 64];\n\
                 encode(i, &mut buf)\n\
             });\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("par_map_indexed"), "{}", f[0].msg);
    }

    #[test]
    fn with_capacity_and_vec_new_inside_par_chunks_flagged() {
        let f = run_allocs(
            "fn go(data: &[u8]) {\n\
             par_chunks(data, 4, |c| {\n\
                 let mut staging = Vec::with_capacity(c.len());\n\
                 let mut lits: Vec<u8> = Vec::new();\n\
                 encode(c, &mut staging, &mut lits)\n\
             });\n}\n",
        );
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].msg.contains("with_capacity"), "{}", f[0].msg);
        assert!(f[1].msg.contains("new"), "{}", f[1].msg);
    }

    #[test]
    fn plain_new_constructors_inside_par_closure_clean() {
        // Self::new() / Encoder::new() are constructors, not Vec allocs.
        let f = run_allocs(
            "fn go(n: usize) {\n\
             let out = par_map_indexed(n, |i| {\n\
                 let enc = Encoder::new(i);\n\
                 enc.run()\n\
             });\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allocs_outside_par_closure_clean() {
        let f = run_allocs(
            "fn go(data: &[u8]) {\n\
             let mut out = Vec::with_capacity(data.len());\n\
             let seed = vec![0u8; 8];\n\
             par_chunks(data, 4, |c| encode(c));\n\
             out.extend_from_slice(&seed);\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn scratch_routed_buffers_inside_par_closure_clean() {
        let f = run_allocs(
            "fn go(n: usize) {\n\
             let out = par_map_indexed(n, |i| {\n\
                 with_scratch(|s| {\n\
                     let buf = s.u8_slice(64);\n\
                     encode(i, buf)\n\
                 })\n\
             });\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn alloc_scan_masks_test_modules() {
        let src = "fn go(n: usize) {\npar_map_indexed(n, |i| vec![i]);\n}\n";
        assert_eq!(run_allocs(src).len(), 1);
        assert!(scan_allocs(&parse_source(src), &|_| true).is_empty());
    }
}
