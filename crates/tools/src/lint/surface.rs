//! Key-level plugin-surface consistency (`plugin-surface-keys`).
//!
//! The v1 `plugin-surface` rule checks that every `impl Compressor for ..`
//! carries the four option methods; it says nothing about the *keys* those
//! methods trade in. LibPressio's introspection model only works if the
//! surface is symmetric: a key a plugin acts on in `set_options` must be
//! discoverable through `get_options`/`get_configuration` (otherwise
//! `pressio options` lies to the user), and a key `get_options` advertises
//! must actually do something in `set_options` (otherwise setting it is a
//! silent no-op).
//!
//! This pass parses each `impl Compressor for X` block and extracts key
//! expressions from the three method bodies:
//!
//! * **accepted** — first arguments of `options.get_as::<T>(..)` /
//!   `options.get(..)` inside `set_options`;
//! * **declared** — first arguments of `.with(..)` / `.set(..)` /
//!   `.declare(..)` inside `get_options` and `get_configuration`.
//!
//! Keys are canonicalized so the three spelling families compare equal:
//! `format!("{p}:nthreads")` and `format!("{}:nthreads", self.name())`
//! normalize to the suffix `nthreads`; plain literals like `"cast:dtype"`
//! keep their text and match suffixes by their tail-after-prefix; const
//! paths (`pressio_core::OPT_ABS`) match by const name. Dynamic keys the
//! extractor cannot resolve (e.g. a key computed in a helper) are skipped
//! rather than guessed.
//!
//! Checked both ways, asymmetrically:
//!
//! 1. every accepted key must be declared in `get_options` **or**
//!    `get_configuration`;
//! 2. every `get_options`-declared key must be accepted
//!    (`get_configuration` is exempt — it is a read-only capability
//!    surface, e.g. `{p}:pressio:lossless`).
//!
//! Meta-compressors that forward `options` wholesale to a child
//! (`self.child.set_options(options)`) and merge the child's surface back
//! (`o.merge(..)`) are transparent to this pass: forwarded keys are
//! invisible in both directions, so they cannot produce findings.

use super::tokens::{functions, Kind, Node, Tok};

/// A canonicalized option key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Key {
    /// `format!("{p}:tail", ..)` — matched by tail.
    Suffix(String),
    /// A plain string literal, e.g. `"cast:dtype"`.
    Lit(String),
    /// A named constant, e.g. `OPT_ABS`.
    Const(String),
}

impl Key {
    pub fn describe(&self) -> String {
        match self {
            Key::Suffix(s) => format!("{{prefix}}:{s}"),
            Key::Lit(s) => s.clone(),
            Key::Const(s) => s.clone(),
        }
    }

    /// Two keys denote the same option if their canonical forms agree;
    /// a literal `"blosc:shuffle"` also satisfies the suffix `shuffle`.
    fn matches(&self, other: &Key) -> bool {
        match (self, other) {
            (Key::Suffix(a), Key::Suffix(b)) => a == b,
            (Key::Lit(a), Key::Lit(b)) => a == b,
            (Key::Const(a), Key::Const(b)) => a == b,
            (Key::Lit(l), Key::Suffix(s)) | (Key::Suffix(s), Key::Lit(l)) => {
                l == s || l.ends_with(&format!(":{s}"))
            }
            _ => false,
        }
    }
}

/// One extracted key with its source line (0-based).
#[derive(Debug)]
struct KeyAt {
    key: Key,
    line_idx: usize,
}

/// A surface inconsistency in one `impl Compressor` block.
#[derive(Debug)]
pub struct SurfaceFinding {
    pub line_idx: usize,
    pub msg: String,
}

/// Scan a parsed file for `impl Compressor for X` blocks and check each
/// one's key surface. `is_test_line` masks `#[cfg(test)]` regions.
pub fn scan(nodes: &[Node], is_test_line: &dyn Fn(usize) -> bool) -> Vec<SurfaceFinding> {
    let mut findings = Vec::new();
    each_impl(nodes, &mut |type_name, line, body| {
        if line > 0 && is_test_line(line - 1) {
            return;
        }
        check_impl(type_name, body, &mut findings);
    });
    findings
}

/// Visit every `impl Compressor for NAME { .. }` block, recursively (impls
/// can live inside `mod` blocks).
fn each_impl<'a>(nodes: &'a [Node], f: &mut impl FnMut(&'a str, usize, &'a [Node])) {
    let mut i = 0;
    while i < nodes.len() {
        if nodes[i].is_ident("impl")
            && nodes.get(i + 1).map(|n| n.is_ident("Compressor")).unwrap_or(false)
            && nodes.get(i + 2).map(|n| n.is_ident("for")).unwrap_or(false)
        {
            // impl Compressor for NAME [<..>] { .. }
            let name = nodes.get(i + 3).and_then(|n| n.tok()).map(|t| t.text.as_str());
            let body = nodes[i + 3..]
                .iter()
                .take(8)
                .find_map(|n| n.group('{'));
            if let (Some(name), Some(body)) = (name, body) {
                f(name, nodes[i].line(), body);
            }
            i += 4;
            continue;
        }
        if let Node::Group { children, .. } = &nodes[i] {
            each_impl(children, f);
        }
        i += 1;
    }
}

fn check_impl(type_name: &str, body: &[Node], findings: &mut Vec<SurfaceFinding>) {
    let mut accepted: Vec<KeyAt> = Vec::new();
    let mut declared_opts: Vec<KeyAt> = Vec::new();
    let mut declared_conf: Vec<KeyAt> = Vec::new();
    for m in functions(body) {
        match m.name {
            "set_options" => {
                extract(m.body, &["get_as", "get"], &mut accepted);
                // `ErrorBound::from_common_options(options)` is the house
                // helper for the generic bounds: it reads OPT_ABS/OPT_REL
                // on the plugin's behalf.
                let mut uses_helper = false;
                walk_calls(m.body, &mut |name, _, _| {
                    uses_helper |= name == "from_common_options";
                });
                if uses_helper {
                    for name in ["OPT_ABS", "OPT_REL"] {
                        let key = Key::Const(name.to_string());
                        if !accepted.iter().any(|k| k.key == key) {
                            accepted.push(KeyAt { key, line_idx: m.line.saturating_sub(1) });
                        }
                    }
                }
            }
            "get_options" => extract(m.body, &["with", "set", "declare"], &mut declared_opts),
            "get_configuration" => extract(m.body, &["with", "set", "declare"], &mut declared_conf),
            _ => {}
        }
    }
    // Direction 1: accepted ⊆ declared(get_options ∪ get_configuration).
    for a in &accepted {
        let ok = declared_opts
            .iter()
            .chain(declared_conf.iter())
            .any(|d| d.key.matches(&a.key));
        if !ok {
            findings.push(SurfaceFinding {
                line_idx: a.line_idx,
                msg: format!(
                    "impl {type_name}: set_options accepts `{}` but neither get_options nor \
                     get_configuration declares it",
                    a.key.describe()
                ),
            });
        }
    }
    // Direction 2: get_options-declared ⊆ accepted.
    for d in &declared_opts {
        if !accepted.iter().any(|a| a.key.matches(&d.key)) {
            findings.push(SurfaceFinding {
                line_idx: d.line_idx,
                msg: format!(
                    "impl {type_name}: get_options declares `{}` but set_options never reads it \
                     (setting it is a silent no-op)",
                    d.key.describe()
                ),
            });
        }
    }
}

/// Collect canonical keys from `NAME(<first-arg>, ..)` call sites for the
/// given method names within one function body.
fn extract(body: &[Node], methods: &[&str], out: &mut Vec<KeyAt>) {
    walk_calls(body, &mut |name, line, args| {
        if !methods.contains(&name) {
            return;
        }
        let first = first_arg(args);
        if let Some(key) = key_of(first) {
            // Deduplicate: the same key is often both `set` and `declare`d
            // on different match arms.
            if !out.iter().any(|k| k.key == key) {
                out.push(KeyAt { key, line_idx: line.saturating_sub(1) });
            }
        }
    });
}

/// Visit every `ident [::<..>] ( .. )` call shape, depth-first.
fn walk_calls<'a>(nodes: &'a [Node], f: &mut impl FnMut(&'a str, usize, &'a [Node])) {
    let mut i = 0;
    while i < nodes.len() {
        if let Some(Tok { kind: Kind::Ident, text, line }) = nodes[i].tok() {
            // Skip an optional turbofish `::<T>` between name and args.
            let mut j = i + 1;
            if nodes.get(j).map(|n| n.is_punct(':')).unwrap_or(false)
                && nodes.get(j + 1).map(|n| n.is_punct(':')).unwrap_or(false)
                && nodes.get(j + 2).map(|n| n.is_punct('<')).unwrap_or(false)
            {
                // Scan past the matching `>` (flat token scan; generics in
                // these arg positions are single idents in practice).
                let mut depth = 0usize;
                j += 2;
                while j < nodes.len() {
                    if nodes[j].is_punct('<') {
                        depth += 1;
                    } else if nodes[j].is_punct('>') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            if let Some(args) = nodes.get(j).and_then(|n| n.group('(')) {
                f(text, *line, args);
            }
        }
        if let Node::Group { children, .. } = &nodes[i] {
            walk_calls(children, f);
        }
        i += 1;
    }
}

/// The tokens of a call's first argument (up to the first top-level `,`).
fn first_arg(args: &[Node]) -> &[Node] {
    let end = args.iter().position(|n| n.is_punct(',')).unwrap_or(args.len());
    &args[..end]
}

/// Resolve an argument expression to a canonical key, or `None` if it is
/// dynamic (computed elsewhere) — dynamic keys are skipped, not guessed.
fn key_of(arg: &[Node]) -> Option<Key> {
    // format!("{p}:tail", ..) / format!("{}:tail", expr)
    let mut i = 0;
    while i < arg.len() {
        if arg[i].is_ident("format")
            && arg.get(i + 1).map(|n| n.is_punct('!')).unwrap_or(false)
        {
            let inner = arg.get(i + 2).and_then(|n| {
                n.group('(').or_else(|| n.group('[')).or_else(|| n.group('{'))
            })?;
            let lit = inner.iter().find_map(|n| match n.tok() {
                Some(Tok { kind: Kind::Str, text, .. }) => Some(text.as_str()),
                _ => None,
            })?;
            return key_of_format(lit);
        }
        i += 1;
    }
    // Plain string literal.
    if let Some(lit) = arg.iter().find_map(|n| match n.tok() {
        Some(Tok { kind: Kind::Str, text, .. }) => Some(text.as_str()),
        _ => None,
    }) {
        return Some(Key::Lit(lit.to_string()));
    }
    // Const path: last OPT_* style ident in the expression.
    arg.iter().rev().find_map(|n| match n.tok() {
        Some(Tok { kind: Kind::Ident, text, .. })
            if text.starts_with("OPT_")
                || (text.chars().all(|c| c.is_ascii_uppercase() || c == '_')
                    && text.len() > 1) =>
        {
            Some(Key::Const(text.clone()))
        }
        _ => None,
    })
}

/// Canonicalize a `format!` template: `{p}:tail` / `{}:tail` → `Suffix`;
/// no leading placeholder → literal text.
fn key_of_format(template: &str) -> Option<Key> {
    if let Some(rest) = template.strip_prefix('{') {
        let close = rest.find('}')?;
        let tail = rest[close + 1..].strip_prefix(':')?;
        if tail.is_empty() || tail.contains('{') {
            return None; // nested placeholders: dynamic, skip
        }
        return Some(Key::Suffix(tail.to_string()));
    }
    if template.contains('{') {
        return None;
    }
    Some(Key::Lit(template.to_string()))
}

#[cfg(test)]
mod tests {
    use super::super::tokens::parse_source;
    use super::*;

    fn run(src: &str) -> Vec<SurfaceFinding> {
        scan(&parse_source(src), &|_| false)
    }

    #[test]
    fn symmetric_surface_is_clean() {
        let f = run(r#"
impl Compressor for Blosc {
    fn get_options(&self) -> Options {
        Options::new().with("blosc:shuffle", self.shuffle).with("blosc:codec", self.codec.as_str())
    }
    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(s) = options.get_as::<u8>("blosc:shuffle")? { self.shuffle = s; }
        if let Some(c) = options.get_as::<String>("blosc:codec")? { self.codec = c; }
        Ok(())
    }
    fn get_configuration(&self) -> Options {
        let mut o = base_configuration(self);
        o.set("blosc:pressio:lossless", true);
        o
    }
}
"#);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn accepted_but_undeclared_flagged() {
        let f = run(r#"
impl Compressor for P {
    fn get_options(&self) -> Options { Options::new().with(format!("{p}:level"), self.level) }
    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(l) = options.get_as::<u32>(&format!("{p}:level"))? { self.level = l; }
        if let Some(n) = options.get_as::<u32>(pressio_core::OPT_NTHREADS)? { self.n = n; }
        Ok(())
    }
    fn get_configuration(&self) -> Options { base_configuration(self) }
}
"#);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("OPT_NTHREADS"), "{}", f[0].msg);
        assert!(f[0].msg.contains("set_options accepts"));
    }

    #[test]
    fn declared_but_never_read_flagged() {
        let f = run(r#"
impl Compressor for P {
    fn get_options(&self) -> Options {
        Options::new().with(format!("{p}:level"), self.level).with(format!("{p}:ghost"), 0u32)
    }
    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(l) = options.get_as::<u32>(&format!("{p}:level"))? { self.level = l; }
        Ok(())
    }
    fn get_configuration(&self) -> Options { base_configuration(self) }
}
"#);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("ghost"), "{}", f[0].msg);
        assert!(f[0].msg.contains("silent no-op"));
    }

    #[test]
    fn configuration_keys_are_declare_only() {
        // pressio:lossless style capability keys are declared in
        // get_configuration and never settable — that is fine.
        let f = run(r#"
impl Compressor for P {
    fn get_options(&self) -> Options { Options::new() }
    fn set_options(&mut self, _: &Options) -> Result<()> { Ok(()) }
    fn get_configuration(&self) -> Options {
        let mut o = base_configuration(self);
        o.set(format!("{p}:pressio:lossless"), true);
        o
    }
}
"#);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn format_placeholder_and_literal_unify() {
        // Declared via positional `{}` format, accepted via literal: the
        // suffix matcher treats `chunking:nthreads` == `{prefix}:nthreads`.
        let f = run(r#"
impl Compressor for P {
    fn get_options(&self) -> Options {
        let mut o = Options::new();
        o.set(format!("{}:nthreads", self.name()), self.n);
        o
    }
    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(n) = options.get_as::<u32>("chunking:nthreads")? { self.n = n; }
        Ok(())
    }
    fn get_configuration(&self) -> Options { base_configuration(self) }
}
"#);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn const_fallback_declared_via_declare_is_clean() {
        let f = run(r#"
impl Compressor for P {
    fn get_options(&self) -> Options {
        let mut o = Options::new();
        o.set(format!("{p}:nthreads"), self.n);
        o.declare(pressio_core::OPT_NTHREADS, OptionKind::U32);
        o
    }
    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(n) = options
            .get_as::<u32>(&format!("{p}:nthreads"))?
            .or(options.get_as::<u32>(pressio_core::OPT_NTHREADS)?)
        {
            self.n = n;
        }
        Ok(())
    }
    fn get_configuration(&self) -> Options { base_configuration(self) }
}
"#);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_impls_masked() {
        let src = r#"
impl Compressor for P {
    fn get_options(&self) -> Options { Options::new() }
    fn set_options(&mut self, options: &Options) -> Result<()> {
        let _ = options.get_as::<u32>("p:ghost")?;
        Ok(())
    }
    fn get_configuration(&self) -> Options { base_configuration(self) }
}
"#;
        assert_eq!(run(src).len(), 1);
        let masked = scan(&parse_source(src), &|_| true);
        assert!(masked.is_empty());
    }

    #[test]
    fn forwarding_meta_plugin_is_transparent() {
        let f = run(r#"
impl Compressor for Cast {
    fn get_options(&self) -> Options {
        let mut o = Options::new().with("cast:dtype", self.target.name());
        o.merge(&self.child.get_options());
        o
    }
    fn set_options(&mut self, options: &Options) -> Result<()> {
        if let Some(t) = options.get_as::<String>("cast:dtype")? { self.set(t)?; }
        self.child.set_options(options)
    }
    fn get_configuration(&self) -> Options {
        let mut o = base_configuration(self);
        o.merge(&self.child.get_configuration());
        o
    }
}
"#);
        assert!(f.is_empty(), "{f:?}");
    }
}
