//! The live plugin-contract checker.
//!
//! LibPressio's productivity claim rests on every plugin honoring the same
//! interface contract, so generic client code works unchanged across
//! compressors. This module *verifies* that contract against the live
//! registry rather than trusting plugin authors:
//!
//! 1. **Introspection idempotency** — `get_options → set_options(same) →
//!    get_options` must be a fixed point: applying a plugin's own reported
//!    configuration must not change it.
//! 2. **Unknown-key rejection** — option keys bearing the plugin's own
//!    prefix that the plugin does not advertise must produce an error, not a
//!    silent drop (enforced by `CompressorHandle` and the registry proxies;
//!    checked here end to end).
//! 3. **Documentation consistency** — every option key advertised in
//!    `get_documentation` must exist in `get_options` or
//!    `get_configuration` (the bare plugin-name key documents the plugin
//!    itself and is exempt).
//! 4. **Configuration invariants** — `get_configuration` must declare the
//!    reserved `{name}:pressio:{thread_safe,stability,version}` entries and
//!    the version entry must match `version()`.
//! 5. **Metadata round trip** — dtype and dimensions of a buffer must
//!    survive compress → decompress unchanged.
//!
//! Compressors that transform geometry *by design* (samplers, resizers)
//! are exempted from check 5 via an explicit skip list with a reason; the
//! skip is reported, never silent.
//!
//! Third-party plugin authors: register your plugin (see
//! `Registry::register_compressor`) and call [`check_all`] — or
//! [`check_compressor`] / [`check_metrics`] / [`check_io`] for one plugin —
//! from a test in your own crate.

use std::fmt;

use libpressio::core::ErrorCode;
use libpressio::{DType, Data, Options};

/// Which registry a plugin came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PluginKind {
    /// A compressor plugin.
    Compressor,
    /// A metrics plugin.
    Metrics,
    /// An IO plugin.
    Io,
}

impl fmt::Display for PluginKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PluginKind::Compressor => "compressor",
            PluginKind::Metrics => "metrics",
            PluginKind::Io => "io",
        })
    }
}

/// One contract violation found in one plugin.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Registry name of the offending plugin.
    pub plugin: String,
    /// Which registry the plugin came from.
    pub kind: PluginKind,
    /// Short id of the violated check, e.g. `idempotent-options`.
    pub check: &'static str,
    /// Human-readable explanation.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:?} violates [{}]: {}",
            self.kind, self.plugin, self.check, self.detail
        )
    }
}

/// Outcome of a checker run.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of plugins examined.
    pub checked: usize,
    /// All violations found, in registry order.
    pub violations: Vec<Violation>,
    /// Checks that were skipped, as `(plugin, reason)` pairs.
    pub skipped: Vec<(String, String)>,
}

impl Report {
    /// True when no violations were found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    fn violation(
        &mut self,
        plugin: &str,
        kind: PluginKind,
        check: &'static str,
        detail: impl Into<String>,
    ) {
        self.violations.push(Violation {
            plugin: plugin.to_string(),
            kind,
            check,
            detail: detail.into(),
        });
    }

    fn skip(&mut self, plugin: &str, reason: impl Into<String>) {
        self.skipped.push((plugin.to_string(), reason.into()));
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "checked {} plugins: {} violation(s), {} skip(s)",
            self.checked,
            self.violations.len(),
            self.skipped.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  FAIL {v}")?;
        }
        for (p, r) in &self.skipped {
            writeln!(f, "  skip {p}: {r}")?;
        }
        Ok(())
    }
}

/// Compressors whose decompressed geometry intentionally differs from the
/// input (so the metadata-round-trip check does not apply), with the reason
/// reported in [`Report::skipped`].
const GEOMETRY_TRANSFORMERS: &[(&str, &str)] = &[
    ("sample", "decimates by design: decompressed geometry is the sample's"),
    ("resize", "reshapes by design: decompressed geometry is the target's"),
];

/// Check every plugin in the global registry (all builtins are registered
/// first via `libpressio::init()`, plus anything third-party code already
/// registered).
pub fn check_all() -> Report {
    libpressio::init();
    let library = libpressio::instance();
    let mut report = Report::default();
    for name in library.supported_compressors() {
        check_compressor(&name, &mut report);
    }
    for name in library.supported_metrics() {
        check_metrics(&name, &mut report);
    }
    for name in library.supported_io() {
        check_io(&name, &mut report);
    }
    report
}

/// Keys of an option set as an owned, sorted list.
fn key_list(o: &Options) -> Vec<String> {
    o.keys().map(str::to_string).collect()
}

/// Compare two option sets entry by entry; returns human-readable
/// differences ("" means identical). Unset declarations compare by kind.
fn diff_options(before: &Options, after: &Options) -> Vec<String> {
    let mut diffs = Vec::new();
    for (key, v1) in before.iter() {
        match after.get(key) {
            None => diffs.push(format!("key {key:?} disappeared")),
            Some(v2) if v1 != v2 => {
                diffs.push(format!("key {key:?} changed: {v1:?} -> {v2:?}"))
            }
            Some(_) => {}
        }
    }
    for (key, v2) in after.iter() {
        if before.get(key).is_none() {
            diffs.push(format!("key {key:?} appeared: {v2:?}"));
        }
    }
    diffs
}

/// The well-known probe key suffix no sane plugin advertises.
fn probe_key(name: &str) -> String {
    format!("{name}:__contract_probe__")
}

fn check_configuration_invariants(
    name: &str,
    kind: PluginKind,
    cfg: &Options,
    version: Option<String>,
    report: &mut Report,
) {
    for suffix in ["thread_safe", "stability", "version"] {
        let key = format!("{name}:pressio:{suffix}");
        if !cfg.contains(&key) {
            report.violation(
                name,
                kind,
                "configuration-invariants",
                format!("get_configuration is missing reserved key {key:?}"),
            );
        }
    }
    if let Some(expected) = version {
        let key = format!("{name}:pressio:version");
        match cfg.get_as::<String>(&key) {
            Ok(Some(v)) if v == expected => {}
            other => report.violation(
                name,
                kind,
                "version-declared",
                format!("{key:?} is {other:?}, expected {expected:?} from version()"),
            ),
        }
    }
}

fn check_doc_keys(name: &str, kind: PluginKind, docs: &Options, known: &Options, report: &mut Report) {
    for key in docs.keys() {
        // The bare plugin-name key documents the plugin itself.
        if key == name {
            continue;
        }
        if !known.contains(key) {
            report.violation(
                name,
                kind,
                "documented-keys-exist",
                format!(
                    "documented key {key:?} is in neither get_options nor get_configuration \
                     (known: {:?})",
                    key_list(known)
                ),
            );
        }
    }
}

/// Run every compressor contract check against the named plugin.
pub fn check_compressor(name: &str, report: &mut Report) {
    libpressio::init();
    report.checked += 1;
    let kind = PluginKind::Compressor;
    let mut h = match libpressio::registry().compressor(name) {
        Ok(h) => h,
        Err(e) => {
            report.violation(name, kind, "instantiate", e.to_string());
            return;
        }
    };

    if h.name() != name {
        report.violation(
            name,
            kind,
            "name-matches-registry",
            format!("name() reports {:?}", h.name()),
        );
    }

    // Configuration invariants + version pedigree.
    let cfg = h.get_configuration();
    check_configuration_invariants(name, kind, &cfg, Some(h.version().to_string()), report);

    // Documented keys must exist among options or configuration.
    let mut known = h.get_options();
    known.merge(&cfg);
    check_doc_keys(name, kind, &h.get_documentation(), &known, report);

    // get_options -> set_options(same) -> get_options is a fixed point.
    let before = h.get_options();
    match h.set_options(&before) {
        Err(e) => report.violation(
            name,
            kind,
            "idempotent-options",
            format!("set_options(get_options()) failed: {e}"),
        ),
        Ok(()) => {
            let after = h.get_options();
            for diff in diff_options(&before, &after) {
                report.violation(name, kind, "idempotent-options", diff);
            }
        }
    }

    // Unknown keys under the plugin's own prefix must error, not drop.
    let probe = Options::new().with(probe_key(name), 1i32);
    if h.set_options(&probe).is_ok() {
        report.violation(
            name,
            kind,
            "unknown-key-rejected",
            format!("set_options silently accepted {:?}", probe_key(name)),
        );
    }
    if h.check_options(&probe).is_ok() {
        report.violation(
            name,
            kind,
            "unknown-key-rejected",
            format!("check_options silently accepted {:?}", probe_key(name)),
        );
    }

    // Metadata round trip.
    if let Some((_, reason)) = GEOMETRY_TRANSFORMERS.iter().find(|(n, _)| *n == name) {
        report.skip(name, format!("metadata-roundtrip: {reason}"));
    } else {
        check_roundtrip(name, &mut h, report);
    }
}

/// Minimal configuration letting compressors that refuse to run unconfigured
/// (no stages, unreachable default objective, ...) participate in the
/// round-trip check. Shared with the `fuzz-decode` harness so both drive
/// plugins the same way.
pub(crate) fn roundtrip_preset(name: &str) -> Option<Options> {
    match name {
        "opt" => Some(
            Options::new()
                .with("opt:compressor", "sz")
                .with("opt:target_ratio", 2.0f64),
        ),
        "pipeline" => Some(Options::new().with(
            "pipeline:stages",
            vec!["delta".to_string(), "deflate".to_string()],
        )),
        _ => None,
    }
}

/// Smooth synthetic field every lossy compressor should handle.
fn test_field(dims: &[usize]) -> Vec<f32> {
    let n: usize = dims.iter().product();
    (0..n)
        .map(|i| ((i as f32) * 0.01).sin() * 100.0 + (i as f32) * 0.001)
        .collect()
}

fn check_roundtrip(name: &str, h: &mut libpressio::CompressorHandle, report: &mut Report) {
    let kind = PluginKind::Compressor;
    let dims = vec![16usize, 16, 16];
    let input = match Data::from_vec(test_field(&dims), dims.clone()) {
        Ok(d) => d,
        Err(e) => {
            report.skip(name, format!("metadata-roundtrip: cannot build input: {e}"));
            return;
        }
    };

    // A generic error bound so error-bounded compressors are configured;
    // unchecked because `pressio:*` is a foreign prefix for every plugin and
    // lossless plugins legitimately ignore it.
    let _ = h.set_options_unchecked(&Options::new().with("pressio:abs", 1e-3f64));
    if let Some(preset) = roundtrip_preset(name) {
        if let Err(e) = h.set_options(&preset) {
            report.violation(
                name,
                kind,
                "metadata-roundtrip",
                format!("rejected its own documented preset options: {e}"),
            );
            return;
        }
    }

    let compressed = match h.compress(&input) {
        Ok(c) => c,
        Err(e) if matches!(
            e.code(),
            ErrorCode::Unsupported | ErrorCode::InvalidArgument | ErrorCode::NotFound
        ) =>
        {
            // Legitimately unconfigured-by-default or dtype-restricted
            // plugins may refuse; that is allowed but never silent.
            report.skip(name, format!("metadata-roundtrip: compress refused: {e}"));
            return;
        }
        Err(e) => {
            report.violation(
                name,
                kind,
                "metadata-roundtrip",
                format!("compress failed on a plain f32 field: {e}"),
            );
            return;
        }
    };

    let mut output = Data::owned(DType::F32, dims.clone());
    if let Err(e) = h.decompress(&compressed, &mut output) {
        report.violation(
            name,
            kind,
            "metadata-roundtrip",
            format!("decompress failed on this plugin's own stream: {e}"),
        );
        return;
    }
    if output.dtype() != DType::F32 {
        report.violation(
            name,
            kind,
            "metadata-roundtrip",
            format!("dtype changed across the round trip: f32 -> {}", output.dtype()),
        );
    }
    if output.dims() != dims.as_slice() {
        report.violation(
            name,
            kind,
            "metadata-roundtrip",
            format!("dims changed across the round trip: {dims:?} -> {:?}", output.dims()),
        );
    }
}

/// Run every metrics contract check against the named plugin.
pub fn check_metrics(name: &str, report: &mut Report) {
    libpressio::init();
    report.checked += 1;
    let kind = PluginKind::Metrics;
    let mut m = match libpressio::registry().metrics(name) {
        Ok(m) => m,
        Err(e) => {
            report.violation(name, kind, "instantiate", e.to_string());
            return;
        }
    };

    if m.name() != name {
        report.violation(
            name,
            kind,
            "name-matches-registry",
            format!("name() reports {:?}", m.name()),
        );
    }

    let before = m.get_options();
    match m.set_options(&before) {
        Err(e) => report.violation(
            name,
            kind,
            "idempotent-options",
            format!("set_options(get_options()) failed: {e}"),
        ),
        Ok(()) => {
            let after = m.get_options();
            for diff in diff_options(&before, &after) {
                report.violation(name, kind, "idempotent-options", diff);
            }
        }
    }

    let probe = Options::new().with(probe_key(name), 1i32);
    if m.set_options(&probe).is_ok() {
        report.violation(
            name,
            kind,
            "unknown-key-rejected",
            format!("set_options silently accepted {:?}", probe_key(name)),
        );
    }
}

/// Run every IO contract check against the named plugin.
pub fn check_io(name: &str, report: &mut Report) {
    libpressio::init();
    report.checked += 1;
    let kind = PluginKind::Io;
    let mut io = match libpressio::registry().io(name) {
        Ok(io) => io,
        Err(e) => {
            report.violation(name, kind, "instantiate", e.to_string());
            return;
        }
    };

    if io.name() != name {
        report.violation(
            name,
            kind,
            "name-matches-registry",
            format!("name() reports {:?}", io.name()),
        );
    }

    let before = io.get_options();
    match io.set_options(&before) {
        Err(e) => report.violation(
            name,
            kind,
            "idempotent-options",
            format!("set_options(get_options()) failed: {e}"),
        ),
        Ok(()) => {
            let after = io.get_options();
            for diff in diff_options(&before, &after) {
                report.violation(name, kind, "idempotent-options", diff);
            }
        }
    }

    let probe = Options::new().with(probe_key(name), 1i32);
    if io.set_options(&probe).is_ok() {
        report.violation(
            name,
            kind,
            "unknown-key-rejected",
            format!("set_options silently accepted {:?}", probe_key(name)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_options_reports_all_three_shapes() {
        let a = Options::new().with("p:x", 1i32).with("p:gone", 2i32);
        let b = Options::new().with("p:x", 9i32).with("p:new", 3i32);
        let diffs = diff_options(&a, &b);
        assert_eq!(diffs.len(), 3, "{diffs:?}");
        assert!(diffs.iter().any(|d| d.contains("disappeared")));
        assert!(diffs.iter().any(|d| d.contains("changed")));
        assert!(diffs.iter().any(|d| d.contains("appeared")));
        assert!(diff_options(&a, &a).is_empty());
    }

    #[test]
    fn probe_key_is_prefixed() {
        assert!(probe_key("sz").starts_with("sz:"));
    }
}
