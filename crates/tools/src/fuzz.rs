//! The `pressio fuzz-decode` corruption harness.
//!
//! Every compressor's *decompressor* is a parser of untrusted bytes: streams
//! come off disks, networks, and archives that bit-rot, truncate, and
//! mis-splice. This harness drives every registered compressor's decoder
//! with systematically damaged copies of its own valid stream — one sweep
//! per [`FaultMode`] (bit flips, truncation, garbage extension, zeroed
//! regions) — and demands the *robustness contract*:
//!
//! * **no panics** — a hostile stream must never unwind into the host;
//! * **no hangs** — decoding runs under a watchdog deadline
//!   ([`run_with_deadline`]) and must finish inside it;
//! * **structured errors** — rejection surfaces as an [`Error`] with a
//!   meaningful [`ErrorCode`], never as a crash.
//!
//! Plain codecs may legitimately *accept* a damaged stream (a bit flip in a
//! raw payload is just different data); that is counted, not failed. The
//! `guard` meta-compressor is held to the strict standard: its integrity
//! frame must reject **every** stream the mutator actually changed.
//!
//! Determinism: the whole sweep derives from one `--seed`, with each
//! (plugin, mode, case) triple hashed to its own RNG stream, so a failure
//! report is reproducible bit for bit.

use std::fmt;

use libpressio::core::ErrorCode;
use libpressio::meta::{mutate_stream, run_with_deadline, FaultMode, ALL_FAULT_MODES};
use libpressio::{DType, Data, Options};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::contract::roundtrip_preset;

/// Tuning for one fuzz sweep.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Mutated streams per (compressor, mode) pair.
    pub iterations: u32,
    /// Master seed; every case RNG derives from it deterministically.
    pub seed: u64,
    /// Watchdog deadline per decode attempt, in ms (0 disables — only
    /// sensible under a debugger).
    pub timeout_ms: u64,
    /// Restrict the sweep to one compressor (`None` = all registered).
    pub compressor: Option<String>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            iterations: 64,
            seed: 1,
            timeout_ms: 2_000,
            compressor: None,
        }
    }
}

/// One robustness-contract violation.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Registry name of the offending compressor.
    pub plugin: String,
    /// Mutator mode that produced the stream.
    pub mode: &'static str,
    /// Case index within that (plugin, mode) sweep.
    pub case: u32,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} case {}]: {}",
            self.plugin, self.mode, self.case, self.detail
        )
    }
}

/// Outcome of a fuzz sweep.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Compressors actually fuzzed.
    pub compressors: usize,
    /// Mutated streams decoded.
    pub cases: usize,
    /// Decodes that returned a structured error (the expected outcome).
    pub rejected: usize,
    /// Decodes that accepted the damaged stream (legal for plain codecs:
    /// damaged payload bytes are just different data).
    pub accepted: usize,
    /// Mutations that left the stream byte-identical (e.g. zeroing a
    /// region that was already zero); these cannot be expected to fail.
    pub unchanged: usize,
    /// Compressors skipped, as `(plugin, reason)` pairs — e.g. plugins
    /// that refuse to compress unconfigured.
    pub skipped: Vec<(String, String)>,
    /// Robustness-contract violations: panics, hangs, or a guard frame
    /// accepting damage.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// True when every decode honored the robustness contract.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fuzzed {} compressors, {} damaged streams: {} rejected, {} accepted, \
             {} unchanged-by-mutation, {} failure(s), {} skip(s)",
            self.compressors,
            self.cases,
            self.rejected,
            self.accepted,
            self.unchanged,
            self.failures.len(),
            self.skipped.len()
        )?;
        for v in &self.failures {
            writeln!(f, "  FAIL {v}")?;
        }
        for (p, r) in &self.skipped {
            writeln!(f, "  skip {p}: {r}")?;
        }
        Ok(())
    }
}

/// How one decode attempt ended.
enum CaseOutcome {
    /// Decoder returned `Ok` on the damaged stream.
    Accepted,
    /// Decoder returned a structured error.
    Rejected,
    /// Decoder panicked (caught on the worker).
    Panicked,
    /// Decoder blew the watchdog deadline.
    TimedOut,
}

/// The smooth f32 field every compressor is fuzzed over (same shape as the
/// contract checker's round-trip field).
fn seed_input() -> Data {
    let dims = vec![16usize, 16, 16];
    let n: usize = dims.iter().product();
    let v: Vec<f32> = (0..n)
        .map(|i| ((i as f32) * 0.01).sin() * 100.0 + (i as f32) * 0.001)
        .collect();
    Data::from_vec(v, dims).expect("static geometry")
}

/// Deterministic per-case RNG: master seed + plugin + mode + case index.
fn case_rng(seed: u64, plugin: &str, mode: FaultMode, case: u32) -> StdRng {
    let mut h = libpressio::core::Fnv1a64::new();
    h.update_u64(seed);
    h.update(plugin.as_bytes());
    h.update(mode.name().as_bytes());
    h.update_u64(case as u64);
    StdRng::seed_from_u64(h.finish())
}

/// One fuzz subject: a registry name plus an optional option overlay that
/// assembles a meta-compressor stack on top of it.
struct Target {
    /// Display label for reports (`guard>chunking>sz` for stacks).
    label: String,
    /// Registry name armed for every case.
    name: String,
    /// Extra options applied after the generic arming — wires `guard`'s
    /// child, the parallel meta's child, and so on.
    stack: Option<Options>,
}

/// Stacked meta-compressor targets swept in addition to the plain registry
/// walk: the guard wrapping a parallel meta wrapping a real codec. Damage
/// must stop at the guard's frame before the inner decoders parse anything,
/// no matter how many layers sit underneath.
fn stacked_targets() -> Vec<Target> {
    vec![
        Target {
            label: "guard>chunking>sz".to_string(),
            name: "guard".to_string(),
            stack: Some(
                Options::new()
                    .with("guard:compressor", "chunking")
                    .with("chunking:compressor", "sz")
                    .with("chunking:nthreads", 2u32)
                    .with("guard:timeout_ms", 2_000u64),
            ),
        },
        Target {
            label: "guard>many_independent>zfp".to_string(),
            name: "guard".to_string(),
            stack: Some(
                Options::new()
                    .with("guard:compressor", "many_independent")
                    .with("many_independent:compressor", "zfp")
                    .with("many_independent:nthreads", 2u32)
                    .with("guard:timeout_ms", 2_000u64),
            ),
        },
        // The registry walk already fuzzes `sz` with its default deflate
        // tail and the standalone `rans` codec; this target covers the
        // third combination — SZ streams whose sections carry the rANS
        // backend tag — so frequency-header damage inside a lossy stream
        // is exercised too.
        Target {
            label: "sz[lossless=rans]".to_string(),
            name: "sz".to_string(),
            stack: Some(Options::new().with("sz:lossless", "rans")),
        },
    ]
}

/// Build a configured instance of `name` the same way the contract checker
/// does: a generic error bound plus any documented preset, plus the stack
/// overlay when the target is a meta-compressor stack.
fn armed_handle(
    name: &str,
    stack: Option<&Options>,
) -> Result<libpressio::CompressorHandle, libpressio::Error> {
    let mut h = libpressio::registry().compressor(name)?;
    let _ = h.set_options_unchecked(&Options::new().with("pressio:abs", 1e-3f64));
    if let Some(preset) = roundtrip_preset(name) {
        h.set_options(&preset)?;
    }
    if let Some(stack) = stack {
        h.set_options(stack)?;
        // The overlay may have swapped the child: re-apply the generic
        // bound so the inner codec is armed too.
        let _ = h.set_options_unchecked(&Options::new().with("pressio:abs", 1e-3f64));
    }
    Ok(h)
}

/// Decode one damaged stream on a watchdog worker, catching panics.
fn decode_case(name: &str, stack: Option<&Options>, mutated: Vec<u8>, timeout_ms: u64) -> CaseOutcome {
    let handle = match armed_handle(name, stack) {
        Ok(h) => h,
        // The compressor armed moments ago; losing the registry entry
        // mid-sweep is a harness bug, surfaced as a failure by the caller.
        Err(_) => return CaseOutcome::Panicked,
    };
    let outcome = run_with_deadline(timeout_ms, "fuzz-decode", move || {
        // Arm a memory budget on the worker's ambient token: a damaged
        // header may declare any geometry up to the wire-level decode cap
        // (1 TiB), and decoders charge large allocations cooperatively —
        // the budget turns an absurd claim into a clean error instead of
        // an OOM abort. 256 MiB dwarfs any honest decode of the 16^3 seed.
        if let Some(token) = libpressio::core::cancel::current() {
            token.set_memory_budget(256 << 20);
        }
        let mut handle = handle;
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let mut out = Data::owned(DType::F32, vec![16usize, 16, 16]);
            handle.decompress(&Data::from_bytes(&mutated), &mut out)
        }));
        match caught {
            Ok(Ok(())) => CaseOutcome::Accepted,
            Ok(Err(_)) => CaseOutcome::Rejected,
            Err(_) => CaseOutcome::Panicked,
        }
    });
    match outcome {
        Ok(o) => o,
        Err(e) if e.code() == ErrorCode::Timeout => CaseOutcome::TimedOut,
        // Worker infrastructure failed (spawn error): count as a panic-level
        // harness failure rather than silently passing.
        Err(_) => CaseOutcome::Panicked,
    }
}

/// Fuzz one compressor's decoder across every mutation mode.
pub fn fuzz_compressor(name: &str, cfg: &FuzzConfig, report: &mut FuzzReport) {
    fuzz_target(
        &Target {
            label: name.to_string(),
            name: name.to_string(),
            stack: None,
        },
        cfg,
        report,
    );
}

/// Fuzz one target (plain compressor or meta stack) across every mode.
fn fuzz_target(target: &Target, cfg: &FuzzConfig, report: &mut FuzzReport) {
    libpressio::init();
    let input = seed_input();
    let name = target.label.as_str();

    let mut h = match armed_handle(&target.name, target.stack.as_ref()) {
        Ok(h) => h,
        Err(e) => {
            report.skipped.push((name.to_string(), format!("cannot configure: {e}")));
            return;
        }
    };
    let clean = match h.compress(&input) {
        Ok(c) => c.as_bytes().to_vec(),
        Err(e)
            if matches!(
                e.code(),
                ErrorCode::Unsupported | ErrorCode::InvalidArgument | ErrorCode::NotFound
            ) =>
        {
            // Unconfigured-by-default plugins may refuse to produce a
            // stream; there is then nothing to mutate. Never silent.
            report.skipped.push((name.to_string(), format!("compress refused: {e}")));
            return;
        }
        Err(e) => {
            report.failures.push(FuzzFailure {
                plugin: name.to_string(),
                mode: "none",
                case: 0,
                detail: format!("compress failed on a plain f32 field: {e}"),
            });
            return;
        }
    };

    report.compressors += 1;
    // The guard's integrity frame must reject every byte-level change —
    // whether it wraps a codec directly or a whole meta stack; for
    // everything else acceptance of damaged payload bytes is legal.
    let strict = target.name == "guard";

    for mode in ALL_FAULT_MODES {
        for case in 0..cfg.iterations {
            let mut rng = case_rng(cfg.seed, name, mode, case);
            let intensity = rng.gen_range(1..48u32);
            let mutated = mutate_stream(&clean, mode, intensity, &mut rng);
            let changed = mutated != clean;
            if !changed {
                report.unchanged += 1;
            }
            report.cases += 1;
            match decode_case(&target.name, target.stack.as_ref(), mutated, cfg.timeout_ms) {
                CaseOutcome::Rejected => report.rejected += 1,
                CaseOutcome::Accepted => {
                    report.accepted += 1;
                    if strict && changed {
                        report.failures.push(FuzzFailure {
                            plugin: name.to_string(),
                            mode: mode.name(),
                            case,
                            detail: "integrity frame accepted a damaged stream".to_string(),
                        });
                    }
                }
                CaseOutcome::Panicked => report.failures.push(FuzzFailure {
                    plugin: name.to_string(),
                    mode: mode.name(),
                    case,
                    detail: "decoder panicked on a damaged stream".to_string(),
                }),
                CaseOutcome::TimedOut => report.failures.push(FuzzFailure {
                    plugin: name.to_string(),
                    mode: mode.name(),
                    case,
                    detail: format!(
                        "decoder exceeded the {} ms watchdog deadline",
                        cfg.timeout_ms
                    ),
                }),
            }
        }
    }
}

/// Fuzz every registered compressor (or the one named in
/// [`FuzzConfig::compressor`]), then the stacked meta-compressor targets.
pub fn fuzz_all(cfg: &FuzzConfig) -> FuzzReport {
    libpressio::init();
    let mut report = FuzzReport::default();
    match &cfg.compressor {
        Some(one) => fuzz_compressor(one, cfg, &mut report),
        None => {
            for name in libpressio::instance().supported_compressors() {
                fuzz_compressor(&name, cfg, &mut report);
            }
            for target in stacked_targets() {
                fuzz_target(&target, cfg, &mut report);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_rng_is_deterministic_and_distinct() {
        let draw = |p: &str, m: FaultMode, c: u32| {
            let mut r = case_rng(9, p, m, c);
            r.gen_range(0..u64::MAX)
        };
        assert_eq!(draw("sz", FaultMode::Bitflip, 0), draw("sz", FaultMode::Bitflip, 0));
        assert_ne!(draw("sz", FaultMode::Bitflip, 0), draw("sz", FaultMode::Bitflip, 1));
        assert_ne!(draw("sz", FaultMode::Bitflip, 0), draw("sz", FaultMode::Truncate, 0));
        assert_ne!(draw("sz", FaultMode::Bitflip, 0), draw("zfp", FaultMode::Bitflip, 0));
    }

    #[test]
    fn quick_sweep_over_one_codec_is_clean() {
        let cfg = FuzzConfig {
            iterations: 4,
            seed: 3,
            timeout_ms: 2_000,
            compressor: Some("deflate".to_string()),
        };
        let report = fuzz_all(&cfg);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.compressors, 1);
        assert_eq!(report.cases, 4 * ALL_FAULT_MODES.len());
    }
}
