//! `pressio bench` — the interface-overhead and parallel-speedup harness.
//!
//! Measures, for each representative plugin, the wall-clock cost of calling
//! the compressor *natively* (concrete struct, static dispatch — the cost a
//! hand-written integration would pay) against calling it *through the
//! generic interface* (registry lookup handle, dynamic dispatch, option
//! validation — the cost LibPressio adds). This is the CLI form of the
//! paper's Figure 3 overhead experiment, emitting machine-readable JSON
//! (`BENCH_overhead.json`) instead of a figure.
//!
//! A second section compares the serial and pooled variants of the
//! engine-backed plugins (`zfp` vs `zfp_omp`, `sz` vs `sz_omp`) on the same
//! field and reports the measured speedup. The numbers are honest wall-clock
//! measurements: on a single-core host the pooled variants pay the chunking
//! cost without any parallel win, so no gate asserts `speedup > 1`.
//!
//! The emitted document is validated against a small structural schema
//! (`pressio-bench/overhead-v1`) by [`validate_json`], which `pressio bench
//! --check` (and ci.sh) run against the file on disk.

use std::time::Instant;

use libpressio::core::OPT_REL;
use libpressio::prelude::*;
use libpressio::{Error, Result};

/// Schema identifier stamped into (and required from) every report.
pub const SCHEMA: &str = "pressio-bench/overhead-v1";

/// Harness configuration.
pub struct BenchConfig {
    /// Use a small field and few repeats (the CI setting).
    pub quick: bool,
    /// Cube edge of the 3-d f32 field; 0 picks a default from `quick`.
    pub n: usize,
    /// Timed repetitions per measurement; 0 picks a default from `quick`.
    pub repeats: usize,
}

impl BenchConfig {
    fn edge(&self) -> usize {
        if self.n > 0 {
            self.n
        } else if self.quick {
            12
        } else {
            32
        }
    }

    fn reps(&self) -> usize {
        if self.repeats > 0 {
            self.repeats
        } else if self.quick {
            3
        } else {
            5
        }
    }
}

/// One native-vs-interface measurement.
pub struct OverheadEntry {
    /// Plugin name as registered.
    pub plugin: String,
    /// Median wall-clock of the native (static-dispatch) call, nanoseconds.
    pub native_ns: u128,
    /// Median wall-clock through the registry handle, nanoseconds.
    pub interface_ns: u128,
}

impl OverheadEntry {
    /// Interface overhead relative to the native call, in percent.
    pub fn overhead_pct(&self) -> f64 {
        if self.native_ns == 0 {
            0.0
        } else {
            (self.interface_ns as f64 - self.native_ns as f64) / self.native_ns as f64 * 100.0
        }
    }
}

/// One serial-vs-pooled measurement.
pub struct ParallelEntry {
    /// Pooled plugin name (`zfp_omp`, `sz_omp`).
    pub plugin: String,
    /// Serial baseline plugin name (`zfp`, `sz`).
    pub baseline: String,
    /// Thread count requested from the pooled variant.
    pub nthreads: u32,
    /// Median serial wall-clock, nanoseconds.
    pub serial_ns: u128,
    /// Median pooled wall-clock, nanoseconds.
    pub parallel_ns: u128,
}

impl ParallelEntry {
    /// Measured speedup (serial / pooled); < 1 means the pooled variant lost.
    pub fn speedup(&self) -> f64 {
        if self.parallel_ns == 0 {
            0.0
        } else {
            self.serial_ns as f64 / self.parallel_ns as f64
        }
    }
}

/// Complete harness output.
pub struct BenchReport {
    /// Field shape used (C-order dims of the 3-d f32 cube).
    pub dims: Vec<usize>,
    /// Timed repetitions per measurement (median reported).
    pub repeats: usize,
    /// Threads the execution engine would use on this host.
    pub host_threads: usize,
    /// Native-vs-interface rows.
    pub overhead: Vec<OverheadEntry>,
    /// Serial-vs-pooled rows.
    pub parallel: Vec<ParallelEntry>,
}

fn median_ns(mut samples: Vec<u128>) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Time `f` with one warm-up call then `reps` timed calls; median ns.
fn time_median<F: FnMut() -> Result<()>>(reps: usize, mut f: F) -> Result<u128> {
    f()?;
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f()?;
        samples.push(t0.elapsed().as_nanos());
    }
    Ok(median_ns(samples))
}

fn handle_with(name: &str, opts: &Options) -> Result<CompressorHandle> {
    let mut h = libpressio::instance().get_compressor(name)?;
    h.set_options(opts)?;
    Ok(h)
}

fn measure_pair(
    reps: usize,
    input: &Data,
    native: &mut dyn Compressor,
    handle: &mut CompressorHandle,
) -> Result<(u128, u128)> {
    let native_ns = time_median(reps, || native.compress(input).map(|_| ()))?;
    let interface_ns = time_median(reps, || handle.compress(input).map(|_| ()))?;
    Ok((native_ns, interface_ns))
}

/// Run the full harness and return the report.
pub fn run(cfg: &BenchConfig) -> Result<BenchReport> {
    libpressio::init();
    let n = cfg.edge();
    let reps = cfg.reps();
    let input = libpressio::datagen::nyx_density(n, 13);
    let bound = Options::new().with(OPT_REL, 1e-3f64);

    let mut overhead = Vec::new();

    // Numeric compressors: native concrete struct vs registry handle.
    {
        let mut native = libpressio::sz::Sz::new(libpressio::sz::SzVariant::Global);
        native.set_options(&bound)?;
        let mut handle = handle_with("sz", &bound)?;
        let (native_ns, interface_ns) = measure_pair(reps, &input, &mut native, &mut handle)?;
        overhead.push(OverheadEntry {
            plugin: "sz".into(),
            native_ns,
            interface_ns,
        });
    }
    {
        let mut native = libpressio::zfp::Zfp::default();
        native.set_options(&bound)?;
        let mut handle = handle_with("zfp", &bound)?;
        let (native_ns, interface_ns) = measure_pair(reps, &input, &mut native, &mut handle)?;
        overhead.push(OverheadEntry {
            plugin: "zfp".into(),
            native_ns,
            interface_ns,
        });
    }
    {
        let mut native = libpressio::mgard::Mgard::default();
        native.set_options(&bound)?;
        let mut handle = handle_with("mgard", &bound)?;
        let (native_ns, interface_ns) = measure_pair(reps, &input, &mut native, &mut handle)?;
        overhead.push(OverheadEntry {
            plugin: "mgard".into(),
            native_ns,
            interface_ns,
        });
    }

    // Byte codecs: native free function vs registry handle.
    let bytes = input.as_bytes().to_vec();
    {
        let mut handle = handle_with("huffman", &Options::new())?;
        let native_ns = time_median(reps, || {
            let _ = libpressio::codecs::huffman::encode_bytes(&bytes);
            Ok(())
        })?;
        let interface_ns = time_median(reps, || handle.compress(&input).map(|_| ()))?;
        overhead.push(OverheadEntry {
            plugin: "huffman".into(),
            native_ns,
            interface_ns,
        });
    }
    {
        let mut handle = handle_with("deflate", &Options::new())?;
        let native_ns = time_median(reps, || {
            let _ = libpressio::codecs::deflate::compress(&bytes);
            Ok(())
        })?;
        let interface_ns = time_median(reps, || handle.compress(&input).map(|_| ()))?;
        overhead.push(OverheadEntry {
            plugin: "deflate".into(),
            native_ns,
            interface_ns,
        });
    }

    // Serial vs pooled variants on the shared execution engine.
    let nthreads = 4u32;
    let mut parallel = Vec::new();
    for (pooled, baseline) in [("zfp_omp", "zfp"), ("sz_omp", "sz")] {
        let mut serial = handle_with(baseline, &bound)?;
        let mut opts = bound.clone();
        opts.set(format!("{pooled}:nthreads"), nthreads as i64);
        let mut pooled_h = handle_with(pooled, &opts)?;
        let serial_ns = time_median(reps, || serial.compress(&input).map(|_| ()))?;
        let parallel_ns = time_median(reps, || pooled_h.compress(&input).map(|_| ()))?;
        parallel.push(ParallelEntry {
            plugin: pooled.into(),
            baseline: baseline.into(),
            nthreads,
            serial_ns,
            parallel_ns,
        });
    }

    Ok(BenchReport {
        dims: vec![n, n, n],
        repeats: reps,
        host_threads: libpressio::core::available_threads(),
        overhead,
        parallel,
    })
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serialize a report to the `pressio-bench/overhead-v1` JSON document.
pub fn to_json(report: &BenchReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": {},\n", json_string(SCHEMA)));
    let dims: Vec<String> = report.dims.iter().map(|d| d.to_string()).collect();
    s.push_str(&format!(
        "  \"field\": {{\"dataset\": \"nyx\", \"dtype\": \"f32\", \"dims\": [{}]}},\n",
        dims.join(", ")
    ));
    s.push_str(&format!("  \"repeats\": {},\n", report.repeats));
    s.push_str(&format!("  \"host_threads\": {},\n", report.host_threads));
    s.push_str("  \"overhead\": [\n");
    for (i, e) in report.overhead.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"plugin\": {}, \"native_ns\": {}, \"interface_ns\": {}, \"overhead_pct\": {:.3}}}{}\n",
            json_string(&e.plugin),
            e.native_ns,
            e.interface_ns,
            e.overhead_pct(),
            if i + 1 < report.overhead.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"parallel\": [\n");
    for (i, e) in report.parallel.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"plugin\": {}, \"baseline\": {}, \"nthreads\": {}, \"serial_ns\": {}, \"parallel_ns\": {}, \"speedup\": {:.4}}}{}\n",
            json_string(&e.plugin),
            json_string(&e.baseline),
            e.nthreads,
            e.serial_ns,
            e.parallel_ns,
            e.speedup(),
            if i + 1 < report.parallel.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Human-readable table for stdout.
pub fn render_table(report: &BenchReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "field: nyx f32 {:?}, {} repeat(s), {} host thread(s)\n",
        report.dims, report.repeats, report.host_threads
    ));
    s.push_str(&format!(
        "{:<10} {:>14} {:>14} {:>10}\n",
        "plugin", "native_ns", "interface_ns", "overhead"
    ));
    for e in &report.overhead {
        s.push_str(&format!(
            "{:<10} {:>14} {:>14} {:>9.2}%\n",
            e.plugin,
            e.native_ns,
            e.interface_ns,
            e.overhead_pct()
        ));
    }
    s.push_str(&format!(
        "{:<10} {:>3} {:>14} {:>14} {:>8}\n",
        "pooled", "nt", "serial_ns", "parallel_ns", "speedup"
    ));
    for e in &report.parallel {
        s.push_str(&format!(
            "{:<10} {:>3} {:>14} {:>14} {:>7.3}x\n",
            e.plugin,
            e.nthreads,
            e.serial_ns,
            e.parallel_ns,
            e.speedup()
        ));
    }
    s
}

// ---------------------------------------------------------------------------
// Minimal JSON reader for `--check` (no external dependencies).
// ---------------------------------------------------------------------------

/// Parsed JSON value — only the subset the report format uses.
#[derive(Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// String with standard escapes.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn fail(&self, what: &str) -> Error {
        Error::corrupt(format!("json: {what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(what))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.fail("bad literal"))
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"', "expected string")?;
        let mut s = String::new();
        loop {
            match self.peek().ok_or_else(|| self.fail("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.fail("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.fail("bad \\u"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.fail("bad \\u"))?,
                                16,
                            )
                            .map_err(|_| self.fail("bad \\u"))?;
                            self.pos += 4;
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.fail("unknown escape")),
                    }
                }
                _ => {
                    let start = self.pos;
                    while self
                        .peek()
                        .is_some_and(|b| b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.fail("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.fail("bad number"))
    }

    fn value(&mut self) -> Result<Json> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.fail("unexpected end"))? {
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.eat(b':', "expected ':'")?;
                    let v = self.value()?;
                    pairs.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(self.fail("expected ',' or '}'")),
                    }
                }
            }
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.fail("expected ',' or ']'")),
                    }
                }
            }
            b'"' => self.string().map(Json::Str),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }
}

/// Parse a JSON document (report subset of the grammar).
pub fn parse_json(text: &str) -> Result<Json> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing garbage"));
    }
    Ok(v)
}

fn require_num(obj: &Json, key: &str, ctx: &str) -> Result<f64> {
    obj.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| Error::corrupt(format!("{ctx}: missing numeric {key:?}")))
}

fn require_str<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a str> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| Error::corrupt(format!("{ctx}: missing string {key:?}")))
}

/// Validate a `BENCH_overhead.json` document against the
/// `pressio-bench/overhead-v1` structural schema.
pub fn validate_json(text: &str) -> Result<()> {
    let doc = parse_json(text)?;
    let schema = require_str(&doc, "schema", "report")?;
    if schema != SCHEMA {
        return Err(Error::corrupt(format!(
            "schema {schema:?} != {SCHEMA:?}"
        )));
    }
    let field = doc
        .get("field")
        .ok_or_else(|| Error::corrupt("report: missing \"field\""))?;
    let dims = field
        .get("dims")
        .and_then(Json::as_arr)
        .ok_or_else(|| Error::corrupt("field: missing \"dims\" array"))?;
    if dims.is_empty() || dims.iter().any(|d| d.as_num().is_none_or(|n| n < 1.0)) {
        return Err(Error::corrupt("field: dims must be positive numbers"));
    }
    if require_num(&doc, "repeats", "report")? < 1.0 {
        return Err(Error::corrupt("report: repeats must be >= 1"));
    }
    require_num(&doc, "host_threads", "report")?;
    let overhead = doc
        .get("overhead")
        .and_then(Json::as_arr)
        .ok_or_else(|| Error::corrupt("report: missing \"overhead\" array"))?;
    if overhead.is_empty() {
        return Err(Error::corrupt("report: overhead array is empty"));
    }
    for e in overhead {
        let name = require_str(e, "plugin", "overhead entry")?;
        let ctx = format!("overhead[{name}]");
        let native = require_num(e, "native_ns", &ctx)?;
        if native <= 0.0 {
            return Err(Error::corrupt(format!("{ctx}: native_ns must be > 0")));
        }
        let interface = require_num(e, "interface_ns", &ctx)?;
        if interface <= 0.0 {
            return Err(Error::corrupt(format!("{ctx}: interface_ns must be > 0")));
        }
        // Self-consistency: the stored derived value must agree with the
        // stored raw timings (tolerance: half the emitted %.3f precision,
        // so a hand-edited or stale field is caught).
        let stored_pct = require_num(e, "overhead_pct", &ctx)?;
        let derived_pct = (interface - native) / native * 100.0;
        if (stored_pct - derived_pct).abs() > 5.1e-4 {
            return Err(Error::corrupt(format!(
                "{ctx}: overhead_pct {stored_pct} is inconsistent with native_ns/interface_ns \
                 (derived {derived_pct:.3})"
            )));
        }
    }
    let parallel = doc
        .get("parallel")
        .and_then(Json::as_arr)
        .ok_or_else(|| Error::corrupt("report: missing \"parallel\" array"))?;
    for e in parallel {
        let name = require_str(e, "plugin", "parallel entry")?;
        let ctx = format!("parallel[{name}]");
        require_str(e, "baseline", &ctx)?;
        if require_num(e, "nthreads", &ctx)? < 1.0 {
            return Err(Error::corrupt(format!("{ctx}: nthreads must be >= 1")));
        }
        let serial = require_num(e, "serial_ns", &ctx)?;
        let par = require_num(e, "parallel_ns", &ctx)?;
        if serial <= 0.0 || par <= 0.0 {
            return Err(Error::corrupt(format!("{ctx}: timings must be > 0")));
        }
        let stored_speedup = require_num(e, "speedup", &ctx)?;
        if stored_speedup <= 0.0 {
            return Err(Error::corrupt(format!("{ctx}: speedup must be > 0")));
        }
        // Self-consistency against the raw timings (half of the emitted
        // %.4f precision).
        let derived_speedup = serial / par;
        if (stored_speedup - derived_speedup).abs() > 5.1e-5 {
            return Err(Error::corrupt(format!(
                "{ctx}: speedup {stored_speedup} is inconsistent with serial_ns/parallel_ns \
                 (derived {derived_speedup:.4})"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            dims: vec![8, 8, 8],
            repeats: 3,
            host_threads: 2,
            overhead: vec![OverheadEntry {
                plugin: "zfp".into(),
                native_ns: 1000,
                interface_ns: 1100,
            }],
            parallel: vec![ParallelEntry {
                plugin: "zfp_omp".into(),
                baseline: "zfp".into(),
                nthreads: 4,
                serial_ns: 2000,
                parallel_ns: 1900,
            }],
        }
    }

    #[test]
    fn emitted_json_validates() {
        let json = to_json(&sample_report());
        validate_json(&json).expect("valid");
    }

    #[test]
    fn overhead_pct_is_relative() {
        let e = OverheadEntry {
            plugin: "x".into(),
            native_ns: 1000,
            interface_ns: 1100,
        };
        assert!((e.overhead_pct() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn validator_rejects_wrong_schema() {
        let json = to_json(&sample_report()).replace("overhead-v1", "overhead-v9");
        assert!(validate_json(&json).is_err());
    }

    #[test]
    fn validator_rejects_empty_overhead() {
        let mut r = sample_report();
        r.overhead.clear();
        assert!(validate_json(&to_json(&r)).is_err());
    }

    #[test]
    fn validator_rejects_inconsistent_overhead_pct() {
        // Tamper with the raw timing but leave the derived field: the
        // stored overhead_pct (10.000) no longer follows from the timings.
        let json = to_json(&sample_report()).replace("\"native_ns\": 1000", "\"native_ns\": 500");
        let err = validate_json(&json).expect_err("tampered pct must fail");
        assert!(err.to_string().contains("inconsistent"), "{err}");
    }

    #[test]
    fn validator_rejects_inconsistent_speedup() {
        let json =
            to_json(&sample_report()).replace("\"parallel_ns\": 1900", "\"parallel_ns\": 950");
        let err = validate_json(&json).expect_err("tampered speedup must fail");
        assert!(err.to_string().contains("inconsistent"), "{err}");
    }

    #[test]
    fn validator_accepts_rounded_derived_fields() {
        // Timings whose derived pct does not land on a %.3f grid point must
        // still validate after the emitter rounds them.
        let r = BenchReport {
            overhead: vec![OverheadEntry {
                plugin: "x".into(),
                native_ns: 2997,
                interface_ns: 3001,
            }],
            parallel: vec![ParallelEntry {
                plugin: "y".into(),
                baseline: "x".into(),
                nthreads: 3,
                serial_ns: 9999,
                parallel_ns: 3334,
            }],
            ..sample_report()
        };
        validate_json(&to_json(&r)).expect("rounded derived fields are consistent");
    }

    #[test]
    fn validator_rejects_malformed_json() {
        assert!(validate_json("{\"schema\": ").is_err());
        assert!(validate_json("{} trailing").is_err());
        assert!(validate_json("").is_err());
    }

    #[test]
    fn parser_handles_nesting_and_escapes() {
        let v = parse_json("{\"a\": [1, -2.5e1, \"x\\\"y\\u0041\"], \"b\": {\"c\": true}}")
            .expect("parse");
        let arr = v.get("a").and_then(Json::as_arr).expect("arr");
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[1], Json::Num(-25.0));
        assert_eq!(arr[2], Json::Str("x\"yA".into()));
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Bool(true)));
    }

    #[test]
    fn quick_run_produces_valid_report() {
        let cfg = BenchConfig {
            quick: true,
            n: 8,
            repeats: 1,
        };
        let report = run(&cfg).expect("bench run");
        assert_eq!(report.overhead.len(), 5);
        assert_eq!(report.parallel.len(), 2);
        validate_json(&to_json(&report)).expect("schema-valid");
        assert!(!render_table(&report).is_empty());
    }
}
