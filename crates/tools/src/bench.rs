//! `pressio bench` — the interface-overhead and parallel-speedup harness.
//!
//! Measures, for each representative plugin, the wall-clock cost of calling
//! the compressor *natively* (concrete struct, static dispatch — the cost a
//! hand-written integration would pay) against calling it *through the
//! generic interface* (registry lookup handle, dynamic dispatch, option
//! validation — the cost LibPressio adds). This is the CLI form of the
//! paper's Figure 3 overhead experiment, emitting machine-readable JSON
//! (`BENCH_overhead.json`) instead of a figure.
//!
//! A second section sweeps the serial and pooled variants of the
//! engine-backed plugins (`zfp` vs `zfp_omp`, `sz` vs `sz_omp`) across a
//! range of cube edges and reports the measured speedup per size. The
//! numbers are honest wall-clock measurements: the requested thread count is
//! clamped to [`libpressio::core::available_threads`] (both the request and
//! the clamped value are recorded), and each row records whether the
//! adaptive chunk plan ([`libpressio::core::plan_chunks`]) fell back to
//! serial execution for that size. On a small host the pooled variants pay
//! the chunking cost without much parallel win, so no gate asserts
//! `speedup > 1` — instead [`gate`] re-measures and fails on a *regression*
//! against the committed numbers.
//!
//! A third section compares the SZ lossless-tail backends head-to-head:
//! deflate-lite (LZ77 + canonical Huffman) against the rANS tail
//! (LZ77 + static-table interleaved rANS) on a golden-corpus-style field,
//! recording compressed size and encode/decode wall-clock. The validator
//! enforces the ordering the rANS backend exists to provide — ratio at
//! least as good as deflate-lite and strictly faster decode — so a
//! committed report where the new backend lost is rejected, not shipped.
//!
//! The emitted document is validated against a small structural schema
//! (`pressio-bench/overhead-v3`) by [`validate_json`], which `pressio bench
//! --check` (and ci.sh) run against the file on disk; `pressio bench --gate`
//! runs the no-regression check.

use std::time::Instant;

use libpressio::core::OPT_REL;
use libpressio::prelude::*;
use libpressio::{Error, Result};

/// Schema identifier stamped into (and required from) every report.
pub const SCHEMA: &str = "pressio-bench/overhead-v3";

/// Largest cube edge the sweep accepts (512^3 f32 = 512 MiB).
pub const MAX_EDGE: usize = 512;

/// Fraction a fresh speedup may fall below the committed one before the
/// regression gate fails — the measurement-noise allowance.
pub const GATE_TOLERANCE: f64 = 0.10;

/// Harness configuration.
pub struct BenchConfig {
    /// Use a small field and few repeats (the CI setting).
    pub quick: bool,
    /// Cube edge of the 3-d f32 field for the overhead section; 0 picks a
    /// default from `quick`.
    pub n: usize,
    /// Timed repetitions per measurement; 0 picks a default from `quick`.
    pub repeats: usize,
    /// Cube edges for the serial-vs-pooled size sweep; empty picks a
    /// default from `quick`.
    pub sizes: Vec<usize>,
}

impl BenchConfig {
    fn edge(&self) -> usize {
        if self.n > 0 {
            self.n
        } else if self.quick {
            12
        } else {
            32
        }
    }

    fn reps(&self) -> usize {
        if self.repeats > 0 {
            self.repeats
        } else if self.quick {
            3
        } else {
            5
        }
    }

    fn sweep_sizes(&self) -> Vec<usize> {
        if !self.sizes.is_empty() {
            self.sizes.clone()
        } else if self.quick {
            vec![8, 12]
        } else {
            // Straddles the serial-fallback boundary: 32^3 stays serial,
            // 64^3 and 128^3 split.
            vec![32, 64, 128]
        }
    }
}

/// One native-vs-interface measurement.
pub struct OverheadEntry {
    /// Plugin name as registered.
    pub plugin: String,
    /// Median wall-clock of the native (static-dispatch) call, nanoseconds.
    pub native_ns: u128,
    /// Median wall-clock through the registry handle, nanoseconds.
    pub interface_ns: u128,
}

impl OverheadEntry {
    /// Interface overhead relative to the native call, in percent.
    pub fn overhead_pct(&self) -> f64 {
        if self.native_ns == 0 {
            0.0
        } else {
            (self.interface_ns as f64 - self.native_ns as f64) / self.native_ns as f64 * 100.0
        }
    }
}

/// One serial-vs-pooled measurement at one sweep size.
pub struct SweepEntry {
    /// Pooled plugin name (`zfp_omp`, `sz_omp`).
    pub plugin: String,
    /// Serial baseline plugin name (`zfp`, `sz`).
    pub baseline: String,
    /// Cube edge of the 3-d f32 field this row was measured on.
    pub edge: usize,
    /// Thread count handed to the pooled variant (the host-clamped value).
    pub nthreads: u32,
    /// Median serial wall-clock, nanoseconds.
    pub serial_ns: u128,
    /// Median pooled wall-clock, nanoseconds.
    pub parallel_ns: u128,
    /// Whether the adaptive chunk plan kept this size serial (the pooled
    /// variant never engaged the pool).
    pub serial_fallback: bool,
}

impl SweepEntry {
    /// Measured speedup (serial / pooled); < 1 means the pooled variant lost.
    pub fn speedup(&self) -> f64 {
        if self.parallel_ns == 0 {
            0.0
        } else {
            self.serial_ns as f64 / self.parallel_ns as f64
        }
    }
}

/// One lossless-tail backend measurement (the rans-vs-deflate comparison).
pub struct EntropyEntry {
    /// Backend name as selectable via `sz:lossless` (`deflate`, `rans`).
    pub codec: String,
    /// Uncompressed input size, bytes.
    pub input_bytes: usize,
    /// Compressed stream size, bytes.
    pub compressed_bytes: usize,
    /// Median compression wall-clock, nanoseconds.
    pub encode_ns: u128,
    /// Median decompression wall-clock, nanoseconds.
    pub decode_ns: u128,
}

impl EntropyEntry {
    /// Compression ratio (input / compressed); > 1 means it shrank.
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            0.0
        } else {
            self.input_bytes as f64 / self.compressed_bytes as f64
        }
    }
}

/// Complete harness output.
pub struct BenchReport {
    /// Field shape used for the overhead section (C-order dims of the 3-d
    /// f32 cube).
    pub dims: Vec<usize>,
    /// Timed repetitions per measurement (median reported).
    pub repeats: usize,
    /// Threads the execution engine would use on this host.
    pub host_threads: usize,
    /// Thread count the harness asks the pooled variants for.
    pub nthreads_requested: u32,
    /// The request clamped to `host_threads` — what the sweep actually uses,
    /// so the committed numbers never come from an oversubscribed run.
    pub nthreads_effective: u32,
    /// Native-vs-interface rows.
    pub overhead: Vec<OverheadEntry>,
    /// Serial-vs-pooled rows, one per (plugin, edge).
    pub sweep: Vec<SweepEntry>,
    /// Lossless-tail backend comparison rows (deflate vs rans).
    pub entropy: Vec<EntropyEntry>,
}

/// Clamp the requested pooled-variant thread count to what the host can
/// actually run concurrently. Chunk geometry (and therefore the stream)
/// follows the request a plugin *receives*, so the harness clamps what it
/// requests rather than letting the pool oversubscribe a small machine.
pub fn clamp_nthreads(requested: u32) -> u32 {
    (requested as usize)
        .min(libpressio::core::available_threads())
        .max(1) as u32
}

/// Whether the adaptive chunk plan keeps an `edge`^3 f32 field serial for
/// `plugin` at `nthreads`. Mirrors the plugins' own planning calls exactly:
/// `zfp_omp` promotes to f64 before chunking (8 bytes/element), `sz_omp`
/// chunks the raw f32 field (4 bytes/element); both feed
/// [`libpressio::core::plan_chunks`], which is deterministic in its
/// arguments, so the committed flag is recomputable by the validator.
pub fn sweep_serial_fallback(plugin: &str, edge: usize, nthreads: u32) -> bool {
    let elem_bytes = if plugin == "zfp_omp" { 8 } else { 4 };
    let elems = edge * edge * edge;
    libpressio::core::plan_chunks(elems, elem_bytes, nthreads.max(1) as usize).len() <= 1
}

fn median_ns(mut samples: Vec<u128>) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Time `f` with one warm-up call then `reps` timed calls; median ns.
fn time_median<F: FnMut() -> Result<()>>(reps: usize, mut f: F) -> Result<u128> {
    f()?;
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f()?;
        samples.push(t0.elapsed().as_nanos());
    }
    Ok(median_ns(samples))
}

fn handle_with(name: &str, opts: &Options) -> Result<CompressorHandle> {
    let mut h = libpressio::instance().get_compressor(name)?;
    h.set_options(opts)?;
    Ok(h)
}

fn measure_pair(
    reps: usize,
    input: &Data,
    native: &mut dyn Compressor,
    handle: &mut CompressorHandle,
) -> Result<(u128, u128)> {
    let native_ns = time_median(reps, || native.compress(input).map(|_| ()))?;
    let interface_ns = time_median(reps, || handle.compress(input).map(|_| ()))?;
    Ok((native_ns, interface_ns))
}

/// Run the full harness and return the report.
pub fn run(cfg: &BenchConfig) -> Result<BenchReport> {
    libpressio::init();
    let n = cfg.edge();
    let reps = cfg.reps();
    let input = libpressio::datagen::nyx_density(n, 13);
    let bound = Options::new().with(OPT_REL, 1e-3f64);

    let mut overhead = Vec::new();

    // Numeric compressors: native concrete struct vs registry handle.
    {
        let mut native = libpressio::sz::Sz::new(libpressio::sz::SzVariant::Global);
        native.set_options(&bound)?;
        let mut handle = handle_with("sz", &bound)?;
        let (native_ns, interface_ns) = measure_pair(reps, &input, &mut native, &mut handle)?;
        overhead.push(OverheadEntry {
            plugin: "sz".into(),
            native_ns,
            interface_ns,
        });
    }
    {
        let mut native = libpressio::zfp::Zfp::default();
        native.set_options(&bound)?;
        let mut handle = handle_with("zfp", &bound)?;
        let (native_ns, interface_ns) = measure_pair(reps, &input, &mut native, &mut handle)?;
        overhead.push(OverheadEntry {
            plugin: "zfp".into(),
            native_ns,
            interface_ns,
        });
    }
    {
        let mut native = libpressio::mgard::Mgard::default();
        native.set_options(&bound)?;
        let mut handle = handle_with("mgard", &bound)?;
        let (native_ns, interface_ns) = measure_pair(reps, &input, &mut native, &mut handle)?;
        overhead.push(OverheadEntry {
            plugin: "mgard".into(),
            native_ns,
            interface_ns,
        });
    }

    // Byte codecs: native free function vs registry handle.
    let bytes = input.as_bytes().to_vec();
    {
        let mut handle = handle_with("huffman", &Options::new())?;
        let native_ns = time_median(reps, || {
            let _ = libpressio::codecs::huffman::encode_bytes(&bytes);
            Ok(())
        })?;
        let interface_ns = time_median(reps, || handle.compress(&input).map(|_| ()))?;
        overhead.push(OverheadEntry {
            plugin: "huffman".into(),
            native_ns,
            interface_ns,
        });
    }
    {
        let mut handle = handle_with("deflate", &Options::new())?;
        let native_ns = time_median(reps, || {
            let _ = libpressio::codecs::deflate::compress(&bytes);
            Ok(())
        })?;
        let interface_ns = time_median(reps, || handle.compress(&input).map(|_| ()))?;
        overhead.push(OverheadEntry {
            plugin: "deflate".into(),
            native_ns,
            interface_ns,
        });
    }
    {
        let mut handle = handle_with("rans", &Options::new())?;
        let native_ns = time_median(reps, || {
            let _ = libpressio::codecs::rans::compress(&bytes);
            Ok(())
        })?;
        let interface_ns = time_median(reps, || handle.compress(&input).map(|_| ()))?;
        overhead.push(OverheadEntry {
            plugin: "rans".into(),
            native_ns,
            interface_ns,
        });
    }

    // Serial vs pooled variants on the shared execution engine, swept
    // across field sizes with the thread request clamped to the host.
    let nthreads_requested = 4u32;
    let nthreads_effective = clamp_nthreads(nthreads_requested);
    let mut sweep = Vec::new();
    for edge in cfg.sweep_sizes() {
        sweep.extend(measure_sweep_edge(edge, reps, nthreads_effective)?);
    }

    let entropy = measure_entropy(reps, cfg.quick)?;

    Ok(BenchReport {
        dims: vec![n, n, n],
        repeats: reps,
        host_threads: libpressio::core::available_threads(),
        nthreads_requested,
        nthreads_effective,
        overhead,
        sweep,
        entropy,
    })
}

/// Measure the SZ lossless-tail backends head-to-head on a golden-corpus
/// style field (the `scale_letkf` generator the golden-stream tests pin,
/// scaled up in the full run so the timings are not noise-dominated).
fn measure_entropy(reps: usize, quick: bool) -> Result<Vec<EntropyEntry>> {
    use libpressio::sz::LosslessBackend;
    let field = if quick {
        libpressio::datagen::scale_letkf(10, 9, 8, 77)
    } else {
        libpressio::datagen::scale_letkf(32, 48, 48, 77)
    };
    let data = field.as_bytes().to_vec();
    let mut rows = Vec::new();
    for (name, backend) in [
        ("deflate", LosslessBackend::Deflate),
        ("rans", LosslessBackend::Rans),
    ] {
        let compressed = backend.compress(&data)?;
        if backend.decompress(&compressed)? != data {
            return Err(Error::corrupt(format!(
                "entropy backend {name} failed to round-trip the bench field"
            )));
        }
        let encode_ns = time_median(reps, || backend.compress(&data).map(|_| ()))?;
        let decode_ns = time_median(reps, || backend.decompress(&compressed).map(|_| ()))?;
        rows.push(EntropyEntry {
            codec: name.into(),
            input_bytes: data.len(),
            compressed_bytes: compressed.len(),
            encode_ns,
            decode_ns,
        });
    }
    Ok(rows)
}

/// Measure the serial-vs-pooled pairs on one `edge`^3 f32 field.
fn measure_sweep_edge(edge: usize, reps: usize, nthreads: u32) -> Result<Vec<SweepEntry>> {
    if edge == 0 || edge > MAX_EDGE {
        return Err(Error::invalid_argument(format!(
            "sweep edge {edge} out of range [1, {MAX_EDGE}]"
        )));
    }
    let input = libpressio::datagen::nyx_density(edge, 13);
    let bound = Options::new().with(OPT_REL, 1e-3f64);
    let mut rows = Vec::new();
    for (pooled, baseline) in [("zfp_omp", "zfp"), ("sz_omp", "sz")] {
        let mut serial = handle_with(baseline, &bound)?;
        let mut opts = bound.clone();
        opts.set(format!("{pooled}:nthreads"), nthreads as i64);
        let mut pooled_h = handle_with(pooled, &opts)?;
        let serial_ns = time_median(reps, || serial.compress(&input).map(|_| ()))?;
        let parallel_ns = time_median(reps, || pooled_h.compress(&input).map(|_| ()))?;
        rows.push(SweepEntry {
            plugin: pooled.into(),
            baseline: baseline.into(),
            edge,
            nthreads,
            serial_ns,
            parallel_ns,
            serial_fallback: sweep_serial_fallback(pooled, edge, nthreads),
        });
    }
    Ok(rows)
}

/// Quote + escape `s` as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serialize a report to the `pressio-bench/overhead-v3` JSON document.
pub fn to_json(report: &BenchReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": {},\n", json_string(SCHEMA)));
    let dims: Vec<String> = report.dims.iter().map(|d| d.to_string()).collect();
    s.push_str(&format!(
        "  \"field\": {{\"dataset\": \"nyx\", \"dtype\": \"f32\", \"dims\": [{}]}},\n",
        dims.join(", ")
    ));
    s.push_str(&format!("  \"repeats\": {},\n", report.repeats));
    s.push_str(&format!("  \"host_threads\": {},\n", report.host_threads));
    s.push_str(&format!(
        "  \"nthreads_requested\": {},\n",
        report.nthreads_requested
    ));
    s.push_str(&format!(
        "  \"nthreads_effective\": {},\n",
        report.nthreads_effective
    ));
    s.push_str("  \"overhead\": [\n");
    for (i, e) in report.overhead.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"plugin\": {}, \"native_ns\": {}, \"interface_ns\": {}, \"overhead_pct\": {:.3}}}{}\n",
            json_string(&e.plugin),
            e.native_ns,
            e.interface_ns,
            e.overhead_pct(),
            if i + 1 < report.overhead.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"sweep\": [\n");
    for (i, e) in report.sweep.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"plugin\": {}, \"baseline\": {}, \"edge\": {}, \"nthreads\": {}, \"serial_ns\": {}, \"parallel_ns\": {}, \"speedup\": {:.4}, \"serial_fallback\": {}}}{}\n",
            json_string(&e.plugin),
            json_string(&e.baseline),
            e.edge,
            e.nthreads,
            e.serial_ns,
            e.parallel_ns,
            e.speedup(),
            e.serial_fallback,
            if i + 1 < report.sweep.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"entropy\": [\n");
    for (i, e) in report.entropy.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"codec\": {}, \"input_bytes\": {}, \"compressed_bytes\": {}, \"encode_ns\": {}, \"decode_ns\": {}, \"ratio\": {:.4}}}{}\n",
            json_string(&e.codec),
            e.input_bytes,
            e.compressed_bytes,
            e.encode_ns,
            e.decode_ns,
            e.ratio(),
            if i + 1 < report.entropy.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Human-readable table for stdout.
pub fn render_table(report: &BenchReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "field: nyx f32 {:?}, {} repeat(s), {} host thread(s), nthreads {} -> {}\n",
        report.dims,
        report.repeats,
        report.host_threads,
        report.nthreads_requested,
        report.nthreads_effective
    ));
    s.push_str(&format!(
        "{:<10} {:>14} {:>14} {:>10}\n",
        "plugin", "native_ns", "interface_ns", "overhead"
    ));
    for e in &report.overhead {
        s.push_str(&format!(
            "{:<10} {:>14} {:>14} {:>9.2}%\n",
            e.plugin,
            e.native_ns,
            e.interface_ns,
            e.overhead_pct()
        ));
    }
    s.push_str(&format!(
        "{:<10} {:>5} {:>3} {:>14} {:>14} {:>8} {:>8}\n",
        "pooled", "edge", "nt", "serial_ns", "parallel_ns", "speedup", "plan"
    ));
    for e in &report.sweep {
        s.push_str(&format!(
            "{:<10} {:>5} {:>3} {:>14} {:>14} {:>7.3}x {:>8}\n",
            e.plugin,
            e.edge,
            e.nthreads,
            e.serial_ns,
            e.parallel_ns,
            e.speedup(),
            if e.serial_fallback { "serial" } else { "split" }
        ));
    }
    s.push_str(&format!(
        "{:<10} {:>12} {:>12} {:>8} {:>14} {:>14}\n",
        "tail", "input_b", "compressed_b", "ratio", "encode_ns", "decode_ns"
    ));
    for e in &report.entropy {
        s.push_str(&format!(
            "{:<10} {:>12} {:>12} {:>7.3}x {:>14} {:>14}\n",
            e.codec,
            e.input_bytes,
            e.compressed_bytes,
            e.ratio(),
            e.encode_ns,
            e.decode_ns
        ));
    }
    s
}

// ---------------------------------------------------------------------------
// Minimal JSON reader for `--check` (no external dependencies).
// ---------------------------------------------------------------------------

/// Parsed JSON value — only the subset the report format uses.
#[derive(Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// String with standard escapes.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn fail(&self, what: &str) -> Error {
        Error::corrupt(format!("json: {what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(what))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.fail("bad literal"))
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"', "expected string")?;
        let mut s = String::new();
        loop {
            match self.peek().ok_or_else(|| self.fail("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.fail("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.fail("bad \\u"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.fail("bad \\u"))?,
                                16,
                            )
                            .map_err(|_| self.fail("bad \\u"))?;
                            self.pos += 4;
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.fail("unknown escape")),
                    }
                }
                _ => {
                    let start = self.pos;
                    while self
                        .peek()
                        .is_some_and(|b| b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.fail("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.fail("bad number"))
    }

    fn value(&mut self) -> Result<Json> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.fail("unexpected end"))? {
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.eat(b':', "expected ':'")?;
                    let v = self.value()?;
                    pairs.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(self.fail("expected ',' or '}'")),
                    }
                }
            }
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.fail("expected ',' or ']'")),
                    }
                }
            }
            b'"' => self.string().map(Json::Str),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }
}

/// Parse a JSON document (report subset of the grammar).
pub fn parse_json(text: &str) -> Result<Json> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing garbage"));
    }
    Ok(v)
}

fn require_num(obj: &Json, key: &str, ctx: &str) -> Result<f64> {
    obj.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| Error::corrupt(format!("{ctx}: missing numeric {key:?}")))
}

fn require_str<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a str> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| Error::corrupt(format!("{ctx}: missing string {key:?}")))
}

/// Validate a `BENCH_overhead.json` document against the
/// `pressio-bench/overhead-v3` structural schema.
pub fn validate_json(text: &str) -> Result<()> {
    let doc = parse_json(text)?;
    let schema = require_str(&doc, "schema", "report")?;
    if schema != SCHEMA {
        return Err(Error::corrupt(format!(
            "schema {schema:?} != {SCHEMA:?}"
        )));
    }
    let field = doc
        .get("field")
        .ok_or_else(|| Error::corrupt("report: missing \"field\""))?;
    let dims = field
        .get("dims")
        .and_then(Json::as_arr)
        .ok_or_else(|| Error::corrupt("field: missing \"dims\" array"))?;
    if dims.is_empty() || dims.iter().any(|d| d.as_num().is_none_or(|n| n < 1.0)) {
        return Err(Error::corrupt("field: dims must be positive numbers"));
    }
    if require_num(&doc, "repeats", "report")? < 1.0 {
        return Err(Error::corrupt("report: repeats must be >= 1"));
    }
    let host_threads = require_num(&doc, "host_threads", "report")?;
    if host_threads < 1.0 {
        return Err(Error::corrupt("report: host_threads must be >= 1"));
    }
    let requested = require_num(&doc, "nthreads_requested", "report")?;
    if requested < 1.0 {
        return Err(Error::corrupt("report: nthreads_requested must be >= 1"));
    }
    let effective = require_num(&doc, "nthreads_effective", "report")?;
    // The clamp rule is part of the schema: a committed report whose sweep
    // oversubscribed the host (effective > host_threads) is rejected, as is
    // one that silently measured at some third thread count.
    if effective != requested.min(host_threads) {
        return Err(Error::corrupt(format!(
            "report: nthreads_effective {effective} must be min(nthreads_requested \
             {requested}, host_threads {host_threads})"
        )));
    }
    let overhead = doc
        .get("overhead")
        .and_then(Json::as_arr)
        .ok_or_else(|| Error::corrupt("report: missing \"overhead\" array"))?;
    if overhead.is_empty() {
        return Err(Error::corrupt("report: overhead array is empty"));
    }
    for e in overhead {
        let name = require_str(e, "plugin", "overhead entry")?;
        let ctx = format!("overhead[{name}]");
        let native = require_num(e, "native_ns", &ctx)?;
        if native <= 0.0 {
            return Err(Error::corrupt(format!("{ctx}: native_ns must be > 0")));
        }
        let interface = require_num(e, "interface_ns", &ctx)?;
        if interface <= 0.0 {
            return Err(Error::corrupt(format!("{ctx}: interface_ns must be > 0")));
        }
        // Self-consistency: the stored derived value must agree with the
        // stored raw timings (tolerance: half the emitted %.3f precision,
        // so a hand-edited or stale field is caught).
        let stored_pct = require_num(e, "overhead_pct", &ctx)?;
        let derived_pct = (interface - native) / native * 100.0;
        if (stored_pct - derived_pct).abs() > 5.1e-4 {
            return Err(Error::corrupt(format!(
                "{ctx}: overhead_pct {stored_pct} is inconsistent with native_ns/interface_ns \
                 (derived {derived_pct:.3})"
            )));
        }
    }
    let sweep = doc
        .get("sweep")
        .and_then(Json::as_arr)
        .ok_or_else(|| Error::corrupt("report: missing \"sweep\" array"))?;
    if sweep.is_empty() {
        return Err(Error::corrupt("report: sweep array is empty"));
    }
    for e in sweep {
        let name = require_str(e, "plugin", "sweep entry")?;
        let edge = require_num(e, "edge", &format!("sweep[{name}]"))?;
        let ctx = format!("sweep[{name}@{edge}]");
        if edge < 1.0 || edge > MAX_EDGE as f64 || edge.fract() != 0.0 {
            return Err(Error::corrupt(format!(
                "{ctx}: edge must be an integer in [1, {MAX_EDGE}]"
            )));
        }
        require_str(e, "baseline", &ctx)?;
        let nthreads = require_num(e, "nthreads", &ctx)?;
        if nthreads != effective {
            return Err(Error::corrupt(format!(
                "{ctx}: nthreads {nthreads} != report nthreads_effective {effective}"
            )));
        }
        let serial = require_num(e, "serial_ns", &ctx)?;
        let par = require_num(e, "parallel_ns", &ctx)?;
        if serial <= 0.0 || par <= 0.0 {
            return Err(Error::corrupt(format!("{ctx}: timings must be > 0")));
        }
        let stored_speedup = require_num(e, "speedup", &ctx)?;
        if stored_speedup <= 0.0 {
            return Err(Error::corrupt(format!("{ctx}: speedup must be > 0")));
        }
        // Self-consistency against the raw timings (half of the emitted
        // %.4f precision).
        let derived_speedup = serial / par;
        if (stored_speedup - derived_speedup).abs() > 5.1e-5 {
            return Err(Error::corrupt(format!(
                "{ctx}: speedup {stored_speedup} is inconsistent with serial_ns/parallel_ns \
                 (derived {derived_speedup:.4})"
            )));
        }
        // The fallback flag is derived from the deterministic chunk plan,
        // so a committed report claiming a parallel win on a size the plan
        // keeps serial (or vice versa) is caught here.
        let stored_fallback = e
            .get("serial_fallback")
            .and_then(Json::as_bool)
            .ok_or_else(|| Error::corrupt(format!("{ctx}: missing bool \"serial_fallback\"")))?;
        let derived_fallback = sweep_serial_fallback(name, edge as usize, nthreads as u32);
        if stored_fallback != derived_fallback {
            return Err(Error::corrupt(format!(
                "{ctx}: serial_fallback {stored_fallback} is inconsistent with the chunk plan \
                 (derived {derived_fallback})"
            )));
        }
    }
    let entropy = doc
        .get("entropy")
        .and_then(Json::as_arr)
        .ok_or_else(|| Error::corrupt("report: missing \"entropy\" array"))?;
    let mut deflate_row: Option<(f64, f64)> = None; // (compressed_bytes, decode_ns)
    let mut rans_row: Option<(f64, f64)> = None;
    let mut input_bytes: Option<f64> = None;
    for e in entropy {
        let codec = require_str(e, "codec", "entropy entry")?;
        let ctx = format!("entropy[{codec}]");
        let input = require_num(e, "input_bytes", &ctx)?;
        let compressed = require_num(e, "compressed_bytes", &ctx)?;
        let encode = require_num(e, "encode_ns", &ctx)?;
        let decode = require_num(e, "decode_ns", &ctx)?;
        if input < 1.0 || compressed < 1.0 || encode <= 0.0 || decode <= 0.0 {
            return Err(Error::corrupt(format!(
                "{ctx}: sizes and timings must be positive"
            )));
        }
        // Every backend must have compressed the same input, or the ratio
        // and decode-throughput comparisons below compare nothing.
        match input_bytes {
            None => input_bytes = Some(input),
            Some(prev) if prev != input => {
                return Err(Error::corrupt(format!(
                    "{ctx}: input_bytes {input} differs from other entries' {prev}"
                )))
            }
            Some(_) => {}
        }
        let stored_ratio = require_num(e, "ratio", &ctx)?;
        let derived_ratio = input / compressed;
        if (stored_ratio - derived_ratio).abs() > 5.1e-5 {
            return Err(Error::corrupt(format!(
                "{ctx}: ratio {stored_ratio} is inconsistent with input/compressed bytes \
                 (derived {derived_ratio:.4})"
            )));
        }
        match codec {
            "deflate" => deflate_row = Some((compressed, decode)),
            "rans" => rans_row = Some((compressed, decode)),
            _ => {}
        }
    }
    let (Some((deflate_bytes, deflate_decode)), Some((rans_bytes, rans_decode))) =
        (deflate_row, rans_row)
    else {
        return Err(Error::corrupt(
            "entropy: must contain both a \"deflate\" and a \"rans\" entry",
        ));
    };
    // The acceptance ordering the rans backend exists to provide. Compare
    // raw byte counts (exact) rather than the rounded ratio fields.
    if rans_bytes > deflate_bytes {
        return Err(Error::corrupt(format!(
            "entropy: rans compressed to {rans_bytes} bytes, worse than deflate's \
             {deflate_bytes} — the rans tail must not lose on ratio"
        )));
    }
    if rans_decode >= deflate_decode {
        return Err(Error::corrupt(format!(
            "entropy: rans decode took {rans_decode} ns, not faster than deflate's \
             {deflate_decode} ns — the rans tail must win on decode throughput"
        )));
    }
    Ok(())
}

/// Whether a freshly measured speedup regresses past [`GATE_TOLERANCE`]
/// below the committed one.
pub fn speedup_regressed(committed: f64, fresh: f64) -> bool {
    fresh < committed * (1.0 - GATE_TOLERANCE)
}

/// The no-regression gate: re-measure the largest committed sweep size
/// (capped at 128^3 so the gate stays CI-sized) and fail if any plugin's
/// fresh speedup falls more than [`GATE_TOLERANCE`] below the committed
/// number. Rows measured on a host with a different thread budget are
/// skipped (reported, not failed): wall-clock ratios only transfer between
/// matching `host_threads`.
pub fn gate(committed: &str, repeats: usize) -> Result<String> {
    validate_json(committed)?;
    let doc = parse_json(committed)?;
    let committed_host = require_num(&doc, "host_threads", "report")? as usize;
    let host = libpressio::core::available_threads();
    if committed_host != host {
        return Ok(format!(
            "bench gate: skipped — committed host_threads {committed_host} != this host's {host}; \
             speedups are not comparable (re-run `pressio bench` here to re-baseline)"
        ));
    }
    let effective = require_num(&doc, "nthreads_effective", "report")? as u32;
    let sweep = doc.get("sweep").and_then(Json::as_arr).unwrap_or(&[]);
    let gate_edge = sweep
        .iter()
        .filter_map(|e| e.get("edge").and_then(Json::as_num))
        .map(|e| e as usize)
        .filter(|&e| e <= 128)
        .max();
    let Some(gate_edge) = gate_edge else {
        return Ok("bench gate: skipped — no committed sweep rows at edge <= 128".to_string());
    };
    let reps = if repeats > 0 { repeats } else { 3 };
    let fresh = measure_sweep_edge(gate_edge, reps, effective)?;
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    for e in sweep {
        let plugin = require_str(e, "plugin", "sweep entry")?;
        let edge = require_num(e, "edge", "sweep entry")? as usize;
        if edge != gate_edge {
            continue;
        }
        let committed_speedup = require_num(e, "speedup", "sweep entry")?;
        let Some(f) = fresh.iter().find(|f| f.plugin == plugin) else {
            failures.push(format!("{plugin}@{edge}: no fresh measurement"));
            continue;
        };
        let fresh_speedup = f.speedup();
        let line = format!(
            "{plugin}@{edge}: committed {committed_speedup:.3}x, fresh {fresh_speedup:.3}x"
        );
        if speedup_regressed(committed_speedup, fresh_speedup) {
            failures.push(format!(
                "{line} — regression beyond {:.0}% tolerance",
                GATE_TOLERANCE * 100.0
            ));
        } else {
            lines.push(format!("{line} — ok"));
        }
    }
    if failures.is_empty() {
        Ok(format!(
            "bench gate: {} row(s) at {gate_edge}^3 within tolerance\n{}",
            lines.len(),
            lines.join("\n")
        ))
    } else {
        Err(Error::invalid_argument(format!(
            "bench gate: speedup regression at {gate_edge}^3:\n{}",
            failures.join("\n")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            dims: vec![8, 8, 8],
            repeats: 3,
            host_threads: 2,
            nthreads_requested: 4,
            nthreads_effective: 2,
            overhead: vec![OverheadEntry {
                plugin: "zfp".into(),
                native_ns: 1000,
                interface_ns: 1100,
            }],
            sweep: vec![SweepEntry {
                plugin: "zfp_omp".into(),
                baseline: "zfp".into(),
                edge: 12,
                nthreads: 2,
                serial_ns: 2000,
                parallel_ns: 1900,
                // 12^3 f64 is far below the chunk-plan byte floor.
                serial_fallback: true,
            }],
            entropy: vec![
                EntropyEntry {
                    codec: "deflate".into(),
                    input_bytes: 10000,
                    compressed_bytes: 5000,
                    encode_ns: 40000,
                    decode_ns: 30000,
                },
                EntropyEntry {
                    codec: "rans".into(),
                    input_bytes: 10000,
                    compressed_bytes: 4900,
                    encode_ns: 45000,
                    decode_ns: 20000,
                },
            ],
        }
    }

    #[test]
    fn emitted_json_validates() {
        let json = to_json(&sample_report());
        validate_json(&json).expect("valid");
    }

    #[test]
    fn overhead_pct_is_relative() {
        let e = OverheadEntry {
            plugin: "x".into(),
            native_ns: 1000,
            interface_ns: 1100,
        };
        assert!((e.overhead_pct() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn validator_rejects_wrong_schema() {
        let json = to_json(&sample_report()).replace("overhead-v3", "overhead-v9");
        assert!(validate_json(&json).is_err());
    }

    #[test]
    fn validator_rejects_empty_overhead() {
        let mut r = sample_report();
        r.overhead.clear();
        assert!(validate_json(&to_json(&r)).is_err());
    }

    #[test]
    fn validator_rejects_inconsistent_overhead_pct() {
        // Tamper with the raw timing but leave the derived field: the
        // stored overhead_pct (10.000) no longer follows from the timings.
        let json = to_json(&sample_report()).replace("\"native_ns\": 1000", "\"native_ns\": 500");
        let err = validate_json(&json).expect_err("tampered pct must fail");
        assert!(err.to_string().contains("inconsistent"), "{err}");
    }

    #[test]
    fn validator_rejects_inconsistent_speedup() {
        let json =
            to_json(&sample_report()).replace("\"parallel_ns\": 1900", "\"parallel_ns\": 950");
        let err = validate_json(&json).expect_err("tampered speedup must fail");
        assert!(err.to_string().contains("inconsistent"), "{err}");
    }

    #[test]
    fn validator_accepts_rounded_derived_fields() {
        // Timings whose derived pct does not land on a %.3f grid point must
        // still validate after the emitter rounds them.
        let r = BenchReport {
            overhead: vec![OverheadEntry {
                plugin: "x".into(),
                native_ns: 2997,
                interface_ns: 3001,
            }],
            sweep: vec![SweepEntry {
                plugin: "y".into(),
                baseline: "x".into(),
                edge: 12,
                nthreads: 2,
                serial_ns: 9999,
                parallel_ns: 3334,
                serial_fallback: true,
            }],
            ..sample_report()
        };
        validate_json(&to_json(&r)).expect("rounded derived fields are consistent");
    }

    #[test]
    fn validator_rejects_oversubscribed_effective_threads() {
        // nthreads_effective must be the clamp of the request to the host:
        // the committed v1 file's `host_threads: 2` + `nthreads: 4` shape
        // is exactly what this rejects.
        let json = to_json(&sample_report())
            .replace("\"nthreads_effective\": 2", "\"nthreads_effective\": 4")
            .replace("\"nthreads\": 2", "\"nthreads\": 4");
        let err = validate_json(&json).expect_err("oversubscription must fail");
        assert!(err.to_string().contains("nthreads_effective"), "{err}");
    }

    #[test]
    fn validator_rejects_inconsistent_serial_fallback() {
        // A 12^3 field sits under the chunk-plan byte floor, so claiming
        // the pool engaged there contradicts the deterministic plan.
        let json = to_json(&sample_report())
            .replace("\"serial_fallback\": true", "\"serial_fallback\": false");
        let err = validate_json(&json).expect_err("fallback mismatch must fail");
        assert!(err.to_string().contains("serial_fallback"), "{err}");
    }

    #[test]
    fn fallback_prediction_matches_plan_geometry() {
        // zfp_omp plans over promoted f64 values, sz_omp over raw f32: at
        // 41^3 (f64: ~538 KiB, f32: ~269 KiB) they straddle the threshold.
        assert!(!sweep_serial_fallback("zfp_omp", 41, 4));
        assert!(sweep_serial_fallback("sz_omp", 41, 4));
        // One piece requested can never split.
        assert!(sweep_serial_fallback("zfp_omp", 128, 1));
        // Both split comfortably at 128^3.
        assert!(!sweep_serial_fallback("zfp_omp", 128, 4));
        assert!(!sweep_serial_fallback("sz_omp", 128, 4));
    }

    #[test]
    fn speedup_regression_tolerance() {
        assert!(!speedup_regressed(1.0, 1.0));
        assert!(!speedup_regressed(1.0, 0.95));
        assert!(!speedup_regressed(1.0, 0.901));
        assert!(speedup_regressed(1.0, 0.89));
        assert!(speedup_regressed(2.0, 1.7));
    }

    fn gate_report(serial_ns: u128, parallel_ns: u128) -> BenchReport {
        let host = libpressio::core::available_threads();
        let effective = clamp_nthreads(4);
        let sweep = ["zfp_omp", "sz_omp"]
            .into_iter()
            .map(|plugin| SweepEntry {
                plugin: plugin.into(),
                baseline: plugin.trim_end_matches("_omp").into(),
                edge: 8,
                nthreads: effective,
                serial_ns,
                parallel_ns,
                serial_fallback: sweep_serial_fallback(plugin, 8, effective),
            })
            .collect();
        BenchReport {
            host_threads: host,
            nthreads_requested: 4,
            nthreads_effective: effective,
            sweep,
            ..sample_report()
        }
    }

    #[test]
    fn gate_passes_when_committed_speedup_is_beatable() {
        // Committed speedup of 0.001x: any real measurement clears it.
        let json = to_json(&gate_report(1, 1000));
        let msg = gate(&json, 1).expect("gate passes");
        assert!(msg.contains("within tolerance"), "{msg}");
    }

    #[test]
    fn gate_fails_on_regression() {
        // Committed speedup of 1000x: no honest re-measurement reaches it.
        let json = to_json(&gate_report(1_000_000, 1000));
        let err = gate(&json, 1).expect_err("gate must fail");
        assert!(err.to_string().contains("regression"), "{err}");
    }

    #[test]
    fn gate_skips_foreign_host_baselines() {
        // A committed file from a bigger machine: rows are not comparable,
        // so the gate reports a skip instead of failing or lying.
        let mut r = gate_report(1, 1000);
        r.host_threads += 1;
        // Keep the clamp rule satisfied on the synthetic foreign host.
        r.nthreads_requested = r.nthreads_effective;
        let msg = gate(&to_json(&r), 1).expect("skip, not fail");
        assert!(msg.contains("skipped"), "{msg}");
    }

    #[test]
    fn validator_rejects_missing_entropy_section() {
        let mut r = sample_report();
        r.entropy.clear();
        let err = validate_json(&to_json(&r)).expect_err("empty entropy must fail");
        assert!(err.to_string().contains("entropy"), "{err}");
    }

    #[test]
    fn validator_rejects_inconsistent_entropy_ratio() {
        // Shrink the stored compressed size but leave the derived ratio:
        // the committed numbers must follow from the raw byte counts.
        let json = to_json(&sample_report())
            .replace("\"compressed_bytes\": 4900", "\"compressed_bytes\": 2450");
        let err = validate_json(&json).expect_err("tampered ratio must fail");
        assert!(err.to_string().contains("inconsistent"), "{err}");
    }

    #[test]
    fn validator_rejects_rans_losing_on_ratio() {
        let mut r = sample_report();
        r.entropy[1].compressed_bytes = 5100; // worse than deflate's 5000
        let err = validate_json(&to_json(&r)).expect_err("rans ratio loss must fail");
        assert!(err.to_string().contains("ratio"), "{err}");
    }

    #[test]
    fn validator_rejects_rans_losing_on_decode_speed() {
        let mut r = sample_report();
        r.entropy[1].decode_ns = 30000; // ties deflate: not strictly faster
        let err = validate_json(&to_json(&r)).expect_err("rans decode loss must fail");
        assert!(err.to_string().contains("decode"), "{err}");
    }

    #[test]
    fn validator_rejects_mismatched_entropy_inputs() {
        let mut r = sample_report();
        r.entropy[1].input_bytes = 20000;
        r.entropy[1].compressed_bytes = 9800; // keep its own ratio consistent
        let err = validate_json(&to_json(&r)).expect_err("input mismatch must fail");
        assert!(err.to_string().contains("input_bytes"), "{err}");
    }

    #[test]
    fn validator_rejects_malformed_json() {
        assert!(validate_json("{\"schema\": ").is_err());
        assert!(validate_json("{} trailing").is_err());
        assert!(validate_json("").is_err());
    }

    #[test]
    fn parser_handles_nesting_and_escapes() {
        let v = parse_json("{\"a\": [1, -2.5e1, \"x\\\"y\\u0041\"], \"b\": {\"c\": true}}")
            .expect("parse");
        let arr = v.get("a").and_then(Json::as_arr).expect("arr");
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[1], Json::Num(-25.0));
        assert_eq!(arr[2], Json::Str("x\"yA".into()));
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Bool(true)));
    }

    #[test]
    fn quick_run_produces_valid_report() {
        let cfg = BenchConfig {
            quick: true,
            n: 8,
            repeats: 1,
            sizes: vec![8],
        };
        let report = run(&cfg).expect("bench run");
        assert_eq!(report.overhead.len(), 6);
        assert_eq!(report.sweep.len(), 2, "2 plugin pairs x 1 size");
        // The oversubscription fix: the sweep never requests more threads
        // than the host provides, and the clamp is recorded.
        assert_eq!(report.nthreads_requested, 4);
        assert_eq!(report.nthreads_effective, clamp_nthreads(4));
        assert!((report.nthreads_effective as usize) <= report.host_threads);
        for row in &report.sweep {
            assert_eq!(row.nthreads, report.nthreads_effective);
            assert_eq!(row.edge, 8);
            assert!(row.serial_fallback, "8^3 sits under the plan floor");
        }
        validate_json(&to_json(&report)).expect("schema-valid");
        assert!(!render_table(&report).is_empty());
    }

    #[test]
    fn run_rejects_out_of_range_sweep_sizes() {
        let cfg = BenchConfig {
            quick: true,
            n: 8,
            repeats: 1,
            sizes: vec![MAX_EDGE + 1],
        };
        assert!(run(&cfg).is_err());
    }
}
