//! `pressio` — the LibPressio-Tools analog: a compressor-agnostic command
//! line interface.
//!
//! Because it drives the *generic* interface, every registered compressor,
//! metric, and IO format works from this one binary — the capability the
//! paper contrasts with the per-compressor CLIs shipped by SZ, ZFP, and
//! MGARD (none of which can read the others' formats, and none of which can
//! read HDF5-style containers).
//!
//! ```text
//! pressio list [compressors|metrics|io]
//! pressio options <compressor>
//! pressio compress   -c <name> -i <in> -o <out> -t <dtype> -d <dims>
//!                    [-O key=value ...] [-m metric ...] [-f posix|numpy|h5lite|csv|datagen]
//! pressio decompress -c <name> -i <in> -o <out> -t <dtype> [-d <dims>] [-F posix|numpy]
//! pressio eval       -i <original> -j <decompressed> -t <dtype> -d <dims> [-m metric ...]
//! pressio gen        -n <dataset> -o <out> [-s seed] [-k scale] [-F posix|numpy]
//! pressio contract   [-v verbose]
//! ```

use std::process::ExitCode;

use libpressio::prelude::*;
use libpressio::{Error, Result};

struct Args {
    positional: Vec<String>,
    options: Vec<(String, String)>,
}

impl Args {
    fn parse(argv: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut options = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(flag) = a.strip_prefix('-') {
                let flag = flag.trim_start_matches('-').to_string();
                // The next token is this flag's value unless it is itself a
                // flag (starts with '-' followed by a letter — negative
                // numeric values still parse as values).
                let next_is_value = argv.get(i + 1).is_some_and(|n| {
                    !(n.starts_with('-')
                        && n[1..]
                            .chars()
                            .next()
                            .is_some_and(|c| c.is_ascii_alphabetic() || c == '-'))
                });
                if next_is_value {
                    options.push((flag, argv[i + 1].clone()));
                    i += 2;
                } else {
                    options.push((flag, String::new()));
                    i += 1;
                }
            } else {
                positional.push(a.clone());
                i += 1;
            }
        }
        Args {
            positional,
            options,
        }
    }

    fn get(&self, flag: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(f, _)| f == flag)
            .map(|(_, v)| v.as_str())
    }

    fn get_all(&self, flag: &str) -> Vec<&str> {
        self.options
            .iter()
            .filter(|(f, _)| f == flag)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn require(&self, flag: &str, what: &str) -> Result<&str> {
        self.get(flag)
            .ok_or_else(|| Error::invalid_argument(format!("missing -{flag} <{what}>")))
    }
}

/// Parse `key=value` pairs into typed option values: integer, then float,
/// then string.
fn parse_option_pairs(pairs: &[&str]) -> Result<Options> {
    let mut o = Options::new();
    for p in pairs {
        let (k, v) = p
            .split_once('=')
            .ok_or_else(|| Error::invalid_argument(format!("expected key=value, got {p:?}")))?;
        if let Ok(i) = v.parse::<i64>() {
            o.set(k, i);
        } else if let Ok(f) = v.parse::<f64>() {
            o.set(k, f);
        } else {
            o.set(k, v);
        }
    }
    Ok(o)
}

fn parse_dims(s: &str) -> Result<Vec<usize>> {
    s.split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| Error::invalid_argument(format!("bad dimension {p:?}")))
        })
        .collect()
}

fn io_for(format: &str, path: &str, extra: &Options) -> Result<Box<dyn IoPlugin>> {
    let library = libpressio::instance();
    let mut io = library.get_io(format)?;
    let mut opts = Options::new().with("io:path", path);
    opts.merge(extra);
    io.set_options(&opts)?;
    Ok(io)
}

fn read_input(args: &Args, path_flag: &str) -> Result<Data> {
    let path = args.require(path_flag, "path")?;
    let format = args.get("f").unwrap_or("posix");
    let extra = parse_option_pairs(&args.get_all("O"))?;
    let mut io = io_for(format, path, &extra)?;
    let template = match (args.get("t"), args.get("d")) {
        (Some(t), Some(d)) => Some(Data::owned(DType::from_name(t)?, parse_dims(d)?)),
        _ => None,
    };
    io.read(template.as_ref())
}

fn cmd_list(args: &Args) -> Result<()> {
    let library = libpressio::instance();
    let what = args.positional.get(1).map(|s| s.as_str()).unwrap_or("all");
    if what == "compressors" || what == "all" {
        println!("compressors:");
        for c in library.supported_compressors() {
            println!("  {c}");
        }
    }
    if what == "metrics" || what == "all" {
        println!("metrics:");
        for m in library.supported_metrics() {
            println!("  {m}");
        }
    }
    if what == "io" || what == "all" {
        println!("io:");
        for i in library.supported_io() {
            println!("  {i}");
        }
    }
    Ok(())
}

fn cmd_options(args: &Args) -> Result<()> {
    let library = libpressio::instance();
    let name = args
        .positional
        .get(1)
        .ok_or_else(|| Error::invalid_argument("usage: pressio options <compressor>"))?;
    let c = library.get_compressor(name)?;
    println!("# options ({name})");
    print!("{}", c.get_options());
    println!("# configuration");
    print!("{}", c.get_configuration());
    let docs = c.get_documentation();
    if !docs.is_empty() {
        println!("# documentation");
        print!("{docs}");
    }
    Ok(())
}

fn cmd_compress(args: &Args) -> Result<()> {
    let library = libpressio::instance();
    let name = args.require("c", "compressor")?;
    let input = read_input(args, "i")?;
    let mut c = library.get_compressor(name)?;
    let opts = parse_option_pairs(&args.get_all("O"))?;
    c.check_options(&opts)?;
    c.set_options(&opts)?;
    let mut metric_names: Vec<&str> = args.get_all("m");
    if metric_names.is_empty() {
        metric_names = vec!["size", "time"];
    }
    c.set_metrics(library.new_metrics(&metric_names)?);
    let compressed = c.compress(&input)?;
    let out = args.require("o", "path")?;
    std::fs::write(out, compressed.as_bytes())?;
    print!("{}", c.metrics_results());
    Ok(())
}

fn cmd_decompress(args: &Args) -> Result<()> {
    let library = libpressio::instance();
    let name = args.require("c", "compressor")?;
    let input_path = args.require("i", "path")?;
    let bytes = std::fs::read(input_path)?;
    let compressed = Data::from_bytes(&bytes);
    let dtype = DType::from_name(args.require("t", "dtype")?)?;
    let dims = match args.get("d") {
        Some(d) => parse_dims(d)?,
        None => vec![0],
    };
    let mut c = library.get_compressor(name)?;
    c.set_options(&parse_option_pairs(&args.get_all("O"))?)?;
    let mut output = Data::owned(dtype, dims);
    c.decompress(&compressed, &mut output)?;
    let out_path = args.require("o", "path")?;
    let format = args.get("F").unwrap_or("posix");
    let mut io = io_for(format, out_path, &Options::new())?;
    io.write(&output)?;
    eprintln!(
        "decompressed {} elements of {} to {out_path}",
        output.num_elements(),
        output.dtype()
    );
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<()> {
    let library = libpressio::instance();
    let dtype = DType::from_name(args.require("t", "dtype")?)?;
    let dims = parse_dims(args.require("d", "dims")?)?;
    let template = Data::owned(dtype, dims);
    let read = |flag: &str| -> Result<Data> {
        let path = args.require(flag, "path")?;
        let mut io = io_for(args.get("f").unwrap_or("posix"), path, &Options::new())?;
        io.read(Some(&template))
    };
    let original = read("i")?;
    let decompressed = read("j")?;
    let mut metric_names: Vec<&str> = args.get_all("m");
    if metric_names.is_empty() {
        metric_names = vec!["error_stat", "pearson", "spatial_error", "ks_test"];
    }
    // Drive the metric hooks directly with a no-op "compression".
    let mut metrics = library.new_metrics(&metric_names)?;
    let fake = Data::from_bytes(&[0u8]);
    for m in metrics.iter_mut() {
        m.set_options(&parse_option_pairs(&args.get_all("O"))?)?;
        m.begin_compress(&original);
        m.end_compress(&original, &fake, std::time::Duration::ZERO);
        m.begin_decompress(&fake);
        m.end_decompress(&fake, &decompressed, std::time::Duration::ZERO);
    }
    for m in &metrics {
        print!("{}", m.results());
    }
    Ok(())
}

fn cmd_gen(args: &Args) -> Result<()> {
    libpressio::init();
    let name = args.require("n", "dataset")?;
    let seed = args.get("s").and_then(|s| s.parse::<u64>().ok()).unwrap_or(0);
    let scale = args
        .get("k")
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(1);
    let data = libpressio::datagen::by_name(name, scale, seed)?;
    let out = args.require("o", "path")?;
    let format = args.get("F").unwrap_or("posix");
    let mut io = io_for(format, out, &Options::new())?;
    io.write(&data)?;
    eprintln!(
        "wrote {name} ({} {:?}) to {out}",
        data.dtype(),
        data.dims()
    );
    Ok(())
}

fn cmd_contract(args: &Args) -> Result<()> {
    let report = pressio_tools::contract::check_all();
    let verbose = args.get("v").is_some();
    if verbose || !report.is_clean() {
        print!("{report}");
    } else {
        println!(
            "checked {} plugins: all honor the plugin contract ({} documented skip(s))",
            report.checked,
            report.skipped.len()
        );
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(Error::invalid_argument(format!(
            "{} contract violation(s)",
            report.violations.len()
        )))
    }
}

fn cmd_fuzz_decode(args: &Args) -> Result<()> {
    let parse_num = |flag: &str, default: u64| -> Result<u64> {
        match args.get(flag) {
            None => Ok(default),
            Some(v) => v
                .parse::<u64>()
                .map_err(|_| Error::invalid_argument(format!("bad --{flag} value {v:?}"))),
        }
    };
    let cfg = pressio_tools::fuzz::FuzzConfig {
        iterations: parse_num("iterations", 64)? as u32,
        seed: parse_num("seed", 1)?,
        timeout_ms: parse_num("timeout-ms", 2_000)?,
        compressor: args.get("c").map(str::to_string),
    };
    let report = pressio_tools::fuzz::fuzz_all(&cfg);
    print!("{report}");
    if report.is_clean() {
        Ok(())
    } else {
        Err(Error::corrupt(format!(
            "{} robustness violation(s)",
            report.failures.len()
        )))
    }
}

fn cmd_chaos(args: &Args) -> Result<()> {
    let parse_num = |flag: &str, default: u64| -> Result<u64> {
        match args.get(flag) {
            None => Ok(default),
            Some(v) => v
                .parse::<u64>()
                .map_err(|_| Error::invalid_argument(format!("bad --{flag} value {v:?}"))),
        }
    };
    let mut cfg = if args.get("quick").is_some() {
        pressio_tools::chaos::ChaosSweepConfig::quick()
    } else {
        pressio_tools::chaos::ChaosSweepConfig::default()
    };
    cfg.seeds = parse_num("seeds", cfg.seeds as u64)? as u32;
    cfg.first_seed = parse_num("seed", cfg.first_seed)?;
    cfg.run_deadline_ms = parse_num("deadline-ms", cfg.run_deadline_ms)?;
    let report = if args.get("serve").is_some() {
        pressio_tools::chaos::chaos_serve(&cfg).map_err(Error::unsupported)?
    } else {
        pressio_tools::chaos::chaos_all(&cfg).map_err(Error::unsupported)?
    };
    print!("{report}");
    if report.is_clean() {
        Ok(())
    } else {
        Err(Error::corrupt(format!(
            "{} self-healing violation(s)",
            report.failures.len()
        )))
    }
}

/// Set by the SIGTERM/SIGINT handler; the serve loop polls it.
static SHUTDOWN_SIGNAL: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_terminate(_sig: i32) {
    // Only async-signal-safe work here: a relaxed store on a static.
    SHUTDOWN_SIGNAL.store(true, std::sync::atomic::Ordering::Relaxed);
}

fn install_terminate_handler() {
    // Raw libc signal(2) via our own extern declarations so the binary
    // stays dependency-free.
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: declares libc's signal(2) with its documented C signature;
    // the symbol exists in every libc this binary links against.
    unsafe extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    // SAFETY: `on_terminate` is async-signal-safe (a single atomic store)
    // and has the exact `extern "C" fn(i32)` ABI signal(2) expects; the
    // handler is installed once, before any serve threads start.
    unsafe {
        signal(SIGTERM, on_terminate);
        signal(SIGINT, on_terminate);
    }
}

fn cmd_serve(args: &Args) -> Result<()> {
    use pressio_tools::serve::{ProfileSpec, ServeConfig, Server};
    let parse_num = |flag: &str, default: u64| -> Result<u64> {
        match args.get(flag) {
            None => Ok(default),
            Some(v) => v
                .parse::<u64>()
                .map_err(|_| Error::invalid_argument(format!("bad --{flag} value {v:?}"))),
        }
    };
    let mut profiles = Vec::new();
    for spec in args.get_all("profile") {
        profiles.push(ProfileSpec::parse(spec)?);
    }
    let cfg = ServeConfig {
        profiles,
        workers: parse_num("workers", 0)? as usize,
        queue_capacity: parse_num("queue", 0)? as usize,
        unix_path: args.get("unix").map(std::path::PathBuf::from),
        tcp_addr: args.get("tcp").map(str::to_string),
        drain_deadline_ms: parse_num("drain-ms", 0)?,
        max_body: parse_num("max-body", 0)? as usize,
        default_deadline_ms: parse_num("deadline-ms", 0)?,
        max_connections: parse_num("max-conns", 0)? as usize,
        allow_remote_shutdown: args.get("allow-remote-shutdown").is_some(),
        ..ServeConfig::default()
    };
    install_terminate_handler();
    let server = Server::start(cfg)?;
    if let Some(addr) = server.tcp_addr() {
        eprintln!("pressio serve: listening on tcp {addr}");
    }
    if let Some(path) = server.unix_path() {
        eprintln!("pressio serve: listening on unix {}", path.display());
    }
    // Poll for SIGTERM/SIGINT or a client Shutdown frame; the daemon's
    // threads do all the work.
    while !SHUTDOWN_SIGNAL.load(std::sync::atomic::Ordering::Relaxed)
        && !server.shutdown_requested()
    {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    eprintln!("pressio serve: draining...");
    let report = server.shutdown();
    eprintln!(
        "pressio serve: drained (clean={}, cancelled={}, cleared={}, busy_total={}, watchdog={}/{})",
        report.drained_clean,
        report.cancelled_inflight,
        report.cleared_queued,
        report.busy_responses,
        report.watchdog.0,
        report.watchdog.1
    );
    if report.stuck_inflight != 0 || report.watchdog.0 != report.watchdog.1 {
        return Err(Error::internal(format!(
            "unclean drain: {} stuck in flight, watchdog {}/{}",
            report.stuck_inflight, report.watchdog.0, report.watchdog.1
        )));
    }
    Ok(())
}

fn cmd_bench_serve(args: &Args) -> Result<()> {
    use pressio_tools::serve::load;
    let out = args.get("out").unwrap_or("BENCH_serve.json");
    if args.get("check").is_some() {
        let text = std::fs::read_to_string(out)?;
        load::validate_json(&text)?;
        println!("{out}: valid {}", load::SERVE_SCHEMA);
        return Ok(());
    }
    let mut cfg = if args.get("quick").is_some() {
        load::LoadConfig::quick()
    } else {
        load::LoadConfig::default()
    };
    let parse_num = |flag: &str, default: usize| -> Result<usize> {
        match args.get(flag) {
            None => Ok(default),
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| Error::invalid_argument(format!("bad --{flag} value {v:?}"))),
        }
    };
    cfg.workers = parse_num("workers", cfg.workers)?;
    cfg.queue_capacity = parse_num("queue", cfg.queue_capacity)?;
    cfg.requests_per_client = parse_num("requests", cfg.requests_per_client)?;
    let report = load::run(&cfg)?;
    let json = load::to_json(&report);
    load::validate_json(&json)?;
    std::fs::write(out, &json)?;
    print!("{}", load::render_table(&report));
    eprintln!("wrote {out}");
    Ok(())
}

fn cmd_bench(args: &Args) -> Result<()> {
    if args.get("serve").is_some() {
        return cmd_bench_serve(args);
    }
    let out = args.get("out").unwrap_or("BENCH_overhead.json");
    let parse_num = |flag: &str| -> Result<usize> {
        match args.get(flag) {
            None => Ok(0),
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| Error::invalid_argument(format!("bad --{flag} value {v:?}"))),
        }
    };
    if args.get("check").is_some() {
        let text = std::fs::read_to_string(out)?;
        pressio_tools::bench::validate_json(&text)?;
        println!("{out}: valid {}", pressio_tools::bench::SCHEMA);
        return Ok(());
    }
    if args.get("gate").is_some() {
        let text = std::fs::read_to_string(out)?;
        let msg = pressio_tools::bench::gate(&text, parse_num("repeats")?)?;
        println!("{msg}");
        return Ok(());
    }
    let cfg = pressio_tools::bench::BenchConfig {
        quick: args.get("quick").is_some(),
        n: parse_num("n")?,
        repeats: parse_num("repeats")?,
        sizes: match args.get("sizes") {
            Some(s) => parse_dims(s)?,
            None => Vec::new(),
        },
    };
    let report = pressio_tools::bench::run(&cfg)?;
    let json = pressio_tools::bench::to_json(&report);
    // Self-check the document against the schema before publishing it.
    pressio_tools::bench::validate_json(&json)?;
    std::fs::write(out, &json)?;
    print!("{}", pressio_tools::bench::render_table(&report));
    eprintln!("wrote {out}");
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<()> {
    let parse_num = |flag: &str, default: u64| -> Result<u64> {
        match args.get(flag) {
            None => Ok(default),
            Some(v) => v
                .parse::<u64>()
                .map_err(|_| Error::invalid_argument(format!("bad --{flag} value {v:?}"))),
        }
    };
    let cfg = pressio_tools::trace_cmd::TraceConfig {
        compressor: args
            .positional
            .get(1)
            .cloned()
            .or_else(|| args.get("c").map(str::to_string))
            .unwrap_or_else(|| "sz".to_string()),
        dataset: args.get("n").unwrap_or("scale-letkf").to_string(),
        scale: parse_num("k", 1)? as usize,
        seed: parse_num("s", 77)?,
        options: parse_option_pairs(&args.get_all("O"))?,
    };
    let outcome = pressio_tools::trace_cmd::run(&cfg)?;
    if args.get("check").is_some() {
        pressio_tools::trace_cmd::check(&outcome.report)?;
        println!(
            "trace check ok: {} span(s), well-nested",
            outcome.report.spans.len()
        );
        return Ok(());
    }
    print!("{}", outcome.tree);
    println!("{}", pressio_tools::trace_cmd::summary(&cfg, &outcome));
    if let Some(path) = args.get("export") {
        std::fs::write(path, &outcome.chrome_json)?;
        eprintln!("wrote chrome-trace JSON to {path} (open in chrome://tracing or Perfetto)");
    }
    Ok(())
}

/// `pressio lint`: the static-analysis pass, embedded in the main CLI so
/// the rules are discoverable without knowing the separate `pressio-lint`
/// binary exists. Shares its engine ([`pressio_tools::lint`]) and its
/// allowlist (`<root>/lint-allow.txt`) with that binary and with ci.sh.
fn cmd_lint(args: &Args) -> Result<()> {
    use pressio_tools::lint;
    if args.get("list-rules").is_some() {
        for r in lint::ALL_RULES {
            println!("{r}");
        }
        return Ok(());
    }
    if let Some(rule) = args.get("explain") {
        let text = lint::explain(rule).ok_or_else(|| {
            Error::invalid_argument(format!(
                "unknown rule {rule:?}; known rules: {}",
                lint::ALL_RULES.join(", ")
            ))
        })?;
        println!("{text}");
        return Ok(());
    }
    let root = match args.get("root") {
        Some(r) => std::path::PathBuf::from(r),
        None => {
            let mut dir = std::env::current_dir()?;
            loop {
                if std::fs::read_to_string(dir.join("Cargo.toml"))
                    .map(|t| t.contains("[workspace]"))
                    .unwrap_or(false)
                {
                    break dir;
                }
                match dir.parent() {
                    Some(p) => dir = p.to_path_buf(),
                    None => {
                        return Err(Error::invalid_argument(
                            "no workspace root found; pass --root",
                        ))
                    }
                }
            }
        }
    };
    let allow_path = root.join("lint-allow.txt");
    let allowlist = match std::fs::read_to_string(&allow_path) {
        Ok(text) => lint::Allowlist::parse(&text),
        Err(_) => lint::Allowlist::default(),
    };
    let report = lint::run(&root, &allowlist)?;
    let mut clean = true;
    for f in &report.findings {
        if !f.allowed {
            println!("{f}");
            clean = false;
        }
    }
    for stale in &report.unused_allows {
        eprintln!("warning: unused allowlist entry: {stale}");
        clean = false;
    }
    if !report.unused_allows.is_empty() {
        eprintln!(
            "note: stale entries waive nothing — remove those lines from {}",
            allow_path.display()
        );
    }
    let allowed = report.findings.iter().filter(|f| f.allowed).count();
    eprintln!(
        "pressio lint: {} files scanned, {} violation(s), {} allowlisted",
        report.files_scanned,
        report.findings.len() - allowed,
        allowed
    );
    if clean {
        Ok(())
    } else {
        Err(Error::invalid_argument("lint violations found"))
    }
}

const USAGE: &str = "usage: pressio <list|options|compress|decompress|eval|gen|contract|fuzz-decode|chaos|serve|bench|trace|lint> [args]
  list [compressors|metrics|io]
  options <compressor>
  compress   -c <name> -i <in> -o <out> [-t dtype -d dims] [-O k=v ...] [-m metric ...] [-f format]
  decompress -c <name> -i <in> -o <out> -t <dtype> [-d dims] [-F format]
  eval       -i <orig> -j <dec> -t <dtype> -d <dims> [-m metric ...]
  gen        -n <hurricane|nyx|hacc|scale-letkf> -o <out> [-s seed] [-k scale] [-F format]
  contract   [-v verbose]  # verify every registered plugin honors the plugin contract
  fuzz-decode [-c <name>] [--iterations N] [--seed S] [--timeout-ms T]
              # drive every decompressor with damaged streams; fail on panics/hangs
  chaos      [--quick] [--serve] [--seeds N] [--seed S] [--deadline-ms T]
              # inject seeded faults (worker/task panics, delays, spurious
              # cancels, budget failures) into the exec pool while sweeping
              # every pooled plugin and the guard stacks; fail on deadlocks,
              # leaked workers, or cross-run corruption. Needs --features chaos.
              # --serve sweeps the serve daemon instead: faulted request
              # bursts per seed, then a clean request bit-identical to a
              # pristine server's and a drain with nothing stuck or leaked
  serve      [--tcp host:port] [--unix path] [--profile name=compressor[,k=v...]]...
              [--workers N] [--queue N] [--drain-ms T] [--deadline-ms T] [--max-body B]
              [--max-conns N] [--allow-remote-shutdown]
              # run the admission-controlled compression daemon: bounded
              # queue with structured Busy shedding, per-request deadlines
              # and memory budgets, a connection cap (default 256), and
              # graceful drain on SIGTERM/SIGINT or a client Shutdown
              # frame (unix-socket only unless --allow-remote-shutdown).
              # Default profiles: raw, lossless, sz_abs_1e3, zfp_default
  bench      [--quick] [--out path] [--n edge] [--repeats N] [--sizes 32,64,128]
              [--check] [--gate] [--serve [--workers N] [--queue N] [--requests N]]
              # measure native vs through-interface time per plugin, then sweep
              # serial vs pooled (zfp/zfp_omp, sz/sz_omp) wall-clock across field
              # sizes (nthreads clamped to the host; edges up to 512); emit
              # BENCH_overhead.json. --check validates the committed file's
              # self-consistency; --gate re-measures the largest committed size
              # <= 128 and fails on a >10% speedup regression
  trace      [<compressor>] [-n dataset] [-k scale] [-s seed] [-O k=v ...]
              [--export chrome.json] [--check]
              # round-trip a datagen field with span tracing enabled; print the
              # per-stage span tree, optionally exporting chrome-trace JSON.
              # --check asserts a non-empty, well-nested span tree
  lint       [--root dir] [--explain rule] [--list-rules]
              # run the workspace static-analysis pass (same engine as the
              # pressio-lint binary): wire-taint, plugin-surface, lock
              # discipline, and the v1 line rules. --explain documents a rule";

fn run() -> Result<()> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(&argv);
    match args.positional.first().map(|s| s.as_str()) {
        Some("list") => cmd_list(&args),
        Some("options") => cmd_options(&args),
        Some("compress") => cmd_compress(&args),
        Some("decompress") => cmd_decompress(&args),
        Some("eval") => cmd_eval(&args),
        Some("gen") => cmd_gen(&args),
        Some("contract") => cmd_contract(&args),
        Some("fuzz-decode") => cmd_fuzz_decode(&args),
        Some("chaos") => cmd_chaos(&args),
        Some("serve") => cmd_serve(&args),
        Some("bench") => cmd_bench(&args),
        Some("trace") => cmd_trace(&args),
        Some("lint") => cmd_lint(&args),
        _ => {
            eprintln!("{USAGE}");
            Err(Error::invalid_argument("unknown or missing command"))
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pressio: {e}");
            ExitCode::from(e.code().code() as u8)
        }
    }
}
