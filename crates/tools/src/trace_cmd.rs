//! The `pressio trace` subcommand: run a round trip with the span collector
//! enabled and report where the time goes.
//!
//! The CLI (`crates/tools/src/main.rs`) parses flags, calls [`run`], and
//! prints/exports the result; everything here is a pure library so tests
//! can drive it directly. The collector is process-global — one tracing
//! consumer at a time (this command or the `trace` metrics plugin).

use libpressio::core::trace;
use libpressio::core::{value_range, OPT_REL};
use libpressio::prelude::*;
use libpressio::{Error, Result};

/// What to trace: compressor, input field, and options.
pub struct TraceConfig {
    /// Registry name of the compressor to round-trip (default `sz`).
    pub compressor: String,
    /// Datagen dataset name (see `libpressio::datagen::DATASET_NAMES`).
    pub dataset: String,
    /// Datagen linear-extent scale (1 = small default).
    pub scale: usize,
    /// Datagen seed.
    pub seed: u64,
    /// Extra compressor options (`-O key=value`).
    pub options: Options,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            compressor: "sz".to_string(),
            dataset: "scale-letkf".to_string(),
            scale: 1,
            seed: 77,
            options: Options::new(),
        }
    }
}

/// Result of a traced round trip.
pub struct TraceOutcome {
    /// The raw collected report.
    pub report: trace::TraceReport,
    /// Indented per-thread span tree with millisecond timings.
    pub tree: String,
    /// chrome-trace (`trace_events`) JSON document.
    pub chrome_json: String,
    /// Compressed size in bytes, for the summary line.
    pub compressed_bytes: usize,
    /// Uncompressed size in bytes.
    pub uncompressed_bytes: usize,
    /// Maximum absolute round-trip error.
    pub max_abs_error: f64,
}

/// Run one compress/decompress round trip on a datagen field with the span
/// collector enabled and return the collected trace.
pub fn run(cfg: &TraceConfig) -> Result<TraceOutcome> {
    libpressio::init();
    let input = libpressio::datagen::by_name(&cfg.dataset, cfg.scale, cfg.seed)?;
    let library = libpressio::instance();
    let mut c = library.get_compressor(&cfg.compressor)?;

    // A default value-range-relative bound keeps lossy plugins configured;
    // lossless plugins ignore the foreign `pressio:` key. Explicit `-O`
    // options are applied on top.
    let mut opts = Options::new().with(OPT_REL, 1e-3f64);
    opts.merge(&cfg.options);
    c.set_options(&opts)?;

    trace::clear();
    trace::enable();
    let result = (|| -> Result<(Data, Data)> {
        let compressed = c.compress(&input)?;
        let mut output = Data::owned(input.dtype(), input.dims().to_vec());
        c.decompress(&compressed, &mut output)?;
        Ok((compressed, output))
    })();
    trace::disable();
    let report = trace::take();
    let (compressed, output) = result?;

    let max_abs_error = match (input.to_f64_vec(), output.to_f64_vec()) {
        (Ok(a), Ok(b)) => a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max),
        _ => f64::NAN,
    };

    Ok(TraceOutcome {
        tree: trace::render_tree(&report),
        chrome_json: trace::chrome_trace_json(&report),
        compressed_bytes: compressed.size_in_bytes(),
        uncompressed_bytes: input.size_in_bytes(),
        max_abs_error,
        report,
    })
}

/// `--check` validation: the span tree must be non-empty, well-nested, and
/// must contain the handle-level spans for both directions.
pub fn check(report: &trace::TraceReport) -> Result<()> {
    if report.spans.is_empty() {
        return Err(Error::internal(
            "trace check: no spans collected — instrumentation is not wired",
        ));
    }
    trace::check_well_nested(report)
        .map_err(|e| Error::internal(format!("trace check: {e}")))?;
    for required in ["handle:compress", "handle:decompress"] {
        if !report.spans.iter().any(|s| s.name == required) {
            return Err(Error::internal(format!(
                "trace check: missing required span {required:?}"
            )));
        }
    }
    Ok(())
}

/// One-line summary for stdout.
pub fn summary(cfg: &TraceConfig, outcome: &TraceOutcome) -> String {
    format!(
        "{}: {} -> {} bytes ({:.2}x), max abs error {:.3e}, {} span(s), {} counter(s)",
        cfg.compressor,
        outcome.uncompressed_bytes,
        outcome.compressed_bytes,
        outcome.uncompressed_bytes as f64 / outcome.compressed_bytes.max(1) as f64,
        outcome.max_abs_error,
        outcome.report.spans.len(),
        outcome.report.counters.len(),
    )
}

/// The value-range-relative bound [`run`] applies by default, resolved to an
/// absolute bound for `input` — what `max_abs_error` should respect for
/// error-bounded plugins.
pub fn default_abs_bound(input: &Data) -> f64 {
    match input.to_f64_vec() {
        Ok(v) => 1e-3 * value_range(&v),
        Err(_) => f64::NAN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The collector is process-global: tests that enable it serialize here.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        match LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn sz_round_trip_produces_checked_span_tree() {
        let _l = test_lock();
        let cfg = TraceConfig::default();
        let outcome = run(&cfg).expect("traced round trip");
        check(&outcome.report).expect("non-empty well-nested tree");
        // Stage spans from the sz kernel appear under the handle spans.
        assert!(
            outcome
                .report
                .spans
                .iter()
                .any(|s| s.name == "sz:predict_quantize"),
            "missing sz stage spans: {:?}",
            outcome.report.spans.iter().map(|s| s.name).collect::<Vec<_>>()
        );
        assert!(outcome.tree.contains("handle:compress"));
        assert!(outcome.chrome_json.starts_with("{\"traceEvents\":["));
        // Bound held for the default rel bound.
        let input =
            libpressio::datagen::by_name(&cfg.dataset, cfg.scale, cfg.seed).expect("datagen");
        let bound = default_abs_bound(&input);
        assert!(
            outcome.max_abs_error <= bound * (1.0 + 1e-12),
            "max err {} exceeds {}",
            outcome.max_abs_error,
            bound
        );
        // Collector left off for the rest of the process.
        assert!(!trace::is_enabled());
    }

    #[test]
    fn pooled_compressor_traces_chunk_spans() {
        let _l = test_lock();
        let cfg = TraceConfig {
            compressor: "zfp_omp".to_string(),
            options: Options::new().with("zfp_omp:nthreads", 4i64),
            // Big enough that the adaptive chunk plan actually splits
            // (scale 1 sits under the serial-fallback byte threshold).
            scale: 2,
            ..TraceConfig::default()
        };
        let outcome = run(&cfg).expect("traced round trip");
        check(&outcome.report).expect("well-nested");
        assert!(outcome
            .report
            .spans
            .iter()
            .any(|s| s.name == "zfp:encode_chunk"));
        // The pool was exercised, so scheduling counters exist.
        assert!(outcome
            .report
            .counters
            .iter()
            .any(|c| c.name == "exec:queued" && c.value > 0));
    }

    #[test]
    fn check_rejects_empty_and_missing_handle_spans() {
        let empty = trace::TraceReport::default();
        assert!(check(&empty).is_err());
        let partial = trace::TraceReport {
            spans: vec![trace::SpanEvent {
                name: "handle:compress",
                label: None,
                tid: 1,
                depth: 0,
                start_ns: 0,
                dur_ns: 1,
            }],
            ..Default::default()
        };
        assert!(check(&partial).is_err(), "missing handle:decompress");
    }
}
