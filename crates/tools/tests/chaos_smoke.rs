//! Smoke tier for the chaos sweep: the `--quick` profile (the exact run
//! ci.sh's `--chaos` tier and `pressio chaos --quick` perform) must be
//! clean — every faulted run survives, cancels with a structured error,
//! or is contained, and no run deadlocks, leaks a worker, or corrupts a
//! later run on the same handle.
#![cfg(feature = "chaos")]

use pressio_tools::chaos::{chaos_all, chaos_serve, ChaosSweepConfig};

#[test]
fn quick_sweep_honors_the_self_healing_contract() {
    let report = chaos_all(&ChaosSweepConfig::quick()).expect("chaos feature is on");
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.targets, 7, "every pooled plugin and stack is swept");
    assert_eq!(report.runs, report.targets * 8, "8 seeds per target");
    // Every run is accounted for in exactly one outcome bucket.
    assert_eq!(
        report.survived + report.cancelled + report.contained,
        report.runs
    );
}

#[test]
fn quick_serve_sweep_degrades_and_recovers_cleanly() {
    let report = chaos_serve(&ChaosSweepConfig::quick()).expect("chaos feature is on");
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.targets, 1, "one daemon target");
    assert_eq!(report.runs, 8, "8 faulted servers");
    assert_eq!(
        report.survived + report.cancelled + report.contained,
        report.runs
    );
    // The sweep is pointless if the service scheduling points never fire.
    assert!(
        report.service_faults > 0,
        "no service faults were injected: {report}"
    );
}
