//! Workspace robustness gate: every registered compressor's decompressor
//! survives deterministic stream corruption, and the `guard`
//! meta-compressor's degradation chain actually degrades.

use libpressio::core::ErrorCode;
use libpressio::meta::ALL_FAULT_MODES;
use libpressio::{DType, Data, Options};
use pressio_tools::fuzz::{fuzz_all, FuzzConfig};

/// Every registered compressor, 64 damaged streams per mutator mode: each
/// decode must end in `Ok` or a structured error — never a panic, never a
/// hang past the watchdog deadline — and the `guard` frame must reject
/// every stream the mutator actually changed.
#[test]
fn every_decoder_survives_corruption_sweep() {
    let cfg = FuzzConfig {
        iterations: 64,
        seed: 1,
        timeout_ms: 5_000,
        compressor: None,
    };
    let report = fuzz_all(&cfg);
    assert!(report.is_clean(), "{report}");
    // The sweep must actually cover the registry: well over a dozen
    // compressors, 4 modes x 64 cases each.
    assert!(
        report.compressors >= 12,
        "registry shrank? fuzzed only {} compressors\n{report}",
        report.compressors
    );
    assert_eq!(
        report.cases,
        report.compressors * ALL_FAULT_MODES.len() * 64,
        "{report}"
    );
    // Damaged streams overwhelmingly fail structured; a sweep where nothing
    // is rejected means the mutators are not biting.
    assert!(report.rejected > report.cases / 2, "{report}");
    // Skips are allowed (unconfigured-by-default plugins) but never silent
    // and never the majority.
    assert!(report.skipped.len() < report.compressors, "{report}");
}

/// The acceptance scenario for the guard chain: a primary child that
/// corrupts its own stream (fault_injector in truncate mode) is caught by
/// round-trip verification and the request degrades to the first healthy
/// fallback, visible in `guard:served_by`.
#[test]
fn guard_fallback_serves_when_primary_corrupts() {
    libpressio::init();
    let v: Vec<f64> = (0..2048).map(|i| (i as f64 * 0.01).sin()).collect();
    let input = Data::from_vec(v, vec![2048]).unwrap();

    let mut g = libpressio::registry().compressor("guard").unwrap();
    g.set_options(
        &Options::new()
            .with("guard:compressor", "fault_injector")
            .with("fault_injector:compressor", "sz")
            .with("sz:abs_err_bound", 1e-4f64)
            .with("fault_injector:mode", "truncate")
            .with("fault_injector:num_bits", 64u32)
            .with("guard:verify", 1u32)
            .with(
                "guard:fallbacks",
                vec!["deflate".to_string(), "noop".to_string()],
            ),
    )
    .unwrap();

    let compressed = g.compress(&input).unwrap();
    assert_eq!(
        g.get_configuration().get_as::<String>("guard:served_by").unwrap().as_deref(),
        Some("deflate"),
        "the corrupting primary should have been rejected in favor of deflate"
    );

    // The frame decodes on a *fresh* guard instance (the serving child is
    // recorded in the stream), bit-exact because deflate is lossless.
    let mut fresh = libpressio::registry().compressor("guard").unwrap();
    let mut out = Data::owned(DType::F64, vec![2048]);
    fresh.decompress(&compressed, &mut out).unwrap();
    assert_eq!(out, input);

    // And a flipped bit anywhere in the frame is rejected up front.
    let mut damaged = compressed.as_bytes().to_vec();
    let mid = damaged.len() / 2;
    damaged[mid] ^= 0x01;
    let err = fresh
        .decompress(&Data::from_bytes(&damaged), &mut out)
        .unwrap_err();
    assert_eq!(err.code(), ErrorCode::CorruptStream, "{err}");
}
