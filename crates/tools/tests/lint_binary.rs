//! End-to-end checks for the `pressio-lint` binary: clean on this
//! workspace, non-zero on a seeded violation, and a working CLI surface.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_pressio-lint")
}

#[test]
fn lint_is_clean_on_this_workspace() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let out = Command::new(bin())
        .args(["--root", root])
        .output()
        .expect("spawn pressio-lint");
    assert!(
        out.status.success(),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn lint_fails_on_seeded_violation() {
    let dir = std::env::temp_dir().join(format!("pressio-lint-fixture-{}", std::process::id()));
    let src = dir.join("crates").join("core").join("src");
    std::fs::create_dir_all(&src).expect("create fixture tree");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    std::fs::write(
        src.join("lib.rs"),
        "pub fn first(v: Vec<u8>) -> u8 { *v.first().unwrap() }\n\
         pub fn peek(p: *const u8) -> u8 { unsafe { *p } }\n",
    )
    .expect("write fixture source");

    let out = Command::new(bin())
        .args(["--root", dir.to_str().expect("utf-8 temp path")])
        .output()
        .expect("spawn pressio-lint");
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(
        out.status.code(),
        Some(1),
        "stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no-panic"), "{stdout}");
    assert!(stdout.contains("safety-comment"), "{stdout}");
}

#[test]
fn allowlist_waives_and_reports_stale_entries() {
    let dir = std::env::temp_dir().join(format!("pressio-lint-allow-{}", std::process::id()));
    let src = dir.join("crates").join("core").join("src");
    std::fs::create_dir_all(&src).expect("create fixture tree");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    std::fs::write(
        src.join("lib.rs"),
        "pub fn first(v: Vec<u8>) -> u8 { *v.first().unwrap() }\n",
    )
    .expect("write fixture source");
    std::fs::write(
        dir.join("lint-allow.txt"),
        "no-panic crates/core/src/lib.rs v.first().unwrap()  # fixture waiver\n\
         no-panic crates/core/src/lib.rs nothing-matches-this  # stale entry\n",
    )
    .expect("write allowlist");

    // The waiver makes the run clean...
    let out = Command::new(bin())
        .args(["--root", dir.to_str().expect("utf-8 temp path")])
        .output()
        .expect("spawn pressio-lint");
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unused allowlist entry"), "{stderr}");

    // ... but --strict-allowlist fails on the stale entry.
    let strict = Command::new(bin())
        .args(["--root", dir.to_str().expect("utf-8 temp path"), "--strict-allowlist"])
        .output()
        .expect("spawn pressio-lint");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(strict.status.code(), Some(1));
}

#[test]
fn cli_surface_lists_and_explains_rules() {
    let out = Command::new(bin())
        .arg("--list-rules")
        .output()
        .expect("spawn pressio-lint");
    assert!(out.status.success());
    let rules = String::from_utf8_lossy(&out.stdout);
    for rule in ["no-panic", "safety-comment", "plugin-surface", "wire-cast", "no-debug-print"] {
        assert!(rules.contains(rule), "{rule} missing from --list-rules");
    }

    let out = Command::new(bin())
        .args(["--explain", "wire-cast"])
        .output()
        .expect("spawn pressio-lint");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("wire"));

    let out = Command::new(bin())
        .args(["--explain", "no-such-rule"])
        .output()
        .expect("spawn pressio-lint");
    assert_eq!(out.status.code(), Some(2));
}
