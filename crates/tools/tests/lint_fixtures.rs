//! Seeded regressions for the pressio-lint v2 analyses: known-bad sources
//! under `tests/fixtures/` are fed to [`lint::scan_source`] and the rules
//! that once caught (or should have caught) real bugs must keep firing.

use pressio_tools::lint;

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn taint_rules_catch_the_sz_unbounded_allocation_pattern() {
    let src = fixture("sz_unbounded_alloc.rs");
    let findings = lint::scan_source("crates/sz/src/fixture.rs", &src);

    let alloc: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == lint::RULE_TAINT_ALLOC)
        .collect();
    let arith: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == lint::RULE_TAINT_ARITH)
        .collect();

    assert_eq!(
        alloc.len(),
        1,
        "the unvalidated vec![0.0; n] must be flagged exactly once (not the \
         checked_geometry-dominated twin): {findings:?}"
    );
    assert!(
        alloc[0].line <= 33,
        "the flagged allocation must be in decompress_unvalidated: {:?}",
        alloc[0]
    );
    assert!(
        !arith.is_empty(),
        "the unchecked nz * ny * nx product must be flagged: {findings:?}"
    );
    assert!(
        arith.iter().all(|f| f.line <= 33),
        "no arithmetic finding may leak into the validated twin: {arith:?}"
    );
}

#[test]
fn par_closure_alloc_pattern_keeps_firing() {
    let src = fixture("par_closure_alloc.rs");
    let findings = lint::scan_source("crates/codecs/src/fixture.rs", &src);

    let allocs: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == lint::RULE_NO_ALLOC_IN_PAR_CLOSURE)
        .collect();
    assert_eq!(
        allocs.len(),
        3,
        "with_capacity, vec![..], and Vec::new() in the allocating twin must \
         each be flagged exactly once: {findings:?}"
    );
    assert!(
        allocs.iter().all(|f| f.line <= 17),
        "no allocation finding may leak into the scratch-routed twin: {allocs:?}"
    );
}

#[test]
fn fixture_is_not_reachable_by_the_workspace_walk() {
    // The fixture deliberately contains a violation; the real lint run
    // must never see it (tests/ directories are excluded from the walk),
    // otherwise ci.sh would fail on its own regression corpus.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root");
    let report = lint::run(root, &lint::Allowlist::default()).expect("lint walk");
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.file.contains("fixtures/sz_unbounded_alloc")),
        "the fixture corpus leaked into the workspace lint walk"
    );
}
