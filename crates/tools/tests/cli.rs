//! End-to-end tests of the `pressio` CLI binary: the full
//! gen → compress → decompress → eval loop through real files and real
//! process invocations.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> &'static str {
    env!("CARGO_BIN_EXE_pressio")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pressio-cli-tests").join(name);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(cli())
        .args(args)
        .output()
        .expect("spawn pressio");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn list_shows_all_plugin_kinds() {
    let (ok, stdout, _) = run(&["list"]);
    assert!(ok);
    for expected in ["compressors:", "metrics:", "io:", "sz", "zfp", "mgard", "error_stat", "posix"] {
        assert!(stdout.contains(expected), "missing {expected} in:\n{stdout}");
    }
}

#[test]
fn options_introspects_a_compressor() {
    let (ok, stdout, _) = run(&["options", "sz"]);
    assert!(ok);
    assert!(stdout.contains("sz:abs_err_bound"));
    assert!(stdout.contains("<double>"));
    assert!(stdout.contains("sz:pressio:thread_safe"));
    // Documentation section present.
    assert!(stdout.contains("# documentation"));
}

#[test]
fn options_unknown_compressor_fails_cleanly() {
    let (ok, _, stderr) = run(&["options", "definitely_missing"]);
    assert!(!ok);
    assert!(stderr.contains("definitely_missing"));
}

#[test]
fn full_compress_decompress_eval_loop() {
    let dir = tmpdir("loop");
    let raw = dir.join("raw.bin");
    let comp = dir.join("c.sz");
    let dec = dir.join("d.bin");
    let p = |b: &PathBuf| b.to_str().expect("utf8").to_string();

    // gen: synthetic dataset to a flat binary file.
    let (ok, _, stderr) = run(&["gen", "-n", "nyx", "-o", &p(&raw), "-s", "3"]);
    assert!(ok, "{stderr}");
    assert_eq!(
        std::fs::metadata(&raw).expect("raw exists").len(),
        32 * 32 * 32 * 4
    );

    // compress with metrics.
    let (ok, stdout, stderr) = run(&[
        "compress", "-c", "sz", "-i", &p(&raw), "-o", &p(&comp), "-t", "f32", "-d", "32,32,32",
        "-O", "pressio:rel=0.001", "-m", "size",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("size:compression_ratio"));
    assert!(std::fs::metadata(&comp).expect("compressed exists").len() < 32 * 32 * 32 * 4 / 2);

    // decompress (dims come from the self-describing stream).
    let (ok, _, stderr) = run(&["decompress", "-c", "sz", "-i", &p(&comp), "-o", &p(&dec), "-t", "f32"]);
    assert!(ok, "{stderr}");
    assert_eq!(
        std::fs::metadata(&dec).expect("decompressed exists").len(),
        32 * 32 * 32 * 4
    );

    // eval: error statistics between original and decompressed.
    let (ok, stdout, stderr) = run(&[
        "eval", "-i", &p(&raw), "-j", &p(&dec), "-t", "f32", "-d", "32,32,32",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("error_stat:max_error"));
    assert!(stdout.contains("pearson:r"));
    // The relative bound must show up as a small max_rel_error.
    let line = stdout
        .lines()
        .find(|l| l.starts_with("error_stat:max_rel_error"))
        .expect("max_rel_error present");
    let value: f64 = line
        .split('=')
        .nth(1)
        .expect("value")
        .trim()
        .trim_end_matches("f64")
        .parse()
        .expect("parseable");
    assert!(value <= 0.001 * 1.01, "rel error {value}");
}

#[test]
fn compress_works_for_every_major_compressor() {
    let dir = tmpdir("multi");
    let raw = dir.join("raw.bin");
    let p = |b: &PathBuf| b.to_str().expect("utf8").to_string();
    let (ok, _, _) = run(&["gen", "-n", "nyx", "-o", &p(&raw)]);
    assert!(ok);
    for comp in ["sz", "zfp", "mgard", "deflate", "fpzip", "blosc"] {
        let out = dir.join(format!("{comp}.c"));
        let (ok, stdout, stderr) = run(&[
            "compress", "-c", comp, "-i", &p(&raw), "-o", &p(&out), "-t", "f32", "-d",
            "32,32,32", "-O", "pressio:rel=0.001", "-m", "size",
        ]);
        assert!(ok, "{comp}: {stderr}");
        assert!(stdout.contains("size:compression_ratio"), "{comp}");
    }
}

#[test]
fn bad_options_produce_clean_errors() {
    let dir = tmpdir("bad");
    let raw = dir.join("raw.bin");
    let p = |b: &PathBuf| b.to_str().expect("utf8").to_string();
    let (ok, _, _) = run(&["gen", "-n", "nyx", "-o", &p(&raw)]);
    assert!(ok);
    // Negative bound rejected by check_options.
    let (ok, _, stderr) = run(&[
        "compress", "-c", "sz", "-i", &p(&raw), "-o", &p(&dir.join("x")), "-t", "f32", "-d",
        "32,32,32", "-O", "sz:abs_err_bound=-1",
    ]);
    assert!(!ok);
    assert!(stderr.contains("pressio:"), "{stderr}");
    // Unknown command prints usage.
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

#[test]
fn gen_writes_numpy_format_too() {
    let dir = tmpdir("npy");
    let out = dir.join("d.npy");
    let p = out.to_str().expect("utf8");
    let (ok, _, stderr) = run(&["gen", "-n", "hurricane", "-o", p, "-F", "numpy"]);
    assert!(ok, "{stderr}");
    let bytes = std::fs::read(&out).expect("npy written");
    assert_eq!(&bytes[..6], b"\x93NUMPY");
}
