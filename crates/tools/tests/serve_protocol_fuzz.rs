//! Fuzz-hardening for the `pressio serve` frame parser, in the style of
//! `pressio fuzz-decode`: a deterministic adversarial corpus of hand-built
//! hostile frames, plus `mutate_stream` sweeps (bit flips, truncation,
//! extension, zeroed regions) over valid frames. The contract under test:
//!
//! - the parser NEVER panics, hangs, or over-allocates — a frame's
//!   declared body length is validated against the cap *before* any
//!   buffer is allocated, so a 4 GiB lie costs 17 header bytes, not 4 GiB;
//! - every rejection is a structured [`Error`] (almost always
//!   `CorruptStream`), never a silent truncation or a wrong-but-parsed
//!   frame;
//! - garbage profile names are rejected by charset/length validation
//!   before any registry lookup could run.

use std::io::Cursor;

use libpressio::meta::{mutate_stream, ALL_FAULT_MODES};
use libpressio::{DType, ErrorCode};
use pressio_tools::serve::protocol::{
    encode_bodyless, encode_request, encode_response, parse_header, parse_request, read_frame,
    validate_profile_name, FrameKind, ReadOutcome, Response, DEFAULT_MAX_BODY, FRAME_MAGIC,
    HEADER_LEN,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn header_bytes(magic: u32, kind: u8, request_id: u64, body_len: u32) -> [u8; HEADER_LEN] {
    let mut raw = [0u8; HEADER_LEN];
    raw[0..4].copy_from_slice(&magic.to_le_bytes());
    raw[4] = kind;
    raw[5..13].copy_from_slice(&request_id.to_le_bytes());
    raw[13..17].copy_from_slice(&body_len.to_le_bytes());
    raw
}

fn sample_payload(n: usize) -> Vec<u8> {
    (0..n)
        .flat_map(|i| ((i as f32 * 0.5).cos() * 3.0).to_le_bytes())
        .collect()
}

/// Run a whole byte stream through the reader loop the daemon uses,
/// parsing every frame body that survives the header. Returns
/// (frames_parsed, structured_rejections). Panics and hangs fail the
/// test by themselves; anything else must come back as a `Result`.
fn drive_parser(bytes: &[u8]) -> (usize, usize) {
    let mut cursor = Cursor::new(bytes.to_vec());
    let mut parsed = 0;
    let mut rejected = 0;
    loop {
        match read_frame(&mut cursor, DEFAULT_MAX_BODY) {
            Ok(ReadOutcome::Eof) => break,
            Ok(ReadOutcome::Idle) => break, // a Cursor never idles; treat as end
            Ok(ReadOutcome::Frame(header, body)) => {
                match parse_request(header.kind, &body) {
                    Ok(_) => parsed += 1,
                    Err(e) => {
                        assert!(!e.to_string().is_empty(), "rejections carry a message");
                        rejected += 1;
                    }
                }
            }
            Err(e) => {
                // Structured framing rejection: the stream is unusable past
                // this point, exactly like the daemon's reader loop.
                assert!(!e.to_string().is_empty(), "rejections carry a message");
                rejected += 1;
                break;
            }
        }
    }
    (parsed, rejected)
}

#[test]
fn adversarial_corpus_is_rejected_structurally() {
    // --- truncated headers: every prefix of a valid header short of
    // HEADER_LEN is mid-frame EOF -> CorruptStream, not a hang or panic.
    let valid = encode_request(
        FrameKind::Compress,
        7,
        "raw",
        DType::F32,
        &[4],
        &sample_payload(4),
    );
    for cut in 1..HEADER_LEN {
        let mut c = Cursor::new(valid[..cut].to_vec());
        let err = read_frame(&mut c, DEFAULT_MAX_BODY).expect_err("truncated header");
        assert_eq!(err.code(), ErrorCode::CorruptStream, "cut at {cut}");
    }
    // A clean EOF at a frame boundary is NOT an error.
    let mut empty = Cursor::new(Vec::new());
    assert!(matches!(
        read_frame(&mut empty, DEFAULT_MAX_BODY),
        Ok(ReadOutcome::Eof)
    ));

    // --- truncated bodies: header promises more than the stream holds.
    for cut in HEADER_LEN..valid.len() - 1 {
        let mut c = Cursor::new(valid[..cut].to_vec());
        let err = read_frame(&mut c, DEFAULT_MAX_BODY).expect_err("truncated body");
        assert_eq!(err.code(), ErrorCode::CorruptStream, "cut at {cut}");
    }

    // --- oversized declared lengths: rejected against the cap at header
    // validation, before any body buffer exists. A stream holding only
    // the 17 header bytes suffices to prove no read of the declared size
    // was attempted.
    for lie in [u32::MAX, (DEFAULT_MAX_BODY as u32) + 1, 1 << 30] {
        let raw = header_bytes(FRAME_MAGIC, FrameKind::Compress as u8, 1, lie);
        let err = parse_header(&raw, DEFAULT_MAX_BODY).expect_err("oversized declaration");
        assert_eq!(err.code(), ErrorCode::CorruptStream);
        let mut c = Cursor::new(raw.to_vec());
        let err = read_frame(&mut c, DEFAULT_MAX_BODY).expect_err("oversized via reader");
        assert_eq!(err.code(), ErrorCode::CorruptStream);
    }

    // --- wrong magic and unknown kinds.
    for raw in [
        header_bytes(0xDEAD_BEEF, FrameKind::Compress as u8, 1, 0),
        header_bytes(FRAME_MAGIC, 0, 1, 0),
        header_bytes(FRAME_MAGIC, 99, 1, 0),
        header_bytes(FRAME_MAGIC, 255, 1, 0),
    ] {
        let err = parse_header(&raw, DEFAULT_MAX_BODY).expect_err("bad magic/kind");
        assert_eq!(err.code(), ErrorCode::CorruptStream);
    }

    // --- garbage profile names: charset/length validation fires before
    // any lookup. Path traversal, NUL, unicode, oversized, empty.
    for name in [
        "",
        "../../../etc/passwd",
        "pro file",
        "name\0hidden",
        "ünïcode",
        "exactly#bad",
    ] {
        assert!(validate_profile_name(name).is_err(), "name {name:?}");
    }
    assert!(validate_profile_name(&"x".repeat(129)).is_err(), "too long");
    assert!(validate_profile_name(&"x".repeat(128)).is_ok(), "at the cap");
    assert!(validate_profile_name("sz_abs.v2:tuned-1").is_ok());

    // --- response kinds arriving as requests are rejected.
    let resp = encode_response(3, &Response::Ok(vec![1, 2, 3]));
    let mut c = Cursor::new(resp);
    let Ok(ReadOutcome::Frame(header, body)) = read_frame(&mut c, DEFAULT_MAX_BODY) else {
        panic!("response frame reads fine");
    };
    let err = parse_request(header.kind, &body).expect_err("response is not a request");
    assert_eq!(err.code(), ErrorCode::CorruptStream);

    // --- a garbage profile name inside an otherwise valid Compress body.
    let evil = encode_request(
        FrameKind::Compress,
        9,
        "ok_name",
        DType::F32,
        &[4],
        &sample_payload(4),
    );
    let mut swapped = evil.clone();
    // "ok_name" sits after the header + u64 name length; corrupt a byte
    // of the name to a forbidden character.
    let name_pos = HEADER_LEN + 8;
    assert_eq!(&swapped[name_pos..name_pos + 7], b"ok_name");
    swapped[name_pos + 2] = b'/';
    let mut c = Cursor::new(swapped);
    let Ok(ReadOutcome::Frame(header, body)) = read_frame(&mut c, DEFAULT_MAX_BODY) else {
        panic!("frame boundary is intact");
    };
    let err = parse_request(header.kind, &body).expect_err("bad name byte");
    assert_eq!(err.code(), ErrorCode::CorruptStream);
}

#[test]
fn mutate_stream_sweeps_never_break_the_parser() {
    // A realistic multi-frame conversation to mutate.
    let mut conversation = Vec::new();
    conversation.extend_from_slice(&encode_request(
        FrameKind::Compress,
        1,
        "lossless",
        DType::F32,
        &[16, 4],
        &sample_payload(64),
    ));
    conversation.extend_from_slice(&encode_bodyless(FrameKind::Health, 2));
    conversation.extend_from_slice(&encode_request(
        FrameKind::Decompress,
        3,
        "sz_abs_1e3",
        DType::F64,
        &[32],
        &sample_payload(10),
    ));
    conversation.extend_from_slice(&encode_bodyless(FrameKind::Shutdown, 4));

    // The pristine conversation parses completely.
    let (parsed, rejected) = drive_parser(&conversation);
    assert_eq!((parsed, rejected), (4, 0), "pristine conversation parses");

    let mut total_rejections = 0usize;
    for mode in ALL_FAULT_MODES {
        for intensity in [1u32, 4, 16, 64] {
            for seed in 0..16u64 {
                let mut rng = StdRng::seed_from_u64(
                    seed ^ (intensity as u64) << 8 ^ (mode as u64) << 32,
                );
                let damaged = mutate_stream(&conversation, mode, intensity, &mut rng);
                // The only requirement: structured outcomes, no panic, no
                // hang, no runaway allocation. Damage may still parse
                // (e.g. a bit flip inside payload bytes) — that's fine,
                // payload integrity is the guard/codec layer's job.
                let (_parsed, rejected) = drive_parser(&damaged);
                total_rejections += rejected;
            }
        }
    }
    // Sanity: the sweep actually exercised the rejection paths.
    assert!(
        total_rejections > 100,
        "sweep looks inert: {total_rejections} rejections"
    );
}

#[test]
fn header_garbage_sweep_is_structural() {
    // Exhaustive-ish single-byte corruptions of a valid header: every
    // outcome is Ok(frame) or a structured error — byte position by byte
    // position, all 255 wrong values for the kind/magic bytes, sampled
    // values elsewhere.
    let body = [0u8; 8];
    let mut frame = header_bytes(FRAME_MAGIC, FrameKind::Health as u8, 5, body.len() as u32)
        .to_vec();
    frame.extend_from_slice(&body);
    for pos in 0..HEADER_LEN {
        for delta in 1..=255u8 {
            let mut damaged = frame.clone();
            damaged[pos] = damaged[pos].wrapping_add(delta);
            let mut c = Cursor::new(damaged);
            if let Ok(ReadOutcome::Frame(h, b)) = read_frame(&mut c, DEFAULT_MAX_BODY) {
                // Frame still parsed (id/body-len bytes moved): the body
                // handed over must match the declared length.
                assert_eq!(h.body_len, b.len());
            }
        }
    }
}
