//! Seeded-regression fixture for the taint analysis: the PR 2 sz bug, in
//! miniature. The decoder below trusts three wire-supplied dimensions,
//! multiplies them unchecked, and sizes its output allocation from the
//! product — exactly the shape that once let a corrupt stream demand a
//! 34 GB `Vec` before any validation ran (and, while the allocator
//! thrashed, cascaded watchdog timeouts through the store lock).
//!
//! This file is **not compiled** (it lives under `tests/fixtures/`, which
//! is neither a test target nor scanned by the workspace lint walk). The
//! `lint_fixtures.rs` integration test feeds it to `lint::scan_source`
//! and asserts the `taint-alloc` and `taint-arith` rules both fire; if a
//! refactor of the taint pass ever stops catching this pattern, that test
//! — not a future corrupt stream — is what fails.

use pressio_core::wire::ByteReader;
use pressio_core::{Error, Result};

/// A miniature sz-style decoder with the original defect.
pub fn decompress_unvalidated(bytes: &[u8]) -> Result<Vec<f64>> {
    let mut r = ByteReader::new(bytes);
    let nz = r.get_len()?;
    let ny = r.get_len()?;
    let nx = r.get_len()?;
    // BUG (intentional, for the lint fixture): the element count comes
    // straight from the wire with no checked_geometry / checked_mul, so a
    // hostile header sizes this allocation arbitrarily.
    let n = nz * ny * nx;
    let mut out = vec![0.0f64; n];
    for v in out.iter_mut() {
        *v = r.get_f64()?;
    }
    Ok(out)
}

/// The corrected shape, for contrast: the same read path dominated by the
/// shared geometry check. The lint must stay quiet here.
pub fn decompress_validated(bytes: &[u8]) -> Result<Vec<f64>> {
    let mut r = ByteReader::new(bytes);
    let dims = r.get_dims()?;
    let nbytes = pressio_core::checked_geometry(pressio_core::DType::F64, &dims)?;
    let n = nbytes / 8;
    let mut out = vec![0.0f64; n];
    for v in out.iter_mut() {
        *v = r.get_f64()?;
    }
    Ok(out)
}
