//! Lint fixture: the pre-Scratch shape of the chunked parallel encoders —
//! every worker closure allocates its staging buffers per chunk, paying the
//! allocator (and glibc's arena lock) once per chunk per round. This is the
//! exact pattern the per-worker Scratch arena removed; `pressio-lint` must
//! keep flagging it (`no-alloc-in-par-closure`).

/// Known-bad: three allocations inside the `par_map_indexed` closure.
pub fn encode_chunks_allocating(n_chunks: usize, chunks: &[&[u8]]) -> Vec<Vec<u8>> {
    pressio_core::par_map_indexed(n_chunks, |i| {
        let mut staging = Vec::with_capacity(chunks[i].len());
        let mut freq = vec![0u32; 256];
        let mut lits: Vec<u8> = Vec::new();
        encode_one(chunks[i], &mut staging, &mut freq, &mut lits);
        staging
    })
}

/// Known-good twin: buffers route through the per-worker Scratch arena;
/// nothing here may be flagged.
pub fn encode_chunks_scratch(n_chunks: usize, chunks: &[&[u8]]) -> Vec<Vec<u8>> {
    pressio_core::par_map_indexed(n_chunks, |i| {
        pressio_core::with_scratch(|s| {
            let mut staging = s.take_bytes(chunks[i].len());
            let freq = s.u32_slice(256);
            encode_one_scratch(chunks[i], &mut staging, freq);
            let out = staging.clone();
            s.put_bytes(staging);
            out
        })
    })
}

fn encode_one(_c: &[u8], _s: &mut Vec<u8>, _f: &mut [u32], _l: &mut Vec<u8>) {}
fn encode_one_scratch(_c: &[u8], _s: &mut Vec<u8>, _f: &mut [u32]) {}
