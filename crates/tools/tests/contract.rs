//! The plugin-contract gate: every plugin registered by `libpressio::init()`
//! must honor the LibPressio interface contract. This is the test third-party
//! plugin authors are told to copy into their own crates.

use pressio_tools::contract;

#[test]
fn every_registered_plugin_honors_the_contract() {
    let report = contract::check_all();
    assert!(report.checked >= 45, "registry shrank? checked {}", report.checked);
    assert!(
        report.is_clean(),
        "plugin contract violations:\n{report}"
    );
    // Skips must carry a reason and refer to a registered plugin.
    let lib = libpressio::instance();
    let known: Vec<String> = lib
        .supported_compressors()
        .into_iter()
        .chain(lib.supported_metrics())
        .chain(lib.supported_io())
        .collect();
    for (plugin, reason) in &report.skipped {
        assert!(known.contains(plugin), "skip for unknown plugin {plugin:?}");
        assert!(!reason.is_empty(), "skip for {plugin:?} has no reason");
    }
}

#[test]
fn single_plugin_checks_are_usable_standalone() {
    let mut report = contract::Report::default();
    contract::check_compressor("zfp", &mut report);
    contract::check_metrics("size", &mut report);
    contract::check_io("posix", &mut report);
    assert_eq!(report.checked, 3);
    assert!(report.is_clean(), "{report}");
}

